//! Breadth-first search (BFS in Table II: vertex-oriented, backward
//! direction reversal, medium/sparse frontiers).

use crate::common::RunReport;
use std::sync::atomic::{AtomicU32, Ordering};
use vebo_engine::{EdgeOp, Executor, Frontier, PreparedGraph};
use vebo_graph::VertexId;

/// Sentinel for "no parent yet".
pub const UNVISITED: u32 = u32::MAX;

struct BfsOp {
    parent: Vec<AtomicU32>,
}

impl EdgeOp for BfsOp {
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        if self.parent[dst as usize].load(Ordering::Relaxed) == UNVISITED {
            self.parent[dst as usize].store(src, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.parent[dst as usize]
            .compare_exchange(UNVISITED, src, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    fn cond(&self, dst: VertexId) -> bool {
        self.parent[dst as usize].load(Ordering::Relaxed) == UNVISITED
    }
}

/// Runs BFS from `source`; returns the parent array (`UNVISITED` for
/// unreachable vertices; the source is its own parent).
pub fn bfs(exec: &Executor, pg: &PreparedGraph, source: VertexId) -> (Vec<u32>, RunReport) {
    let (exec, rec) = exec.recorded();
    let g = pg.graph();
    let n = g.num_vertices();
    let op = BfsOp {
        parent: (0..n).map(|_| AtomicU32::new(UNVISITED)).collect(),
    };
    op.parent[source as usize].store(source, Ordering::Relaxed);

    let mut frontier = Frontier::single(n, source);
    while !frontier.is_empty() {
        let (next, _) = exec.edge_map(pg, &frontier, &op);
        frontier = next;
    }
    (
        op.parent.into_iter().map(|a| a.into_inner()).collect(),
        rec.take(),
    )
}

/// BFS levels derived from a parent array (tests / BC diagnostics).
pub fn levels_from_parents(parents: &[u32], source: VertexId) -> Vec<u32> {
    let n = parents.len();
    let mut level = vec![u32::MAX; n];
    level[source as usize] = 0;
    // Repeated relaxation: fine for test-scale graphs.
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            let p = parents[v];
            if p != UNVISITED && v as u32 != source && level[p as usize] != u32::MAX {
                let cand = level[p as usize] + 1;
                if cand < level[v] {
                    level[v] = cand;
                    changed = true;
                }
            }
        }
    }
    level
}

/// Reference sequential BFS distances (tests).
pub fn bfs_reference(g: &vebo_graph::Graph, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_engine::SystemProfile;
    use vebo_graph::Dataset;
    use vebo_partition::EdgeOrder;

    fn source_of(g: &vebo_graph::Graph) -> VertexId {
        g.vertices().max_by_key(|&v| g.out_degree(v)).unwrap()
    }

    #[test]
    fn distances_match_reference_on_all_profiles() {
        let g = Dataset::LiveJournalLike.build(0.03);
        let src = source_of(&g);
        let want = bfs_reference(&g, src);
        for profile in [
            SystemProfile::ligra_like(),
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Csr),
        ] {
            let pg = PreparedGraph::new(g.clone(), profile);
            let (parents, _) = bfs(&Executor::new(profile), &pg, src);
            let levels = levels_from_parents(&parents, src);
            assert_eq!(levels, want, "profile {:?}", profile.kind);
        }
    }

    #[test]
    fn parent_edges_exist_in_graph() {
        let g = Dataset::YahooLike.build(0.03);
        let src = source_of(&g);
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
        let pg = PreparedGraph::new(g.clone(), profile);
        let (parents, _) = bfs(&Executor::new(profile), &pg, src);
        for v in g.vertices() {
            let p = parents[v as usize];
            if p != UNVISITED && v != src {
                assert!(g.csr().has_edge(p, v), "parent edge {p} -> {v} missing");
            }
        }
    }

    #[test]
    fn unreachable_vertices_stay_unvisited() {
        let g = vebo_graph::Graph::from_edges(4, &[(0, 1)], true);
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let (parents, _) = bfs(&Executor::new(SystemProfile::ligra_like()), &pg, 0);
        assert_eq!(parents[0], 0);
        assert_eq!(parents[1], 0);
        assert_eq!(parents[2], UNVISITED);
        assert_eq!(parents[3], UNVISITED);
    }

    #[test]
    fn forced_directions_agree() {
        let g = Dataset::YahooLike.build(0.03);
        let src = source_of(&g);
        let pg = PreparedGraph::new(g.clone(), SystemProfile::ligra_like());
        let mut reaches = Vec::new();
        for force in [
            vebo_engine::Direction::Dense,
            vebo_engine::Direction::Sparse,
            vebo_engine::Direction::Auto,
        ] {
            let exec = Executor::new(SystemProfile::ligra_like()).with_direction(force);
            let (parents, _) = bfs(&exec, &pg, src);
            // Parent arrays may differ (tie-breaks), but the reachable
            // set and levels must agree.
            let levels = levels_from_parents(&parents, src);
            reaches.push(levels);
        }
        assert_eq!(reaches[0], reaches[1]);
        assert_eq!(reaches[0], reaches[2]);
    }

    #[test]
    fn frontier_classes_include_sparse() {
        // BFS frontiers start sparse (Table II lists m/s for BFS).
        let g = Dataset::LiveJournalLike.build(0.05);
        let src = source_of(&g);
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
        let pg = PreparedGraph::new(g, profile);
        let (_, report) = bfs(&Executor::new(profile), &pg, src);
        assert!(report
            .observed_classes()
            .contains(&vebo_engine::DensityClass::Sparse));
        assert!(report.iterations >= 2);
    }
}
