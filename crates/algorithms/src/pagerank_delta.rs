//! PageRankDelta (PRD in Table II: forward, edge-oriented, frontiers go
//! dense -> medium -> sparse).
//!
//! The delta-stepping formulation of PageRank from Ligra: only vertices
//! whose rank changed by more than `eps * rank` stay active and propagate
//! their *delta* forward. The paper's motivating observation (§I) is that
//! about half of the low-degree vertices converge before any high-degree
//! vertex does — so partitions made of low-degree vertices go idle early,
//! and edge-balance alone cannot capture that.

use crate::common::RunReport;
use vebo_engine::shared::{atomic_f64_vec, snapshot_f64, AtomicF64};
use vebo_engine::{EdgeOp, Executor, Frontier, PreparedGraph};
use vebo_graph::VertexId;

/// PageRankDelta parameters.
#[derive(Clone, Copy, Debug)]
pub struct PageRankDeltaConfig {
    /// Damping factor.
    pub damping: f64,
    /// Relative convergence threshold: a vertex stays active while
    /// `|delta| > eps * rank`.
    pub eps: f64,
    /// Maximum rounds.
    pub max_iterations: usize,
}

impl Default for PageRankDeltaConfig {
    fn default() -> Self {
        PageRankDeltaConfig {
            damping: 0.85,
            eps: 1e-2,
            max_iterations: 100,
        }
    }
}

struct PrdOp<'a> {
    /// `delta[u] / outdeg(u)` for active sources.
    contrib: &'a [AtomicF64],
    acc: &'a [AtomicF64],
}

impl EdgeOp for PrdOp<'_> {
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        let a = &self.acc[dst as usize];
        a.store(a.load() + self.contrib[src as usize].load());
        true
    }
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.acc[dst as usize].fetch_add(self.contrib[src as usize].load());
        true
    }
}

/// A full PageRankDelta run, including the per-vertex activity horizon
/// that quantifies the paper's §I motivation.
#[derive(Clone, Debug)]
pub struct PageRankDeltaRun {
    /// Final rank per vertex.
    pub ranks: Vec<f64>,
    /// Last round (0-based) in which each vertex was active; a vertex
    /// whose entry is small converged early and stopped contributing
    /// work. Never-active vertices hold 0.
    pub last_active_round: Vec<u32>,
    /// Engine bookkeeping.
    pub report: RunReport,
}

/// Runs PageRankDelta; returns the rank vector and the report.
pub fn pagerank_delta(
    exec: &Executor,
    pg: &PreparedGraph,
    cfg: &PageRankDeltaConfig,
) -> (Vec<f64>, RunReport) {
    let run = pagerank_delta_full(exec, pg, cfg);
    (run.ranks, run.report)
}

/// As [`pagerank_delta`], additionally tracking when each vertex was last
/// active — the measurement behind §I's "about half of low-degree
/// vertices converge before any high-degree vertex converges".
pub fn pagerank_delta_full(
    exec: &Executor,
    pg: &PreparedGraph,
    cfg: &PageRankDeltaConfig,
) -> PageRankDeltaRun {
    let (exec, rec) = exec.recorded();
    let g = pg.graph();
    let n = g.num_vertices();
    if n == 0 {
        return PageRankDeltaRun {
            ranks: Vec::new(),
            last_active_round: Vec::new(),
            report: RunReport::default(),
        };
    }
    let inv_n = 1.0 / n as f64;
    let base = (1.0 - cfg.damping) * inv_n;
    let rank = atomic_f64_vec(n, inv_n);
    let delta = atomic_f64_vec(n, inv_n); // first round: delta == p0
    let contrib = atomic_f64_vec(n, 0.0);
    let acc = atomic_f64_vec(n, 0.0);

    let mut last_active = vec![0u32; n];
    let mut frontier = Frontier::all(n);
    let mut round = 0usize;
    while !frontier.is_empty() && round < cfg.max_iterations {
        for v in frontier.iter_active() {
            last_active[v as usize] = round as u32;
        }
        // Stage contributions of active vertices; clear accumulators.
        // Degrees go through the prepared handle, which is delta-overlay
        // aware: on a dirty dynamic-graph epoch the divisor matches the
        // merged adjacency the edge map traverses.
        exec.vertex_map_all(pg, |v| {
            let i = v as usize;
            let d = pg.out_degree(v);
            let c = if d > 0 && frontier.contains(v) {
                delta[i].load() / d as f64
            } else {
                0.0
            };
            contrib[i].store(c);
            acc[i].store(0.0);
            true
        });

        let op = PrdOp {
            contrib: &contrib,
            acc: &acc,
        };
        exec.edge_map(pg, &frontier, &op);

        // Apply deltas and decide who stays active.
        let first = round == 0;
        let (next, _) = exec.vertex_map_all(pg, |v| {
            let i = v as usize;
            let nd = if first {
                // p1 = base + d * A p0; delta1 = p1 - p0.
                base + cfg.damping * acc[i].load() - inv_n
            } else {
                cfg.damping * acc[i].load()
            };
            let r = rank[i].load() + nd;
            rank[i].store(r);
            delta[i].store(nd);
            nd.abs() > cfg.eps * r.abs()
        });
        frontier = next;
        round += 1;
    }
    PageRankDeltaRun {
        ranks: snapshot_f64(&rank),
        last_active_round: last_active,
        report: rec.take(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{pagerank_reference, PageRankConfig};
    use vebo_engine::{DensityClass, SystemProfile};
    use vebo_graph::Dataset;
    use vebo_partition::EdgeOrder;

    #[test]
    fn converges_towards_power_method_ranks() {
        let g = Dataset::YahooLike.build(0.03);
        let pg = PreparedGraph::new(g.clone(), SystemProfile::ligra_like());
        let cfg = PageRankDeltaConfig {
            eps: 1e-7,
            max_iterations: 60,
            ..Default::default()
        };
        let (got, _) = pagerank_delta(&Executor::new(SystemProfile::ligra_like()), &pg, &cfg);
        let want = pagerank_reference(
            &g,
            &PageRankConfig {
                iterations: 60,
                ..Default::default()
            },
        );
        let err: f64 = got.iter().zip(&want).map(|(a, b)| (a - b).abs()).sum();
        assert!(err < 1e-4, "L1 error {err}");
    }

    #[test]
    fn profiles_agree_closely() {
        let g = Dataset::YahooLike.build(0.03);
        let cfg = PageRankDeltaConfig::default();
        let mut results: Vec<Vec<f64>> = Vec::new();
        for profile in [
            SystemProfile::ligra_like(),
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Csr),
        ] {
            let pg = PreparedGraph::new(g.clone(), profile);
            let (r, _) = pagerank_delta(&Executor::new(profile), &pg, &cfg);
            results.push(r);
        }
        for r in &results[1..] {
            let err: f64 = r.iter().zip(&results[0]).map(|(a, b)| (a - b).abs()).sum();
            assert!(err < 1e-8, "profiles diverged: {err}");
        }
    }

    #[test]
    fn frontier_shrinks_over_time() {
        // The motivating behaviour: low-degree vertices converge first,
        // so the active set shrinks from dense to sparse.
        let g = Dataset::TwitterLike.build(0.05);
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let (_, report) = pagerank_delta(
            &Executor::new(SystemProfile::ligra_like()),
            &pg,
            &PageRankDeltaConfig::default(),
        );
        let classes = report.observed_classes();
        assert!(classes.contains(&DensityClass::Dense), "{classes:?}");
        assert!(report.iterations >= 3);
        // Output frontier sizes must be non-increasing toward the tail.
        let sizes: Vec<usize> = report.edge_maps.iter().map(|r| r.output_size).collect();
        assert!(sizes.last().unwrap() < sizes.first().unwrap());
    }

    #[test]
    fn terminates_on_max_iterations() {
        let g = Dataset::YahooLike.build(0.02);
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let cfg = PageRankDeltaConfig {
            eps: 0.0,
            max_iterations: 5,
            ..Default::default()
        };
        let (_, report) = pagerank_delta(&Executor::new(SystemProfile::ligra_like()), &pg, &cfg);
        assert_eq!(report.iterations, 5);
    }

    #[test]
    fn low_degree_vertices_converge_before_any_hub() {
        // The §I motivation, quantified: a substantial share of
        // low-degree vertices leaves the frontier before the *first*
        // high-degree vertex does, so a partition of low-degree vertices
        // goes idle while hub partitions keep working.
        let g = Dataset::TwitterLike.build(0.2);
        let pg = PreparedGraph::new(g.clone(), SystemProfile::ligra_like());
        let run = pagerank_delta_full(
            &Executor::new(SystemProfile::ligra_like()),
            &pg,
            &PageRankDeltaConfig::default(),
        );
        let mut degrees: Vec<usize> = g.vertices().map(|v| g.in_degree(v)).collect();
        degrees.sort_unstable();
        let hub_threshold = degrees[degrees.len() * 99 / 100].max(2); // top 1%
        let earliest_hub = g
            .vertices()
            .filter(|&v| g.in_degree(v) >= hub_threshold)
            .map(|v| run.last_active_round[v as usize])
            .min()
            .expect("graph has hubs");
        let low: Vec<u32> = g
            .vertices()
            .filter(|&v| g.in_degree(v) < hub_threshold && g.in_degree(v) + g.out_degree(v) > 0)
            .map(|v| run.last_active_round[v as usize])
            .collect();
        let early = low.iter().filter(|&&r| r < earliest_hub).count();
        let frac = early as f64 / low.len() as f64;
        assert!(
            frac > 0.25,
            "only {:.1}% of low-degree vertices converged before the first hub (round {})",
            frac * 100.0,
            earliest_hub
        );
    }

    #[test]
    fn last_active_rounds_are_bounded_by_iterations() {
        let g = Dataset::YahooLike.build(0.03);
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let run = pagerank_delta_full(
            &Executor::new(SystemProfile::ligra_like()),
            &pg,
            &PageRankDeltaConfig::default(),
        );
        let max = *run.last_active_round.iter().max().unwrap();
        assert!((max as usize) < run.report.iterations);
    }
}
