//! Betweenness centrality (BC in Table II: vertex-oriented, backward,
//! medium/sparse frontiers) — the Brandes single-source formulation used
//! by Ligra: a forward BFS accumulating shortest-path counts, then a
//! backward sweep over the BFS levels (on the transposed graph)
//! accumulating dependencies.

use crate::common::RunReport;
use std::sync::atomic::{AtomicBool, Ordering};
use vebo_engine::shared::{atomic_f64_vec, snapshot_f64, AtomicF64};
use vebo_engine::{EdgeOp, Executor, Frontier, PreparedGraph};
use vebo_graph::VertexId;

struct PathsOp<'a> {
    sigma: &'a [AtomicF64],
    visited: &'a [AtomicBool],
}

impl EdgeOp for PathsOp<'_> {
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        // Pull: dst is owned by one task; plain read-modify-write.
        let cell = &self.sigma[dst as usize];
        let old = cell.load();
        cell.store(old + self.sigma[src as usize].load());
        old == 0.0
    }
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.sigma[dst as usize].fetch_add(self.sigma[src as usize].load()) == 0.0
    }
    fn cond(&self, dst: VertexId) -> bool {
        !self.visited[dst as usize].load(Ordering::Relaxed)
    }
}

struct DepOp<'a> {
    sigma: &'a [AtomicF64],
    dep: &'a [AtomicF64],
    level: &'a [u32],
    current_level: u32,
}

impl EdgeOp for DepOp<'_> {
    // Traverses the *transposed* graph: src is a level-(L+1) vertex `w`,
    // dst is its level-L predecessor `u` on the original graph.
    fn update(&self, w: VertexId, u: VertexId, _weight: f32) -> bool {
        let add = self.sigma[u as usize].load() / self.sigma[w as usize].load()
            * (1.0 + self.dep[w as usize].load());
        let cell = &self.dep[u as usize];
        cell.store(cell.load() + add);
        true
    }
    fn update_atomic(&self, w: VertexId, u: VertexId, _weight: f32) -> bool {
        let add = self.sigma[u as usize].load() / self.sigma[w as usize].load()
            * (1.0 + self.dep[w as usize].load());
        self.dep[u as usize].fetch_add(add);
        true
    }
    fn cond(&self, u: VertexId) -> bool {
        self.level[u as usize] == self.current_level
    }
}

/// Single-source betweenness dependencies from `source` (Brandes'
/// delta values; summing over all sources would give exact BC — Ligra and
/// the paper likewise evaluate the single-source kernel).
pub fn bc(exec: &Executor, pg: &PreparedGraph, source: VertexId) -> (Vec<f64>, RunReport) {
    let (exec, rec) = exec.recorded();
    let g = pg.graph();
    let n = g.num_vertices();

    // ---- forward phase: shortest-path counts and BFS levels ----
    let sigma = atomic_f64_vec(n, 0.0);
    sigma[source as usize].store(1.0);
    let visited: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    visited[source as usize].store(true, Ordering::Relaxed);
    let mut level = vec![u32::MAX; n];
    level[source as usize] = 0;

    let mut level_frontiers: Vec<Frontier> = vec![Frontier::single(n, source)];
    loop {
        let frontier = level_frontiers.last().unwrap();
        if frontier.is_empty() {
            level_frontiers.pop();
            break;
        }
        let op = PathsOp {
            sigma: &sigma,
            visited: &visited,
        };
        let (next, _) = exec.edge_map(pg, frontier, &op);
        // Mark the new frontier visited and record its level.
        let lev = level_frontiers.len() as u32;
        exec.vertex_map(pg, &next, |v| {
            visited[v as usize].store(true, Ordering::Relaxed);
            true
        });
        for v in next.iter_active() {
            level[v as usize] = lev;
        }
        level_frontiers.push(next);
    }

    // ---- backward phase: dependency accumulation on the transpose ----
    let dep = atomic_f64_vec(n, 0.0);
    let tg = PreparedGraph::builder(g.transposed())
        .profile(*pg.profile())
        .build()
        .expect("no explicit bounds, cannot fail");
    for lev in (0..level_frontiers.len().saturating_sub(1)).rev() {
        let frontier = &level_frontiers[lev + 1];
        let op = DepOp {
            sigma: &sigma,
            dep: &dep,
            level: &level,
            current_level: lev as u32,
        };
        exec.edge_map(&tg, frontier, &op);
    }

    (snapshot_f64(&dep), rec.take())
}

/// Reference sequential Brandes single-source dependencies (tests).
pub fn bc_reference(g: &vebo_graph::Graph, source: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![i64::MAX; n];
    let mut order: Vec<VertexId> = Vec::new();
    sigma[source as usize] = 1.0;
    dist[source as usize] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == i64::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
            if dist[v as usize] == dist[u as usize] + 1 {
                sigma[v as usize] += sigma[u as usize];
            }
        }
    }
    let mut dep = vec![0.0f64; n];
    for &u in order.iter().rev() {
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == dist[u as usize] + 1 {
                dep[u as usize] += sigma[u as usize] / sigma[v as usize] * (1.0 + dep[v as usize]);
            }
        }
    }
    dep
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_engine::SystemProfile;
    use vebo_graph::{Dataset, Graph};
    use vebo_partition::EdgeOrder;

    fn assert_close(got: &[f64], want: &[f64], tag: &str) {
        for (v, (a, b)) in got.iter().zip(want).enumerate() {
            assert!((a - b).abs() < 1e-6, "{tag}: v {v}: {a} vs {b}");
        }
    }

    #[test]
    fn diamond_graph_dependencies() {
        // 0 -> {1, 2} -> 3: two shortest paths through 1 and 2.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], true);
        let want = bc_reference(&g, 0);
        assert_eq!(want, vec![3.0, 0.5, 0.5, 0.0]);
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let (got, _) = bc(&Executor::new(SystemProfile::ligra_like()), &pg, 0);
        assert_close(&got, &want, "diamond");
    }

    #[test]
    fn matches_reference_on_all_profiles() {
        let g = Dataset::YahooLike.build(0.02);
        let src = g.vertices().max_by_key(|&v| g.out_degree(v)).unwrap();
        let want = bc_reference(&g, src);
        for profile in [
            SystemProfile::ligra_like(),
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Csr),
        ] {
            let pg = PreparedGraph::new(g.clone(), profile);
            let (got, _) = bc(&Executor::new(profile), &pg, src);
            assert_close(&got, &want, profile.kind.name());
        }
    }

    #[test]
    fn line_graph_dependencies() {
        // Path 0 -> 1 -> 2 -> 3: dep[v] = #descendants on shortest paths.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], true);
        let pg = PreparedGraph::new(g.clone(), SystemProfile::ligra_like());
        let (got, _) = bc(&Executor::new(SystemProfile::ligra_like()), &pg, 0);
        assert_close(&got, &[3.0, 2.0, 1.0, 0.0], "line");
    }

    #[test]
    fn forced_directions_agree() {
        let g = Dataset::YahooLike.build(0.02);
        let src = g.vertices().max_by_key(|&v| g.out_degree(v)).unwrap();
        let pg = PreparedGraph::new(g.clone(), SystemProfile::ligra_like());
        let mut results = Vec::new();
        for force in [
            vebo_engine::Direction::Dense,
            vebo_engine::Direction::Sparse,
        ] {
            let exec = Executor::new(SystemProfile::ligra_like()).with_direction(force);
            let (dep, _) = bc(&exec, &pg, src);
            results.push(dep);
        }
        assert_close(&results[0], &results[1], "forced");
    }
}
