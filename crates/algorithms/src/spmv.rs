//! Sparse matrix-vector multiplication (SPMV in Table II: one iteration,
//! forward, edge-oriented, dense frontier).
//!
//! Computes `y = A x` where `A` is the weighted adjacency matrix
//! (`A[dst][src] = w(src, dst)`).

use crate::common::RunReport;
use vebo_engine::shared::{atomic_f64_vec, snapshot_f64, AtomicF64};
use vebo_engine::{Direction, EdgeOp, Executor, Frontier, PreparedGraph};
use vebo_graph::VertexId;

struct SpmvOp<'a> {
    x: &'a [f64],
    y: &'a [AtomicF64],
}

impl EdgeOp for SpmvOp<'_> {
    fn update(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        let cell = &self.y[dst as usize];
        cell.store(cell.load() + w as f64 * self.x[src as usize]);
        true
    }

    fn update_atomic(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        self.y[dst as usize].fetch_add(w as f64 * self.x[src as usize]);
        true
    }
}

/// One SPMV round. The graph must carry weights
/// (see [`vebo_graph::Graph::with_hash_weights`]).
pub fn spmv(exec: &Executor, pg: &PreparedGraph, x: &[f64]) -> (Vec<f64>, RunReport) {
    let (exec, rec) = exec.recorded();
    let g = pg.graph();
    let n = g.num_vertices();
    assert_eq!(x.len(), n);
    assert!(g.has_weights(), "SPMV needs an edge-weighted graph");
    let y = atomic_f64_vec(n, 0.0);
    let frontier = Frontier::all(n);
    let op = SpmvOp { x, y: &y };
    exec.edge_map_in(pg, &frontier, &op, Direction::Dense);
    (snapshot_f64(&y), rec.take())
}

/// Reference dense mat-vec with identical semantics (tests).
pub fn spmv_reference(g: &vebo_graph::Graph, x: &[f64]) -> Vec<f64> {
    let n = g.num_vertices();
    let mut y = vec![0.0; n];
    for v in g.vertices() {
        let srcs = g.in_neighbors(v);
        let ws = g.csc().weights_of(v);
        for (k, &u) in srcs.iter().enumerate() {
            y[v as usize] += ws[k] as f64 * x[u as usize];
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_engine::SystemProfile;
    use vebo_graph::Dataset;
    use vebo_partition::EdgeOrder;

    fn input(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 31 + 7) % 13) as f64 / 13.0).collect()
    }

    #[test]
    fn matches_reference_on_all_profiles() {
        let g = Dataset::YahooLike.build(0.03).with_hash_weights(8);
        let n = g.num_vertices();
        let x = input(n);
        let want = spmv_reference(&g, &x);
        for profile in [
            SystemProfile::ligra_like(),
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Csr),
            SystemProfile::graphgrind_like(EdgeOrder::Hilbert),
        ] {
            let pg = PreparedGraph::new(g.clone(), profile);
            let (got, _) = spmv(&Executor::new(profile), &pg, &x);
            for v in 0..n {
                assert!(
                    (got[v] - want[v]).abs() < 1e-9,
                    "profile {:?} v {v}",
                    profile.kind
                );
            }
        }
    }

    #[test]
    fn zero_vector_maps_to_zero() {
        let g = Dataset::YahooLike.build(0.02).with_hash_weights(4);
        let n = g.num_vertices();
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let (y, _) = spmv(
            &Executor::new(SystemProfile::ligra_like()),
            &pg,
            &vec![0.0; n],
        );
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn single_round_examines_every_edge() {
        let g = Dataset::YahooLike.build(0.02).with_hash_weights(4);
        let n = g.num_vertices();
        let m = g.num_edges() as u64;
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
        let pg = PreparedGraph::new(g, profile);
        let (_, report) = spmv(&Executor::new(profile), &pg, &input(n));
        assert_eq!(report.total_edges(), m);
        assert_eq!(report.iterations, 1);
    }

    #[test]
    #[should_panic(expected = "weighted")]
    fn unweighted_graph_panics() {
        let g = Dataset::YahooLike.build(0.02);
        let n = g.num_vertices();
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let _ = spmv(
            &Executor::new(SystemProfile::ligra_like()),
            &pg,
            &vec![1.0; n],
        );
    }
}
