//! Single-source shortest paths by frontier-driven Bellman–Ford (BF in
//! Table II: vertex-oriented, forward, all frontier classes).

use crate::common::RunReport;
use vebo_engine::shared::AtomicF64;
use vebo_engine::{EdgeOp, Executor, Frontier, PreparedGraph};
use vebo_graph::VertexId;

struct BfOp {
    dist: Vec<AtomicF64>,
}

impl EdgeOp for BfOp {
    fn update(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        let cand = self.dist[src as usize].load() + w as f64;
        if cand < self.dist[dst as usize].load() {
            self.dist[dst as usize].store(cand);
            true
        } else {
            false
        }
    }

    fn update_atomic(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        let cand = self.dist[src as usize].load() + w as f64;
        self.dist[dst as usize].fetch_min(cand)
    }
}

/// Runs Bellman–Ford from `source` on a weighted graph; returns distances
/// (`f64::INFINITY` for unreachable vertices). Rounds are capped at `n`
/// (no negative weights exist in this workspace, so this never binds).
pub fn bellman_ford(
    exec: &Executor,
    pg: &PreparedGraph,
    source: VertexId,
) -> (Vec<f64>, RunReport) {
    let (exec, rec) = exec.recorded();
    let g = pg.graph();
    assert!(g.has_weights(), "Bellman-Ford needs an edge-weighted graph");
    let n = g.num_vertices();
    let op = BfOp {
        dist: (0..n).map(|_| AtomicF64::new(f64::INFINITY)).collect(),
    };
    op.dist[source as usize].store(0.0);

    let mut frontier = Frontier::single(n, source);
    let mut rounds = 0usize;
    while !frontier.is_empty() && rounds < n {
        let (next, _) = exec.edge_map(pg, &frontier, &op);
        frontier = next;
        rounds += 1;
    }
    (op.dist.into_iter().map(|a| a.load()).collect(), rec.take())
}

/// Reference Dijkstra (tests; weights are positive).
pub fn dijkstra_reference(g: &vebo_graph::Graph, source: VertexId) -> Vec<f64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    dist[source as usize] = 0.0;
    // Order by bit pattern of the distance; valid for non-negative floats.
    let mut heap: BinaryHeap<(Reverse<u64>, VertexId)> = BinaryHeap::new();
    heap.push((Reverse(0), source));
    while let Some((Reverse(dbits), u)) = heap.pop() {
        let d = f64::from_bits(dbits);
        if d > dist[u as usize] {
            continue;
        }
        let ws = g.csr().weights_of(u);
        for (k, &v) in g.out_neighbors(u).iter().enumerate() {
            let cand = d + ws[k] as f64;
            if cand < dist[v as usize] {
                dist[v as usize] = cand;
                heap.push((Reverse(cand.to_bits()), v));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_engine::SystemProfile;
    use vebo_graph::{Dataset, Graph};
    use vebo_partition::EdgeOrder;

    fn source_of(g: &Graph) -> VertexId {
        g.vertices().max_by_key(|&v| g.out_degree(v)).unwrap()
    }

    #[test]
    fn matches_dijkstra_on_all_profiles() {
        let g = Dataset::YahooLike.build(0.03).with_hash_weights(16);
        let src = source_of(&g);
        let want = dijkstra_reference(&g, src);
        for profile in [
            SystemProfile::ligra_like(),
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Csr),
        ] {
            let pg = PreparedGraph::new(g.clone(), profile);
            let (got, _) = bellman_ford(&Executor::new(profile), &pg, src);
            for v in 0..got.len() {
                let (a, b) = (got[v], want[v]);
                assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                    "profile {:?} v {v}: {a} vs {b}",
                    profile.kind
                );
            }
        }
    }

    #[test]
    fn line_graph_distances() {
        let g =
            Graph::from_edges_weighted(4, &[(0, 1), (1, 2), (2, 3)], Some(&[1.0, 2.0, 4.0]), true);
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let (d, report) = bellman_ford(&Executor::new(SystemProfile::ligra_like()), &pg, 0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 7.0]);
        // Three relaxation rounds plus the final empty-producing round.
        assert_eq!(report.iterations, 4);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = Graph::from_edges_weighted(3, &[(0, 1)], Some(&[1.0]), true);
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let (d, _) = bellman_ford(&Executor::new(SystemProfile::ligra_like()), &pg, 0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn takes_shorter_of_two_routes() {
        // 0 -> 1 -> 3 costs 2; 0 -> 2 -> 3 costs 5.
        let g = Graph::from_edges_weighted(
            4,
            &[(0, 1), (1, 3), (0, 2), (2, 3)],
            Some(&[1.0, 1.0, 2.0, 3.0]),
            true,
        );
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let (d, _) = bellman_ford(&Executor::new(SystemProfile::ligra_like()), &pg, 0);
        assert_eq!(d[3], 2.0);
    }
}
