//! Loopy belief propagation (BP in Table II: forward, edge-oriented,
//! dense frontiers, 10 iterations — Polymer's benchmark).
//!
//! Simplification versus textbook pairwise BP: beliefs live on vertices
//! and each iteration every vertex broadcasts a damped influence
//! `coupling(w) * tanh(belief)` to its out-neighbors (a mean-field /
//! vertex-level approximation). Textbook BP keeps one message per
//! directed edge; the vertex-level form has exactly the same traversal
//! and load-distribution structure (read source state, accumulate into
//! destination per edge), which is what the paper's evaluation exercises.
//! Documented as a substitution in DESIGN.md.

use crate::common::RunReport;
use vebo_engine::shared::{atomic_f64_vec, snapshot_f64, AtomicF64};
use vebo_engine::{Direction, EdgeOp, Executor, Frontier, PreparedGraph};
use vebo_graph::graph::mix64;
use vebo_graph::VertexId;

/// Belief-propagation parameters.
#[derive(Clone, Copy, Debug)]
pub struct BpConfig {
    /// Iterations (paper: 10).
    pub iterations: usize,
    /// Maximum edge coupling strength (weights are mapped into
    /// `(0, max_coupling]`).
    pub max_coupling: f64,
}

impl Default for BpConfig {
    fn default() -> Self {
        BpConfig {
            iterations: 10,
            max_coupling: 0.5,
        }
    }
}

struct BpOp<'a> {
    influence: &'a [AtomicF64],
    acc: &'a [AtomicF64],
    scale: f64,
}

impl EdgeOp for BpOp<'_> {
    fn update(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        let cell = &self.acc[dst as usize];
        cell.store(cell.load() + self.scale * w as f64 * self.influence[src as usize].load());
        true
    }
    fn update_atomic(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        self.acc[dst as usize]
            .fetch_add(self.scale * w as f64 * self.influence[src as usize].load());
        true
    }
}

/// Runs vertex-level loopy BP; returns the belief (log-odds) vector.
/// The graph must carry weights, which act as coupling strengths.
pub fn bp(exec: &Executor, pg: &PreparedGraph, cfg: &BpConfig) -> (Vec<f64>, RunReport) {
    let (exec, rec) = exec.recorded();
    let g = pg.graph();
    assert!(g.has_weights(), "BP needs an edge-weighted graph");
    let n = g.num_vertices();
    if n == 0 {
        return (Vec::new(), RunReport::default());
    }
    // Deterministic priors in [-1, 1].
    let prior: Vec<f64> = (0..n)
        .map(|v| (mix64(v as u64 ^ 0xB0) % 2001) as f64 / 1000.0 - 1.0)
        .collect();
    let belief = atomic_f64_vec(n, 0.0);
    for (v, &p) in prior.iter().enumerate() {
        belief[v].store(p);
    }
    let influence = atomic_f64_vec(n, 0.0);
    let acc = atomic_f64_vec(n, 0.0);
    // Weights are hash-valued in [1, W]; normalize into (0, max_coupling].
    let wmax = (0..n as VertexId)
        .flat_map(|v| g.csr().weights_of(v).iter().copied())
        .fold(1.0f32, f32::max) as f64;
    let scale = cfg.max_coupling / wmax;
    let frontier = Frontier::all(n);

    for _ in 0..cfg.iterations {
        exec.vertex_map_all(pg, |v| {
            influence[v as usize].store(belief[v as usize].load().tanh());
            acc[v as usize].store(0.0);
            true
        });

        let op = BpOp {
            influence: &influence,
            acc: &acc,
            scale,
        };
        exec.edge_map_in(pg, &frontier, &op, Direction::Dense);

        exec.vertex_map_all(pg, |v| {
            belief[v as usize].store(prior[v as usize] + acc[v as usize].load());
            true
        });
    }
    (snapshot_f64(&belief), rec.take())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_engine::SystemProfile;
    use vebo_graph::Dataset;
    use vebo_partition::EdgeOrder;

    fn graph() -> vebo_graph::Graph {
        Dataset::YahooLike.build(0.03).with_hash_weights(8)
    }

    #[test]
    fn profiles_agree_closely() {
        let g = graph();
        let mut results = Vec::new();
        for profile in [
            SystemProfile::ligra_like(),
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Hilbert),
        ] {
            let pg = PreparedGraph::new(g.clone(), profile);
            let (b, _) = bp(&Executor::new(profile), &pg, &BpConfig::default());
            results.push(b);
        }
        for r in &results[1..] {
            for (a, b) in r.iter().zip(&results[0]) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn beliefs_are_bounded() {
        let g = graph();
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap() as f64;
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let (b, _) = bp(
            &Executor::new(SystemProfile::ligra_like()),
            &pg,
            &BpConfig::default(),
        );
        let bound = 1.0 + 0.5 * max_in;
        assert!(b.iter().all(|&x| x.abs() <= bound + 1e-9));
    }

    #[test]
    fn isolated_vertex_keeps_prior() {
        let g = vebo_graph::Graph::from_edges_weighted(3, &[(0, 1)], Some(&[2.0]), true)
            .with_hash_weights(4);
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let (b, _) = bp(
            &Executor::new(SystemProfile::ligra_like()),
            &pg,
            &BpConfig::default(),
        );
        let expected_prior = (mix64(2u64 ^ 0xB0) % 2001) as f64 / 1000.0 - 1.0;
        assert!((b[2] - expected_prior).abs() < 1e-12);
    }

    #[test]
    fn runs_requested_iterations_all_dense() {
        let g = graph();
        let m = g.num_edges() as u64;
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
        let pg = PreparedGraph::new(g, profile);
        let cfg = BpConfig {
            iterations: 4,
            ..Default::default()
        };
        let (_, report) = bp(&Executor::new(profile), &pg, &cfg);
        assert_eq!(report.iterations, 4);
        assert_eq!(report.total_edges(), 4 * m);
    }
}
