//! Incremental connected components over a mutating graph.
//!
//! Label-propagation CC ([`crate::cc::cc`]) has a useful monotonicity:
//! its fixed point assigns every vertex the minimum label among the
//! vertices that can reach it, and edge *insertions* only ever lower
//! labels. [`IncrementalCc`] exploits that: an insert `(u, v)` is
//! repaired exactly by re-propagating `label[u]` forward from `v` (both
//! directions on undirected graphs) — a worklist walk touching only the
//! vertices whose label actually changes, typically a vanishing fraction
//! of the graph. Deletions can split components, which label lowering
//! cannot express, so they fall back to a full recompute — on the
//! overlay-aware prepared handle, so the recompute observes buffered
//! mutations without waiting for a compaction.
//!
//! This mirrors the serving story of the dynamic-graph layer: cheap
//! monotone repair on the common path (inserts), with the engine's
//! existing kernels as the safety net for the hard case.

use crate::cc::cc;
use crate::common::RunReport;
use vebo_engine::{Executor, PreparedGraph};
use vebo_graph::{DeltaOverlay, Graph, VertexId};

/// Maintains connected-component labels across edge mutations.
#[derive(Clone, Debug)]
pub struct IncrementalCc {
    labels: Vec<u32>,
    repairs: u64,
    recomputes: u64,
}

impl IncrementalCc {
    /// Starts from already-computed labels (e.g. the serving engine's
    /// initial [`crate::cc::cc`] pass).
    pub fn new(labels: Vec<u32>) -> IncrementalCc {
        IncrementalCc {
            labels,
            repairs: 0,
            recomputes: 0,
        }
    }

    /// Computes the initial labels with a full propagation pass.
    pub fn from_graph(exec: &Executor, pg: &PreparedGraph) -> IncrementalCc {
        let (labels, _) = cc(exec, pg);
        IncrementalCc::new(labels)
    }

    /// The current component labels.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Insert repairs performed (each may touch many vertices).
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Full recomputes performed (the delete fallback).
    pub fn recomputes(&self) -> u64 {
        self.recomputes
    }

    /// Repairs the labels after inserting edge `(u, v)`. `overlay` is
    /// the delta overlay of the epoch that already *contains* the
    /// insert, so the repair walk traverses the post-insert adjacency;
    /// `None` means the snapshot alone is current. Returns the number of
    /// vertices whose label changed (0 when the edge connects vertices
    /// already sharing a component label).
    pub fn on_insert(
        &mut self,
        g: &Graph,
        overlay: Option<&DeltaOverlay>,
        u: VertexId,
        v: VertexId,
    ) -> usize {
        let mut changed = self.repair_from(g, overlay, u, v);
        if !g.is_directed() {
            changed += self.repair_from(g, overlay, v, u);
        }
        if changed > 0 {
            self.repairs += 1;
        }
        changed
    }

    /// Propagates `label[src]` to `dst` and onward along out-edges while
    /// it lowers labels. Exact for the propagation fixed point: the new
    /// arc makes every ancestor of `src` an ancestor of everything
    /// reachable from `dst`, and `label[src]` is already the minimum
    /// over those ancestors.
    fn repair_from(
        &mut self,
        g: &Graph,
        overlay: Option<&DeltaOverlay>,
        src: VertexId,
        dst: VertexId,
    ) -> usize {
        let cand = self.labels[src as usize];
        if cand >= self.labels[dst as usize] {
            return 0;
        }
        self.labels[dst as usize] = cand;
        let mut changed = 1usize;
        let mut work = vec![dst];
        while let Some(x) = work.pop() {
            let lx = self.labels[x as usize];
            let neighbors = match overlay {
                Some(ov) => ov.out_neighbors(g, x),
                None => g.out_neighbors(x),
            };
            for &y in neighbors {
                if lx < self.labels[y as usize] {
                    self.labels[y as usize] = lx;
                    changed += 1;
                    work.push(y);
                }
            }
        }
        changed
    }

    /// The deletion fallback (and general resync): recomputes labels
    /// from scratch on `pg` — overlay-aware, so a dirty epoch's buffered
    /// mutations are observed.
    pub fn recompute(&mut self, exec: &Executor, pg: &PreparedGraph) -> RunReport {
        let (labels, report) = cc(exec, pg);
        self.labels = labels;
        self.recomputes += 1;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_engine::SystemProfile;
    use vebo_graph::{mix64, DynamicGraph, Graph};

    fn exec() -> Executor {
        Executor::new(SystemProfile::ligra_like())
    }

    fn static_labels(g: &Graph) -> Vec<u32> {
        let pg = PreparedGraph::new(g.clone(), SystemProfile::ligra_like());
        cc(&exec(), &pg).0
    }

    #[test]
    fn insert_merges_two_components() {
        // Two triangles; insert a bridge.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)], false);
        let dg = DynamicGraph::new(g);
        let pg = PreparedGraph::for_pin(&dg.pin(), SystemProfile::ligra_like());
        let mut inc = IncrementalCc::from_graph(&exec(), &pg);
        assert_eq!(inc.labels()[3..6], [3, 3, 3]);

        dg.insert_edge(2, 3).unwrap();
        let pin = dg.pin();
        let changed = inc.on_insert(pin.graph(), Some(pin.overlay()), 2, 3);
        assert_eq!(changed, 3, "exactly the second triangle relabels");
        assert_eq!(inc.labels(), &[0, 0, 0, 0, 0, 0]);
        assert_eq!(inc.repairs(), 1);

        dg.compact();
        assert_eq!(inc.labels(), static_labels(&dg.snapshot()).as_slice());
    }

    #[test]
    fn insert_within_component_is_free() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], false);
        let dg = DynamicGraph::new(g);
        let pg = PreparedGraph::for_pin(&dg.pin(), SystemProfile::ligra_like());
        let mut inc = IncrementalCc::from_graph(&exec(), &pg);
        dg.insert_edge(0, 3).unwrap();
        let pin = dg.pin();
        assert_eq!(inc.on_insert(pin.graph(), Some(pin.overlay()), 0, 3), 0);
        assert_eq!(inc.repairs(), 0);
    }

    #[test]
    fn random_insert_stream_tracks_static_cc() {
        let n = 64usize;
        let dg = DynamicGraph::new(Graph::from_edges(n, &[], false));
        let pg = PreparedGraph::for_pin(&dg.pin(), SystemProfile::ligra_like());
        let mut inc = IncrementalCc::from_graph(&exec(), &pg);
        let mut x = 7u64;
        for _ in 0..80 {
            x = mix64(x);
            let u = (x % n as u64) as VertexId;
            x = mix64(x);
            let v = (x % n as u64) as VertexId;
            dg.insert_edge(u, v).unwrap();
            let pin = dg.pin();
            inc.on_insert(pin.graph(), Some(pin.overlay()), u, v);
        }
        dg.compact();
        assert_eq!(inc.labels(), static_labels(&dg.snapshot()).as_slice());
    }

    #[test]
    fn delete_falls_back_to_recompute() {
        // A path 0-1-2; deleting (1, 2) splits the component.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], false);
        let dg = DynamicGraph::new(g);
        let profile = SystemProfile::ligra_like();
        let mut inc =
            IncrementalCc::from_graph(&exec(), &PreparedGraph::for_pin(&dg.pin(), profile));
        assert_eq!(inc.labels(), &[0, 0, 0]);

        dg.delete_edge(1, 2).unwrap();
        // Recompute on the dirty epoch: the overlay hides the deleted
        // edge before any compaction happens.
        let pg = PreparedGraph::for_pin(&dg.pin(), profile);
        inc.recompute(&exec(), &pg);
        assert_eq!(inc.labels(), &[0, 0, 2]);
        assert_eq!(inc.recomputes(), 1);

        dg.compact();
        assert_eq!(inc.labels(), static_labels(&dg.snapshot()).as_slice());
    }

    #[test]
    fn directed_insert_repair_is_exact() {
        // 0 -> 1 -> 2 and isolated chain 3 -> 4; insert 2 -> 3.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)], true);
        let dg = DynamicGraph::new(g);
        let profile = SystemProfile::ligra_like();
        let mut inc =
            IncrementalCc::from_graph(&exec(), &PreparedGraph::for_pin(&dg.pin(), profile));
        assert_eq!(inc.labels(), &[0, 0, 0, 3, 3]);
        dg.insert_edge(2, 3).unwrap();
        let pin = dg.pin();
        inc.on_insert(pin.graph(), Some(pin.overlay()), 2, 3);
        dg.compact();
        assert_eq!(inc.labels(), static_labels(&dg.snapshot()).as_slice());
        assert_eq!(inc.labels(), &[0, 0, 0, 0, 0]);
    }
}
