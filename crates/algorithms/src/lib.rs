//! # vebo-algorithms
//!
//! The eight graph analytics kernels of the paper's evaluation (Table II),
//! implemented on top of `vebo-engine`'s edgemap/vertexmap primitives:
//!
//! | code | algorithm | direction | orientation |
//! |---|---|---|---|
//! | BC | betweenness centrality (Brandes) | B | V |
//! | CC | connected components (label propagation) | B | E |
//! | PR | PageRank, power method, 10 iterations | B | E |
//! | BFS | breadth-first search | B | V |
//! | PRD | PageRank with delta updates | F | E |
//! | SPMV | sparse matrix-vector product, 1 iteration | F | E |
//! | BF | Bellman–Ford SSSP | F | V |
//! | BP | loopy belief propagation, 10 iterations | F | E |
//!
//! Every algorithm takes a [`vebo_engine::Executor`] (which owns the
//! threading mode, NUMA placement, scheduling policy, and
//! instrumentation) plus a prepared graph, and returns a
//! [`common::RunReport`] with per-task timings, which the scheduling
//! simulator converts into simulated 48-thread runtimes for the Table III
//! harness.

#![warn(missing_docs)]

pub mod bc;
pub mod bellman_ford;
pub mod bfs;
pub mod bp;
pub mod cc;
pub mod common;
pub mod incremental;
pub mod pagerank;
pub mod pagerank_delta;
pub mod runner;
pub mod spmv;

pub use common::{AlgorithmKind, RunReport};
pub use incremental::IncrementalCc;
pub use runner::{default_source, needs_weights, run_algorithm};
