//! PageRank by the power method (PR in Table II: backward traversal,
//! edge-oriented, dense frontiers; 10 iterations like the paper).

use crate::common::RunReport;
use vebo_engine::shared::{atomic_f64_vec, snapshot_f64, AtomicF64};
use vebo_engine::{Direction, EdgeOp, Executor, Frontier, PreparedGraph};
use vebo_graph::VertexId;

/// PageRank parameters.
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Damping factor (0.85, the classical choice).
    pub damping: f64,
    /// Power-method iterations (paper: 10).
    pub iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            iterations: 10,
        }
    }
}

struct PrOp<'a> {
    /// `rank[u] / outdeg(u)` snapshot of the current iteration.
    contrib: &'a [AtomicF64],
    /// Accumulator for the next iteration's ranks.
    acc: &'a [AtomicF64],
}

impl EdgeOp for PrOp<'_> {
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        // Pull mode: one thread owns dst, a relaxed read-modify-write is
        // race-free.
        let a = &self.acc[dst as usize];
        a.store(a.load() + self.contrib[src as usize].load());
        true
    }

    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.acc[dst as usize].fetch_add(self.contrib[src as usize].load());
        true
    }
}

/// Runs PageRank; returns the rank vector (indexed by vertex id) and the
/// measurement report.
pub fn pagerank(
    exec: &Executor,
    pg: &PreparedGraph,
    cfg: &PageRankConfig,
) -> (Vec<f64>, RunReport) {
    let (exec, rec) = exec.recorded();
    let g = pg.graph();
    let n = g.num_vertices();
    if n == 0 {
        return (Vec::new(), RunReport::default());
    }
    let rank = atomic_f64_vec(n, 1.0 / n as f64);
    let contrib = atomic_f64_vec(n, 0.0);
    let acc = atomic_f64_vec(n, 0.0);
    let frontier = Frontier::all(n);
    let base = (1.0 - cfg.damping) / n as f64;

    for _ in 0..cfg.iterations {
        // contrib[u] = rank[u] / outdeg(u); acc reset.
        exec.vertex_map_all(pg, |v| {
            let d = g.out_degree(v);
            let c = if d > 0 {
                rank[v as usize].load() / d as f64
            } else {
                0.0
            };
            contrib[v as usize].store(c);
            acc[v as usize].store(0.0);
            true
        });

        let op = PrOp {
            contrib: &contrib,
            acc: &acc,
        };
        exec.edge_map_in(pg, &frontier, &op, Direction::Dense);

        // rank[v] = base + damping * acc[v].
        exec.vertex_map_all(pg, |v| {
            rank[v as usize].store(base + cfg.damping * acc[v as usize].load());
            true
        });
    }
    (snapshot_f64(&rank), rec.take())
}

/// Reference sequential PageRank with identical semantics (tests).
pub fn pagerank_reference(g: &vebo_graph::Graph, cfg: &PageRankConfig) -> Vec<f64> {
    let n = g.num_vertices();
    let mut rank = vec![1.0 / n as f64; n];
    let base = (1.0 - cfg.damping) / n as f64;
    for _ in 0..cfg.iterations {
        let mut next = vec![base; n];
        for u in g.vertices() {
            let d = g.out_degree(u);
            if d == 0 {
                continue;
            }
            let c = cfg.damping * rank[u as usize] / d as f64;
            for &v in g.out_neighbors(u) {
                next[v as usize] += c;
            }
        }
        rank = next;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_engine::SystemProfile;
    use vebo_graph::{Dataset, Graph};
    use vebo_partition::EdgeOrder;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    #[test]
    fn matches_reference_on_all_profiles() {
        let g = Dataset::YahooLike.build(0.03);
        let cfg = PageRankConfig {
            iterations: 5,
            ..Default::default()
        };
        let want = pagerank_reference(&g, &cfg);
        for profile in [
            SystemProfile::ligra_like(),
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Csr),
            SystemProfile::graphgrind_like(EdgeOrder::Hilbert),
        ] {
            let pg = PreparedGraph::new(g.clone(), profile);
            let (got, report) = pagerank(&Executor::new(profile), &pg, &cfg);
            assert!(close(&got, &want), "profile {:?}", profile.kind);
            assert_eq!(report.iterations, 5);
        }
    }

    #[test]
    fn rank_is_invariant_under_reordering() {
        // PageRank of vertex v in G equals PageRank of S[v] in S(G).
        let g = Dataset::LiveJournalLike.build(0.02);
        let cfg = PageRankConfig {
            iterations: 4,
            ..Default::default()
        };
        use vebo_graph::VertexOrdering;
        let perm = vebo_core::Vebo::new(16).compute(&g);
        let h = perm.apply_graph(&g);
        let exec = Executor::new(SystemProfile::ligra_like());
        let pg_g = PreparedGraph::new(g.clone(), SystemProfile::ligra_like());
        let pg_h = PreparedGraph::new(h, SystemProfile::ligra_like());
        let (rg, _) = pagerank(&exec, &pg_g, &cfg);
        let (rh, _) = pagerank(&exec, &pg_h, &cfg);
        for v in g.vertices() {
            let diff = (rg[v as usize] - rh[perm.new_id(v) as usize]).abs();
            assert!(diff < 1e-9, "v = {v}, diff = {diff}");
        }
    }

    #[test]
    fn known_small_graph() {
        // Two-vertex cycle: symmetric ranks.
        let g = Graph::from_edges(2, &[(0, 1), (1, 0)], true);
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let exec = Executor::new(SystemProfile::ligra_like());
        let (r, _) = pagerank(&exec, &pg, &PageRankConfig::default());
        assert!((r[0] - 0.5).abs() < 1e-9);
        assert!((r[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ranks_sum_to_at_most_one() {
        // Dangling vertices leak mass (no redistribution), so the sum is
        // <= 1 and > 0.
        let g = Dataset::TwitterLike.build(0.03);
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let exec = Executor::new(SystemProfile::ligra_like());
        let (r, _) = pagerank(&exec, &pg, &PageRankConfig::default());
        let sum: f64 = r.iter().sum();
        assert!(sum > 0.1 && sum <= 1.0 + 1e-9, "sum = {sum}");
    }

    #[test]
    fn report_counts_all_edges_per_iteration() {
        let g = Dataset::YahooLike.build(0.03);
        let m = g.num_edges() as u64;
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
        let pg = PreparedGraph::new(g, profile);
        let cfg = PageRankConfig {
            iterations: 3,
            ..Default::default()
        };
        let (_, report) = pagerank(&Executor::new(profile), &pg, &cfg);
        assert_eq!(report.total_edges(), 3 * m);
        // PR frontiers are always dense (Table II row "PR ... d").
        assert!(report
            .observed_classes()
            .iter()
            .all(|c| *c == vebo_engine::DensityClass::Dense));
    }
}
