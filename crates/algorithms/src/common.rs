//! Shared algorithm metadata: the [`AlgorithmKind`] registry mirroring
//! Table II. The per-run measurement type ([`RunReport`]) moved into the
//! engine's instrumentation layer — every algorithm accumulates it
//! through a recorded [`vebo_engine::Executor`] instead of hand-rolled
//! bookkeeping; it is re-exported here for continuity.

pub use vebo_engine::RunReport;

/// The eight algorithms of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Betweenness centrality.
    Bc,
    /// Connected components via label propagation.
    Cc,
    /// PageRank (power method).
    Pr,
    /// Breadth-first search.
    Bfs,
    /// PageRankDelta.
    Prd,
    /// Sparse matrix-vector multiplication.
    Spmv,
    /// Single-source shortest paths (Bellman-Ford).
    Bf,
    /// Loopy belief propagation.
    Bp,
}

impl AlgorithmKind {
    /// All algorithms in Table II order.
    pub const ALL: [AlgorithmKind; 8] = [
        AlgorithmKind::Bc,
        AlgorithmKind::Cc,
        AlgorithmKind::Pr,
        AlgorithmKind::Bfs,
        AlgorithmKind::Prd,
        AlgorithmKind::Spmv,
        AlgorithmKind::Bf,
        AlgorithmKind::Bp,
    ];

    /// Table II code.
    pub fn code(self) -> &'static str {
        match self {
            AlgorithmKind::Bc => "BC",
            AlgorithmKind::Cc => "CC",
            AlgorithmKind::Pr => "PR",
            AlgorithmKind::Bfs => "BFS",
            AlgorithmKind::Prd => "PRD",
            AlgorithmKind::Spmv => "SPMV",
            AlgorithmKind::Bf => "BF",
            AlgorithmKind::Bp => "BP",
        }
    }

    /// Parses a Table II code.
    pub fn from_code(code: &str) -> Option<AlgorithmKind> {
        Self::ALL
            .iter()
            .copied()
            .find(|k| k.code().eq_ignore_ascii_case(code))
    }

    /// Traversal direction per Table II: `'B'` (backward/pull-leaning) or
    /// `'F'` (forward/push-leaning).
    pub fn direction(self) -> char {
        match self {
            AlgorithmKind::Bc | AlgorithmKind::Cc | AlgorithmKind::Pr | AlgorithmKind::Bfs => 'B',
            AlgorithmKind::Prd | AlgorithmKind::Spmv | AlgorithmKind::Bf | AlgorithmKind::Bp => 'F',
        }
    }

    /// Orientation per Table II: vertex-oriented (`'V'`, work scales with
    /// vertices) or edge-oriented (`'E'`, work scales with edges).
    pub fn orientation(self) -> char {
        match self {
            AlgorithmKind::Bc | AlgorithmKind::Bfs | AlgorithmKind::Bf => 'V',
            _ => 'E',
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_engine::Scheduling;

    #[test]
    fn table2_metadata_matches_paper() {
        use AlgorithmKind::*;
        assert_eq!(Bc.direction(), 'B');
        assert_eq!(Bc.orientation(), 'V');
        assert_eq!(Cc.direction(), 'B');
        assert_eq!(Cc.orientation(), 'E');
        assert_eq!(Pr.direction(), 'B');
        assert_eq!(Pr.orientation(), 'E');
        assert_eq!(Bfs.orientation(), 'V');
        assert_eq!(Prd.direction(), 'F');
        assert_eq!(Spmv.orientation(), 'E');
        assert_eq!(Bf.direction(), 'F');
        assert_eq!(Bf.orientation(), 'V');
        assert_eq!(Bp.direction(), 'F');
        assert_eq!(Bp.orientation(), 'E');
    }

    #[test]
    fn codes_roundtrip() {
        for k in AlgorithmKind::ALL {
            assert_eq!(AlgorithmKind::from_code(k.code()), Some(k));
            assert_eq!(AlgorithmKind::from_code(&k.code().to_lowercase()), Some(k));
        }
        assert_eq!(AlgorithmKind::from_code("nope"), None);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = RunReport::default();
        assert_eq!(r.sequential_nanos(), 0);
        assert_eq!(r.total_edges(), 0);
        assert_eq!(r.simulated_work(48, Scheduling::Static), 0.0);
        assert!(r.observed_classes().is_empty());
    }
}
