//! Shared algorithm-run bookkeeping: the [`RunReport`] every algorithm
//! returns, and the [`AlgorithmKind`] registry mirroring Table II.

use vebo_engine::frontier::DensityClass;
use vebo_engine::{EdgeMapReport, MakespanReport, Scheduling, VertexMapReport};

/// Everything measured while running one algorithm on one prepared graph.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Number of edgemap rounds executed.
    pub iterations: usize,
    /// One report per `edge_map` call, in execution order.
    pub edge_maps: Vec<EdgeMapReport>,
    /// One report per `vertex_map` call.
    pub vertex_maps: Vec<VertexMapReport>,
    /// Density class of the input frontier of each edgemap (Table II's
    /// "F" column).
    pub frontier_classes: Vec<DensityClass>,
}

impl RunReport {
    /// Records one edgemap round.
    pub fn push_edge(&mut self, class: DensityClass, report: EdgeMapReport) {
        self.iterations += 1;
        self.frontier_classes.push(class);
        self.edge_maps.push(report);
    }

    /// Records one vertexmap pass.
    pub fn push_vertex(&mut self, report: VertexMapReport) {
        self.vertex_maps.push(report);
    }

    /// Total sequential time across all operations (nanoseconds).
    pub fn sequential_nanos(&self) -> u64 {
        self.edge_maps.iter().map(|r| r.total_nanos()).sum::<u64>()
            + self
                .vertex_maps
                .iter()
                .map(|r| r.total_nanos())
                .sum::<u64>()
    }

    /// Simulated parallel runtime on `threads` workers under `scheduling`:
    /// the sum over operations of each operation's makespan (operations
    /// are separated by barriers in all three systems).
    pub fn simulated_nanos(&self, threads: usize, scheduling: Scheduling) -> f64 {
        let em: f64 = self
            .edge_maps
            .iter()
            .map(|r| r.makespan(threads, scheduling).makespan)
            .sum();
        let vm: f64 = self
            .vertex_maps
            .iter()
            .map(|r| {
                let costs: Vec<f64> = r.tasks.iter().map(|t| t.nanos as f64).collect();
                vebo_engine::simulate(&costs, threads, scheduling).makespan
            })
            .sum();
        em + vm
    }

    /// Deterministic work-model variant of [`RunReport::simulated_nanos`]
    /// (task cost = edges + destination vertices, the paper's joint cost
    /// drivers); noise-free, used by tests.
    pub fn simulated_work(&self, threads: usize, scheduling: Scheduling) -> f64 {
        let em: f64 = self
            .edge_maps
            .iter()
            .map(|r| r.makespan_by_work(threads, scheduling).makespan)
            .sum();
        let vm: f64 = self
            .vertex_maps
            .iter()
            .map(|r| {
                let costs: Vec<f64> = r.tasks.iter().map(|t| t.vertices as f64).collect();
                vebo_engine::simulate(&costs, threads, scheduling).makespan
            })
            .sum();
        em + vm
    }

    /// Total edges examined over the whole run.
    pub fn total_edges(&self) -> u64 {
        self.edge_maps.iter().map(|r| r.total_edges()).sum()
    }

    /// Distinct density classes observed, in first-seen order — the
    /// "d/m/s" annotations of Table II.
    pub fn observed_classes(&self) -> Vec<DensityClass> {
        let mut seen = Vec::new();
        for &c in &self.frontier_classes {
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        seen
    }

    /// Aggregated makespan report of the whole run under measured costs.
    pub fn aggregate_makespan(&self, threads: usize, scheduling: Scheduling) -> MakespanReport {
        let mut per_thread = vec![0.0; threads];
        for r in &self.edge_maps {
            let m = r.makespan(threads, scheduling);
            for (t, c) in m.per_thread.iter().enumerate() {
                per_thread[t] += c;
            }
        }
        let makespan = self.simulated_nanos(threads, scheduling);
        let total_work = per_thread.iter().sum();
        MakespanReport {
            per_thread,
            makespan,
            total_work,
        }
    }
}

/// The eight algorithms of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Betweenness centrality.
    Bc,
    /// Connected components via label propagation.
    Cc,
    /// PageRank (power method).
    Pr,
    /// Breadth-first search.
    Bfs,
    /// PageRankDelta.
    Prd,
    /// Sparse matrix-vector multiplication.
    Spmv,
    /// Single-source shortest paths (Bellman-Ford).
    Bf,
    /// Loopy belief propagation.
    Bp,
}

impl AlgorithmKind {
    /// All algorithms in Table II order.
    pub const ALL: [AlgorithmKind; 8] = [
        AlgorithmKind::Bc,
        AlgorithmKind::Cc,
        AlgorithmKind::Pr,
        AlgorithmKind::Bfs,
        AlgorithmKind::Prd,
        AlgorithmKind::Spmv,
        AlgorithmKind::Bf,
        AlgorithmKind::Bp,
    ];

    /// Table II code.
    pub fn code(self) -> &'static str {
        match self {
            AlgorithmKind::Bc => "BC",
            AlgorithmKind::Cc => "CC",
            AlgorithmKind::Pr => "PR",
            AlgorithmKind::Bfs => "BFS",
            AlgorithmKind::Prd => "PRD",
            AlgorithmKind::Spmv => "SPMV",
            AlgorithmKind::Bf => "BF",
            AlgorithmKind::Bp => "BP",
        }
    }

    /// Parses a Table II code.
    pub fn from_code(code: &str) -> Option<AlgorithmKind> {
        Self::ALL
            .iter()
            .copied()
            .find(|k| k.code().eq_ignore_ascii_case(code))
    }

    /// Traversal direction per Table II: `'B'` (backward/pull-leaning) or
    /// `'F'` (forward/push-leaning).
    pub fn direction(self) -> char {
        match self {
            AlgorithmKind::Bc | AlgorithmKind::Cc | AlgorithmKind::Pr | AlgorithmKind::Bfs => 'B',
            AlgorithmKind::Prd | AlgorithmKind::Spmv | AlgorithmKind::Bf | AlgorithmKind::Bp => 'F',
        }
    }

    /// Orientation per Table II: vertex-oriented (`'V'`, work scales with
    /// vertices) or edge-oriented (`'E'`, work scales with edges).
    pub fn orientation(self) -> char {
        match self {
            AlgorithmKind::Bc | AlgorithmKind::Bfs | AlgorithmKind::Bf => 'V',
            _ => 'E',
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_metadata_matches_paper() {
        use AlgorithmKind::*;
        assert_eq!(Bc.direction(), 'B');
        assert_eq!(Bc.orientation(), 'V');
        assert_eq!(Cc.direction(), 'B');
        assert_eq!(Cc.orientation(), 'E');
        assert_eq!(Pr.direction(), 'B');
        assert_eq!(Pr.orientation(), 'E');
        assert_eq!(Bfs.orientation(), 'V');
        assert_eq!(Prd.direction(), 'F');
        assert_eq!(Spmv.orientation(), 'E');
        assert_eq!(Bf.direction(), 'F');
        assert_eq!(Bf.orientation(), 'V');
        assert_eq!(Bp.direction(), 'F');
        assert_eq!(Bp.orientation(), 'E');
    }

    #[test]
    fn codes_roundtrip() {
        for k in AlgorithmKind::ALL {
            assert_eq!(AlgorithmKind::from_code(k.code()), Some(k));
            assert_eq!(AlgorithmKind::from_code(&k.code().to_lowercase()), Some(k));
        }
        assert_eq!(AlgorithmKind::from_code("nope"), None);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = RunReport::default();
        assert_eq!(r.sequential_nanos(), 0);
        assert_eq!(r.total_edges(), 0);
        assert_eq!(r.simulated_work(48, Scheduling::Static), 0.0);
        assert!(r.observed_classes().is_empty());
    }
}
