//! Uniform dispatch over the eight algorithms — what the experiment
//! harnesses use to fill Table III's cells.

use crate::bc::bc;
use crate::bellman_ford::bellman_ford;
use crate::bfs::bfs;
use crate::bp::{bp, BpConfig};
use crate::cc::cc;
use crate::common::{AlgorithmKind, RunReport};
use crate::pagerank::{pagerank, PageRankConfig};
use crate::pagerank_delta::{pagerank_delta, PageRankDeltaConfig};
use crate::spmv::spmv;
use vebo_engine::{Executor, PreparedGraph};
use vebo_graph::{Graph, VertexId};

/// The traversal source used for source-rooted algorithms: the vertex
/// with the highest out-degree (deterministic, always reaches a large
/// fraction of a scale-free graph).
pub fn default_source(g: &Graph) -> VertexId {
    g.vertices()
        .max_by_key(|&v| (g.out_degree(v), std::cmp::Reverse(v)))
        .unwrap_or(0)
}

/// Whether `kind` needs an edge-weighted graph.
pub fn needs_weights(kind: AlgorithmKind) -> bool {
    matches!(
        kind,
        AlgorithmKind::Spmv | AlgorithmKind::Bf | AlgorithmKind::Bp
    )
}

/// Runs one algorithm with the paper's standard configuration (PR/BP: 10
/// iterations; PRD: eps 1e-2; BFS/BC/BF from the default source) and
/// returns its measurement report.
pub fn run_algorithm(kind: AlgorithmKind, exec: &Executor, pg: &PreparedGraph) -> RunReport {
    let g = pg.graph();
    if needs_weights(kind) {
        assert!(g.has_weights(), "{} needs a weighted graph", kind.code());
    }
    let src = default_source(g);
    match kind {
        AlgorithmKind::Pr => pagerank(exec, pg, &PageRankConfig::default()).1,
        AlgorithmKind::Prd => pagerank_delta(exec, pg, &PageRankDeltaConfig::default()).1,
        AlgorithmKind::Bfs => bfs(exec, pg, src).1,
        AlgorithmKind::Bc => bc(exec, pg, src).1,
        AlgorithmKind::Cc => cc(exec, pg).1,
        AlgorithmKind::Spmv => {
            let x: Vec<f64> = (0..g.num_vertices())
                .map(|i| ((i % 17) as f64) / 17.0)
                .collect();
            spmv(exec, pg, &x).1
        }
        AlgorithmKind::Bf => bellman_ford(exec, pg, src).1,
        AlgorithmKind::Bp => bp(exec, pg, &BpConfig::default()).1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_engine::SystemProfile;
    use vebo_graph::Dataset;
    use vebo_partition::EdgeOrder;

    #[test]
    fn all_algorithms_run_on_all_profiles() {
        let base = Dataset::YahooLike.build(0.02);
        for profile in [
            SystemProfile::ligra_like(),
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Csr),
        ] {
            for kind in AlgorithmKind::ALL {
                let g = if needs_weights(kind) {
                    base.clone().with_hash_weights(16)
                } else {
                    base.clone()
                };
                let pg = PreparedGraph::new(g, profile);
                let report = run_algorithm(kind, &Executor::new(profile), &pg);
                assert!(
                    report.iterations > 0,
                    "{} on {:?}",
                    kind.code(),
                    profile.kind
                );
                assert!(
                    report.total_edges() > 0,
                    "{} on {:?}",
                    kind.code(),
                    profile.kind
                );
            }
        }
    }

    #[test]
    fn default_source_is_max_out_degree() {
        let g = Dataset::TwitterLike.build(0.02);
        let s = default_source(&g);
        let dmax = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        assert_eq!(g.out_degree(s), dmax);
    }

    #[test]
    fn weight_requirements() {
        assert!(needs_weights(AlgorithmKind::Spmv));
        assert!(needs_weights(AlgorithmKind::Bf));
        assert!(needs_weights(AlgorithmKind::Bp));
        assert!(!needs_weights(AlgorithmKind::Pr));
        assert!(!needs_weights(AlgorithmKind::Bfs));
    }
}
