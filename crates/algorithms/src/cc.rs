//! Connected components by label propagation (CC in Table II:
//! edge-oriented, backward, dense/medium/sparse frontiers).
//!
//! Each vertex starts with its own id as label; edgemap propagates the
//! minimum label along edges until no label changes. On symmetric graphs
//! this converges to the weakly-connected components. (The paper's §V-B
//! notes CC is the one algorithm that *benefits* from reordering on road
//! networks, thanks to accelerated label propagation.)

use crate::common::RunReport;
use std::sync::atomic::{AtomicU32, Ordering};
use vebo_engine::{EdgeOp, Executor, PreparedGraph};
use vebo_graph::VertexId;

struct CcOp {
    label: Vec<AtomicU32>,
}

impl CcOp {
    /// Atomic min; true if lowered.
    fn lower(&self, dst: VertexId, cand: u32) -> bool {
        let cell = &self.label[dst as usize];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            if cand >= cur {
                return false;
            }
            match cell.compare_exchange_weak(cur, cand, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }
}

impl EdgeOp for CcOp {
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        let cand = self.label[src as usize].load(Ordering::Relaxed);
        let cur = self.label[dst as usize].load(Ordering::Relaxed);
        if cand < cur {
            self.label[dst as usize].store(cand, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        let cand = self.label[src as usize].load(Ordering::Relaxed);
        self.lower(dst, cand)
    }
}

/// Runs label-propagation components; returns the final label array.
pub fn cc(exec: &Executor, pg: &PreparedGraph) -> (Vec<u32>, RunReport) {
    let (exec, rec) = exec.recorded();
    let n = pg.graph().num_vertices();
    let op = CcOp {
        label: (0..n as u32).map(AtomicU32::new).collect(),
    };

    // Start from all vertices; each round keeps only vertices whose label
    // changed (they must re-broadcast).
    let (mut frontier, _) = exec.vertex_map_all(pg, |_| true);
    while !frontier.is_empty() {
        let (next, _) = exec.edge_map(pg, &frontier, &op);
        frontier = next;
    }
    (
        op.label.into_iter().map(|a| a.into_inner()).collect(),
        rec.take(),
    )
}

/// One round of synchronous propagation: reads only the labels frozen at
/// the start of the round.
struct CcSyncOp {
    prev: Vec<u32>,
    next: Vec<AtomicU32>,
}

impl CcSyncOp {
    fn lower(&self, dst: VertexId, cand: u32) -> bool {
        let cell = &self.next[dst as usize];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            if cand >= cur {
                return false;
            }
            match cell.compare_exchange_weak(cur, cand, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }
}

impl EdgeOp for CcSyncOp {
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.lower(dst, self.prev[src as usize])
    }

    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.lower(dst, self.prev[src as usize])
    }
}

/// Synchronous label propagation: each round only propagates labels
/// computed in the *previous* round (the Pregel/BSP semantics). The
/// paper's §V-B explains why the default [`cc`] is faster: asynchronous
/// propagation forwards labels within a round, and vertex reordering
/// amplifies that acceleration. This variant exists to quantify the gap
/// (see the `ablation` harness).
pub fn cc_sync(exec: &Executor, pg: &PreparedGraph) -> (Vec<u32>, RunReport) {
    let (exec, rec) = exec.recorded();
    let n = pg.graph().num_vertices();
    let mut labels: Vec<u32> = (0..n as u32).collect();

    let (mut frontier, _) = exec.vertex_map_all(pg, |_| true);
    while !frontier.is_empty() {
        let op = CcSyncOp {
            prev: labels.clone(),
            next: labels.iter().map(|&l| AtomicU32::new(l)).collect(),
        };
        let (next_frontier, _) = exec.edge_map(pg, &frontier, &op);
        labels = op.next.into_iter().map(|a| a.into_inner()).collect();
        frontier = next_frontier;
    }
    (labels, rec.take())
}

/// Reference components via union-find (tests; symmetric graphs).
pub fn cc_reference(g: &vebo_graph::Graph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for u in g.vertices() {
        for &v in g.out_neighbors(u) {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru.max(rv) as usize] = ru.min(rv);
            }
        }
    }
    // Normalize labels to the minimum vertex id in each component.
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_engine::SystemProfile;
    use vebo_graph::{Dataset, Graph};
    use vebo_partition::EdgeOrder;

    #[test]
    fn matches_union_find_on_symmetric_graphs() {
        for d in [Dataset::UsaRoadLike, Dataset::YahooLike] {
            let g = d.build(0.03);
            let want = cc_reference(&g);
            let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
            let (got, _) = cc(&Executor::new(SystemProfile::ligra_like()), &pg);
            assert_eq!(got, want, "{}", d.name());
        }
    }

    #[test]
    fn profiles_agree() {
        let g = Dataset::YahooLike.build(0.03);
        let mut results = Vec::new();
        for profile in [
            SystemProfile::ligra_like(),
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Hilbert),
        ] {
            let pg = PreparedGraph::new(g.clone(), profile);
            let (labels, _) = cc(&Executor::new(profile), &pg);
            results.push(labels);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn two_triangles_have_two_labels() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)], false);
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let (labels, _) = cc(&Executor::new(SystemProfile::ligra_like()), &pg);
        assert_eq!(labels[0..3], [0, 0, 0]);
        assert_eq!(labels[3..6], [3, 3, 3]);
    }

    #[test]
    fn labels_are_component_minima() {
        let g = Dataset::UsaRoadLike.build(0.02);
        let pg = PreparedGraph::new(g.clone(), SystemProfile::ligra_like());
        let (labels, _) = cc(&Executor::new(SystemProfile::ligra_like()), &pg);
        for v in g.vertices() {
            assert!(labels[v as usize] <= v);
        }
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0)], true);
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let (labels, _) = cc(&Executor::new(SystemProfile::ligra_like()), &pg);
        assert_eq!(labels[2], 2);
    }

    #[test]
    fn sync_matches_async_labels() {
        for d in [Dataset::UsaRoadLike, Dataset::YahooLike] {
            let g = d.build(0.03);
            let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
            let exec = Executor::new(SystemProfile::ligra_like());
            let (a, _) = cc(&exec, &pg);
            let (s, _) = cc_sync(&exec, &pg);
            assert_eq!(a, s, "{}", d.name());
        }
    }

    #[test]
    fn sync_takes_diameter_rounds_on_a_path() {
        // Sync propagation moves a label one hop per round: a 40-vertex
        // path needs ~40 rounds. Async forwards labels within the round,
        // so the ascending-id sweep finishes in a handful.
        let n = 40;
        let edges: Vec<(vebo_graph::VertexId, vebo_graph::VertexId)> =
            (0..n - 1).map(|v| (v, v + 1)).collect();
        let g = Graph::from_edges(n as usize, &edges, false);
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let exec = Executor::new(SystemProfile::ligra_like());
        let (labels_s, rep_s) = cc_sync(&exec, &pg);
        let (labels_a, rep_a) = cc(&exec, &pg);
        assert_eq!(labels_s, labels_a);
        assert!(labels_s.iter().all(|&l| l == 0));
        assert!(
            rep_s.iterations >= n as usize - 1,
            "sync rounds {} for path of {n}",
            rep_s.iterations
        );
        assert!(
            rep_a.iterations * 3 < rep_s.iterations,
            "async {} vs sync {} rounds",
            rep_a.iterations,
            rep_s.iterations
        );
    }

    #[test]
    fn async_never_needs_more_rounds_than_sync() {
        for d in [Dataset::UsaRoadLike, Dataset::OrkutLike] {
            let g = d.build(0.05);
            let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
            let exec = Executor::new(SystemProfile::ligra_like());
            let (_, rep_a) = cc(&exec, &pg);
            let (_, rep_s) = cc_sync(&exec, &pg);
            assert!(
                rep_a.iterations <= rep_s.iterations,
                "{}: async {} sync {}",
                d.name(),
                rep_a.iterations,
                rep_s.iterations
            );
        }
    }
}
