//! Property-based tests: every engine-based algorithm must agree with its
//! sequential reference on arbitrary graphs.

use proptest::prelude::*;
use vebo_algorithms::bellman_ford::{bellman_ford, dijkstra_reference};
use vebo_algorithms::bfs::{bfs, bfs_reference, levels_from_parents};
use vebo_algorithms::cc::{cc, cc_reference};
use vebo_algorithms::pagerank::{pagerank, pagerank_reference, PageRankConfig};
use vebo_algorithms::spmv::{spmv, spmv_reference};
use vebo_engine::{ExecMode, Executor, PreparedGraph, SystemProfile};
use vebo_graph::graph::mix64;
use vebo_graph::{Graph, VertexId};
use vebo_partition::EdgeOrder;

fn arb_graph(directed: bool) -> impl Strategy<Value = Graph> {
    (2usize..50, 1usize..250, any::<u64>()).prop_map(move |(n, m, seed)| {
        let mut x = seed;
        let mut next = || {
            x = mix64(x);
            x
        };
        let edges: Vec<(VertexId, VertexId)> = (0..m)
            .map(|_| {
                (
                    (next() % n as u64) as VertexId,
                    (next() % n as u64) as VertexId,
                )
            })
            .collect();
        Graph::from_edges(n, &edges, directed)
    })
}

fn profile_of(pick: u8) -> SystemProfile {
    match pick % 3 {
        0 => SystemProfile::ligra_like(),
        1 => SystemProfile::polymer_like(),
        _ => SystemProfile::graphgrind_like(EdgeOrder::Csr),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pagerank_matches_reference(g in arb_graph(true), pick in any::<u8>()) {
        let cfg = PageRankConfig { iterations: 4, ..Default::default() };
        let want = pagerank_reference(&g, &cfg);
        let profile = profile_of(pick);
        let pg = PreparedGraph::new(g.clone(), profile);
        let (got, _) = pagerank(&Executor::new(profile), &pg, &cfg);
        for v in 0..got.len() {
            prop_assert!((got[v] - want[v]).abs() < 1e-9, "v {}: {} vs {}", v, got[v], want[v]);
        }
    }

    #[test]
    fn bfs_matches_reference(g in arb_graph(true), pick in any::<u8>(), src_pick in any::<u64>()) {
        let src = (src_pick % g.num_vertices() as u64) as VertexId;
        let want = bfs_reference(&g, src);
        let profile = profile_of(pick);
        let pg = PreparedGraph::new(g.clone(), profile);
        let (parents, _) = bfs(&Executor::new(profile), &pg, src);
        let levels = levels_from_parents(&parents, src);
        prop_assert_eq!(levels, want);
    }

    #[test]
    fn cc_matches_union_find(g in arb_graph(false), pick in any::<u8>()) {
        let want = cc_reference(&g);
        let profile = profile_of(pick);
        let pg = PreparedGraph::new(g.clone(), profile);
        let (got, _) = cc(&Executor::new(profile), &pg);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bellman_ford_matches_dijkstra(g in arb_graph(true), pick in any::<u8>(), src_pick in any::<u64>()) {
        let g = g.with_hash_weights(16);
        let src = (src_pick % g.num_vertices() as u64) as VertexId;
        let want = dijkstra_reference(&g, src);
        let profile = profile_of(pick);
        let pg = PreparedGraph::new(g.clone(), profile);
        let (got, _) = bellman_ford(&Executor::new(profile), &pg, src);
        for v in 0..got.len() {
            let (a, b) = (got[v], want[v]);
            prop_assert!(
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                "v {}: {} vs {}", v, a, b
            );
        }
    }

    #[test]
    fn spmv_matches_dense_matvec(g in arb_graph(true), pick in any::<u8>()) {
        let g = g.with_hash_weights(8);
        let n = g.num_vertices();
        let x: Vec<f64> = (0..n).map(|i| (mix64(i as u64) % 100) as f64 / 100.0).collect();
        let want = spmv_reference(&g, &x);
        let profile = profile_of(pick);
        let pg = PreparedGraph::new(g.clone(), profile);
        let (got, _) = spmv(&Executor::new(profile), &pg, &x);
        for v in 0..n {
            prop_assert!((got[v] - want[v]).abs() < 1e-9);
        }
    }

    /// Executor mode equivalence: sequential and parallel execution
    /// produce identical results for every algorithm on every profile
    /// (deterministic digests: parents become levels, floats compare
    /// within fp tolerance for the commutative-accumulation kernels).
    #[test]
    fn executor_sequential_matches_parallel(g in arb_graph(true), pick in any::<u8>()) {
        use vebo_algorithms::{needs_weights, run_algorithm, AlgorithmKind};
        let profile = profile_of(pick);
        for kind in AlgorithmKind::ALL {
            let g = if needs_weights(kind) {
                g.clone().with_hash_weights(8)
            } else {
                g.clone()
            };
            let pg = PreparedGraph::builder(g).profile(profile).build().unwrap();
            let digest = |mode: ExecMode| {
                let exec = Executor::new(profile).with_mode(mode);
                let report = run_algorithm(kind, &exec, &pg);
                (report.iterations, report.total_edges())
            };
            // Per-algorithm result equality is covered by the *_matches_*
            // properties (profiles agree) plus the engine's mode-equivalence
            // property; here we assert the run *shape* is mode-invariant
            // for all 8 algorithms end to end.
            prop_assert_eq!(
                digest(ExecMode::Sequential),
                digest(ExecMode::Parallel),
                "{} on {:?}", kind.code(), profile.kind
            );
        }
    }

    /// Reordering invariance: BFS reachable-set size is preserved under
    /// VEBO for any graph.
    #[test]
    fn bfs_reach_invariant_under_vebo(g in arb_graph(true), src_pick in any::<u64>()) {
        use vebo_graph::VertexOrdering;
        let src = (src_pick % g.num_vertices() as u64) as VertexId;
        let want = bfs_reference(&g, src).iter().filter(|&&d| d != u32::MAX).count();
        let perm = vebo_core::Vebo::new(8).compute(&g);
        let h = perm.apply_graph(&g);
        let got = bfs_reference(&h, perm.new_id(src)).iter().filter(|&&d| d != u32::MAX).count();
        prop_assert_eq!(got, want);
    }
}
