//! Property-based tests for the VEBO algorithm.

use proptest::prelude::*;
use vebo_core::theory::trace_phase1;
use vebo_core::{ArgMinStrategy, Vebo, VeboVariant};
use vebo_graph::gen::powerlaw::{zipf_directed, ZipfGraphConfig};
use vebo_graph::{Graph, VertexId};

/// Arbitrary directed multigraph as an edge list over `n` vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..80, 0usize..400, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut x = seed;
        let mut next = || {
            x = vebo_graph::graph::mix64(x);
            x
        };
        let edges: Vec<(VertexId, VertexId)> = (0..m)
            .map(|_| {
                (
                    (next() % n as u64) as VertexId,
                    (next() % n as u64) as VertexId,
                )
            })
            .collect();
        Graph::from_edges(n, &edges, true)
    })
}

/// Zipf graphs satisfying (roughly) the theorem preconditions.
fn arb_zipf_graph() -> impl Strategy<Value = (Graph, usize)> {
    (500usize..4000, 8usize..64, 0u64..50, 2usize..16).prop_map(|(n, ranks, seed, p)| {
        let g = zipf_directed(&ZipfGraphConfig {
            num_vertices: n,
            num_ranks: ranks,
            s: 1.0,
            out_skew: 1.0,
            zero_out_fraction: 0.0,
            shuffle_ids: false,
            seed,
        });
        (g, p)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The permutation is always a bijection and partition counts always
    /// sum to the graph totals — for arbitrary graphs, power-law or not.
    #[test]
    fn totals_conserved((g, p) in arb_graph().prop_flat_map(|g| (Just(g), 1usize..20))) {
        let r = Vebo::new(p).compute_full(&g);
        prop_assert_eq!(r.vertex_counts.iter().sum::<usize>(), g.num_vertices());
        prop_assert_eq!(r.edge_counts.iter().sum::<u64>(), g.num_edges() as u64);
        prop_assert_eq!(r.permutation.len(), g.num_vertices());
        // Boundaries are consistent with vertex counts.
        for q in 0..p {
            prop_assert_eq!(r.starts[q + 1] - r.starts[q], r.vertex_counts[q]);
        }
    }

    /// Partitions are contiguous ranges of new ids.
    #[test]
    fn contiguity((g, p) in arb_graph().prop_flat_map(|g| (Just(g), 1usize..20))) {
        let r = Vebo::new(p).compute_full(&g);
        for v in g.vertices() {
            let new = r.permutation.new_id(v) as usize;
            let q = r.assignment[v as usize] as usize;
            prop_assert!(r.starts[q] <= new && new < r.starts[q + 1]);
        }
    }

    /// Strict and blocked variants always agree on per-partition counts.
    #[test]
    fn blocked_equals_strict_counts((g, p) in arb_graph().prop_flat_map(|g| (Just(g), 1usize..20))) {
        let s = Vebo::new(p).with_variant(VeboVariant::Strict).compute_full(&g);
        let b = Vebo::new(p).with_variant(VeboVariant::Blocked).compute_full(&g);
        prop_assert_eq!(s.edge_counts, b.edge_counts);
        prop_assert_eq!(s.vertex_counts, b.vertex_counts);
    }

    /// Heap and linear-scan argmin make identical decisions.
    #[test]
    fn argmin_strategies_agree((g, p) in arb_graph().prop_flat_map(|g| (Just(g), 1usize..20))) {
        let a = Vebo::new(p).with_argmin(ArgMinStrategy::Heap).compute_full(&g);
        let b = Vebo::new(p).with_argmin(ArgMinStrategy::LinearScan).compute_full(&g);
        prop_assert_eq!(a.assignment, b.assignment);
    }

    /// Lemma 1 is distribution-free: it holds for every graph.
    #[test]
    fn lemma1_universal((g, p) in arb_graph().prop_flat_map(|g| (Just(g), 2usize..20))) {
        for step in trace_phase1(&g, p) {
            prop_assert!(step.satisfies_lemma1(), "{:?}", step);
        }
    }

    /// Graham-style bound: the final edge imbalance never exceeds the
    /// maximum degree (weak corollary of Lemma 1, for arbitrary graphs).
    #[test]
    fn imbalance_bounded_by_max_degree((g, p) in arb_graph().prop_flat_map(|g| (Just(g), 2usize..20))) {
        let r = Vebo::new(p).compute_full(&g);
        let delta = r.edge_counts.iter().max().unwrap() - r.edge_counts.iter().min().unwrap();
        let max_deg = g.vertices().map(|v| g.in_degree(v) as u64).max().unwrap_or(0);
        prop_assert!(delta <= max_deg.max(1));
    }

    /// Theorem 1 on its intended domain: Zipf graphs meeting the
    /// preconditions achieve edge imbalance <= 1.
    #[test]
    fn theorem1_on_zipf((g, p) in arb_zipf_graph()) {
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap_or(0);
        let n_ranks = max_in + 1;
        prop_assume!(g.num_edges() >= n_ranks * (p - 1) && p < n_ranks);
        let r = Vebo::new(p).compute_full(&g);
        let delta = r.edge_counts.iter().max().unwrap() - r.edge_counts.iter().min().unwrap();
        prop_assert!(delta <= 1, "Delta(n) = {delta}");
    }

    /// Theorem 2 on its intended domain: vertex imbalance <= 1 when the
    /// graph has enough vertices relative to N * H_{N,s}.
    #[test]
    fn theorem2_on_zipf((g, p) in arb_zipf_graph()) {
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap_or(0);
        let n_ranks = max_in + 1;
        let h = vebo_graph::gen::zipf::generalized_harmonic(n_ranks, 1.0);
        prop_assume!(g.num_vertices() as f64 >= n_ranks as f64 * h);
        prop_assume!(g.num_edges() >= n_ranks * (p - 1) && p < n_ranks);
        let r = Vebo::new(p).compute_full(&g);
        let dv = r.vertex_counts.iter().max().unwrap() - r.vertex_counts.iter().min().unwrap();
        prop_assert!(dv <= 1, "delta(n) = {dv}");
    }

    /// Reordering is an isomorphism: the permuted graph has the same
    /// degree multiset and edge count.
    #[test]
    fn reorder_is_isomorphism(g in arb_graph()) {
        let perm = Vebo::new(7).compute_full(&g).permutation;
        let h = perm.apply_graph(&g);
        prop_assert_eq!(h.num_edges(), g.num_edges());
        let mut dg: Vec<usize> = g.vertices().map(|v| g.in_degree(v)).collect();
        let mut dh: Vec<usize> = h.vertices().map(|v| h.in_degree(v)).collect();
        dg.sort_unstable();
        dh.sort_unstable();
        prop_assert_eq!(dg, dh);
    }
}
