//! Algorithm 2 of the paper: the VEBO reordering algorithm.
//!
//! Three phases (§III-B):
//!
//! 1. vertices with non-zero in-degree are placed in order of decreasing
//!    in-degree, each onto the partition with the fewest edges so far
//!    (multiprocessor-scheduling style, Graham 1969);
//! 2. zero-in-degree vertices are placed onto the partition with the
//!    fewest *vertices*, repairing any vertex imbalance phase 1 left;
//! 3. vertices receive new sequence numbers such that each partition is a
//!    contiguous range of new ids.
//!
//! Two variants are provided:
//!
//! * [`VeboVariant::Strict`] — the literal Algorithm 2;
//! * [`VeboVariant::Blocked`] (default) — the locality-preserving
//!   modification of §III-D: per degree class, the algorithm only *counts*
//!   how many vertices go to each partition, then assigns blocks of
//!   consecutive original ids to the same partition. Edge and vertex counts
//!   per partition are identical to the strict variant; only the mapping of
//!   individual vertices within a degree class changes, preserving any
//!   spatial locality of the input order.

use crate::heap::{LinearArgMin, MinLoadHeap};
use rayon::prelude::*;
use vebo_graph::degree::vertices_by_decreasing_in_degree;
use vebo_graph::par::{weighted_ranges, SharedSlice};
use vebo_graph::{Graph, ParMode, Permutation, VertexId, VertexOrdering};

/// Which variant of Algorithm 2 to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VeboVariant {
    /// Literal Algorithm 2; scatters consecutive input ids across
    /// partitions (the drawback noted in §III-D).
    Strict,
    /// Locality-preserving block assignment (§III-D); the paper uses this
    /// for all experiments, and so do we.
    #[default]
    Blocked,
}

/// How the `arg min` in the placement loops is computed. `Heap` is the
/// `O(log P)` structure the complexity claim relies on; `LinearScan` is the
/// `O(P)` ablation alternative.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ArgMinStrategy {
    /// `O(log P)` min-heap (the complexity the paper claims).
    #[default]
    Heap,
    /// `O(P)` linear scan (ablation comparator).
    LinearScan,
}

/// The VEBO ordering algorithm, parameterized by partition count.
#[derive(Clone, Debug)]
pub struct Vebo {
    num_partitions: usize,
    variant: VeboVariant,
    argmin: ArgMinStrategy,
    mode: ParMode,
}

impl Vebo {
    /// VEBO with the paper's default variant (blocked) and a heap argmin.
    pub fn new(num_partitions: usize) -> Vebo {
        Vebo {
            num_partitions,
            variant: VeboVariant::default(),
            argmin: ArgMinStrategy::default(),
            mode: ParMode::default(),
        }
    }

    /// Selects the strict or blocked variant.
    pub fn with_variant(mut self, variant: VeboVariant) -> Vebo {
        self.variant = variant;
        self
    }

    /// Selects the argmin implementation (ablation knob).
    pub fn with_argmin(mut self, argmin: ArgMinStrategy) -> Vebo {
        self.argmin = argmin;
        self
    }

    /// Selects how the O(n) scatter stages execute — the blocked
    /// variant's segment scatter and the strict variant's phase-3
    /// sequence-number scatter (the heap placement itself is inherently
    /// sequential).
    pub fn with_mode(mut self, mode: ParMode) -> Vebo {
        self.mode = mode;
        self
    }

    /// Number of partitions `P`.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Runs all three phases and returns the full result (permutation plus
    /// per-partition counts and boundaries).
    pub fn compute_full(&self, g: &Graph) -> VeboResult {
        assert!(self.num_partitions >= 1, "need at least one partition");
        let order = vertices_by_decreasing_in_degree(g);
        let num_nonzero = order.iter().take_while(|&&v| g.in_degree(v) > 0).count();

        match self.variant {
            VeboVariant::Strict => self.compute_strict(g, &order, num_nonzero),
            VeboVariant::Blocked => self.compute_blocked(g, &order, num_nonzero),
        }
    }

    /// The literal Algorithm 2: per-vertex placement, then the phase-3
    /// scatter.
    fn compute_strict(&self, g: &Graph, order: &[VertexId], num_nonzero: usize) -> VeboResult {
        let p = self.num_partitions;
        let n = g.num_vertices();
        let mut assignment = vec![0u32; n];
        let mut vertex_counts = vec![0usize; p];
        let mut edge_counts = vec![0u64; p];
        self.place_strict(
            g,
            order,
            num_nonzero,
            &mut assignment,
            &mut vertex_counts,
            &mut edge_counts,
        );

        // Phase 3: sequence numbers. Partition `q` receives the contiguous
        // new-id range starting at the prefix sum of vertex counts; within
        // a partition, vertices appear in placement order (decreasing
        // degree, ascending original id within a degree class) — this is
        // what makes the inner edge-loop branch predictable (§V-E).
        let starts = prefix_starts(&vertex_counts, n);
        let new_ids = if self.mode.go_parallel(n) {
            strict_scatter_parallel(order, &assignment, &starts, p)
        } else {
            strict_scatter_sequential(order, &assignment, &starts, p)
        };

        let permutation = Permutation::from_new_ids(new_ids).expect("VEBO produces a bijection");
        VeboResult {
            permutation,
            assignment,
            vertex_counts,
            edge_counts,
            starts,
        }
    }

    /// The §III-D blocked variant. The heap only decides *how many*
    /// vertices of each degree class each partition receives; that count
    /// loop is the inherently sequential `O(n log P)` core. Everything
    /// else — per-partition totals, the `a[v]` assignment scatter, and the
    /// phase-3 sequence numbers — is derived from the resulting
    /// [`Segment`] list with prefix sums and executed in parallel over
    /// segment chunks balanced by vertex count.
    fn compute_blocked(&self, g: &Graph, order: &[VertexId], num_nonzero: usize) -> VeboResult {
        let p = self.num_partitions;
        let n = g.num_vertices();
        let segments = self.place_blocked_segments(g, order, num_nonzero);

        let mut vertex_counts = vec![0usize; p];
        let mut edge_counts = vec![0u64; p];
        for s in &segments {
            vertex_counts[s.partition as usize] += s.len;
            edge_counts[s.partition as usize] += s.len as u64 * s.degree;
        }
        let starts = prefix_starts(&vertex_counts, n);

        // Per-segment new-id base: a running cursor per partition, walked
        // in segment order (segments of one partition appear in placement
        // order, so this reproduces the strict phase-3 walk exactly).
        let mut cursor: Vec<usize> = starts[..p].to_vec();
        let seg_new_start: Vec<usize> = segments
            .iter()
            .map(|s| {
                let at = cursor[s.partition as usize];
                cursor[s.partition as usize] += s.len;
                at
            })
            .collect();

        // Scatter assignment and sequence numbers. Segments partition the
        // `order` index space and `order` is a permutation of the
        // vertices, so all writes are disjoint.
        let mut assignment = vec![0u32; n];
        let mut new_ids = vec![0 as VertexId; n];
        if self.mode.go_parallel(n) && !segments.is_empty() {
            let mut cum = Vec::with_capacity(segments.len() + 1);
            cum.push(0usize);
            for s in &segments {
                cum.push(cum.last().unwrap() + s.len);
            }
            let ranges = weighted_ranges(&cum, rayon::current_num_threads());
            let ashared = SharedSlice::new(&mut assignment);
            let nshared = SharedSlice::new(&mut new_ids);
            let (ranges, segments, seg_new_start) = (&ranges, &segments, &seg_new_start);
            (0..ranges.len()).into_par_iter().for_each(|ri| {
                for si in ranges[ri].clone() {
                    let s = &segments[si];
                    for i in 0..s.len {
                        let v = order[s.start + i] as usize;
                        // SAFETY: segments cover disjoint `order` ranges
                        // and `order` is a permutation, so each vertex is
                        // written exactly once.
                        unsafe { ashared.write(v, s.partition) };
                        unsafe { nshared.write(v, (seg_new_start[si] + i) as VertexId) };
                    }
                }
            });
        } else {
            for (si, s) in segments.iter().enumerate() {
                for i in 0..s.len {
                    let v = order[s.start + i] as usize;
                    assignment[v] = s.partition;
                    new_ids[v] = (seg_new_start[si] + i) as VertexId;
                }
            }
        }

        let permutation = Permutation::from_new_ids(new_ids).expect("VEBO produces a bijection");
        VeboResult {
            permutation,
            assignment,
            vertex_counts,
            edge_counts,
            starts,
        }
    }

    /// Phases 1 and 2 of the literal Algorithm 2.
    fn place_strict(
        &self,
        g: &Graph,
        order: &[VertexId],
        num_nonzero: usize,
        assignment: &mut [u32],
        vertex_counts: &mut [usize],
        edge_counts: &mut [u64],
    ) {
        let p = self.num_partitions;
        let mut argmin = ArgMin::new(self.argmin, p);
        for &v in &order[..num_nonzero] {
            let d = g.in_degree(v) as u64;
            let q = argmin.assign_to_min(d);
            assignment[v as usize] = q;
            vertex_counts[q as usize] += 1;
            edge_counts[q as usize] += d;
        }
        let loads: Vec<u64> = vertex_counts.iter().map(|&u| u as u64).collect();
        let mut vheap = ArgMin::with_loads(self.argmin, &loads);
        for &v in &order[num_nonzero..] {
            let q = vheap.assign_to_min(1);
            assignment[v as usize] = q;
            vertex_counts[q as usize] += 1;
        }
    }

    /// Phases 1 and 2 with the §III-D block modification, expressed as
    /// segments: the heap decides *how many* vertices of each degree class
    /// each partition receives; blocks of consecutive original ids are
    /// then assigned per partition. `order` is id-stable within a class
    /// (counting sort), so each run is ascending in original id.
    fn place_blocked_segments(
        &self,
        g: &Graph,
        order: &[VertexId],
        num_nonzero: usize,
    ) -> Vec<Segment> {
        let p = self.num_partitions;
        let mut argmin = ArgMin::new(self.argmin, p);
        let mut class_counts = vec![0usize; p];
        let mut vertex_counts = vec![0u64; p];
        let mut segments = Vec::new();

        // Phase 1 over runs of equal degree.
        let mut t = 0usize;
        while t < num_nonzero {
            let d = g.in_degree(order[t]) as u64;
            let mut end = t + 1;
            while end < num_nonzero && g.in_degree(order[end]) as u64 == d {
                end += 1;
            }
            class_counts[..].fill(0);
            for _ in t..end {
                class_counts[argmin.assign_to_min(d) as usize] += 1;
            }
            let mut cursor = t;
            for (q, &c) in class_counts.iter().enumerate() {
                if c > 0 {
                    segments.push(Segment {
                        start: cursor,
                        len: c,
                        partition: q as u32,
                        degree: d,
                    });
                    vertex_counts[q] += c as u64;
                    cursor += c;
                }
            }
            t = end;
        }

        // Phase 2: the zero-degree class, balanced on vertex counts.
        if num_nonzero < order.len() {
            let mut vheap = ArgMin::with_loads(self.argmin, &vertex_counts);
            class_counts[..].fill(0);
            for _ in num_nonzero..order.len() {
                class_counts[vheap.assign_to_min(1) as usize] += 1;
            }
            let mut cursor = num_nonzero;
            for (q, &c) in class_counts.iter().enumerate() {
                if c > 0 {
                    segments.push(Segment {
                        start: cursor,
                        len: c,
                        partition: q as u32,
                        degree: 0,
                    });
                    cursor += c;
                }
            }
        }
        segments
    }
}

/// A contiguous run of `order` indices placed on one partition: the unit
/// of work for the blocked variant's parallel scatter stages.
#[derive(Clone, Copy, Debug)]
struct Segment {
    /// First index into the degree-sorted `order` array.
    start: usize,
    /// Number of vertices in the block.
    len: usize,
    /// Destination partition.
    partition: u32,
    /// In-degree of every vertex in the block (one segment never spans
    /// degree classes).
    degree: u64,
}

/// The reference phase-3 cursor walk of the literal Algorithm 2: one
/// running cursor per partition, vertices visited in placement order.
fn strict_scatter_sequential(
    order: &[VertexId],
    assignment: &[u32],
    starts: &[usize],
    p: usize,
) -> Vec<VertexId> {
    let mut cursor: Vec<usize> = starts[..p].to_vec();
    let mut new_ids = vec![0 as VertexId; assignment.len()];
    for &v in order {
        let q = assignment[v as usize] as usize;
        new_ids[v as usize] = cursor[q] as VertexId;
        cursor[q] += 1;
    }
    new_ids
}

/// Parallel phase-3 scatter for the strict variant, bit-identical to the
/// cursor walk: `new_id[v] = starts[a[v]] + |{ j < i : a[order[j]] = a[v] }|`
/// where `i` is `v`'s position in `order`. Computed as a chunked counting
/// pass (per-chunk per-partition histograms), an exclusive prefix over
/// chunks, then a parallel scatter with chunk-local cursors — the same
/// two-pass shape as the parallel counting-sort CSR build.
fn strict_scatter_parallel(
    order: &[VertexId],
    assignment: &[u32],
    starts: &[usize],
    p: usize,
) -> Vec<VertexId> {
    let n = order.len();
    let chunks = (rayon::current_num_threads() * 4).clamp(1, n.max(1));
    let ranges: Vec<std::ops::Range<usize>> = (0..chunks)
        .map(|c| (c * n / chunks)..((c + 1) * n / chunks))
        .collect();

    // Pass 1: per-chunk counts of vertices per partition.
    let counts: Vec<Vec<usize>> = {
        let ranges = &ranges;
        (0..chunks)
            .into_par_iter()
            .map(|c| {
                let mut count = vec![0usize; p];
                for &v in &order[ranges[c].clone()] {
                    count[assignment[v as usize] as usize] += 1;
                }
                count
            })
            .collect()
    };

    // Exclusive prefix over chunks: where each chunk's run of partition
    // `q` begins inside `q`'s new-id range.
    let mut chunk_base = vec![vec![0usize; p]; chunks];
    let mut cursor: Vec<usize> = starts[..p].to_vec();
    for c in 0..chunks {
        chunk_base[c].copy_from_slice(&cursor);
        for q in 0..p {
            cursor[q] += counts[c][q];
        }
    }

    // Pass 2: scatter with chunk-local cursors. Chunks cover disjoint
    // `order` ranges and `order` is a permutation, so every vertex's
    // new-id slot is written exactly once.
    let mut new_ids = vec![0 as VertexId; n];
    let shared = SharedSlice::new(&mut new_ids);
    {
        let (ranges, chunk_base) = (&ranges, &chunk_base);
        (0..chunks).into_par_iter().for_each(|c| {
            let mut local = chunk_base[c].clone();
            for &v in &order[ranges[c].clone()] {
                let q = assignment[v as usize] as usize;
                // SAFETY: `order` is a permutation, so index `v` is
                // written by exactly one chunk, exactly once.
                unsafe { shared.write(v as usize, local[q] as VertexId) };
                local[q] += 1;
            }
        });
    }
    new_ids
}

/// Prefix-sums per-partition vertex counts into phase-3 boundaries.
fn prefix_starts(vertex_counts: &[usize], n: usize) -> Vec<usize> {
    let mut starts = Vec::with_capacity(vertex_counts.len() + 1);
    let mut acc = 0usize;
    for &u in vertex_counts {
        starts.push(acc);
        acc += u;
    }
    starts.push(acc);
    debug_assert_eq!(acc, n);
    starts
}

impl VertexOrdering for Vebo {
    fn name(&self) -> &str {
        "VEBO"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        self.compute_full(g).permutation
    }
}

/// Either argmin backend behind one interface.
enum ArgMin {
    Heap(MinLoadHeap),
    Linear(LinearArgMin),
}

impl ArgMin {
    fn new(strategy: ArgMinStrategy, p: usize) -> ArgMin {
        match strategy {
            ArgMinStrategy::Heap => ArgMin::Heap(MinLoadHeap::new(p)),
            ArgMinStrategy::LinearScan => ArgMin::Linear(LinearArgMin::new(p)),
        }
    }

    fn with_loads(strategy: ArgMinStrategy, loads: &[u64]) -> ArgMin {
        match strategy {
            ArgMinStrategy::Heap => ArgMin::Heap(MinLoadHeap::with_loads(loads)),
            ArgMinStrategy::LinearScan => ArgMin::Linear(LinearArgMin::from_loads(loads.to_vec())),
        }
    }

    #[inline]
    fn assign_to_min(&mut self, amount: u64) -> u32 {
        match self {
            ArgMin::Heap(h) => h.assign_to_min(amount),
            ArgMin::Linear(l) => l.assign_to_min(amount),
        }
    }
}

/// Output of [`Vebo::compute_full`].
#[derive(Clone, Debug)]
pub struct VeboResult {
    /// `S[v]`: old id to new id.
    pub permutation: Permutation,
    /// `a[v]`: partition of each *old* vertex id.
    pub assignment: Vec<u32>,
    /// `u[p]`: vertices per partition.
    pub vertex_counts: Vec<usize>,
    /// `w[p]`: in-edges per partition.
    pub edge_counts: Vec<u64>,
    /// Partition boundaries in the *new* id space (length `P + 1`):
    /// partition `p` holds new ids `starts[p]..starts[p + 1]`.
    pub starts: Vec<usize>,
}

impl VeboResult {
    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.vertex_counts.len()
    }

    /// Partition of a *new* vertex id (binary search over boundaries).
    pub fn partition_of_new(&self, new_id: VertexId) -> u32 {
        let i = self.starts.partition_point(|&s| s <= new_id as usize);
        (i - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::Dataset;

    /// The 6-vertex example graph of Figure 3 (in-degrees 1,2,2,2,4,3).
    fn fig3_graph() -> Graph {
        Graph::from_edges(
            6,
            &[
                (2, 0),
                (5, 1),
                (3, 1),
                (1, 2),
                (5, 2),
                (4, 3),
                (5, 3),
                (0, 4),
                (1, 4),
                (2, 4),
                (3, 4),
                (4, 5),
                (2, 5),
                (1, 5),
            ],
            true,
        )
    }

    #[test]
    fn paper_figure3_strict() {
        // Walked through in the paper: placement order 4,5,1,2,3,0;
        // partition 0 gets {4,2,0} (7 edges), partition 1 gets {5,1,3}
        // (7 edges); each partition has 3 destination vertices.
        let g = fig3_graph();
        let r = Vebo::new(2)
            .with_variant(VeboVariant::Strict)
            .compute_full(&g);
        assert_eq!(r.edge_counts, vec![7, 7]);
        assert_eq!(r.vertex_counts, vec![3, 3]);
        assert_eq!(r.assignment, vec![0, 1, 0, 1, 0, 1]);
        // Phase 3 sequence numbers: S = [2, 4, 1, 5, 0, 3].
        assert_eq!(r.permutation.as_slice(), &[2, 4, 1, 5, 0, 3]);
        assert_eq!(r.starts, vec![0, 3, 6]);
    }

    #[test]
    fn blocked_matches_strict_counts_on_fig3() {
        let g = fig3_graph();
        let s = Vebo::new(2)
            .with_variant(VeboVariant::Strict)
            .compute_full(&g);
        let b = Vebo::new(2)
            .with_variant(VeboVariant::Blocked)
            .compute_full(&g);
        assert_eq!(s.edge_counts, b.edge_counts);
        assert_eq!(s.vertex_counts, b.vertex_counts);
    }

    #[test]
    fn result_partition_lookup() {
        let g = fig3_graph();
        let r = Vebo::new(2).compute_full(&g);
        for v in g.vertices() {
            let new = r.permutation.new_id(v);
            assert_eq!(r.partition_of_new(new), r.assignment[v as usize]);
        }
    }

    #[test]
    fn permutation_is_bijection_on_datasets() {
        for d in [Dataset::TwitterLike, Dataset::UsaRoadLike] {
            let g = d.build(0.05);
            let r = Vebo::new(48).compute_full(&g);
            assert_eq!(r.permutation.len(), g.num_vertices());
            // from_new_ids already validates bijectivity; spot-check totals.
            assert_eq!(r.vertex_counts.iter().sum::<usize>(), g.num_vertices());
            assert_eq!(r.edge_counts.iter().sum::<u64>(), g.num_edges() as u64);
        }
    }

    #[test]
    fn power_law_balance_is_optimal() {
        // The headline result (Table I): edge and vertex imbalance <= 1
        // for power-law graphs. Theorem 1 requires |E| >= N (P - 1); the
        // paper's full-size graphs meet it at P = 384 with 5x-1000x slack,
        // so at test scale we pick P <= 384 with comparable (2x) slack.
        // Directed Zipf datasets also have the zero-degree vertices
        // Theorem 2 needs for delta(n) <= 1.
        for d in [
            Dataset::TwitterLike,
            Dataset::FriendsterLike,
            Dataset::LiveJournalLike,
        ] {
            let g = d.build(0.2);
            let n_ranks = g.vertices().map(|v| g.in_degree(v)).max().unwrap() + 1;
            let p = (g.num_edges() / (2 * n_ranks))
                .clamp(2, 384)
                .min(n_ranks - 1);
            let r = Vebo::new(p).compute_full(&g);
            let emax = *r.edge_counts.iter().max().unwrap();
            let emin = *r.edge_counts.iter().min().unwrap();
            let vmax = *r.vertex_counts.iter().max().unwrap();
            let vmin = *r.vertex_counts.iter().min().unwrap();
            assert!(
                emax - emin <= 1,
                "{} (P={p}): edge imbalance {}",
                d.name(),
                emax - emin
            );
            assert!(
                vmax - vmin <= 1,
                "{} (P={p}): vertex imbalance {}",
                d.name(),
                vmax - vmin
            );
        }
    }

    #[test]
    fn partitions_are_contiguous_in_new_id_space() {
        let g = Dataset::LiveJournalLike.build(0.05);
        let r = Vebo::new(16).compute_full(&g);
        // Every new id in [starts[p], starts[p+1]) must belong to p.
        for v in g.vertices() {
            let new = r.permutation.new_id(v) as usize;
            let p = r.assignment[v as usize] as usize;
            assert!(r.starts[p] <= new && new < r.starts[p + 1]);
        }
    }

    #[test]
    fn reordered_graph_has_degree_sorted_runs_within_partition() {
        // §V-E: "subsequent vertices have the same degree" — within a
        // partition, in-degrees must be non-increasing in new-id order.
        let g = Dataset::TwitterLike.build(0.05);
        let r = Vebo::new(8).compute_full(&g);
        let h = r.permutation.apply_graph(&g);
        for p in 0..8 {
            let range = r.starts[p]..r.starts[p + 1];
            let degs: Vec<usize> = range.map(|i| h.in_degree(i as VertexId)).collect();
            assert!(
                degs.windows(2).all(|w| w[0] >= w[1]),
                "partition {p} is not degree-sorted"
            );
        }
    }

    #[test]
    fn blocked_keeps_consecutive_ids_together() {
        // Build a graph where vertices 0..100 all have degree 1 (one
        // class); blocked must assign runs of consecutive ids, strict
        // round-robins them.
        let n = 100;
        let edges: Vec<(VertexId, VertexId)> = (0..n).map(|v| (((v + 1) % n), v)).collect();
        let g = Graph::from_edges(n as usize, &edges, true);
        let blocked = Vebo::new(4)
            .with_variant(VeboVariant::Blocked)
            .compute_full(&g);
        let strict = Vebo::new(4)
            .with_variant(VeboVariant::Strict)
            .compute_full(&g);
        // Count adjacent-id pairs that stay in the same partition.
        let coherence = |r: &VeboResult| {
            (0..n as usize - 1)
                .filter(|&v| r.assignment[v] == r.assignment[v + 1])
                .count()
        };
        assert!(
            coherence(&blocked) > 90,
            "blocked coherence {}",
            coherence(&blocked)
        );
        assert!(
            coherence(&strict) < 10,
            "strict coherence {}",
            coherence(&strict)
        );
        // Counts are nonetheless identical.
        assert_eq!(blocked.vertex_counts, strict.vertex_counts);
        assert_eq!(blocked.edge_counts, strict.edge_counts);
    }

    #[test]
    fn strict_parallel_scatter_matches_sequential() {
        // The strict phase-3 scatter must be bit-identical across modes,
        // including skewed graphs and partition counts that do not divide
        // the vertex count.
        for d in [Dataset::TwitterLike, Dataset::UsaRoadLike] {
            let g = d.build(0.1);
            for p in [1usize, 2, 7, 48, 384] {
                let seq = Vebo::new(p)
                    .with_variant(VeboVariant::Strict)
                    .with_mode(vebo_graph::ParMode::Sequential)
                    .compute_full(&g);
                let par = Vebo::new(p)
                    .with_variant(VeboVariant::Strict)
                    .with_mode(vebo_graph::ParMode::Parallel)
                    .compute_full(&g);
                assert_eq!(
                    seq.permutation.as_slice(),
                    par.permutation.as_slice(),
                    "{} P={p}",
                    d.name()
                );
                assert_eq!(seq.assignment, par.assignment);
                assert_eq!(seq.starts, par.starts);
            }
        }
    }

    #[test]
    fn strict_parallel_scatter_handles_tiny_graphs() {
        let g = fig3_graph();
        let seq = Vebo::new(2)
            .with_variant(VeboVariant::Strict)
            .with_mode(vebo_graph::ParMode::Sequential)
            .compute_full(&g);
        let par = Vebo::new(2)
            .with_variant(VeboVariant::Strict)
            .with_mode(vebo_graph::ParMode::Parallel)
            .compute_full(&g);
        assert_eq!(seq.permutation.as_slice(), par.permutation.as_slice());
        assert_eq!(par.permutation.as_slice(), &[2, 4, 1, 5, 0, 3]);
    }

    #[test]
    fn linear_scan_matches_heap() {
        let g = Dataset::YahooLike.build(0.05);
        let a = Vebo::new(48)
            .with_argmin(ArgMinStrategy::Heap)
            .compute_full(&g);
        let b = Vebo::new(48)
            .with_argmin(ArgMinStrategy::LinearScan)
            .compute_full(&g);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.permutation.as_slice(), b.permutation.as_slice());
    }

    #[test]
    fn single_partition_is_identityish() {
        let g = fig3_graph();
        let r = Vebo::new(1).compute_full(&g);
        assert_eq!(r.vertex_counts, vec![6]);
        assert_eq!(r.edge_counts, vec![14]);
        assert_eq!(r.starts, vec![0, 6]);
    }

    #[test]
    fn more_partitions_than_vertices() {
        let g = fig3_graph();
        let r = Vebo::new(10).compute_full(&g);
        assert_eq!(r.vertex_counts.iter().sum::<usize>(), 6);
        let vmax = *r.vertex_counts.iter().max().unwrap();
        assert!(vmax <= 1);
    }

    #[test]
    fn road_network_also_balances() {
        // Table I: USAroad achieves delta(n) = 1 and Delta(n) = 1 despite
        // not being scale-free (near-constant degree helps).
        let g = Dataset::UsaRoadLike.build(0.2);
        let r = Vebo::new(384).compute_full(&g);
        let emax = *r.edge_counts.iter().max().unwrap();
        let emin = *r.edge_counts.iter().min().unwrap();
        let vmax = *r.vertex_counts.iter().max().unwrap();
        let vmin = *r.vertex_counts.iter().min().unwrap();
        assert!(emax - emin <= 2, "edge imbalance {}", emax - emin);
        assert!(vmax - vmin <= 1, "vertex imbalance {}", vmax - vmin);
    }

    #[test]
    fn ordering_trait_name() {
        assert_eq!(Vebo::new(4).name(), "VEBO");
    }
}
