//! Empirical verifiers for the paper's formal results (§III-D):
//!
//! * **Lemma 1** — per-step evolution of the edge imbalance `Δ(t)` during
//!   phase 1: either `Δ` does not grow and the maximum load `ω` is
//!   unchanged (case `d(t) <= Δ(t)`), or `ω` grows and the new imbalance is
//!   bounded by the degree just placed (case `d(t) > Δ(t)`).
//! * **Theorem 1** — `Δ(n) <= 1` when `|E| >= N (P - 1)` and `P < N`.
//! * **Theorem 2** — `δ(m) < N / P` after phase 1 and `δ(n) <= 1` after
//!   phase 2, when `n >= N * H_{N,s}`.
//!
//! These run the actual placement loop and check every step, so they serve
//! both as tests and as instrumentation for the Table I harness.

use crate::heap::MinLoadHeap;
use crate::vebo::{Vebo, VeboVariant};
use vebo_graph::degree::vertices_by_decreasing_in_degree;
use vebo_graph::gen::zipf::generalized_harmonic;
use vebo_graph::Graph;

/// One phase-1 placement step, with the quantities Lemma 1 talks about.
#[derive(Clone, Copy, Debug)]
pub struct PlacementStep {
    /// Degree `d(t)` of the vertex placed at this step.
    pub degree: u64,
    /// Edge imbalance `Δ(t)` *before* the step.
    pub delta_before: u64,
    /// Edge imbalance `Δ(t + 1)` after the step.
    pub delta_after: u64,
    /// Maximum load `ω(t)` before the step.
    pub omega_before: u64,
    /// Maximum load `ω(t + 1)` after the step.
    pub omega_after: u64,
}

impl PlacementStep {
    /// Whether the step satisfies Lemma 1's case analysis.
    pub fn satisfies_lemma1(&self) -> bool {
        if self.degree <= self.delta_before {
            // Case (2): Δ does not grow; ω unchanged.
            self.delta_after <= self.delta_before && self.omega_after == self.omega_before
        } else {
            // Case (3): Δ bounded by the degree placed; ω grows.
            self.delta_after <= self.degree && self.omega_after > self.omega_before
        }
    }
}

/// Runs phase 1 of Algorithm 2 and records every step. `O(n log P)` like
/// the algorithm itself, plus `O(P)` per step for the max/min tracking
/// (instrumentation only).
pub fn trace_phase1(g: &Graph, num_partitions: usize) -> Vec<PlacementStep> {
    let order = vertices_by_decreasing_in_degree(g);
    let mut heap = MinLoadHeap::new(num_partitions);
    let mut steps = Vec::new();
    for &v in order.iter().take_while(|&&v| g.in_degree(v) > 0) {
        let d = g.in_degree(v) as u64;
        let loads = heap.loads();
        let omega_before = *loads.iter().max().unwrap();
        let mu_before = *loads.iter().min().unwrap();
        heap.assign_to_min(d);
        let loads = heap.loads();
        let omega_after = *loads.iter().max().unwrap();
        let mu_after = *loads.iter().min().unwrap();
        steps.push(PlacementStep {
            degree: d,
            delta_before: omega_before - mu_before,
            delta_after: omega_after - mu_after,
            omega_before,
            omega_after,
        });
    }
    steps
}

/// Report of all theorem checks for a `(graph, P)` pair.
#[derive(Clone, Debug)]
pub struct TheoremReport {
    /// `N` = 1 + maximum in-degree.
    pub n_ranks: usize,
    /// Number of vertices `n`.
    pub num_vertices: usize,
    /// Number of edges `|E|`.
    pub num_edges: usize,
    /// Partitions `P`.
    pub num_partitions: usize,
    /// Theorem 1 precondition `|E| >= N (P - 1) && P < N`.
    pub theorem1_precondition: bool,
    /// Final edge imbalance `Δ(n)`.
    pub edge_imbalance: u64,
    /// Vertex imbalance `δ(m)` after phase 1 (before zero-degree repair).
    pub vertex_imbalance_after_phase1: usize,
    /// Theorem 2's phase-1 bound `N / P` on `δ(m)`.
    pub phase1_bound: f64,
    /// Final vertex imbalance `δ(n)`.
    pub vertex_imbalance: usize,
    /// Theorem 2 precondition `n >= N * H_{N,s}` evaluated with the
    /// supplied exponent estimate (`None` if no estimate was available).
    pub theorem2_precondition: Option<bool>,
}

impl TheoremReport {
    /// Whether Theorem 1's conclusion holds (vacuously true if the
    /// precondition fails).
    pub fn theorem1_conclusion_holds(&self) -> bool {
        !self.theorem1_precondition || self.edge_imbalance <= 1
    }
}

/// Runs VEBO and evaluates all theorem statements. `s_estimate` is the
/// Zipf exponent used for Theorem 2's precondition; pass the value from
/// [`vebo_graph::degree::estimate_zipf_exponent`] or a known ground truth.
pub fn verify_theorems(g: &Graph, num_partitions: usize, s_estimate: Option<f64>) -> TheoremReport {
    let n = g.num_vertices();
    let m = g.num_edges();
    let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap_or(0);
    let n_ranks = max_in + 1;

    // Phase-1-only vertex imbalance: replay the placement.
    let order = vertices_by_decreasing_in_degree(g);
    let mut heap = MinLoadHeap::new(num_partitions);
    let mut u = vec![0usize; num_partitions];
    for &v in order.iter().take_while(|&&v| g.in_degree(v) > 0) {
        let p = heap.assign_to_min(g.in_degree(v) as u64);
        u[p as usize] += 1;
    }
    let vertex_imbalance_after_phase1 = u.iter().max().unwrap() - u.iter().min().unwrap();

    let r = Vebo::new(num_partitions)
        .with_variant(VeboVariant::Strict)
        .compute_full(g);
    let edge_imbalance = r.edge_counts.iter().max().unwrap() - r.edge_counts.iter().min().unwrap();
    let vertex_imbalance =
        r.vertex_counts.iter().max().unwrap() - r.vertex_counts.iter().min().unwrap();

    let theorem1_precondition =
        m >= n_ranks * num_partitions.saturating_sub(1) && num_partitions < n_ranks;
    let theorem2_precondition =
        s_estimate.map(|s| n as f64 >= n_ranks as f64 * generalized_harmonic(n_ranks, s));

    TheoremReport {
        n_ranks,
        num_vertices: n,
        num_edges: m,
        num_partitions,
        theorem1_precondition,
        edge_imbalance,
        vertex_imbalance_after_phase1,
        phase1_bound: n_ranks as f64 / num_partitions as f64,
        vertex_imbalance,
        theorem2_precondition,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::gen::powerlaw::{zipf_directed, ZipfGraphConfig};
    use vebo_graph::Dataset;

    fn zipf_graph(n: usize, ranks: usize, s: f64, seed: u64) -> Graph {
        zipf_directed(&ZipfGraphConfig {
            num_vertices: n,
            num_ranks: ranks,
            s,
            out_skew: 1.0,
            zero_out_fraction: 0.0,
            shuffle_ids: false,
            seed,
        })
    }

    #[test]
    fn lemma1_holds_on_zipf_graphs() {
        for seed in 0..3 {
            let g = zipf_graph(3000, 64, 1.2, seed);
            for p in [2usize, 8, 48] {
                let steps = trace_phase1(&g, p);
                for (t, s) in steps.iter().enumerate() {
                    assert!(s.satisfies_lemma1(), "step {t} violates Lemma 1: {s:?}");
                }
            }
        }
    }

    #[test]
    fn lemma1_holds_even_on_non_power_law() {
        // Lemma 1 is distribution-free: it must hold on the road network.
        let g = Dataset::UsaRoadLike.build(0.1);
        for s in trace_phase1(&g, 16) {
            assert!(s.satisfies_lemma1(), "{s:?}");
        }
    }

    #[test]
    fn delta_shrinks_towards_end_of_phase1() {
        // Processing in decreasing degree order makes the final imbalance
        // no larger than the last (smallest) degree placed.
        let g = zipf_graph(5000, 128, 1.1, 9);
        let steps = trace_phase1(&g, 48);
        let last = steps.last().unwrap();
        assert!(last.delta_after <= last.degree.max(1));
    }

    #[test]
    fn theorem1_on_satisfying_instance() {
        let g = zipf_graph(20_000, 64, 1.0, 3);
        let rep = verify_theorems(&g, 8, Some(1.0));
        assert!(
            rep.theorem1_precondition,
            "precondition should hold: {rep:?}"
        );
        assert!(rep.edge_imbalance <= 1, "Delta(n) = {}", rep.edge_imbalance);
    }

    #[test]
    fn theorem2_phase1_bound_holds() {
        let g = zipf_graph(20_000, 64, 1.0, 4);
        let rep = verify_theorems(&g, 8, Some(1.0));
        assert!(
            (rep.vertex_imbalance_after_phase1 as f64) < rep.phase1_bound,
            "delta(m) = {} >= N/P = {}",
            rep.vertex_imbalance_after_phase1,
            rep.phase1_bound
        );
        assert!(
            rep.vertex_imbalance <= 1,
            "delta(n) = {}",
            rep.vertex_imbalance
        );
    }

    #[test]
    fn theorem2_precondition_evaluation() {
        let g = zipf_graph(20_000, 64, 1.0, 5);
        let rep = verify_theorems(&g, 8, Some(1.0));
        // n = 20000 >> 64 * H_{64,1} ~ 64 * 4.74.
        assert_eq!(rep.theorem2_precondition, Some(true));
        let rep_none = verify_theorems(&g, 8, None);
        assert_eq!(rep_none.theorem2_precondition, None);
    }

    #[test]
    fn theorem1_vacuous_when_precondition_fails() {
        // P >= N: the theorem makes no claim; the report must say so.
        let g = zipf_graph(500, 8, 1.0, 6);
        let rep = verify_theorems(&g, 16, Some(1.0));
        assert!(!rep.theorem1_precondition);
        assert!(rep.theorem1_conclusion_holds()); // vacuously
    }

    #[test]
    fn table1_style_check_on_all_power_law_datasets() {
        // Table I reports delta(n) and Delta(n) at P = 384 on billion-edge
        // graphs, where the precondition |E| >= N (P - 1) holds with large
        // slack. At test scale we verify (a) the implication form at
        // P = 384 and (b) the theorem chain at a P with 2x slack:
        // Delta(n) <= 1, delta(m) < N / P, and delta(n) <= max(1, delta(m))
        // (phase 2 never worsens the vertex imbalance; undirected graphs
        // without zero-degree vertices cannot repair it, which is why the
        // paper's own Table I shows delta = 2 for Orkut and 9 for Yahoo).
        for d in Dataset::POWER_LAW {
            let g = d.build(0.1);
            let rep384 = verify_theorems(&g, 384, None);
            assert!(
                rep384.theorem1_conclusion_holds(),
                "{}: precondition held but Delta = {}",
                d.name(),
                rep384.edge_imbalance
            );
            let n_ranks = rep384.n_ranks;
            let p = (g.num_edges() / (2 * n_ranks))
                .clamp(2, 384)
                .min(n_ranks - 1);
            let rep = verify_theorems(&g, p, None);
            assert!(rep.theorem1_precondition, "{}: chose P={p} badly", d.name());
            assert!(
                rep.edge_imbalance <= 1,
                "{} (P={p}): Delta = {}",
                d.name(),
                rep.edge_imbalance
            );
            // Theorem 2 proves delta(m) < N/P for the *exact* Zipf degree
            // multiset; a sampled dataset deviates from the ideal rank
            // multiplicities, which can cost one extra unit (Table I's
            // real graphs show the same effect, up to delta = 9 on Yahoo).
            assert!(
                (rep.vertex_imbalance_after_phase1 as f64) < rep.phase1_bound + 1.0,
                "{} (P={p}): delta(m) = {} >= N/P + 1 = {}",
                d.name(),
                rep.vertex_imbalance_after_phase1,
                rep.phase1_bound + 1.0
            );
            assert!(
                rep.vertex_imbalance <= rep.vertex_imbalance_after_phase1.max(1),
                "{} (P={p}): delta(n) = {} worse than delta(m) = {}",
                d.name(),
                rep.vertex_imbalance,
                rep.vertex_imbalance_after_phase1
            );
        }
    }
}
