//! Deterministic min-heap over partition loads.
//!
//! VEBO's placement loop needs `arg min_i w[i]` followed by an increase of
//! the chosen entry's weight — `O(log P)` with a binary heap, which is what
//! gives the algorithm its `O(n log P)` total complexity (§III-E). Ties are
//! broken by the lowest partition id so that runs are deterministic and
//! match the worked example in Figure 3 of the paper.

/// A binary min-heap of `(load, partition id)` entries supporting the
/// single operation VEBO needs: *pop the least-loaded partition, add to its
/// load, push it back*.
#[derive(Clone, Debug)]
pub struct MinLoadHeap {
    /// Heap-ordered `(load, id)`; comparison is lexicographic so equal
    /// loads resolve to the smallest id.
    slots: Vec<(u64, u32)>,
}

impl MinLoadHeap {
    /// Creates a heap of `num_partitions` zero-loaded partitions.
    pub fn new(num_partitions: usize) -> MinLoadHeap {
        assert!(num_partitions >= 1, "need at least one partition");
        let slots = (0..num_partitions as u32).map(|p| (0u64, p)).collect();
        MinLoadHeap { slots }
    }

    /// Creates a heap from existing loads (used when VEBO's phase 2 reuses
    /// the vertex counts accumulated during phase 1).
    pub fn with_loads(loads: &[u64]) -> MinLoadHeap {
        assert!(!loads.is_empty());
        let mut h = MinLoadHeap {
            slots: loads.iter().copied().zip(0..loads.len() as u32).collect(),
        };
        // Standard Floyd heapify: O(P).
        for i in (0..h.slots.len() / 2).rev() {
            h.sift_down(i);
        }
        h
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always false — the heap permanently holds one slot per partition.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The least-loaded partition and its load (ties: lowest id).
    #[inline]
    pub fn peek(&self) -> (u64, u32) {
        self.slots[0]
    }

    /// Assigns `amount` to the least-loaded partition: increases its load
    /// and returns its id. `O(log P)`.
    #[inline]
    pub fn assign_to_min(&mut self, amount: u64) -> u32 {
        let (load, id) = self.slots[0];
        self.slots[0] = (load + amount, id);
        self.sift_down(0);
        id
    }

    /// Extracts the current loads indexed by partition id.
    pub fn loads(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.slots.len()];
        for &(load, id) in &self.slots {
            out[id as usize] = load;
        }
        out
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.slots.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < len && self.slots[l] < self.slots[smallest] {
                smallest = l;
            }
            if r < len && self.slots[r] < self.slots[smallest] {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.slots.swap(i, smallest);
            i = smallest;
        }
    }
}

/// Linear-scan `arg min` over partition loads — the `O(P)`-per-step
/// alternative kept for the complexity ablation bench (DESIGN.md §6).
#[derive(Clone, Debug)]
pub struct LinearArgMin {
    loads: Vec<u64>,
}

impl LinearArgMin {
    /// Creates `num_partitions` zero loads.
    pub fn new(num_partitions: usize) -> LinearArgMin {
        assert!(num_partitions >= 1);
        LinearArgMin {
            loads: vec![0; num_partitions],
        }
    }

    /// Starts from existing loads.
    pub fn from_loads(loads: Vec<u64>) -> LinearArgMin {
        assert!(!loads.is_empty());
        LinearArgMin { loads }
    }

    /// Scans for the minimum (ties: lowest id), adds `amount`, returns the
    /// id. `O(P)`.
    #[inline]
    pub fn assign_to_min(&mut self, amount: u64) -> u32 {
        let mut best = 0usize;
        for i in 1..self.loads.len() {
            if self.loads[i] < self.loads[best] {
                best = i;
            }
        }
        self.loads[best] += amount;
        best as u32
    }

    /// Current loads by partition id.
    pub fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ties_break_to_lowest_id() {
        let mut h = MinLoadHeap::new(4);
        assert_eq!(h.assign_to_min(1), 0);
        assert_eq!(h.assign_to_min(1), 1);
        assert_eq!(h.assign_to_min(1), 2);
        assert_eq!(h.assign_to_min(1), 3);
        assert_eq!(h.assign_to_min(1), 0);
    }

    #[test]
    fn always_picks_least_loaded() {
        let mut h = MinLoadHeap::new(3);
        h.assign_to_min(10); // p0 = 10
        h.assign_to_min(5); // p1 = 5
        h.assign_to_min(1); // p2 = 1
        assert_eq!(h.peek(), (1, 2));
        assert_eq!(h.assign_to_min(3), 2); // p2 = 4
        assert_eq!(h.assign_to_min(2), 2); // p2 = 6
        assert_eq!(h.assign_to_min(1), 1); // p1 = 6
        assert_eq!(h.loads(), vec![10, 6, 6]);
    }

    #[test]
    fn with_loads_heapifies() {
        let h = MinLoadHeap::with_loads(&[7, 3, 9, 1]);
        assert_eq!(h.peek(), (1, 3));
        assert_eq!(h.loads(), vec![7, 3, 9, 1]);
    }

    #[test]
    fn with_loads_tie_break_matches_fresh_heap() {
        let h = MinLoadHeap::with_loads(&[5, 5, 5]);
        assert_eq!(h.peek().1, 0, "equal loads must resolve to id 0");
    }

    #[test]
    fn heap_matches_linear_scan_on_random_sequence() {
        // The heap must make exactly the same decisions as the obvious
        // linear argmin for any weight sequence.
        let mut h = MinLoadHeap::new(7);
        let mut l = LinearArgMin::new(7);
        let mut x = 12345u64;
        for _ in 0..2000 {
            x = vebo_graph::graph::mix64(x);
            let amount = x % 50 + 1;
            assert_eq!(h.assign_to_min(amount), l.assign_to_min(amount));
        }
        assert_eq!(h.loads(), l.loads());
    }

    #[test]
    fn single_partition_takes_everything() {
        let mut h = MinLoadHeap::new(1);
        for _ in 0..10 {
            assert_eq!(h.assign_to_min(3), 0);
        }
        assert_eq!(h.loads(), vec![30]);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        MinLoadHeap::new(0);
    }
}
