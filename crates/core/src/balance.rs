//! Load-balance metrics: the Δ (edge) and δ (vertex) imbalances of §III-A
//! plus spread/deviation statistics used throughout the evaluation.

use crate::vebo::VeboResult;
use vebo_graph::Graph;

/// Per-partitioning balance summary.
#[derive(Clone, Debug, PartialEq)]
pub struct BalanceReport {
    /// `w[p]`: in-edges per partition.
    pub edge_counts: Vec<u64>,
    /// `u[p]`: vertices per partition.
    pub vertex_counts: Vec<usize>,
    /// `Δ(n) = max w - min w`.
    pub edge_imbalance: u64,
    /// `δ(n) = max u - min u`.
    pub vertex_imbalance: usize,
}

impl BalanceReport {
    /// Builds from explicit per-partition counts.
    pub fn from_counts(edge_counts: Vec<u64>, vertex_counts: Vec<usize>) -> BalanceReport {
        assert_eq!(edge_counts.len(), vertex_counts.len());
        assert!(!edge_counts.is_empty());
        let edge_imbalance = edge_counts.iter().max().unwrap() - edge_counts.iter().min().unwrap();
        let vertex_imbalance =
            vertex_counts.iter().max().unwrap() - vertex_counts.iter().min().unwrap();
        BalanceReport {
            edge_counts,
            vertex_counts,
            edge_imbalance,
            vertex_imbalance,
        }
    }

    /// Builds from a [`VeboResult`].
    pub fn from_result(r: &VeboResult) -> BalanceReport {
        Self::from_counts(r.edge_counts.clone(), r.vertex_counts.clone())
    }

    /// Builds from an arbitrary per-vertex partition assignment: counts
    /// each vertex and its in-edges toward its assigned partition
    /// (partitioning *by destination*, as everywhere in the paper).
    pub fn from_assignment(g: &Graph, assignment: &[u32], num_partitions: usize) -> BalanceReport {
        assert_eq!(assignment.len(), g.num_vertices());
        let mut edges = vec![0u64; num_partitions];
        let mut verts = vec![0usize; num_partitions];
        for v in g.vertices() {
            let p = assignment[v as usize] as usize;
            verts[p] += 1;
            edges[p] += g.in_degree(v) as u64;
        }
        Self::from_counts(edges, verts)
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.edge_counts.len()
    }

    /// Max/min ratio of edge counts (the "spread" the paper quotes, e.g.
    /// 6.9x vs 1.6x for PR on Twitter). Returns `f64::INFINITY` when some
    /// partition is empty.
    pub fn edge_spread(&self) -> f64 {
        let max = *self.edge_counts.iter().max().unwrap() as f64;
        let min = *self.edge_counts.iter().min().unwrap() as f64;
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// Sample standard deviation of the edge counts.
    pub fn edge_std_dev(&self) -> f64 {
        std_dev(self.edge_counts.iter().map(|&e| e as f64))
    }

    /// Sample standard deviation of the vertex counts.
    pub fn vertex_std_dev(&self) -> f64 {
        std_dev(self.vertex_counts.iter().map(|&u| u as f64))
    }

    /// `true` when both optimality criteria of §III-A hold.
    pub fn is_optimal(&self) -> bool {
        self.edge_imbalance <= 1 && self.vertex_imbalance <= 1
    }
}

/// Per-partition in-edge counts under explicit destination-range
/// boundaries (`starts[p]..starts[p + 1]` is partition `p`'s vertex
/// range). This is the drift observable of [`DriftTrigger`]: the same
/// `w[p]` the VEBO objective balances, recomputed cheaply for the
/// current snapshot without rerunning placement.
pub fn edge_counts_for_starts(g: &Graph, starts: &[usize]) -> Vec<u64> {
    assert!(starts.len() >= 2, "need at least one partition");
    assert_eq!(*starts.last().unwrap(), g.num_vertices());
    starts
        .windows(2)
        .map(|w| (w[0]..w[1]).map(|v| g.in_degree(v as u32) as u64).sum())
        .collect()
}

/// Decides when a mutated graph has drifted far enough from the balance
/// the current VEBO placement was computed for that recomputing the
/// placement is worth its cost — the "reordering is cheap enough to
/// redo" claim of the paper applied online.
///
/// The trigger keeps the per-partition edge counts observed when the
/// placement was (re)computed and compares them against the counts of a
/// new snapshot under the *same* boundaries: drift is the largest
/// absolute per-partition deviation, relative to the mean baseline load.
/// Below the threshold the old partition bounds are reused for the new
/// snapshot; at or above it the caller recomputes placement and calls
/// [`DriftTrigger::rebase`].
#[derive(Clone, Debug)]
pub struct DriftTrigger {
    threshold: f64,
    baseline: Vec<u64>,
}

impl DriftTrigger {
    /// Starts from the partition loads the current placement balances.
    /// `threshold` is the relative drift at which reordering fires
    /// (e.g. `0.2` = a partition strayed by ≥ 20% of the mean load).
    pub fn new(threshold: f64, baseline: Vec<u64>) -> DriftTrigger {
        assert!(threshold >= 0.0 && !baseline.is_empty());
        DriftTrigger {
            threshold,
            baseline,
        }
    }

    /// The configured firing threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The baseline per-partition edge counts.
    pub fn baseline(&self) -> &[u64] {
        &self.baseline
    }

    /// Relative drift of `current` against the baseline: the largest
    /// per-partition |Δw| divided by the mean baseline load. An empty
    /// baseline mean (edgeless graph) reports drift 0 unless edges
    /// appeared, in which case it is `f64::INFINITY`.
    pub fn drift(&self, current: &[u64]) -> f64 {
        assert_eq!(current.len(), self.baseline.len());
        let max_dev = self
            .baseline
            .iter()
            .zip(current)
            .map(|(&b, &c)| b.abs_diff(c))
            .max()
            .unwrap_or(0);
        let mean = self.baseline.iter().sum::<u64>() as f64 / self.baseline.len() as f64;
        if mean == 0.0 {
            if max_dev == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            max_dev as f64 / mean
        }
    }

    /// `true` when `current` drifted at or past the threshold and the
    /// caller should recompute placement.
    pub fn should_reorder(&self, current: &[u64]) -> bool {
        self.drift(current) >= self.threshold
    }

    /// Adopts `baseline` as the loads of a freshly computed placement.
    pub fn rebase(&mut self, baseline: Vec<u64>) {
        assert!(!baseline.is_empty());
        self.baseline = baseline;
    }
}

/// Distribution summary (min / median / std-dev / max) in the format of
/// Table IV.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistributionSummary {
    /// Smallest value.
    pub min: f64,
    /// Median value.
    pub median: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Summarizes an arbitrary sample (e.g. active edges per partition).
pub fn summarize(values: &[f64]) -> DistributionSummary {
    assert!(!values.is_empty());
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    };
    DistributionSummary {
        min: sorted[0],
        median,
        std_dev: std_dev(sorted.iter().copied()),
        max: sorted[n - 1],
        mean: sorted.iter().sum::<f64>() / n as f64,
    }
}

fn std_dev(values: impl Iterator<Item = f64> + Clone) -> f64 {
    let n = values.clone().count();
    if n < 2 {
        return 0.0;
    }
    let mean = values.clone().sum::<f64>() / n as f64;
    let var = values.map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vebo::Vebo;
    use vebo_graph::Dataset;

    #[test]
    fn from_counts_computes_imbalances() {
        let r = BalanceReport::from_counts(vec![10, 12, 11], vec![5, 5, 6]);
        assert_eq!(r.edge_imbalance, 2);
        assert_eq!(r.vertex_imbalance, 1);
        assert!(!r.is_optimal());
    }

    #[test]
    fn optimal_when_both_within_one() {
        let r = BalanceReport::from_counts(vec![10, 11], vec![5, 5]);
        assert!(r.is_optimal());
    }

    #[test]
    fn spread_handles_zero_partitions() {
        let r = BalanceReport::from_counts(vec![0, 8], vec![1, 1]);
        assert!(r.edge_spread().is_infinite());
        let r2 = BalanceReport::from_counts(vec![4, 8], vec![1, 1]);
        assert!((r2.edge_spread() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_assignment_counts_in_edges() {
        let g = vebo_graph::Graph::from_edges(4, &[(0, 1), (2, 1), (3, 1), (1, 0)], true);
        // partition 0 = {0, 1}, partition 1 = {2, 3}
        let r = BalanceReport::from_assignment(&g, &[0, 0, 1, 1], 2);
        assert_eq!(r.edge_counts, vec![4, 0]); // all edges point into {0, 1}
        assert_eq!(r.vertex_counts, vec![2, 2]);
    }

    #[test]
    fn from_result_equals_from_assignment() {
        let g = Dataset::YahooLike.build(0.05);
        let res = Vebo::new(24).compute_full(&g);
        let a = BalanceReport::from_result(&res);
        let b = BalanceReport::from_assignment(&g, &res.assignment, 24);
        assert_eq!(a, b);
    }

    #[test]
    fn summarize_known_values() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.mean, 2.5);
        // sample std dev of 1..4 = sqrt(5/3)
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summarize_odd_length_median() {
        let s = summarize(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        let s = summarize(&[2.0, 2.0, 2.0]);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn edge_counts_for_starts_partitions_in_degrees() {
        let g = vebo_graph::Graph::from_edges(4, &[(0, 1), (2, 1), (3, 1), (1, 0)], true);
        let counts = edge_counts_for_starts(&g, &[0, 2, 4]);
        assert_eq!(counts, vec![4, 0]);
        assert_eq!(counts.iter().sum::<u64>(), g.num_edges() as u64);
    }

    #[test]
    fn drift_trigger_fires_at_threshold() {
        let t = DriftTrigger::new(0.25, vec![100, 100, 100, 100]);
        assert_eq!(t.drift(&[100, 100, 100, 100]), 0.0);
        assert!(!t.should_reorder(&[110, 100, 95, 100])); // 10% < 25%
        assert!(t.should_reorder(&[130, 100, 100, 100])); // 30% >= 25%
        assert!(t.should_reorder(&[100, 100, 100, 75])); // deletion drift too
    }

    #[test]
    fn drift_trigger_rebase_adopts_new_baseline() {
        let mut t = DriftTrigger::new(0.2, vec![10, 10]);
        assert!(t.should_reorder(&[14, 10]));
        t.rebase(vec![14, 10]);
        assert_eq!(t.drift(&[14, 10]), 0.0);
        assert_eq!(t.baseline(), &[14, 10]);
    }

    #[test]
    fn drift_on_empty_baseline_is_infinite_only_with_new_edges() {
        let t = DriftTrigger::new(0.5, vec![0, 0]);
        assert_eq!(t.drift(&[0, 0]), 0.0);
        assert!(t.drift(&[1, 0]).is_infinite());
    }
}
