//! Load-balance metrics: the Δ (edge) and δ (vertex) imbalances of §III-A
//! plus spread/deviation statistics used throughout the evaluation.

use crate::vebo::VeboResult;
use vebo_graph::Graph;

/// Per-partitioning balance summary.
#[derive(Clone, Debug, PartialEq)]
pub struct BalanceReport {
    /// `w[p]`: in-edges per partition.
    pub edge_counts: Vec<u64>,
    /// `u[p]`: vertices per partition.
    pub vertex_counts: Vec<usize>,
    /// `Δ(n) = max w - min w`.
    pub edge_imbalance: u64,
    /// `δ(n) = max u - min u`.
    pub vertex_imbalance: usize,
}

impl BalanceReport {
    /// Builds from explicit per-partition counts.
    pub fn from_counts(edge_counts: Vec<u64>, vertex_counts: Vec<usize>) -> BalanceReport {
        assert_eq!(edge_counts.len(), vertex_counts.len());
        assert!(!edge_counts.is_empty());
        let edge_imbalance = edge_counts.iter().max().unwrap() - edge_counts.iter().min().unwrap();
        let vertex_imbalance =
            vertex_counts.iter().max().unwrap() - vertex_counts.iter().min().unwrap();
        BalanceReport {
            edge_counts,
            vertex_counts,
            edge_imbalance,
            vertex_imbalance,
        }
    }

    /// Builds from a [`VeboResult`].
    pub fn from_result(r: &VeboResult) -> BalanceReport {
        Self::from_counts(r.edge_counts.clone(), r.vertex_counts.clone())
    }

    /// Builds from an arbitrary per-vertex partition assignment: counts
    /// each vertex and its in-edges toward its assigned partition
    /// (partitioning *by destination*, as everywhere in the paper).
    pub fn from_assignment(g: &Graph, assignment: &[u32], num_partitions: usize) -> BalanceReport {
        assert_eq!(assignment.len(), g.num_vertices());
        let mut edges = vec![0u64; num_partitions];
        let mut verts = vec![0usize; num_partitions];
        for v in g.vertices() {
            let p = assignment[v as usize] as usize;
            verts[p] += 1;
            edges[p] += g.in_degree(v) as u64;
        }
        Self::from_counts(edges, verts)
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.edge_counts.len()
    }

    /// Max/min ratio of edge counts (the "spread" the paper quotes, e.g.
    /// 6.9x vs 1.6x for PR on Twitter). Returns `f64::INFINITY` when some
    /// partition is empty.
    pub fn edge_spread(&self) -> f64 {
        let max = *self.edge_counts.iter().max().unwrap() as f64;
        let min = *self.edge_counts.iter().min().unwrap() as f64;
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// Sample standard deviation of the edge counts.
    pub fn edge_std_dev(&self) -> f64 {
        std_dev(self.edge_counts.iter().map(|&e| e as f64))
    }

    /// Sample standard deviation of the vertex counts.
    pub fn vertex_std_dev(&self) -> f64 {
        std_dev(self.vertex_counts.iter().map(|&u| u as f64))
    }

    /// `true` when both optimality criteria of §III-A hold.
    pub fn is_optimal(&self) -> bool {
        self.edge_imbalance <= 1 && self.vertex_imbalance <= 1
    }
}

/// Distribution summary (min / median / std-dev / max) in the format of
/// Table IV.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistributionSummary {
    /// Smallest value.
    pub min: f64,
    /// Median value.
    pub median: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Summarizes an arbitrary sample (e.g. active edges per partition).
pub fn summarize(values: &[f64]) -> DistributionSummary {
    assert!(!values.is_empty());
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    };
    DistributionSummary {
        min: sorted[0],
        median,
        std_dev: std_dev(sorted.iter().copied()),
        max: sorted[n - 1],
        mean: sorted.iter().sum::<f64>() / n as f64,
    }
}

fn std_dev(values: impl Iterator<Item = f64> + Clone) -> f64 {
    let n = values.clone().count();
    if n < 2 {
        return 0.0;
    }
    let mean = values.clone().sum::<f64>() / n as f64;
    let var = values.map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vebo::Vebo;
    use vebo_graph::Dataset;

    #[test]
    fn from_counts_computes_imbalances() {
        let r = BalanceReport::from_counts(vec![10, 12, 11], vec![5, 5, 6]);
        assert_eq!(r.edge_imbalance, 2);
        assert_eq!(r.vertex_imbalance, 1);
        assert!(!r.is_optimal());
    }

    #[test]
    fn optimal_when_both_within_one() {
        let r = BalanceReport::from_counts(vec![10, 11], vec![5, 5]);
        assert!(r.is_optimal());
    }

    #[test]
    fn spread_handles_zero_partitions() {
        let r = BalanceReport::from_counts(vec![0, 8], vec![1, 1]);
        assert!(r.edge_spread().is_infinite());
        let r2 = BalanceReport::from_counts(vec![4, 8], vec![1, 1]);
        assert!((r2.edge_spread() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_assignment_counts_in_edges() {
        let g = vebo_graph::Graph::from_edges(4, &[(0, 1), (2, 1), (3, 1), (1, 0)], true);
        // partition 0 = {0, 1}, partition 1 = {2, 3}
        let r = BalanceReport::from_assignment(&g, &[0, 0, 1, 1], 2);
        assert_eq!(r.edge_counts, vec![4, 0]); // all edges point into {0, 1}
        assert_eq!(r.vertex_counts, vec![2, 2]);
    }

    #[test]
    fn from_result_equals_from_assignment() {
        let g = Dataset::YahooLike.build(0.05);
        let res = Vebo::new(24).compute_full(&g);
        let a = BalanceReport::from_result(&res);
        let b = BalanceReport::from_assignment(&g, &res.assignment, 24);
        assert_eq!(a, b);
    }

    #[test]
    fn summarize_known_values() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.mean, 2.5);
        // sample std dev of 1..4 = sqrt(5/3)
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summarize_odd_length_median() {
        let s = summarize(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        let s = summarize(&[2.0, 2.0, 2.0]);
        assert_eq!(s.std_dev, 0.0);
    }
}
