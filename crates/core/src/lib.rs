//! # vebo-core
//!
//! The VEBO (Vertex- and Edge-Balanced Ordering) algorithm from
//! *"VEBO: A Vertex- and Edge-Balanced Ordering Heuristic to Load Balance
//! Parallel Graph Processing"* (Sun, Vandierendonck, Nikolopoulos,
//! PPoPP 2019).
//!
//! VEBO reorders the vertices of a graph so that the trivial
//! locality-preserving chunk partitioner ("Algorithm 1" in the paper;
//! implemented in `vebo-partition`) produces partitions whose edge counts
//! differ by at most one *and* whose vertex counts differ by at most one —
//! for any number of partitions `P`, in `O(n log P)` time, provided the
//! graph's in-degree distribution is power-law (Theorems 1 and 2).
//!
//! ```
//! use vebo_graph::{Dataset, VertexOrdering};
//! use vebo_core::{balance::BalanceReport, Vebo};
//!
//! let g = Dataset::TwitterLike.build(0.05);
//! // 16 partitions: |E| >= N (P - 1) holds comfortably at demo scale
//! // (the paper's billion-edge graphs satisfy it at P = 384).
//! let vebo = Vebo::new(16);
//! let result = vebo.compute_full(&g);
//! let report = BalanceReport::from_result(&result);
//! assert!(report.edge_imbalance <= 1);
//! assert!(report.vertex_imbalance <= 1);
//!
//! // Or use it as a plain vertex ordering:
//! let perm = vebo.compute(&g);
//! let reordered = perm.apply_graph(&g);
//! assert_eq!(reordered.num_edges(), g.num_edges());
//! ```

#![warn(missing_docs)]

pub mod balance;
pub mod heap;
pub mod theory;
pub mod vebo;

pub use balance::{edge_counts_for_starts, BalanceReport, DriftTrigger};
pub use heap::MinLoadHeap;
pub use vebo::{ArgMinStrategy, Vebo, VeboResult, VeboVariant};
