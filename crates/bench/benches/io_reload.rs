//! Criterion bench: `.vgr` reload — buffered streaming read vs the
//! zero-copy memory-mapped loader — on an RMAT snapshot with >= 1M
//! edges (the io-smoke job's graph size).
//!
//! Both paths pay the same validation scans and the same `O(n + m)`
//! transpose that rebuilds the CSC; the mapped path skips the per-element
//! decode loop and the offsets/targets/weights allocations entirely, so
//! it must come out ahead — that delta is the "mmap-backed binary loads"
//! constant factor the ROADMAP calls out.
//!
//! ```text
//! cargo bench --bench io_reload
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vebo_graph::gen::{rmat_graph, RmatConfig};
use vebo_graph::io::{mmap_binary_graph, read_binary_graph, write_binary_graph};
use vebo_graph::StorageKind;

fn bench_io_reload(c: &mut Criterion) {
    // scale 17, edge factor 10: ~1.2M arcs after dedup — the io-smoke
    // snapshot size.
    let cfg = RmatConfig {
        scale: 17,
        edge_factor: 10,
        ..Default::default()
    };
    let g = rmat_graph(&cfg);
    assert!(
        g.num_edges() >= 1_000_000,
        "bench graph must have >= 1M edges, has {}",
        g.num_edges()
    );
    let path = std::env::temp_dir().join(format!("vebo-io-reload-{}.vgr", std::process::id()));
    write_binary_graph(&g, std::fs::File::create(&path).unwrap()).unwrap();

    // Sanity: both loaders agree, and the mapped one actually maps.
    let buffered = read_binary_graph(std::fs::File::open(&path).unwrap()).unwrap();
    let mapped = mmap_binary_graph(&path).unwrap();
    assert_eq!(buffered.csr().targets(), mapped.csr().targets());
    if cfg!(all(target_endian = "little", target_pointer_width = "64")) {
        assert_eq!(mapped.storage_kind(), StorageKind::Mapped);
    }
    drop((buffered, mapped));

    let mut group = c.benchmark_group("io_reload");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("buffered", |b| {
        b.iter(|| {
            let g = read_binary_graph(std::fs::File::open(&path).unwrap()).unwrap();
            black_box(g.num_edges())
        })
    });
    group.bench_function("mmap", |b| {
        b.iter(|| {
            let g = mmap_binary_graph(&path).unwrap();
            black_box(g.num_edges())
        })
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_io_reload);
criterion_main!(benches);
