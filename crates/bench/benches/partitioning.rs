//! Criterion bench: Algorithm 1 partitioning and COO edge reordering
//! (the middle of Table VI: Hilbert vs CSR edge order build cost).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vebo_graph::Dataset;
use vebo_partition::partitioned::{PartitionedCoo, PartitionedSubCsr};
use vebo_partition::{EdgeOrder, PartitionBounds};

fn bench_partitioning(c: &mut Criterion) {
    let g = Dataset::TwitterLike.build(0.25);
    let bounds = PartitionBounds::edge_balanced(&g, 384);
    let mut group = c.benchmark_group("partitioning");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("algorithm1_384", |b| {
        b.iter(|| black_box(PartitionBounds::edge_balanced(&g, 384)))
    });
    group.bench_function("coo_csr_order", |b| {
        b.iter(|| black_box(PartitionedCoo::build(&g, &bounds, EdgeOrder::Csr)))
    });
    group.bench_function("coo_hilbert_order", |b| {
        b.iter(|| black_box(PartitionedCoo::build(&g, &bounds, EdgeOrder::Hilbert)))
    });
    group.bench_function("sub_csr", |b| {
        b.iter(|| black_box(PartitionedSubCsr::build(&g, &bounds)))
    });
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
