//! Criterion bench: BSP cluster simulator throughput (extension E2).
//!
//! The §VII study sweeps 7 strategies x 3 datasets; this bench pins the
//! cost of its building blocks — one all-active superstep, a full BFS
//! run, and each strategy's realization — so harness runtimes stay
//! predictable as the workspace evolves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vebo_distributed::bsp::superstep;
use vebo_distributed::{hash_partition, run_bfs, run_pagerank, ClusterConfig, Strategy};
use vebo_graph::{Dataset, VertexId};

fn bench_bsp(c: &mut Criterion) {
    let g = Dataset::LiveJournalLike.build(0.1);
    let cfg = ClusterConfig {
        workers: 16,
        ..Default::default()
    };
    let asg = hash_partition(g.num_vertices(), cfg.workers);
    let active: Vec<VertexId> = g.vertices().collect();

    let mut group = c.benchmark_group("bsp");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("superstep_all_active", |b| {
        b.iter(|| black_box(superstep(&g, &asg, &cfg, &active)))
    });
    group.bench_function("pagerank_x5", |b| {
        b.iter(|| black_box(run_pagerank(&g, &asg, &cfg, 5)))
    });
    group.bench_function("bfs", |b| b.iter(|| black_box(run_bfs(&g, &asg, &cfg, 0))));
    for s in [Strategy::ChunkVebo, Strategy::Ldg, Strategy::MultilevelMc] {
        group.bench_function(BenchmarkId::new("realize", s.name()), |b| {
            b.iter(|| black_box(s.realize(&g, cfg.workers)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bsp);
criterion_main!(benches);
