//! Criterion bench: distributed partitioner throughput (extension study).
//!
//! Extends Table VI's cost comparison to the §VI partitioning families:
//! the streaming partitioners (LDG, Fennel) should sit near VEBO's
//! `O(m)`; the multilevel partitioner is expected to cost an order of
//! magnitude more (it solves the cut-minimization problem the paper
//! deliberately avoids); hash is the floor.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vebo_baselines::SlashBurn;
use vebo_core::Vebo;
use vebo_distributed::{hash_partition, Fennel, GreedyVertexCut, HybridCut, Ldg};
use vebo_graph::{Dataset, VertexOrdering};
use vebo_partition::Multilevel;

fn bench_partitioners(c: &mut Criterion) {
    let g = Dataset::LiveJournalLike.build(0.1);
    let p = 16;
    let mut group = c.benchmark_group("partitioners");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("hash", |b| {
        b.iter(|| black_box(hash_partition(g.num_vertices(), p)))
    });
    group.bench_function("vebo_order", |b| {
        b.iter(|| black_box(Vebo::new(p).compute(&g)))
    });
    group.bench_function("ldg", |b| {
        b.iter(|| black_box(Ldg::default().partition(&g, p)))
    });
    group.bench_function("fennel", |b| {
        b.iter(|| black_box(Fennel::default().partition(&g, p)))
    });
    group.bench_function("multilevel", |b| {
        b.iter(|| black_box(Multilevel::new().partition(&g, p)))
    });
    group.bench_function("greedy_vertex_cut", |b| {
        b.iter(|| black_box(GreedyVertexCut.place(&g, p)))
    });
    group.bench_function("hybrid_cut", |b| {
        b.iter(|| black_box(HybridCut::default().place(&g, p)))
    });
    group.bench_function("slashburn_order", |b| {
        b.iter(|| black_box(SlashBurn::default().compute(&g)))
    });
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
