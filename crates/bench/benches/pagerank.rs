//! Criterion bench: PageRank iterations under each ordering — the kernel
//! behind Figures 1, 4 and 6.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vebo_algorithms::pagerank::{pagerank, PageRankConfig};
use vebo_bench::{ordered_with_starts, OrderingKind};
use vebo_engine::{Executor, PreparedGraph, SystemProfile};
use vebo_graph::Dataset;
use vebo_partition::EdgeOrder;

fn bench_pagerank(c: &mut Criterion) {
    let g = Dataset::TwitterLike.build(0.2);
    let cfg = PageRankConfig {
        iterations: 3,
        ..Default::default()
    };
    let mut group = c.benchmark_group("pagerank");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    let cases = [
        (OrderingKind::Original, EdgeOrder::Hilbert, "orig_hilbert"),
        (OrderingKind::Original, EdgeOrder::Csr, "orig_csr"),
        (OrderingKind::Vebo, EdgeOrder::Csr, "vebo_csr"),
        (OrderingKind::Vebo, EdgeOrder::Hilbert, "vebo_hilbert"),
        (
            OrderingKind::HighToLow,
            EdgeOrder::Hilbert,
            "high_to_low_hilbert",
        ),
    ];
    for (ordering, order, name) in cases {
        let (h, starts, _) = ordered_with_starts(&g, ordering, 384);
        let profile = SystemProfile::graphgrind_like(order);
        let exec = Executor::new(profile);
        let pg = PreparedGraph::builder(h)
            .profile(profile)
            .vebo_starts(starts.as_deref())
            .build()
            .unwrap();
        group.bench_function(name, |b| b.iter(|| black_box(pagerank(&exec, &pg, &cfg).0)));
    }
    group.finish();
}

criterion_group!(benches, bench_pagerank);
criterion_main!(benches);
