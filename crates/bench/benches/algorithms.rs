//! Criterion bench: all eight algorithms end-to-end (the per-cell cost of
//! Table III, at quick sizes).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vebo_algorithms::{needs_weights, run_algorithm, AlgorithmKind};
use vebo_engine::{Executor, PreparedGraph, SystemProfile};
use vebo_graph::Dataset;
use vebo_partition::EdgeOrder;

fn bench_algorithms(c: &mut Criterion) {
    let base = Dataset::LiveJournalLike.build(0.1);
    let mut group = c.benchmark_group("algorithms");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for kind in AlgorithmKind::ALL {
        let g = if needs_weights(kind) {
            base.clone().with_hash_weights(32)
        } else {
            base.clone()
        };
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
        let exec = Executor::new(profile);
        let pg = PreparedGraph::builder(g).profile(profile).build().unwrap();
        group.bench_function(kind.code(), |b| {
            b.iter(|| black_box(run_algorithm(kind, &exec, &pg).total_edges()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
