//! Criterion bench: the four edgemap traversal kernels (the engine-level
//! costs behind every Table III cell), plus compressed-backing variants
//! of the Ligra pair so `dense_pull_ligra{,_compressed}` and
//! `sparse_push_ligra{,_compressed}` can be compared directly — the
//! delta-varint backing trades decode work for bytes touched.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;
use vebo_engine::{Direction, EdgeOp, Executor, Frontier, PreparedGraph, SystemProfile};
use vebo_graph::{Dataset, VertexId};
use vebo_partition::EdgeOrder;

struct TouchOp {
    seen: Vec<AtomicU32>,
}

impl EdgeOp for TouchOp {
    fn update(&self, s: VertexId, d: VertexId, _w: f32) -> bool {
        self.seen[d as usize].store(s, Ordering::Relaxed);
        false
    }
    fn update_atomic(&self, s: VertexId, d: VertexId, w: f32) -> bool {
        self.update(s, d, w)
    }
}

fn bench_edgemap(c: &mut Criterion) {
    let g = Dataset::LiveJournalLike.build(0.2);
    let n = g.num_vertices();
    let mut group = c.benchmark_group("edgemap");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    // One-line working-set comparison for the artifact: raw target bytes
    // (m x 4) vs the varint stream the compressed kernels decode.
    if let Some(stats) = g.clone().with_compressed().compression_stats() {
        eprintln!(
            "edgemap bytes touched: raw targets {} B, varint data {} B, ratio {:.2}",
            stats.raw_bytes,
            stats.compressed_bytes,
            stats.ratio()
        );
    }

    let cases = [
        (
            "dense_pull_ligra",
            SystemProfile::ligra_like(),
            Direction::Dense,
            false,
        ),
        (
            "dense_pull_ligra_compressed",
            SystemProfile::ligra_like(),
            Direction::Dense,
            true,
        ),
        (
            "dense_pull_polymer",
            SystemProfile::polymer_like(),
            Direction::Dense,
            false,
        ),
        (
            "dense_coo_csr",
            SystemProfile::graphgrind_like(EdgeOrder::Csr),
            Direction::Dense,
            false,
        ),
        (
            "dense_coo_hilbert",
            SystemProfile::graphgrind_like(EdgeOrder::Hilbert),
            Direction::Dense,
            false,
        ),
        (
            "sparse_push_ligra",
            SystemProfile::ligra_like(),
            Direction::Sparse,
            false,
        ),
        (
            "sparse_push_ligra_compressed",
            SystemProfile::ligra_like(),
            Direction::Sparse,
            true,
        ),
        (
            "sparse_partitioned",
            SystemProfile::graphgrind_like(EdgeOrder::Csr),
            Direction::Sparse,
            false,
        ),
    ];
    for (name, profile, force, compress) in cases {
        let exec = Executor::new(profile).with_direction(force);
        let pg = PreparedGraph::builder(g.clone())
            .profile(profile)
            .compress(compress)
            .build()
            .unwrap();
        let frontier = if force == Direction::Sparse {
            Frontier::from_vertices(n, (0..200u32).map(|i| i * 13 % n as u32).collect())
        } else {
            Frontier::all(n)
        };
        let op = TouchOp {
            seen: (0..n).map(|_| AtomicU32::new(0)).collect(),
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(exec.edge_map(&pg, &frontier, &op).1.total_edges()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_edgemap);
criterion_main!(benches);
