//! Criterion bench: vertex reordering cost (the left half of Table VI).
//!
//! VEBO's `O(n log P)` must sit orders of magnitude below RCM and Gorder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vebo_baselines::{DegreeSort, Gorder, RandomOrder, Rcm};
use vebo_core::{ArgMinStrategy, Vebo};
use vebo_graph::{Dataset, VertexOrdering};

fn bench_orderings(c: &mut Criterion) {
    let g = Dataset::LiveJournalLike.build(0.1);
    let mut group = c.benchmark_group("ordering");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    group.bench_function(BenchmarkId::new("vebo", 384), |b| {
        b.iter(|| black_box(Vebo::new(384).compute(&g)))
    });
    group.bench_function(BenchmarkId::new("vebo", 4), |b| {
        b.iter(|| black_box(Vebo::new(4).compute(&g)))
    });
    // Ablation (DESIGN.md §6): heap vs linear-scan argmin.
    group.bench_function("vebo_linear_argmin_384", |b| {
        b.iter(|| {
            black_box(
                Vebo::new(384)
                    .with_argmin(ArgMinStrategy::LinearScan)
                    .compute(&g),
            )
        })
    });
    group.bench_function("rcm", |b| b.iter(|| black_box(Rcm.compute(&g))));
    group.bench_function("gorder_faithful", |b| {
        b.iter(|| black_box(Gorder::new().compute(&g)))
    });
    group.bench_function("gorder_capped64", |b| {
        b.iter(|| black_box(Gorder::new().with_hub_cap(64).compute(&g)))
    });
    group.bench_function("degree_sort", |b| {
        b.iter(|| black_box(DegreeSort.compute(&g)))
    });
    group.bench_function("random", |b| {
        b.iter(|| black_box(RandomOrder::new(7).compute(&g)))
    });
    group.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
