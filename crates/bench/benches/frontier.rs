//! Criterion bench: frontier representation operations (Table II / IV
//! machinery: density classification, representation switches).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vebo_engine::Frontier;
use vebo_graph::Dataset;

fn bench_frontier(c: &mut Criterion) {
    let g = Dataset::LiveJournalLike.build(0.5);
    let n = g.num_vertices();
    let sparse = Frontier::from_vertices(n, (0..n as u32 / 50).map(|i| i * 50).collect());
    let dense = sparse.to_dense();
    let mut group = c.benchmark_group("frontier");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));

    group.bench_function("to_dense", |b| {
        b.iter(|| black_box(sparse.to_dense().len()))
    });
    group.bench_function("to_sparse", |b| {
        b.iter(|| black_box(dense.to_sparse().len()))
    });
    group.bench_function("active_out_degree_sparse", |b| {
        b.iter(|| black_box(sparse.active_out_degree(&g)))
    });
    group.bench_function("active_out_degree_dense", |b| {
        b.iter(|| black_box(dense.active_out_degree(&g)))
    });
    group.bench_function("density_class", |b| {
        b.iter(|| black_box(sparse.density_class(&g)))
    });
    group.bench_function("contains_dense", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for v in (0..n as u32).step_by(97) {
                hits += u32::from(dense.contains(v));
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_frontier);
criterion_main!(benches);
