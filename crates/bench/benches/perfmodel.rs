//! Criterion bench: micro-architecture simulator throughput (the cost of
//! regenerating Figure 4 / Table V).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vebo_graph::Dataset;
use vebo_partition::numa::NumaTopology;
use vebo_partition::PartitionBounds;
use vebo_perfmodel::{
    simulate_edgemap_pull, simulate_vertexmap, CacheConfig, CacheSim, NumaLayout, SimConfig,
};

fn bench_perfmodel(c: &mut Criterion) {
    let mut group = c.benchmark_group("perfmodel");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("cache_sim_1m_accesses", |b| {
        b.iter(|| {
            let mut sim = CacheSim::new(CacheConfig::default());
            let mut x = 1u64;
            for _ in 0..1_000_000 {
                x = vebo_graph::graph::mix64(x);
                sim.access(x % (1 << 26));
            }
            black_box(sim.misses())
        })
    });

    let g = Dataset::LiveJournalLike.build(0.1);
    let layout = NumaLayout::new(
        PartitionBounds::edge_balanced(&g, 384),
        NumaTopology::default(),
    );
    let cfg = SimConfig::default();
    group.bench_function("edgemap_pull_trace", |b| {
        b.iter(|| black_box(simulate_edgemap_pull(&g, &layout, &cfg).len()))
    });
    group.bench_function("vertexmap_trace", |b| {
        b.iter(|| black_box(simulate_vertexmap(&g, &layout, &cfg).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_perfmodel);
criterion_main!(benches);
