//! Criterion bench: the parallel reorder pipeline (VEBO placement +
//! permutation application) on an RMAT graph with >= 1M edges, at 1 and 4
//! rayon threads. Total work is `O(n + m)` regardless of thread count
//! (edge-chunked counting sorts), so on multi-core hardware the 4-thread
//! run must be measurably faster end-to-end; on a single hardware thread
//! the 4-thread run pays only thread spawn and base-table merge overhead.
//!
//! ```text
//! cargo bench --bench parallel_reorder
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vebo_core::Vebo;
use vebo_graph::gen::{rmat_graph, RmatConfig};
use vebo_graph::{ParMode, VertexOrdering};

fn bench_parallel_reorder(c: &mut Criterion) {
    // scale 17, edge factor 10: ~1.2M arcs after dedup, the smallest size
    // where the parallel paths engage under ParMode::Auto.
    let cfg = RmatConfig {
        scale: 17,
        edge_factor: 10,
        ..Default::default()
    };
    let g = rmat_graph(&cfg);
    assert!(
        g.num_edges() >= 1_000_000,
        "bench graph must have >= 1M edges, has {}",
        g.num_edges()
    );
    let partitions = 48;

    let mut group = c.benchmark_group("parallel_reorder");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        group.bench_function(BenchmarkId::new("vebo_end_to_end", threads), |b| {
            b.iter(|| {
                pool.install(|| {
                    let perm = Vebo::new(partitions).compute(&g);
                    black_box(perm.apply_graph(&g))
                })
            })
        });
        group.bench_function(BenchmarkId::new("csr_rebuild", threads), |b| {
            let perm = Vebo::new(partitions).compute(&g);
            b.iter(|| pool.install(|| black_box(perm.apply_graph(&g))))
        });
    }

    // The explicit-mode comparison isolates scatter parallelism from pool
    // management: forced-sequential vs forced-parallel inside one pool.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    for (label, mode) in [
        ("sequential", ParMode::Sequential),
        ("parallel", ParMode::Parallel),
    ] {
        group.bench_function(BenchmarkId::new("vebo_placement_mode", label), |b| {
            b.iter(|| pool.install(|| black_box(Vebo::new(partitions).with_mode(mode).compute(&g))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_reorder);
criterion_main!(benches);
