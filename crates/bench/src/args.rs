//! Minimal CLI argument parsing shared by all harness binaries.
//!
//! Every binary accepts:
//!
//! * `--scale <f64>` — dataset scale factor (1.0 = default sizes);
//! * `--quick` — shorthand for `--scale 0.1`;
//! * `--dataset <name>` — restrict to one dataset;
//! * `--cache <dir>` — cache generated datasets as binary `.vgr` files in
//!   `dir`, so repeated harness runs reload instantly through the
//!   streaming binary loader instead of regenerating;
//! * `--mmap` — reload `.vgr` cache snapshots through the zero-copy
//!   memory-mapped loader instead of the buffered reader (only
//!   meaningful with `--cache`);
//! * `--compress` — attach delta-varint compressed neighbor lists to
//!   loaded/built graphs, so the engine's pull/push kernels stream the
//!   compressed working set (results are bit-identical);
//! * `--partitions <n>` — override the partition count;
//! * `--threads <n>` — simulated machine threads (default 48);
//! * `--executor <sequential|rayon|sharded>` — which engine backend runs
//!   tasks (default sequential: the measured mode; per-task timings under
//!   the concurrent backends are noisy);
//! * `--shards <n>` — shard count for `--executor sharded` (default 4);
//! * `--parallel` — shorthand for `--executor rayon` (kept from before
//!   the sharded backend existed);
//! * `--help` — usage.

use std::path::PathBuf;
use vebo_engine::{ExecMode, Executor, SystemProfile};
use vebo_graph::io::{self, Format};
use vebo_graph::{Dataset, Graph};

/// Parsed harness options.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// `--scale`: dataset scale factor (1.0 = default sizes).
    pub scale: f64,
    /// Whether `--scale`/`--quick` was given (binaries with expensive
    /// cross products pick a smaller default when it was not).
    pub scale_explicit: bool,
    /// `--dataset`: restrict to one dataset.
    pub dataset: Option<Dataset>,
    /// `--cache`: directory for binary `.vgr` dataset snapshots.
    pub cache: Option<PathBuf>,
    /// `--mmap`: reload cache snapshots via the zero-copy mapped loader.
    pub mmap: bool,
    /// `--compress`: attach compressed neighbor lists to built graphs.
    pub compress: bool,
    /// `--partitions`: partition count override.
    pub partitions: Option<usize>,
    /// `--threads`: simulated machine threads.
    pub threads: usize,
    /// `--executor` / `--parallel`: which engine backend runs tasks.
    pub exec_mode: ExecMode,
    /// `--extended`: include the extension orderings/strategies
    /// (SlashBurn, METIS-like) where the binary supports them.
    pub extended: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 1.0,
            scale_explicit: false,
            dataset: None,
            cache: None,
            mmap: false,
            compress: false,
            partitions: None,
            threads: 48,
            exec_mode: ExecMode::Sequential,
            extended: false,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args`, exiting with usage on `--help` or errors.
    pub fn parse(binary: &str, description: &str) -> HarnessArgs {
        Self::parse_from(binary, description, std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(
        binary: &str,
        description: &str,
        args: impl IntoIterator<Item = String>,
    ) -> HarnessArgs {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().unwrap_or_else(|| usage_exit(binary, description));
                    out.scale = v
                        .parse()
                        .unwrap_or_else(|_| usage_exit(binary, description));
                    out.scale_explicit = true;
                }
                "--quick" => {
                    out.scale = 0.1;
                    out.scale_explicit = true;
                }
                "--dataset" => {
                    let v = it.next().unwrap_or_else(|| usage_exit(binary, description));
                    match Dataset::from_name(&v) {
                        Some(d) => out.dataset = Some(d),
                        None => {
                            eprintln!(
                                "unknown dataset '{v}'; known: {:?}",
                                Dataset::ALL.map(|d| d.name())
                            );
                            std::process::exit(2);
                        }
                    }
                }
                "--cache" => {
                    let v = it.next().unwrap_or_else(|| usage_exit(binary, description));
                    out.cache = Some(PathBuf::from(v));
                }
                "--partitions" => {
                    let v = it.next().unwrap_or_else(|| usage_exit(binary, description));
                    out.partitions = Some(
                        v.parse()
                            .unwrap_or_else(|_| usage_exit(binary, description)),
                    );
                }
                "--threads" => {
                    let v = it.next().unwrap_or_else(|| usage_exit(binary, description));
                    out.threads = v
                        .parse()
                        .unwrap_or_else(|_| usage_exit(binary, description));
                }
                "--mmap" => out.mmap = true,
                "--compress" => out.compress = true,
                "--parallel" => out.exec_mode = ExecMode::Parallel,
                "--executor" => {
                    let v = it.next().unwrap_or_else(|| usage_exit(binary, description));
                    out.exec_mode = match v.as_str() {
                        "sequential" | "seq" => ExecMode::Sequential,
                        "rayon" | "parallel" => ExecMode::Parallel,
                        "sharded" => match out.exec_mode {
                            // Keep a shard count a preceding --shards set.
                            ExecMode::Sharded { shards } => ExecMode::Sharded { shards },
                            _ => ExecMode::Sharded { shards: 4 },
                        },
                        other => {
                            eprintln!(
                                "unknown executor '{other}'; known: sequential, rayon, sharded"
                            );
                            std::process::exit(2);
                        }
                    };
                }
                "--shards" => {
                    let v = it.next().unwrap_or_else(|| usage_exit(binary, description));
                    let shards: usize = v
                        .parse()
                        .ok()
                        .filter(|&s| s >= 1)
                        .unwrap_or_else(|| usage_exit(binary, description));
                    out.exec_mode = ExecMode::Sharded { shards };
                }
                "--extended" => out.extended = true,
                "--help" | "-h" => {
                    println!("{}", usage(binary, description));
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument '{other}'");
                    eprintln!("{}", usage(binary, description));
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// The scale to use, with a binary-specific default when the user
    /// did not pass `--scale`/`--quick`.
    pub fn scale_or(&self, default: f64) -> f64 {
        if self.scale_explicit {
            self.scale
        } else {
            default
        }
    }

    /// Builds (or reloads) `dataset` at `scale`, honoring `--cache`: with
    /// a cache directory, the first build is snapshotted as a binary
    /// `.vgr` file and later runs stream it back instead of regenerating
    /// (zero-copy memory-mapped when `--mmap` is set). Generators are
    /// deterministic, so a cache hit is bit-identical to a rebuild.
    pub fn build_dataset(&self, dataset: Dataset, scale: f64) -> Graph {
        let g = self.build_dataset_plain(dataset, scale);
        if self.compress {
            g.with_compressed()
        } else {
            g
        }
    }

    /// [`Self::build_dataset`] without the `--compress` post-processing
    /// (cache snapshots always store the plain representation, so cached
    /// files stay byte-identical whether or not `--compress` is set).
    fn build_dataset_plain(&self, dataset: Dataset, scale: f64) -> Graph {
        let Some(dir) = &self.cache else {
            return dataset.build(scale);
        };
        let path = dir.join(format!("{}-s{scale}.vgr", dataset.name()));
        if path.exists() {
            let mode = if self.mmap {
                io::LoadMode::Mmap
            } else {
                io::LoadMode::Buffered
            };
            match io::load_graph_with(&path, dataset.spec().directed, Some(Format::Binary), mode) {
                Ok((g, _)) => return g,
                Err(e) => eprintln!("warning: ignoring unreadable cache {}: {e}", path.display()),
            }
        }
        let g = dataset.build(scale);
        if let Err(e) = std::fs::create_dir_all(dir)
            .map_err(vebo_graph::GraphError::from)
            .and_then(|()| io::save_graph(&g, &path, Format::Binary))
        {
            eprintln!("warning: cannot cache {}: {e}", path.display());
        }
        g
    }

    /// The [`Executor`] every harness runs algorithms through: built for
    /// `profile`, honoring `--executor`/`--shards`/`--parallel`. One
    /// construction path for every binary, so execution policy never
    /// drifts between tables. Selecting the sharded backend spawns its
    /// long-lived workers here.
    pub fn executor(&self, profile: SystemProfile) -> Executor {
        Executor::new(profile).with_mode(self.exec_mode)
    }

    /// Datasets selected by `--dataset`, or all of them.
    pub fn datasets(&self) -> Vec<Dataset> {
        match self.dataset {
            Some(d) => vec![d],
            None => Dataset::ALL.to_vec(),
        }
    }
}

fn usage(binary: &str, description: &str) -> String {
    format!(
        "{binary} — {description}\n\nOptions:\n  --scale <f>      dataset scale factor (default 1.0)\n  --quick          same as --scale 0.1\n  --dataset <name> one of {:?}\n  --cache <dir>    cache datasets as binary .vgr files in <dir>\n  --mmap           reload .vgr cache snapshots via zero-copy mmap\n  --compress       run kernels over delta-varint compressed neighbor lists\n  --partitions <n> partition count override\n  --threads <n>    simulated threads (default 48)\n  --executor <b>   engine backend: sequential | rayon | sharded\n  --shards <n>     shard count (implies --executor sharded; default 4)\n  --parallel       shorthand for --executor rayon\n  --extended       include extension orderings where supported\n  --help           this text",
        Dataset::ALL.map(|d| d.name())
    )
}

fn usage_exit(binary: &str, description: &str) -> ! {
    eprintln!("{}", usage(binary, description));
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> HarnessArgs {
        HarnessArgs::parse_from("t", "test", args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.threads, 48);
        assert!(a.dataset.is_none());
        assert_eq!(a.datasets().len(), 8);
    }

    #[test]
    fn quick_sets_scale() {
        assert_eq!(parse(&["--quick"]).scale, 0.1);
    }

    #[test]
    fn compress_attaches_companion_to_built_graphs() {
        use vebo_graph::StorageKind;
        assert!(!parse(&[]).compress);
        let args = parse(&["--compress"]);
        assert!(args.compress);
        let g = args.build_dataset(Dataset::YahooLike, 0.02);
        assert_eq!(g.storage_kind(), StorageKind::Compressed);
        // Structure is unchanged by compression.
        let plain = parse(&[]).build_dataset(Dataset::YahooLike, 0.02);
        assert_eq!(plain.csr().targets(), g.csr().targets());
    }

    #[test]
    fn executor_flags_select_backend() {
        use vebo_engine::ExecMode;
        let profile = vebo_engine::SystemProfile::ligra_like();
        assert_eq!(parse(&[]).executor(profile).mode(), ExecMode::Sequential);
        assert_eq!(
            parse(&["--parallel"]).executor(profile).mode(),
            ExecMode::Parallel
        );
        assert_eq!(
            parse(&["--executor", "rayon"]).executor(profile).mode(),
            ExecMode::Parallel
        );
        assert_eq!(
            parse(&["--executor", "sharded"]).executor(profile).mode(),
            ExecMode::Sharded { shards: 4 }
        );
        // --shards implies the sharded backend, in either flag order.
        assert_eq!(
            parse(&["--shards", "7"]).executor(profile).mode(),
            ExecMode::Sharded { shards: 7 }
        );
        assert_eq!(
            parse(&["--shards", "7", "--executor", "sharded"])
                .executor(profile)
                .mode(),
            ExecMode::Sharded { shards: 7 }
        );
    }

    #[test]
    fn cache_round_trips_datasets() {
        let dir = std::env::temp_dir().join("vebo-bench-cache-test");
        std::fs::remove_dir_all(&dir).ok();
        let args = parse(&["--cache", dir.to_str().unwrap()]);
        assert_eq!(args.cache.as_deref(), Some(dir.as_path()));
        // First build populates the cache, second streams it back; both
        // must be bit-identical to an uncached build.
        let fresh = Dataset::YahooLike.build(0.02);
        let first = args.build_dataset(Dataset::YahooLike, 0.02);
        assert!(dir.join("yahoo_mem-s0.02.vgr").exists());
        let second = args.build_dataset(Dataset::YahooLike, 0.02);
        for g in [&first, &second] {
            assert_eq!(g.csr().offsets(), fresh.csr().offsets());
            assert_eq!(g.csr().targets(), fresh.csr().targets());
            assert_eq!(g.is_directed(), fresh.is_directed());
        }
        // Without --cache, nothing new is written.
        let plain = parse(&[]).build_dataset(Dataset::YahooLike, 0.02);
        assert_eq!(plain.csr().targets(), fresh.csr().targets());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_cache_reload_matches_buffered() {
        use vebo_graph::StorageKind;
        let dir = std::env::temp_dir().join("vebo-bench-mmap-cache-test");
        std::fs::remove_dir_all(&dir).ok();
        let buffered = parse(&["--cache", dir.to_str().unwrap()]);
        let mapped = parse(&["--cache", dir.to_str().unwrap(), "--mmap"]);
        assert!(mapped.mmap && !buffered.mmap);
        // First call populates the cache (built graph: owned storage).
        let first = buffered.build_dataset(Dataset::YahooLike, 0.02);
        assert_eq!(first.storage_kind(), StorageKind::Owned);
        // A --mmap reload is bit-identical and zero-copy where supported.
        let remapped = mapped.build_dataset(Dataset::YahooLike, 0.02);
        assert_eq!(first.csr().offsets(), remapped.csr().offsets());
        assert_eq!(first.csr().targets(), remapped.csr().targets());
        if cfg!(all(target_endian = "little", target_pointer_width = "64")) {
            assert_eq!(remapped.storage_kind(), StorageKind::Mapped);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explicit_values() {
        let a = parse(&[
            "--scale",
            "0.5",
            "--dataset",
            "twitter",
            "--partitions",
            "64",
            "--threads",
            "16",
        ]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.dataset, Some(Dataset::TwitterLike));
        assert_eq!(a.partitions, Some(64));
        assert_eq!(a.threads, 16);
        assert_eq!(a.datasets(), vec![Dataset::TwitterLike]);
    }
}
