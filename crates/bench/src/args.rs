//! Minimal CLI argument parsing shared by all harness binaries.
//!
//! Every binary accepts:
//!
//! * `--scale <f64>` — dataset scale factor (1.0 = default sizes);
//! * `--quick` — shorthand for `--scale 0.1`;
//! * `--dataset <name>` — restrict to one dataset;
//! * `--partitions <n>` — override the partition count;
//! * `--threads <n>` — simulated machine threads (default 48);
//! * `--help` — usage.

use vebo_graph::Dataset;

/// Parsed harness options.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// `--scale`: dataset scale factor (1.0 = default sizes).
    pub scale: f64,
    /// Whether `--scale`/`--quick` was given (binaries with expensive
    /// cross products pick a smaller default when it was not).
    pub scale_explicit: bool,
    /// `--dataset`: restrict to one dataset.
    pub dataset: Option<Dataset>,
    /// `--partitions`: partition count override.
    pub partitions: Option<usize>,
    /// `--threads`: simulated machine threads.
    pub threads: usize,
    /// `--extended`: include the extension orderings/strategies
    /// (SlashBurn, METIS-like) where the binary supports them.
    pub extended: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 1.0,
            scale_explicit: false,
            dataset: None,
            partitions: None,
            threads: 48,
            extended: false,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args`, exiting with usage on `--help` or errors.
    pub fn parse(binary: &str, description: &str) -> HarnessArgs {
        Self::parse_from(binary, description, std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(
        binary: &str,
        description: &str,
        args: impl IntoIterator<Item = String>,
    ) -> HarnessArgs {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().unwrap_or_else(|| usage_exit(binary, description));
                    out.scale = v
                        .parse()
                        .unwrap_or_else(|_| usage_exit(binary, description));
                    out.scale_explicit = true;
                }
                "--quick" => {
                    out.scale = 0.1;
                    out.scale_explicit = true;
                }
                "--dataset" => {
                    let v = it.next().unwrap_or_else(|| usage_exit(binary, description));
                    match Dataset::from_name(&v) {
                        Some(d) => out.dataset = Some(d),
                        None => {
                            eprintln!(
                                "unknown dataset '{v}'; known: {:?}",
                                Dataset::ALL.map(|d| d.name())
                            );
                            std::process::exit(2);
                        }
                    }
                }
                "--partitions" => {
                    let v = it.next().unwrap_or_else(|| usage_exit(binary, description));
                    out.partitions = Some(
                        v.parse()
                            .unwrap_or_else(|_| usage_exit(binary, description)),
                    );
                }
                "--threads" => {
                    let v = it.next().unwrap_or_else(|| usage_exit(binary, description));
                    out.threads = v
                        .parse()
                        .unwrap_or_else(|_| usage_exit(binary, description));
                }
                "--extended" => out.extended = true,
                "--help" | "-h" => {
                    println!("{}", usage(binary, description));
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument '{other}'");
                    eprintln!("{}", usage(binary, description));
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// The scale to use, with a binary-specific default when the user
    /// did not pass `--scale`/`--quick`.
    pub fn scale_or(&self, default: f64) -> f64 {
        if self.scale_explicit {
            self.scale
        } else {
            default
        }
    }

    /// Datasets selected by `--dataset`, or all of them.
    pub fn datasets(&self) -> Vec<Dataset> {
        match self.dataset {
            Some(d) => vec![d],
            None => Dataset::ALL.to_vec(),
        }
    }
}

fn usage(binary: &str, description: &str) -> String {
    format!(
        "{binary} — {description}\n\nOptions:\n  --scale <f>      dataset scale factor (default 1.0)\n  --quick          same as --scale 0.1\n  --dataset <name> one of {:?}\n  --partitions <n> partition count override\n  --threads <n>    simulated threads (default 48)\n  --extended       include extension orderings where supported\n  --help           this text",
        Dataset::ALL.map(|d| d.name())
    )
}

fn usage_exit(binary: &str, description: &str) -> ! {
    eprintln!("{}", usage(binary, description));
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> HarnessArgs {
        HarnessArgs::parse_from("t", "test", args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.threads, 48);
        assert!(a.dataset.is_none());
        assert_eq!(a.datasets().len(), 8);
    }

    #[test]
    fn quick_sets_scale() {
        assert_eq!(parse(&["--quick"]).scale, 0.1);
    }

    #[test]
    fn explicit_values() {
        let a = parse(&[
            "--scale",
            "0.5",
            "--dataset",
            "twitter",
            "--partitions",
            "64",
            "--threads",
            "16",
        ]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.dataset, Some(Dataset::TwitterLike));
        assert_eq!(a.partitions, Some(64));
        assert_eq!(a.threads, 16);
        assert_eq!(a.datasets(), vec![Dataset::TwitterLike]);
    }
}
