//! Figure 6: processing speed as a function of in-degree (§V-G):
//! (a) the high-to-low degree order under Hilbert edge order vs VEBO, and
//! (b) the high-to-low order under Hilbert vs CSR edge order —
//! one PageRank iteration, per-partition times.
//!
//! Writes the per-partition series to `results/fig06_*.csv`.
//!
//! ```text
//! cargo run --release -p vebo-bench --bin fig06_hilbert_csr -- --quick
//! ```

use vebo_bench::pipeline::{ordered_graph, ordered_with_starts, pr_partition_nanos};
use vebo_bench::table::write_csv;
use vebo_bench::{HarnessArgs, OrderingKind, Table};
use vebo_core::balance::summarize;
use vebo_graph::Dataset;
use vebo_partition::EdgeOrder;

fn quartile_row(label: &str, nanos: &[f64]) -> Vec<String> {
    let q = nanos.len() / 4;
    let quarter = |lo: usize, hi: usize| {
        let s: f64 = nanos[lo..hi].iter().sum();
        s / (hi - lo) as f64 / 1e3
    };
    let s = summarize(nanos);
    vec![
        label.to_string(),
        format!("{:.1}", quarter(0, q.max(1))),
        format!("{:.1}", quarter(q, (2 * q).max(q + 1))),
        format!("{:.1}", quarter(2 * q, (3 * q).max(2 * q + 1))),
        format!("{:.1}", quarter(3 * q, nanos.len())),
        format!("{:.1}", s.mean / 1e3),
    ]
}

fn main() {
    let args = HarnessArgs::parse(
        "fig06_hilbert_csr",
        "Figure 6: high-to-low order, Hilbert vs CSR",
    );
    let p = args.partitions.unwrap_or(384);
    let dataset = args.dataset.unwrap_or(Dataset::TwitterLike);
    println!(
        "== Figure 6: PR (1 iteration) on {} — per-partition mean time by quartile of\n\
         partition id (first quartile holds the highest-degree vertices), P = {p}, scale {} ==\n",
        dataset.name(),
        args.scale
    );

    let g = args.build_dataset(dataset, args.scale);
    let (high_to_low, _) = ordered_graph(&g, OrderingKind::HighToLow, p);
    let (vebo_g, vebo_starts, _) = ordered_with_starts(&g, OrderingKind::Vebo, p);

    let cases: [(&str, &vebo_graph::Graph, EdgeOrder, Option<&[usize]>); 3] = [
        (
            "High-to-low, Hilbert",
            &high_to_low,
            EdgeOrder::Hilbert,
            None,
        ),
        ("High-to-low, CSR", &high_to_low, EdgeOrder::Csr, None),
        ("VEBO, CSR", &vebo_g, EdgeOrder::Csr, vebo_starts.as_deref()),
    ];
    let mut t = Table::new(&["Case", "Q1 us", "Q2 us", "Q3 us", "Q4 us", "mean us"]);
    for (label, graph, order, st) in cases {
        let nanos: Vec<f64> = pr_partition_nanos(graph, p, order, 20, st)
            .iter()
            .map(|&n| n as f64)
            .collect();
        t.row(&quartile_row(label, &nanos));
        let slug = label
            .to_lowercase()
            .replace([' ', ','], "_")
            .replace("__", "_");
        let rows = nanos
            .iter()
            .enumerate()
            .map(|(i, n)| vec![i.to_string(), format!("{n}")]);
        write_csv(
            &format!("results/fig06_{slug}.csv"),
            &["partition", "nanos"],
            rows,
        )
        .expect("write csv");
    }
    t.print();
    println!(
        "\nPaper (6a): under high-to-low order the *last* partitions (exclusively\n\
         degree-1 vertices) run up to 3x slower than VEBO's mixed-degree\n\
         partitions. (6b): for the high-degree partitions CSR order beats Hilbert\n\
         order — which is why VEBO ships with CSR-ordered COO."
    );
}
