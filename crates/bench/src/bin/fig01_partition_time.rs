//! Figure 1: per-partition processing time of one PageRank iteration as a
//! function of the partition's edges, destination vertices, and source
//! vertices — original order vs VEBO, 384 partitions, COO traversal.
//!
//! Prints distribution summaries and writes the full per-partition series
//! to `results/fig01_<dataset>.csv` for plotting.
//!
//! ```text
//! cargo run --release -p vebo-bench --bin fig01_partition_time -- --quick
//! ```

use vebo_bench::pipeline::{ordered_with_starts, pr_partition_nanos};
use vebo_bench::table::write_csv;
use vebo_bench::{HarnessArgs, OrderingKind, Table};
use vebo_core::balance::summarize;
use vebo_graph::{Dataset, Graph};
use vebo_partition::stats::per_partition;
use vebo_partition::{EdgeOrder, PartitionBounds};

/// Iterations aggregated per partition so the wall-clock signal rises
/// above timer noise at reduced scale.
const REPEATS: usize = 20;

fn series(g: &Graph, p: usize, starts: Option<&[usize]>) -> Vec<Vec<String>> {
    let bounds = match starts {
        Some(s) => PartitionBounds::from_starts(s.to_vec()),
        None => PartitionBounds::edge_balanced(g, p),
    };
    let stats = per_partition(g, &bounds);
    let nanos = pr_partition_nanos(g, p, EdgeOrder::Hilbert, REPEATS, starts);
    stats
        .iter()
        .zip(&nanos)
        .enumerate()
        .map(|(i, (s, t))| {
            vec![
                i.to_string(),
                s.edges.to_string(),
                s.destinations.to_string(),
                s.unique_sources.to_string(),
                t.to_string(),
            ]
        })
        .collect()
}

fn main() {
    let args = HarnessArgs::parse(
        "fig01_partition_time",
        "Figure 1: per-partition time vs edges/dests/sources",
    );
    let p = args.partitions.unwrap_or(384);
    let datasets = match args.dataset {
        Some(d) => vec![d],
        None => vec![Dataset::TwitterLike, Dataset::FriendsterLike],
    };
    println!("== Figure 1: per-partition PR time (min over {REPEATS} iterations, {p} partitions, Hilbert COO, scale {}) ==\n", args.scale);

    let mut t = Table::new(&[
        "Graph",
        "Order",
        "time min(us)",
        "time mean(us)",
        "time max(us)",
        "spread",
        "edges s.d.",
        "dests s.d.",
    ]);
    for dataset in datasets {
        let g = args.build_dataset(dataset, args.scale);
        let (vebo_g, starts, _) = ordered_with_starts(&g, OrderingKind::Vebo, p);
        for (label, graph, st) in [("Original", &g, None), ("VEBO", &vebo_g, starts.as_deref())] {
            let rows = series(graph, p, st);
            let nanos: Vec<f64> = rows.iter().map(|r| r[4].parse::<f64>().unwrap()).collect();
            let edges: Vec<f64> = rows.iter().map(|r| r[1].parse::<f64>().unwrap()).collect();
            let dests: Vec<f64> = rows.iter().map(|r| r[2].parse::<f64>().unwrap()).collect();
            let ts = summarize(&nanos);
            let spread = if ts.min > 0.0 {
                ts.max / ts.min
            } else {
                f64::INFINITY
            };
            t.row(&[
                dataset.name().into(),
                label.into(),
                format!("{:.1}", ts.min / 1e3),
                format!("{:.1}", ts.mean / 1e3),
                format!("{:.1}", ts.max / 1e3),
                format!("{spread:.2}x"),
                format!("{:.0}", summarize(&edges).std_dev),
                format!("{:.1}", summarize(&dests).std_dev),
            ]);
            let path = format!(
                "results/fig01_{}_{}.csv",
                dataset.name(),
                label.to_lowercase()
            );
            write_csv(
                &path,
                &["partition", "edges", "destinations", "sources", "nanos"],
                rows,
            )
            .expect("write csv");
            println!("wrote {path}");
        }
    }
    println!();
    t.print();
    println!(
        "\nPaper: both orders are edge-balanced, but the original order's partition\n\
         times vary 6.9x (Twitter) / 2x (Friendster) because destination counts\n\
         vary; VEBO cuts the spread to 1.6x / 1.4x by balancing both."
    );
}
