//! Extension study: partitioner quality grid.
//!
//! Compares the paper's chunk partitioning (Algorithm 1 on the original
//! and on the VEBO order) against the distributed-partitioning families
//! §VI surveys — hash, LDG, Fennel, METIS-like multilevel (vertex
//! assignments) and PowerGraph greedy / PowerLyra hybrid (edge
//! placements) — on every dataset. Reported per strategy:
//!
//! * cut fraction and replication factor (communication cost),
//! * vertex and edge imbalance (the paper's load-balance criteria),
//! * partitioning time.
//!
//! The expected picture, recorded in EXPERIMENTS.md: VEBO is the only
//! strategy with perfect vertex *and* edge balance; the cut-optimizing
//! strategies pay an imbalance penalty (and vice versa).
//!
//! ```text
//! cargo run --release -p vebo-bench --bin ext_partitioners -- --quick
//! ```

use std::time::Instant;
use vebo_bench::{HarnessArgs, Table};
use vebo_distributed::vertex_cut::random_edge_placement;
use vebo_distributed::{GreedyVertexCut, HybridCut, Strategy};
use vebo_graph::degree::vertices_by_decreasing_in_degree;
use vebo_graph::Dataset;

fn main() {
    let args = HarnessArgs::parse(
        "ext_partitioners",
        "partitioner quality grid: chunk/VEBO vs streaming/multilevel/vertex-cut",
    );
    let scale = args.scale_or(0.3);
    let workers = args.partitions.unwrap_or(16);
    println!("== Partitioner quality at P = {workers}, scale {scale} ==\n");

    for dataset in args.datasets() {
        let g = args.build_dataset(dataset, scale);
        println!(
            "--- {} ({} vertices, {} edges) ---",
            dataset.name(),
            g.num_vertices(),
            g.num_edges()
        );

        let mut t = Table::new(&[
            "strategy",
            "cut %",
            "repl.",
            "vert imb",
            "edge imb",
            "time (ms)",
        ]);
        for s in Strategy::ALL {
            let t0 = Instant::now();
            let (h, asg) = s.realize(&g, workers);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let q = asg.quality(&h);
            t.row(&[
                s.name().into(),
                format!("{:.1}", 100.0 * q.cut_fraction()),
                format!("{:.2}", q.replication_factor),
                format!("{:.3}", q.vertex_imbalance),
                format!("{:.3}", q.edge_imbalance),
                format!("{ms:.1}"),
            ]);
        }
        t.print();

        // Edge placements (vertex cuts) have replication factor as the
        // headline and edge load balance as the secondary metric.
        let theta = (g.num_edges() / g.num_vertices().max(1)).max(1);
        let mut t = Table::new(&["edge placement", "repl.", "edge imb", "time (ms)"]);
        let mut add = |name: &str, f: &mut dyn FnMut() -> vebo_distributed::EdgePlacement| {
            let t0 = Instant::now();
            let p = f();
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            t.row(&[
                name.into(),
                format!("{:.2}", p.replication_factor()),
                format!("{:.3}", p.load_imbalance()),
                format!("{ms:.1}"),
            ]);
        };
        add("Random edges", &mut || {
            random_edge_placement(&g, workers.min(64)).expect("worker count capped at 64")
        });
        add("Greedy (id order)", &mut || {
            GreedyVertexCut
                .place(&g, workers.min(64))
                .expect("worker count capped at 64")
        });
        add("Greedy (degree desc)", &mut || {
            let order = vertices_by_decreasing_in_degree(&g);
            GreedyVertexCut
                .place_with_source_order(&g, workers.min(64), &order)
                .expect("worker count capped at 64")
        });
        add(&format!("Hybrid-cut (deg>{theta})"), &mut || {
            HybridCut::new(theta)
                .place(&g, workers.min(64))
                .expect("worker count capped at 64")
        });
        t.print();
        println!();
    }

    let _ = Dataset::ALL; // silence potential unused warnings on filtered runs
}
