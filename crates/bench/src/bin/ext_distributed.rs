//! Extension study: the paper's §VII future-work question.
//!
//! *"In future work, we will investigate whether distributed graph
//! processing systems, which typically use static scheduling, also
//! benefit from increased load balance even if this comes at the expense
//! of a small increase in vertex replication, and thus an increase in the
//! volume of data communication."*
//!
//! For each placement strategy this harness simulates PageRank (dense,
//! edge-oriented) and BFS (sparse frontiers, vertex-oriented) on a BSP
//! cluster with statically bound workers, then prints compute makespan,
//! communication time and total time. The second table tests the §VII
//! side-conjecture on PowerLyra-style partitioning: streaming the greedy
//! vertex-cut with high-degree vertices first.
//!
//! ```text
//! cargo run --release -p vebo-bench --bin ext_distributed -- --quick
//! ```

use vebo_algorithms::default_source;
use vebo_bench::{HarnessArgs, Table};
use vebo_distributed::{evaluate, ClusterConfig, GreedyVertexCut, Strategy};
use vebo_graph::degree::vertices_by_decreasing_in_degree;
use vebo_graph::Dataset;

fn main() {
    let args = HarnessArgs::parse(
        "ext_distributed",
        "§VII study: VEBO load balance vs replication on a simulated BSP cluster",
    );
    let scale = args.scale_or(0.3);
    let workers = args.partitions.unwrap_or(16);
    let cfg = ClusterConfig {
        workers,
        ..Default::default()
    };
    let pr_iters = 10;
    let datasets = match args.dataset {
        Some(d) => vec![d],
        None => vec![
            Dataset::TwitterLike,
            Dataset::FriendsterLike,
            Dataset::UsaRoadLike,
        ],
    };
    println!(
        "== §VII study: {} workers, PR x{pr_iters} + BFS, scale {scale} ==\n\
         (cost model: edge 1.0, vertex 1.0, remote value {}, barrier {})\n",
        workers, cfg.per_value_cost, cfg.superstep_latency
    );

    for dataset in datasets {
        let g = args.build_dataset(dataset, scale);
        let src = default_source(&g);
        println!(
            "--- {} ({} vertices, {} edges) ---",
            dataset.name(),
            g.num_vertices(),
            g.num_edges()
        );
        let mut t = Table::new(&[
            "strategy",
            "repl.",
            "cut %",
            "edge imb",
            "PR compute",
            "PR comm",
            "PR total",
            "BFS total",
            "BFS steps",
        ]);
        let mut baseline_pr = None;
        for s in Strategy::ALL {
            let row = evaluate(s, &g, &cfg, pr_iters, src).expect("validated cluster config");
            let base = *baseline_pr.get_or_insert(row.pr_total);
            t.row(&[
                row.strategy.into(),
                format!("{:.2}", row.replication_factor),
                format!("{:.1}", 100.0 * row.cut_fraction),
                format!("{:.3}", row.edge_imbalance),
                format!("{:.0}", row.pr_compute),
                format!("{:.0}", row.pr_comm),
                format!("{:.0} ({:.2}x)", row.pr_total, base / row.pr_total),
                format!("{:.0}", row.bfs_total),
                row.bfs_supersteps.to_string(),
            ]);
        }
        t.print();
        println!();
    }

    // §VII side-conjecture: "it is easier to minimize the edge cut when
    // the high-degree vertices are processed first". Stream the greedy
    // vertex-cut in both orders. Replication factor alone can mislead —
    // hub-first streaming can collapse a densely connected graph onto one
    // machine (rf -> 1 but load imbalance -> P) — so both are printed.
    println!("--- Greedy vertex-cut stream order ---");
    let mut t = Table::new(&[
        "dataset",
        "rf (id)",
        "imb (id)",
        "rf (deg desc)",
        "imb (deg desc)",
        "rf change %",
    ]);
    for dataset in args.datasets() {
        let g = args.build_dataset(dataset, scale);
        let machines = workers.min(64);
        let natural = GreedyVertexCut
            .place(&g, machines)
            .expect("worker count capped at 64");
        let order = vertices_by_decreasing_in_degree(&g);
        let sorted = GreedyVertexCut
            .place_with_source_order(&g, machines, &order)
            .expect("worker count capped at 64");
        let (rn, rs) = (natural.replication_factor(), sorted.replication_factor());
        t.row(&[
            dataset.name().into(),
            format!("{rn:.3}"),
            format!("{:.2}", natural.load_imbalance()),
            format!("{rs:.3}"),
            format!("{:.2}", sorted.load_imbalance()),
            format!("{:+.1}", 100.0 * (rs - rn) / rn),
        ]);
    }
    t.print();
}
