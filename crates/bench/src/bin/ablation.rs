//! Ablation studies for the design choices DESIGN.md §6 calls out, plus
//! the paper's §VII future-work question (replication cost of VEBO for
//! distributed systems):
//!
//! 1. strict Algorithm 2 vs the locality-preserving blocked variant;
//! 2. heap vs linear-scan argmin (the `O(n log P)` claim);
//! 3. partition-count sweep (4 -> 384): balance and replication;
//! 4. direction-switch threshold sensitivity (|E|/20).
//!
//! ```text
//! cargo run --release -p vebo-bench --bin ablation -- --quick
//! ```

use std::time::Instant;
use vebo_algorithms::bfs::bfs;
use vebo_algorithms::default_source;
use vebo_bench::{HarnessArgs, Table};
use vebo_core::{ArgMinStrategy, Vebo, VeboVariant};
use vebo_engine::{PreparedGraph, SystemProfile};
use vebo_graph::{Dataset, VertexOrdering};
use vebo_partition::replication::replication;
use vebo_partition::{EdgeOrder, PartitionBounds};

fn main() {
    let args = HarnessArgs::parse(
        "ablation",
        "DESIGN.md §6 ablations + §VII replication study",
    );
    let dataset = args.dataset.unwrap_or(Dataset::TwitterLike);
    let scale = args.scale_or(0.5);
    let g = args.build_dataset(dataset, scale);
    println!(
        "== Ablations on {} ({} vertices, {} edges, scale {scale}) ==\n",
        dataset.name(),
        g.num_vertices(),
        g.num_edges()
    );

    // ---- 1. strict vs blocked variant ---------------------------------
    println!("(1) strict Algorithm 2 vs blocked (locality-preserving) variant:");
    let mut t = Table::new(&[
        "variant",
        "time (ms)",
        "edge imb",
        "vert imb",
        "id-adjacency kept",
    ]);
    for (name, variant) in [
        ("strict", VeboVariant::Strict),
        ("blocked", VeboVariant::Blocked),
    ] {
        let t0 = Instant::now();
        let r = Vebo::new(384).with_variant(variant).compute_full(&g);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let ei = r.edge_counts.iter().max().unwrap() - r.edge_counts.iter().min().unwrap();
        let vi = r.vertex_counts.iter().max().unwrap() - r.vertex_counts.iter().min().unwrap();
        // How many consecutive original ids stay in the same partition —
        // the locality §III-D's modification preserves.
        let kept = (0..g.num_vertices() - 1)
            .filter(|&v| r.assignment[v] == r.assignment[v + 1])
            .count();
        t.row(&[
            name.into(),
            format!("{ms:.2}"),
            ei.to_string(),
            vi.to_string(),
            format!(
                "{:.1}%",
                100.0 * kept as f64 / (g.num_vertices() - 1) as f64
            ),
        ]);
    }
    t.print();

    // ---- 2. heap vs linear-scan argmin --------------------------------
    println!("\n(2) argmin implementation (O(log P) heap vs O(P) scan), P sweep:");
    let mut t = Table::new(&["P", "heap (ms)", "linear (ms)"]);
    for p in [4usize, 48, 384, 3072] {
        let time = |strategy: ArgMinStrategy| {
            let t0 = Instant::now();
            let _ = Vebo::new(p).with_argmin(strategy).compute(&g);
            t0.elapsed().as_secs_f64() * 1e3
        };
        t.row(&[
            p.to_string(),
            format!("{:.2}", time(ArgMinStrategy::Heap)),
            format!("{:.2}", time(ArgMinStrategy::LinearScan)),
        ]);
    }
    t.print();

    // ---- 3. partition sweep: balance vs replication (§VII) ------------
    println!("\n(3) partition-count sweep — load balance vs replication (future work §VII):");
    let mut t = Table::new(&[
        "P",
        "edge imb",
        "vert imb",
        "repl. factor (orig)",
        "repl. factor (VEBO)",
        "cut % (VEBO)",
    ]);
    for p in [4usize, 16, 48, 96, 384] {
        let r = Vebo::new(p).compute_full(&g);
        let h = r.permutation.apply_graph(&g);
        let vebo_bounds = PartitionBounds::from_starts(r.starts.clone());
        let orig_rep = replication(&g, &PartitionBounds::edge_balanced(&g, p));
        let vebo_rep = replication(&h, &vebo_bounds);
        let ei = r.edge_counts.iter().max().unwrap() - r.edge_counts.iter().min().unwrap();
        let vi = r.vertex_counts.iter().max().unwrap() - r.vertex_counts.iter().min().unwrap();
        t.row(&[
            p.to_string(),
            ei.to_string(),
            vi.to_string(),
            format!("{:.2}", orig_rep.replication_factor),
            format!("{:.2}", vebo_rep.replication_factor),
            format!("{:.1}%", 100.0 * vebo_rep.cut_fraction()),
        ]);
    }
    t.print();
    println!(
        "   (The paper's future-work question: VEBO trades a modest replication\n\
          increase for optimal balance; distributed systems would pay this as\n\
          communication volume.)"
    );

    // ---- 4. direction threshold sensitivity ---------------------------
    println!("\n(4) direction-switch threshold (dense when |F| + outdeg(F) > m / D):");
    let mut t = Table::new(&["D", "BFS iters", "edges examined", "dense rounds"]);
    let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
    let pg = PreparedGraph::builder(g.clone())
        .profile(profile)
        .build()
        .unwrap();
    let src = default_source(&g);
    for den in [5usize, 20, 80, 320] {
        let exec = args.executor(profile).with_threshold_den(den);
        let (_, report) = bfs(&exec, &pg, src);
        let dense = report
            .edge_maps
            .iter()
            .filter(|r| r.traversal.is_dense())
            .count();
        t.row(&[
            den.to_string(),
            report.iterations.to_string(),
            report.total_edges().to_string(),
            dense.to_string(),
        ]);
    }
    t.print();
    println!(
        "   (Larger D = switch to dense earlier; the edge count examined moves\n\
          between push (active out-edges) and pull (all in-edges) regimes —\n\
          Ligra's D = 20 sits at the knee.)"
    );

    // ---- 5. synchronous vs asynchronous label propagation (§V-B) ------
    println!("\n(5) CC: synchronous vs asynchronous propagation, by vertex order (§V-B):");
    let road = args.build_dataset(Dataset::UsaRoadLike, scale);
    let mut t = Table::new(&[
        "graph",
        "order",
        "async rounds",
        "sync rounds",
        "async edges",
    ]);
    for (gname, base) in [("twitter-like", &g), ("usaroad-like", &road)] {
        for (oname, graph) in [
            ("original", base.clone()),
            ("VEBO", {
                let r = Vebo::new(384).compute_full(base);
                r.permutation.apply_graph(base)
            }),
            (
                "random",
                vebo_baselines::RandomOrder::new(7)
                    .compute(base)
                    .apply_graph(base),
            ),
        ] {
            let profile = SystemProfile::ligra_like();
            let pg = PreparedGraph::builder(graph)
                .profile(profile)
                .build()
                .unwrap();
            let exec = args.executor(profile);
            let (_, rep_a) = vebo_algorithms::cc::cc(&exec, &pg);
            let (_, rep_s) = vebo_algorithms::cc::cc_sync(&exec, &pg);
            t.row(&[
                gname.into(),
                oname.into(),
                rep_a.iterations.to_string(),
                rep_s.iterations.to_string(),
                rep_a.total_edges().to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "   (§V-B: asynchronous propagation forwards labels within a round;\n\
          the paper credits reordering with amplifying this acceleration,\n\
          which is why CC is the one algorithm VEBO helps on road networks.)"
    );
}
