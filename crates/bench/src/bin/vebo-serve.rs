//! `vebo-serve` — a serving-style request loop over one **mutable**
//! graph: batched PageRank-from-seed / PRD / BFS / label-lookup queries
//! interleaved with edge mutations, driven concurrently through any
//! executor backend.
//!
//! ```text
//! # 64 generated requests (~15% mutations), 4 shards, 8 request threads:
//! cargo run --release -p vebo-bench --bin vebo-serve -- \
//!     --quick --executor sharded --shards 4 --concurrency 8 --gen 64
//!
//! # replay a script (one request per line: `pr 3`, `add 1 2`, ...)
//! # and verify the final adjacency against an independent rebuild:
//! cargo run --release -p vebo-bench --bin vebo-serve -- \
//!     --requests batch.txt --executor rayon --concurrency 1 --verify-static
//! ```
//!
//! Per-request digests and the combined batch digest are printed on
//! stdout; on the default (partitioned) profiles, delta-free epochs make
//! them bit-identical across the sequential, rayon, and sharded
//! backends, which is exactly what the CI serve-smoke job diffs. Shard
//! metrics (queue depth, occupancy, steals), latency quantiles, and the
//! dynamic-graph counters (`compactions=`, `reorders=`, `epoch=`,
//! `epoch-age=`) go to stderr after the batch.

use std::collections::HashMap;
use vebo_bench::serve::{
    generate_requests, metrics_summary, parse_script, Request, ServeEngine, DEFAULT_COMPACT_EVERY,
    DEFAULT_DRIFT_THRESHOLD,
};
use vebo_bench::{shutdown, HarnessArgs, Table};
use vebo_engine::SystemProfile;
use vebo_graph::{Dataset, Graph};
use vebo_partition::EdgeOrder;

struct ServeArgs {
    harness: HarnessArgs,
    profile: SystemProfile,
    profile_name: String,
    concurrency: usize,
    requests_file: Option<String>,
    gen_count: usize,
    gen_seed: u64,
    ppr_rounds: usize,
    compact_every: usize,
    compact_async: bool,
    drift: f64,
    verify_static: bool,
}

fn usage() -> ! {
    // The request-line grammar is derived from `REQUEST_SPECS`, so this
    // text cannot drift from what `parse_request_line` accepts.
    let grammar = vebo::request_grammar();
    eprintln!(
        "vebo-serve — concurrent graph-query serving loop over a mutable graph\n\n\
         Serving options (plus every vebo-bench harness option):\n  \
         --profile <name>    ligra | polymer | graphgrind (default polymer)\n  \
         --concurrency <n>   request threads (default 4)\n  \
         --requests <file>   replay a script, one request per line:\n                      \
         {grammar}\n  \
         --gen <n>           generate a mixed workload of n requests (default 32)\n  \
         --seed <s>          workload generator seed (default 1)\n  \
         --ppr-rounds <k>    push rounds per PageRank-from-seed request (default 10)\n  \
         --compact-every <n> merge the delta log every n mutations (default {DEFAULT_COMPACT_EVERY})\n  \
         --compact-mode <m>  wait | async (default wait): whether the mutation that\n                      \
         trips --compact-every waits for the background compaction\n                      \
         cycle (deterministic counts) or returns immediately\n  \
         --drift <t>         per-partition edge-drift threshold that triggers a\n                      \
         placement reorder at compaction (default {DEFAULT_DRIFT_THRESHOLD})\n  \
         --verify-static     after the batch, compact and diff the adjacency against\n                      \
         an independently rebuilt static graph (use --concurrency 1\n                      \
         so the mutation order matches the script)\n\n\
         Digests on delta-free epochs are bit-stable across --executor\n\
         backends on the partitioned profiles (polymer, graphgrind)."
    );
    std::process::exit(2)
}

fn parse_args() -> ServeArgs {
    let mut out = ServeArgs {
        harness: HarnessArgs::default(),
        profile: SystemProfile::polymer_like(),
        profile_name: "polymer".to_string(),
        concurrency: 4,
        requests_file: None,
        gen_count: 32,
        gen_seed: 1,
        ppr_rounds: 10,
        compact_every: DEFAULT_COMPACT_EVERY,
        compact_async: false,
        drift: DEFAULT_DRIFT_THRESHOLD,
        verify_static: false,
    };
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--profile" => {
                let v = next("--profile");
                out.profile = match v.as_str() {
                    "ligra" => SystemProfile::ligra_like(),
                    "polymer" => SystemProfile::polymer_like(),
                    "graphgrind" => SystemProfile::graphgrind_like(EdgeOrder::Csr),
                    _ => {
                        eprintln!("unknown profile '{v}'");
                        usage()
                    }
                };
                out.profile_name = v;
            }
            "--concurrency" => {
                out.concurrency = next("--concurrency").parse().unwrap_or_else(|_| usage())
            }
            "--requests" => out.requests_file = Some(next("--requests")),
            "--gen" => out.gen_count = next("--gen").parse().unwrap_or_else(|_| usage()),
            "--seed" => out.gen_seed = next("--seed").parse().unwrap_or_else(|_| usage()),
            "--ppr-rounds" => {
                out.ppr_rounds = next("--ppr-rounds").parse().unwrap_or_else(|_| usage())
            }
            "--compact-every" => {
                out.compact_every = next("--compact-every").parse().unwrap_or_else(|_| usage());
                if out.compact_every == 0 {
                    eprintln!("--compact-every must be at least 1");
                    usage()
                }
            }
            "--compact-mode" => {
                out.compact_async = match next("--compact-mode").as_str() {
                    "wait" => false,
                    "async" => true,
                    other => {
                        eprintln!("unknown compact mode '{other}' (wait | async)");
                        usage()
                    }
                }
            }
            "--drift" => out.drift = next("--drift").parse().unwrap_or_else(|_| usage()),
            "--verify-static" => out.verify_static = true,
            "--help" | "-h" => usage(),
            other => rest.push(other.to_string()),
        }
    }
    out.harness =
        HarnessArgs::parse_from("vebo-serve", "concurrent graph-query serving loop", rest);
    out
}

/// Rebuilds the expected final graph independently of the dynamic-graph
/// machinery: the initial arc multiset, the script's mutations replayed
/// in order with the serving clamp semantics (an insert fires only when
/// the edge is absent, a delete only when present), and a from-scratch
/// `Graph::from_edges` build.
fn statically_rebuilt(g0: &Graph, requests: &[Request]) -> Graph {
    let directed = g0.is_directed();
    let n = g0.num_vertices();
    let nv = n.max(1) as u32;
    let norm = |u: u32, v: u32| if directed || u <= v { (u, v) } else { (v, u) };
    let mut counts: HashMap<(u32, u32), u64> = HashMap::new();
    for u in 0..n as u32 {
        for &v in g0.out_neighbors(u) {
            // Undirected CSR stores both arc directions (self-loops
            // once); count each edge once.
            if directed || u <= v {
                *counts.entry((u, v)).or_insert(0) += 1;
            }
        }
    }
    for req in requests {
        match *req {
            Request::AddEdge { u, v } => {
                let c = counts.entry(norm(u % nv, v % nv)).or_insert(0);
                if *c == 0 {
                    *c = 1;
                }
            }
            Request::DelEdge { u, v } => {
                if let Some(c) = counts.get_mut(&norm(u % nv, v % nv)) {
                    *c = c.saturating_sub(1);
                }
            }
            _ => {}
        }
    }
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (&(u, v), &c) in &counts {
        for _ in 0..c {
            edges.push((u, v));
        }
    }
    edges.sort_unstable();
    Graph::from_edges(n, &edges, directed)
}

fn main() {
    let args = parse_args();
    let dataset = args.harness.dataset.unwrap_or(Dataset::LiveJournalLike);
    let scale = args.harness.scale_or(0.2);
    let g = args.harness.build_dataset(dataset, scale);
    let n = g.num_vertices();
    let requests = match &args.requests_file {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            parse_script(&text).unwrap_or_else(|e| {
                eprintln!("bad request script: {e}");
                std::process::exit(2);
            })
        }
        None => generate_requests(args.gen_count, args.gen_seed),
    };
    let g0 = args.verify_static.then(|| g.clone());
    // Built once: for the sharded backend this spawns the long-lived
    // worker pool the whole serving process shares.
    let exec = args.harness.executor(args.profile);
    eprintln!(
        "serving {} requests on {} (n = {n}, m = {}) | profile {} | executor {:?} | {} request threads",
        requests.len(),
        dataset.name(),
        g.num_edges(),
        args.profile_name,
        exec.mode(),
        args.concurrency,
    );

    let mut engine = ServeEngine::new(g, args.profile, exec);
    engine.set_ppr_rounds(args.ppr_rounds);
    engine.configure_compaction(args.compact_every, args.drift);
    engine.set_compaction_blocking(!args.compact_async);
    // First Ctrl-C drains: request threads stop claiming new work,
    // in-flight requests complete, and the metrics below still print.
    shutdown::install();
    let report = engine.run_batch_until(&requests, args.concurrency, Some(shutdown::flag()));
    // Let any signalled background compaction cycle finish before the
    // final metrics, so the counters describe a settled engine.
    engine.drain_compaction();
    let drained = shutdown::requested();

    for (i, (req, resp)) in requests.iter().zip(&report.responses).enumerate() {
        if let Some(resp) = resp {
            println!("req {i:>4} {:<5} digest={:016x}", req.code(), resp.digest);
        }
    }
    println!("batch digest={:016x}", report.combined_digest());
    if drained {
        eprintln!(
            "interrupted: drained after {} of {} requests",
            report.completed(),
            requests.len()
        );
    }

    // Snapshot after the compactor drain: in async mode the batch's
    // final compaction may land after `run_batch_until`'s own snapshot.
    let m = &engine.metrics();
    eprintln!(
        "\nbatch: {:.3}s wall, {:.0} req/s",
        report.wall_seconds,
        requests.len() as f64 / report.wall_seconds.max(1e-9),
    );
    if m.ops > 0 {
        let mut t = Table::new(&[
            "Shard",
            "Mean queue depth",
            "Max depth",
            "Tasks run",
            "Stolen",
            "Occupancy",
        ]);
        for (s, totals) in m.shards.iter().enumerate() {
            t.row(&[
                s.to_string(),
                format!("{:.1}", m.mean_queue_depth(s)),
                totals.queue_depth_max.to_string(),
                totals.tasks_run.to_string(),
                totals.tasks_stolen.to_string(),
                format!("{:.0}%", totals.occupancy() * 100.0),
            ]);
        }
        eprint!("{}", t.render());
    }
    eprint!("{}", metrics_summary(m));
    eprintln!("pending={}", engine.dynamic().pending_len());

    if drained {
        if args.verify_static {
            eprintln!("static-check skipped: batch was drained before completion");
        }
        return;
    }
    if let Some(g0) = g0 {
        engine.compact_now();
        let want = statically_rebuilt(&g0, &requests);
        let got = engine.dynamic().snapshot();
        let mut ok = got.num_edges() == want.num_edges();
        if !ok {
            eprintln!(
                "static-check MISMATCH: {} arcs served vs {} rebuilt",
                got.num_edges(),
                want.num_edges()
            );
        }
        for v in 0..want.num_vertices() as u32 {
            if !ok {
                break;
            }
            if got.out_neighbors(v) != want.out_neighbors(v) {
                eprintln!("static-check MISMATCH at vertex {v}");
                ok = false;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        eprintln!("static-check OK ({} arcs)", got.num_edges());
    }
}
