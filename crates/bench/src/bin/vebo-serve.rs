//! `vebo-serve` — a serving-style request loop over one prepared graph:
//! batched PageRank-from-seed / BFS / label-lookup queries driven
//! concurrently through any executor backend.
//!
//! ```text
//! # 64 generated requests, 4 shards, 8 request threads:
//! cargo run --release -p vebo-bench --bin vebo-serve -- \
//!     --quick --executor sharded --shards 4 --concurrency 8 --gen 64
//!
//! # replay a script (one request per line: `pr 3`, `bfs 7`, `label 9`):
//! cargo run --release -p vebo-bench --bin vebo-serve -- \
//!     --requests batch.txt --executor rayon
//! ```
//!
//! Per-request digests and the combined batch digest are printed on
//! stdout; on the default (partitioned) profiles they are bit-identical
//! across the sequential, rayon, and sharded backends, which is exactly
//! what the CI serve-smoke job diffs. Shard metrics (queue depth,
//! occupancy, steals) and latency quantiles go to stdout after the
//! batch.

use vebo_bench::serve::{generate_requests, parse_script, ServeEngine};
use vebo_bench::{HarnessArgs, Table};
use vebo_engine::SystemProfile;
use vebo_graph::Dataset;
use vebo_partition::EdgeOrder;

struct ServeArgs {
    harness: HarnessArgs,
    profile: SystemProfile,
    profile_name: String,
    concurrency: usize,
    requests_file: Option<String>,
    gen_count: usize,
    gen_seed: u64,
    ppr_rounds: usize,
}

fn usage() -> ! {
    eprintln!(
        "vebo-serve — concurrent graph-query serving loop\n\n\
         Serving options (plus every vebo-bench harness option):\n  \
         --profile <name>   ligra | polymer | graphgrind (default polymer)\n  \
         --concurrency <n>  request threads (default 4)\n  \
         --requests <file>  replay a script: lines `pr <v>` | `bfs <v>` | `label <v>`\n  \
         --gen <n>          generate a mixed workload of n requests (default 32)\n  \
         --seed <s>         workload generator seed (default 1)\n  \
         --ppr-rounds <k>   push rounds per PageRank-from-seed request (default 10)\n\n\
         Digests are bit-stable across --executor backends on the\n\
         partitioned profiles (polymer, graphgrind)."
    );
    std::process::exit(2)
}

fn parse_args() -> ServeArgs {
    let mut out = ServeArgs {
        harness: HarnessArgs::default(),
        profile: SystemProfile::polymer_like(),
        profile_name: "polymer".to_string(),
        concurrency: 4,
        requests_file: None,
        gen_count: 32,
        gen_seed: 1,
        ppr_rounds: 10,
    };
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--profile" => {
                let v = next("--profile");
                out.profile = match v.as_str() {
                    "ligra" => SystemProfile::ligra_like(),
                    "polymer" => SystemProfile::polymer_like(),
                    "graphgrind" => SystemProfile::graphgrind_like(EdgeOrder::Csr),
                    _ => {
                        eprintln!("unknown profile '{v}'");
                        usage()
                    }
                };
                out.profile_name = v;
            }
            "--concurrency" => {
                out.concurrency = next("--concurrency").parse().unwrap_or_else(|_| usage())
            }
            "--requests" => out.requests_file = Some(next("--requests")),
            "--gen" => out.gen_count = next("--gen").parse().unwrap_or_else(|_| usage()),
            "--seed" => out.gen_seed = next("--seed").parse().unwrap_or_else(|_| usage()),
            "--ppr-rounds" => {
                out.ppr_rounds = next("--ppr-rounds").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => rest.push(other.to_string()),
        }
    }
    out.harness =
        HarnessArgs::parse_from("vebo-serve", "concurrent graph-query serving loop", rest);
    out
}

fn main() {
    let args = parse_args();
    let dataset = args.harness.dataset.unwrap_or(Dataset::LiveJournalLike);
    let scale = args.harness.scale_or(0.2);
    let g = args.harness.build_dataset(dataset, scale);
    let n = g.num_vertices();
    let requests = match &args.requests_file {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            parse_script(&text).unwrap_or_else(|e| {
                eprintln!("bad request script: {e}");
                std::process::exit(2);
            })
        }
        None => generate_requests(args.gen_count, args.gen_seed),
    };
    // Built once: for the sharded backend this spawns the long-lived
    // worker pool the whole serving process shares.
    let exec = args.harness.executor(args.profile);
    eprintln!(
        "serving {} requests on {} (n = {n}, m = {}) | profile {} | executor {:?} | {} request threads",
        requests.len(),
        dataset.name(),
        g.num_edges(),
        args.profile_name,
        exec.mode(),
        args.concurrency,
    );

    let mut engine = ServeEngine::new(g, args.profile, exec);
    engine.ppr_rounds = args.ppr_rounds;
    let report = engine.run_batch(&requests, args.concurrency);

    for (i, (req, resp)) in requests.iter().zip(&report.responses).enumerate() {
        println!("req {i:>4} {:<5} digest={:016x}", req.code(), resp.digest);
    }
    println!("batch digest={:016x}", report.combined_digest());

    let m = &report.metrics;
    eprintln!(
        "\nbatch: {:.3}s wall, {:.0} req/s",
        report.wall_seconds,
        requests.len() as f64 / report.wall_seconds.max(1e-9),
    );
    if m.ops > 0 {
        let mut t = Table::new(&[
            "Shard",
            "Mean queue depth",
            "Max depth",
            "Tasks run",
            "Stolen",
            "Occupancy",
        ]);
        for (s, totals) in m.shards.iter().enumerate() {
            t.row(&[
                s.to_string(),
                format!("{:.1}", m.mean_queue_depth(s)),
                totals.queue_depth_max.to_string(),
                totals.tasks_run.to_string(),
                totals.tasks_stolen.to_string(),
                format!("{:.0}%", totals.occupancy() * 100.0),
            ]);
        }
        eprint!("{}", t.render());
    }
    let quantile = |q: f64| {
        m.latency_quantile(q)
            .map(|ns| format!("{:.2}ms", ns as f64 / 1e6))
            .unwrap_or_else(|| "-".to_string())
    };
    eprintln!(
        "latency p50 {} | p95 {} | p99 {} | max {}",
        quantile(0.50),
        quantile(0.95),
        quantile(0.99),
        quantile(1.0),
    );
}
