//! Table VI: preprocessing overhead — vertex reordering cost (RCM vs
//! Gorder vs VEBO), edge reordering + partitioning cost (Hilbert vs CSR
//! order), and the resulting BFS / PR runtimes (original vs VEBO).
//!
//! ```text
//! cargo run --release -p vebo-bench --bin table6_overhead -- --quick
//! ```

use std::time::Instant;
use vebo_algorithms::{run_algorithm, AlgorithmKind};
use vebo_baselines::{Gorder, Rcm};
use vebo_bench::pipeline::ordered_with_starts;
use vebo_bench::{HarnessArgs, OrderingKind, Table};
use vebo_core::Vebo;
use vebo_engine::{PreparedGraph, SystemProfile};
use vebo_graph::{Dataset, VertexOrdering};
use vebo_partition::partitioned::PartitionedCoo;
use vebo_partition::{EdgeOrder, PartitionBounds};

fn main() {
    let args = HarnessArgs::parse(
        "table6_overhead",
        "Table VI: reordering and partitioning overhead",
    );
    let p = args.partitions.unwrap_or(384);
    let scale = args.scale_or(0.5);
    let datasets = match args.dataset {
        Some(d) => vec![d],
        None => vec![Dataset::TwitterLike, Dataset::FriendsterLike],
    };
    println!("== Table VI: preprocessing overhead in seconds (P = {p}, scale {scale}) ==\n");

    let mut t = Table::new(&[
        "Graph",
        "RCM",
        "Gorder",
        "VEBO",
        "Hilbert reorder",
        "CSR reorder",
        "BFS Orig",
        "BFS VEBO",
        "PR Orig",
        "PR VEBO",
    ]);
    for dataset in datasets {
        let g = args.build_dataset(dataset, scale);

        // --- vertex reordering costs ---
        let t0 = Instant::now();
        let _ = Rcm.compute(&g);
        let rcm_s = t0.elapsed().as_secs_f64();
        // Faithful Gorder on small graphs; hub-capped above 30k vertices
        // so the harness stays time-boxed (the faithful cost is what the
        // paper's 7803s/8930s numbers reflect).
        let faithful = g.num_vertices() <= 30_000;
        let t0 = Instant::now();
        if faithful {
            let _ = Gorder::new().compute(&g);
        } else {
            let _ = Gorder::new().with_hub_cap(64).compute(&g);
        }
        let gorder_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let vebo_perm = Vebo::new(p).compute(&g);
        let vebo_s = t0.elapsed().as_secs_f64();

        // --- edge reordering + partitioning costs (on the VEBO graph) ---
        let h = vebo_perm.apply_graph(&g);
        let bounds = PartitionBounds::edge_balanced(&h, p);
        let t0 = Instant::now();
        let _ = PartitionedCoo::build(&h, &bounds, EdgeOrder::Hilbert);
        let hil_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = PartitionedCoo::build(&h, &bounds, EdgeOrder::Csr);
        let csr_s = t0.elapsed().as_secs_f64();

        // --- BFS and PR runtimes, original vs VEBO (GraphGrind profile) ---
        let mut algo_secs = Vec::new();
        for kind in [AlgorithmKind::Bfs, AlgorithmKind::Pr] {
            for ordering in [OrderingKind::Original, OrderingKind::Vebo] {
                let (graph, starts, _) = ordered_with_starts(&g, ordering, p);
                let order = if ordering == OrderingKind::Vebo {
                    EdgeOrder::Csr
                } else {
                    EdgeOrder::Hilbert
                };
                let profile = SystemProfile::graphgrind_like(order).with_partitions(p);
                let exec = args.executor(profile);
                let pg = PreparedGraph::builder(graph)
                    .profile(profile)
                    .vebo_starts(starts.as_deref())
                    .build()
                    .expect("VEBO boundaries are valid");
                let report = run_algorithm(kind, &exec, &pg);
                algo_secs.push(exec.simulated_seconds(&report));
            }
        }

        t.row(&[
            dataset.name().into(),
            format!("{rcm_s:.3}"),
            format!("{gorder_s:.3}{}", if faithful { "" } else { " (capped)" }),
            format!("{vebo_s:.3}"),
            format!("{hil_s:.3}"),
            format!("{csr_s:.3}"),
            format!("{:.4}", algo_secs[0]),
            format!("{:.4}", algo_secs[1]),
            format!("{:.4}", algo_secs[2]),
            format!("{:.4}", algo_secs[3]),
        ]);
    }
    t.print();
    println!(
        "\nPaper: VEBO reorders up to 101x faster than RCM and 1524x faster than\n\
         Gorder; CSR edge order builds ~2.4x faster than Hilbert order; the\n\
         preprocessing cost is amortized by the PR speedup within one run."
    );
}
