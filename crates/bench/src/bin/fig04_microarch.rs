//! Figure 4: per-partition execution time and per-thread
//! micro-architectural statistics (LLC local/remote MPKI, TLB MKI, branch
//! MPKI) for PageRank, original order vs VEBO, GraphGrind profile.
//!
//! Writes per-partition times to `results/fig04_times_*.csv` and
//! per-thread MPKI series to `results/fig04_mpki_*.csv`.
//!
//! ```text
//! cargo run --release -p vebo-bench --bin fig04_microarch -- --quick
//! ```

use vebo_bench::pipeline::{ordered_with_starts, pr_partition_nanos};
use vebo_bench::table::write_csv;
use vebo_bench::{HarnessArgs, OrderingKind, Table};
use vebo_core::balance::summarize;
use vebo_graph::Dataset;
use vebo_partition::numa::NumaTopology;
use vebo_partition::{EdgeOrder, PartitionBounds};
use vebo_perfmodel::{mean, simulate_edgemap_pull, NumaLayout, SimConfig};

fn main() {
    let args = HarnessArgs::parse(
        "fig04_microarch",
        "Figure 4: per-partition time + MPKI for PR",
    );
    let p = args.partitions.unwrap_or(384);
    let dataset = args.dataset.unwrap_or(Dataset::TwitterLike);
    println!(
        "== Figure 4: PR on {} — per-partition time and per-thread MPKI (P = {p}, scale {}) ==\n",
        dataset.name(),
        args.scale
    );

    let g = args.build_dataset(dataset, args.scale);
    let (vebo_g, starts, _) = ordered_with_starts(&g, OrderingKind::Vebo, p);

    // (a) per-partition execution time; original ships Hilbert order,
    // VEBO uses CSR order (§V-G).
    let mut ta = Table::new(&["Order", "min(us)", "mean(us)", "max(us)", "spread"]);
    for (label, graph, order, st) in [
        ("Original", &g, EdgeOrder::Hilbert, None),
        ("VEBO", &vebo_g, EdgeOrder::Csr, starts.as_deref()),
    ] {
        let nanos: Vec<f64> = pr_partition_nanos(graph, p, order, 20, st)
            .iter()
            .map(|&n| n as f64)
            .collect();
        let s = summarize(&nanos);
        let spread = if s.min > 0.0 {
            s.max / s.min
        } else {
            f64::INFINITY
        };
        ta.row(&[
            label.into(),
            format!("{:.1}", s.min / 1e3),
            format!("{:.1}", s.mean / 1e3),
            format!("{:.1}", s.max / 1e3),
            format!("{spread:.2}x"),
        ]);
        let rows = nanos
            .iter()
            .enumerate()
            .map(|(i, n)| vec![i.to_string(), format!("{n}")]);
        let path = format!("results/fig04_times_{}.csv", label.to_lowercase());
        write_csv(&path, &["partition", "nanos"], rows).expect("write csv");
    }
    println!("(a) per-partition execution time:");
    ta.print();

    // (b-e) per-thread MPKI via the micro-architecture simulators.
    let mut tb = Table::new(&["Order", "LLC local", "LLC remote", "TLB MKI", "Branch MPKI"]);
    for (label, graph, st) in [("Original", &g, None), ("VEBO", &vebo_g, starts.as_deref())] {
        let bounds = match st {
            Some(s) => PartitionBounds::from_starts(s.to_vec()),
            None => PartitionBounds::edge_balanced(graph, p),
        };
        let layout = NumaLayout::new(bounds, NumaTopology::default());
        let reports = simulate_edgemap_pull(graph, &layout, &SimConfig::default());
        tb.row(&[
            label.into(),
            format!("{:.2}", mean(reports.iter().map(|r| r.local_mpki()))),
            format!("{:.2}", mean(reports.iter().map(|r| r.remote_mpki()))),
            format!("{:.2}", mean(reports.iter().map(|r| r.tlb_mki()))),
            format!("{:.4}", mean(reports.iter().map(|r| r.branch_mpki()))),
        ]);
        let rows = reports.iter().enumerate().map(|(t, r)| {
            vec![
                t.to_string(),
                format!("{:.4}", r.local_mpki()),
                format!("{:.4}", r.remote_mpki()),
                format!("{:.4}", r.tlb_mki()),
                format!("{:.4}", r.branch_mpki()),
            ]
        });
        let path = format!("results/fig04_mpki_{}.csv", label.to_lowercase());
        write_csv(
            &path,
            &[
                "thread",
                "local_mpki",
                "remote_mpki",
                "tlb_mki",
                "branch_mpki",
            ],
            rows,
        )
        .expect("write csv");
    }
    println!("\n(b-e) per-thread architectural statistics (simulated):");
    tb.print();
    println!(
        "\nPaper: VEBO cuts the per-partition time spread ~10x (6.9x -> 1.6x on\n\
         Twitter) and cuts branch MPKI ~3x (0.11 -> 0.04) via degree-sorted runs;\n\
         PR-on-Twitter cache MPKI is the noted counter-example where locality\n\
         slightly degrades."
    );
}
