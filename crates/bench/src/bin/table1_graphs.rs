//! Table I: characterization of the evaluation graphs plus VEBO's final
//! vertex (`delta(n)`) and edge (`Delta(n)`) imbalance at P partitions.
//!
//! ```text
//! cargo run --release -p vebo-bench --bin table1_graphs -- --quick
//! ```

use vebo_bench::{HarnessArgs, Table};
use vebo_core::theory::verify_theorems;
use vebo_graph::degree::{characterize, estimate_zipf_exponent};

fn main() {
    let args = HarnessArgs::parse(
        "table1_graphs",
        "Table I: graph characterization + VEBO balance",
    );
    let p = args.partitions.unwrap_or(384);
    println!(
        "== Table I: graph characterization (scale {}, P = {p}) ==\n",
        args.scale
    );

    let mut t = Table::new(&[
        "Graph",
        "Vertices",
        "Edges",
        "MaxDeg",
        "%0-in",
        "%0-out",
        "delta(n)",
        "Delta(n)",
        "T1 precond",
        "type",
    ]);
    for d in args.datasets() {
        let g = args.build_dataset(d, args.scale);
        let c = characterize(&g);
        let s = estimate_zipf_exponent(&g);
        let rep = verify_theorems(&g, p, s);
        t.row(&[
            d.name().to_string(),
            c.vertices.to_string(),
            c.edges.to_string(),
            c.max_in_degree.to_string(),
            format!("{:.0}%", c.pct_zero_in()),
            format!("{:.0}%", c.pct_zero_out()),
            rep.vertex_imbalance.to_string(),
            rep.edge_imbalance.to_string(),
            if rep.theorem1_precondition {
                "yes".into()
            } else {
                "no (scaled)".to_string()
            },
            if d.spec().directed {
                "directed".into()
            } else {
                "undirected".to_string()
            },
        ]);
    }
    t.print();
    println!(
        "\nPaper: delta(n) and Delta(n) are <= 1 for 6 of 8 graphs at P = 384 on the\n\
         full-size datasets, where the Theorem 1 precondition |E| >= N (P - 1) holds\n\
         with 5x-1000x slack. Rows marked 'no (scaled)' violate the precondition at\n\
         reduced scale; rerun with a larger --scale or smaller --partitions to see\n\
         the optimal balance (e.g. --partitions 48)."
    );
}
