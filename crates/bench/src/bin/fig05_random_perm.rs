//! Figure 5: performance under random permutation (§V-C) — original ids,
//! VEBO, a random permutation, and VEBO applied to the random permutation,
//! for PRD/PR/CC/BFS on the Twitter-like and USAroad-like graphs
//! (GraphGrind profile, speedup normalized to the original order).
//!
//! ```text
//! cargo run --release -p vebo-bench --bin fig05_random_perm -- --quick
//! ```

use vebo_algorithms::{run_algorithm, AlgorithmKind};
use vebo_bench::pipeline::ordered_with_starts;
use vebo_bench::{HarnessArgs, OrderingKind, Table};
use vebo_engine::{PreparedGraph, SystemProfile};
use vebo_graph::Dataset;
use vebo_partition::EdgeOrder;

fn main() {
    let args = HarnessArgs::parse("fig05_random_perm", "Figure 5: random-permutation study");
    let p = args.partitions.unwrap_or(384);
    let scale = args.scale_or(0.5);
    let datasets = match args.dataset {
        Some(d) => vec![d],
        None => vec![Dataset::TwitterLike, Dataset::UsaRoadLike],
    };
    let algorithms = [
        AlgorithmKind::Prd,
        AlgorithmKind::Pr,
        AlgorithmKind::Cc,
        AlgorithmKind::Bfs,
    ];
    println!(
        "== Figure 5: speedup vs original ids (GraphGrind profile, P = {p}, scale {scale}) ==\n"
    );

    let mut t = Table::new(&["Graph", "Algo", "Original", "VEBO", "Random", "Random+VEBO"]);
    for dataset in datasets {
        let g = args.build_dataset(dataset, scale);
        for kind in algorithms {
            let mut times = Vec::new();
            for ordering in OrderingKind::FIG5 {
                let (h, starts, _) = ordered_with_starts(&g, ordering, p);
                let order = match ordering {
                    OrderingKind::Vebo | OrderingKind::RandomPlusVebo => EdgeOrder::Csr,
                    _ => EdgeOrder::Hilbert,
                };
                let profile = SystemProfile::graphgrind_like(order).with_partitions(p);
                let exec = args.executor(profile);
                let pg = PreparedGraph::builder(h)
                    .profile(profile)
                    .vebo_starts(starts.as_deref())
                    .build()
                    .expect("VEBO boundaries are valid");
                let report = run_algorithm(kind, &exec, &pg);
                times.push(exec.simulated_seconds(&report));
            }
            let basis = times[0];
            t.row(&[
                dataset.name().into(),
                kind.code().into(),
                "1.00".into(),
                format!("{:.2}", basis / times[1]),
                format!("{:.2}", basis / times[2]),
                format!("{:.2}", basis / times[3]),
            ]);
        }
    }
    t.print();
    println!(
        "\nPaper: the random permutation is slowest (destroys balance and\n\
         collection locality); VEBO on the random permutation restores\n\
         performance to near VEBO-on-original, with any residual gap being\n\
         locality VEBO does not optimize. On USAroad, reordering hurts every\n\
         algorithm except CC."
    );
}
