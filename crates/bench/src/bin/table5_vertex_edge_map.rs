//! Table V: architectural events for vertexmap vs edgemap (local misses,
//! remote misses, TLB misses — MPKI), original order vs VEBO.
//!
//! Hardware counters are replaced by the `vebo-perfmodel` simulators fed
//! with the engine's exact access streams. PR is traced through the dense
//! CSC pull; BF through the COO stream (its dominant dense iterations).
//!
//! ```text
//! cargo run --release -p vebo-bench --bin table5_vertex_edge_map -- --quick
//! ```

use vebo_bench::pipeline::ordered_with_starts;
use vebo_bench::{HarnessArgs, OrderingKind, Table};
use vebo_graph::{Dataset, Graph};
use vebo_partition::numa::NumaTopology;
use vebo_partition::partitioned::PartitionedCoo;
use vebo_partition::{EdgeOrder, PartitionBounds};
use vebo_perfmodel::{
    mean, simulate_edgemap_coo, simulate_edgemap_pull, simulate_vertexmap, NumaLayout, SimConfig,
};

struct Mpki {
    local: f64,
    remote: f64,
    tlb: f64,
}

fn summarize(reports: &[vebo_perfmodel::ThreadReport]) -> Mpki {
    Mpki {
        local: mean(reports.iter().map(|r| r.local_mpki())),
        remote: mean(reports.iter().map(|r| r.remote_mpki())),
        tlb: mean(reports.iter().map(|r| r.tlb_mki())),
    }
}

fn trace(g: &Graph, p: usize, app: &str, starts: Option<&[usize]>) -> (Mpki, Mpki) {
    let bounds = match starts {
        Some(s) => PartitionBounds::from_starts(s.to_vec()),
        None => PartitionBounds::edge_balanced(g, p),
    };
    let layout = NumaLayout::new(bounds.clone(), NumaTopology::default());
    let cfg = SimConfig::default();
    let vm = summarize(&simulate_vertexmap(g, &layout, &cfg));
    let em = if app == "PR" {
        summarize(&simulate_edgemap_pull(g, &layout, &cfg))
    } else {
        let coo = PartitionedCoo::build(g, &bounds, EdgeOrder::Csr);
        summarize(&simulate_edgemap_coo(&coo, &layout, &cfg))
    };
    (vm, em)
}

fn main() {
    let args = HarnessArgs::parse(
        "table5_vertex_edge_map",
        "Table V: vertexmap vs edgemap MPKI",
    );
    let p = args.partitions.unwrap_or(384);
    let datasets = match args.dataset {
        Some(d) => vec![d],
        None => vec![Dataset::TwitterLike, Dataset::FriendsterLike],
    };
    println!(
        "== Table V: architectural events (simulated MPKI, P = {p}, scale {}) ==\n",
        args.scale
    );

    let mut t = Table::new(&[
        "Graph", "App", "Order", "VM local", "VM rmt", "VM TLB", "EM local", "EM rmt", "EM TLB",
    ]);
    for dataset in datasets {
        let g = args.build_dataset(dataset, args.scale);
        let (vebo_g, starts, _) = ordered_with_starts(&g, OrderingKind::Vebo, p);
        for app in ["PR", "BF"] {
            for (label, graph, st) in [("Ori.", &g, None), ("VEBO", &vebo_g, starts.as_deref())] {
                let (vm, em) = trace(graph, p, app, st);
                t.row(&[
                    dataset.name().into(),
                    app.into(),
                    label.into(),
                    format!("{:.2}", vm.local),
                    format!("{:.2}", vm.remote),
                    format!("{:.3}", vm.tlb),
                    format!("{:.2}", em.local),
                    format!("{:.2}", em.remote),
                    format!("{:.2}", em.tlb),
                ]);
            }
        }
    }
    t.print();
    println!(
        "\nPaper: VEBO cuts vertexmap *remote* misses sharply (equal vertices per\n\
         partition align the equally-spread vertexmap iterations with the NUMA\n\
         placement) and generally improves edgemap locality, with PR on Twitter\n\
         as the noted counter-example."
    );
}
