//! `vebo-cluster` — multi-process BSP cluster runner: one coordinator
//! plus N worker **processes**, each owning a vertex-cut edge shard and
//! executing supersteps over real sockets (see
//! `vebo_distributed::runtime` for the protocol).
//!
//! ```text
//! # coordinator + 3 local workers over loopback, all three algorithms:
//! cargo run --release -p vebo-bench --bin vebo-cluster -- \
//!     --workers 3 --partitioner vertex-cut --dataset rmat27 --scale 1
//!
//! # serve a read-only script (bfs/label lines), printing the same
//! # `req .. digest=..` / `batch digest=..` lines as vebo-serve — the
//! # CI cluster-smoke job diffs the two outputs:
//! cargo run --release -p vebo-bench --bin vebo-cluster -- \
//!     --workers 3 --requests batch.txt --dataset rmat27 --scale 1
//!
//! # one standalone worker joining a coordinator elsewhere:
//! cargo run --release -p vebo-bench --bin vebo-cluster -- \
//!     --join 127.0.0.1:4200 --partitioner vertex-cut --dataset rmat27
//! ```
//!
//! `--workers N` re-executes this same binary N times with `--join`
//! pointing at an ephemeral loopback port, so the conformance claim the
//! loopback thread tests make ("single-process ≡ multi-process") is
//! exercised across genuine process boundaries here. `--verify-local`
//! additionally reruns every algorithm in-process via
//! [`vebo_distributed::run_local`] and fails unless the digests are
//! bit-identical.

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("vebo-cluster needs Linux: the coordinator barrier multiplexes on epoll");
    std::process::exit(2);
}

#[cfg(target_os = "linux")]
fn main() {
    linux::main()
}

#[cfg(target_os = "linux")]
mod linux {
    use std::net::{SocketAddr, TcpListener};
    use std::process::{Child, Command, Stdio};

    use vebo_algorithms::default_source;
    use vebo_bench::serve::{digest_u64s, parse_script, Request};
    use vebo_bench::HarnessArgs;
    use vebo_distributed::sync::Coordinator;
    use vebo_distributed::{run_local, run_worker, ClusterAlgo, Partitioner, RunOutput};
    use vebo_graph::Dataset;

    struct ClusterArgs {
        harness: HarnessArgs,
        workers: usize,
        join: Option<SocketAddr>,
        partitioner: Partitioner,
        pr_iters: u32,
        bfs_source: Option<u32>,
        requests_file: Option<String>,
        verify_local: bool,
    }

    fn usage() -> ! {
        eprintln!(
            "vebo-cluster — BSP cluster runner: coordinator + N worker processes on loopback\n\n\
             Cluster options (plus every vebo-bench harness option):\n  \
             --workers <n>       worker processes to spawn on loopback (default 3)\n  \
             --join <addr>       run one standalone worker against a coordinator instead\n  \
             --partitioner <p>   vertex-cut | hash | hybrid (default vertex-cut)\n  \
             --pr-iters <k>      PageRank supersteps (default 10)\n  \
             --bfs-source <v>    BFS root, modulo n (default: highest-out-degree vertex)\n  \
             --requests <file>   serve a read-only script (bfs/label lines only),\n                      \
             printing vebo-serve-compatible digest lines\n  \
             --verify-local      rerun in-process and require bit-identical digests"
        );
        std::process::exit(2)
    }

    fn parse_args() -> ClusterArgs {
        let mut out = ClusterArgs {
            harness: HarnessArgs::default(),
            workers: 3,
            join: None,
            partitioner: Partitioner::VertexCut,
            pr_iters: 10,
            bfs_source: None,
            requests_file: None,
            verify_local: false,
        };
        let mut rest: Vec<String> = Vec::new();
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            let mut next = |flag: &str| -> String {
                it.next().unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    usage()
                })
            };
            match arg.as_str() {
                "--workers" => out.workers = next("--workers").parse().unwrap_or_else(|_| usage()),
                "--join" => {
                    out.join = Some(next("--join").parse().unwrap_or_else(|_| {
                        eprintln!("--join wants host:port");
                        usage()
                    }))
                }
                "--partitioner" => {
                    let v = next("--partitioner");
                    out.partitioner = Partitioner::parse(&v).unwrap_or_else(|| {
                        eprintln!("unknown partitioner '{v}' (vertex-cut | hash | hybrid)");
                        usage()
                    });
                }
                "--pr-iters" => {
                    out.pr_iters = next("--pr-iters").parse().unwrap_or_else(|_| usage())
                }
                "--bfs-source" => {
                    out.bfs_source = Some(next("--bfs-source").parse().unwrap_or_else(|_| usage()))
                }
                "--requests" => out.requests_file = Some(next("--requests")),
                "--verify-local" => out.verify_local = true,
                "--help" | "-h" => usage(),
                other => rest.push(other.to_string()),
            }
        }
        out.harness = HarnessArgs::parse_from("vebo-cluster", "BSP cluster runner", rest);
        out
    }

    /// The algorithm list a request script needs: one BFS per distinct
    /// source (in first-appearance order) and one CC pass if any label
    /// lookup occurs. Mutating or PageRank requests are rejected — the
    /// cluster serves the static shard set.
    fn script_algos(requests: &[Request], n: usize) -> Vec<ClusterAlgo> {
        let nv = n.max(1) as u32;
        let mut algos: Vec<ClusterAlgo> = Vec::new();
        let mut need_cc = false;
        for req in requests {
            match *req {
                Request::Bfs { seed } => {
                    let algo = ClusterAlgo::Bfs { source: seed % nv };
                    if !algos.contains(&algo) {
                        algos.push(algo);
                    }
                }
                Request::Label { .. } => need_cc = true,
                ref other => {
                    eprintln!(
                        "vebo-cluster serves read-only bfs/label scripts; '{}' is not distributable",
                        other.code()
                    );
                    std::process::exit(2);
                }
            }
        }
        if need_cc {
            algos.push(ClusterAlgo::Cc);
        }
        algos
    }

    /// Spawns one worker child re-running this binary with `--join`,
    /// forwarding exactly what the worker needs to rebuild the identical
    /// graph and placement: dataset, scale, partitioner.
    fn spawn_worker(
        addr: SocketAddr,
        dataset: Dataset,
        scale: f64,
        partitioner: Partitioner,
    ) -> std::io::Result<Child> {
        let exe = std::env::current_exe()?;
        Command::new(exe)
            .arg("--join")
            .arg(addr.to_string())
            .arg("--partitioner")
            .arg(partitioner.name())
            .arg("--dataset")
            .arg(dataset.name())
            .arg("--scale")
            .arg(scale.to_string())
            .stdout(Stdio::null())
            .spawn()
    }

    fn reap(mut children: Vec<Child>) {
        for child in &mut children {
            match child.wait() {
                Ok(status) if status.success() => {}
                Ok(status) => {
                    eprintln!("worker exited with {status}");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("waiting on worker: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    fn kill_all(children: &mut [Child]) {
        for child in children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Answers one script request from the finished cluster outputs.
    fn request_digest(req: &Request, outputs: &[RunOutput], n: usize) -> u64 {
        let nv = n.max(1) as u32;
        match *req {
            Request::Bfs { seed } => {
                let source = seed % nv;
                outputs
                    .iter()
                    .find(|o| o.algo == (ClusterAlgo::Bfs { source }))
                    .expect("script planning ran a BFS per distinct source")
                    .digest
            }
            Request::Label { v } => {
                let labels = &outputs
                    .iter()
                    .find(|o| o.algo == ClusterAlgo::Cc)
                    .expect("script planning ran CC for label lookups")
                    .values;
                digest_u64s([labels[(v % nv) as usize]])
            }
            _ => unreachable!("script_algos rejected non-bfs/label requests"),
        }
    }

    pub fn main() {
        let args = parse_args();
        let dataset = args.harness.dataset.unwrap_or(Dataset::Rmat27Like);
        let scale = args.harness.scale_or(0.25);
        let g = args.harness.build_dataset(dataset, scale);
        let n = g.num_vertices();

        if let Some(addr) = args.join {
            // Standalone worker: its whole life is `run_worker`.
            if let Err(e) = run_worker(addr, &g, args.partitioner) {
                eprintln!("worker: {e}");
                std::process::exit(1);
            }
            return;
        }
        if args.workers == 0 {
            eprintln!("--workers must be at least 1");
            usage();
        }

        let requests: Option<Vec<Request>> = args.requests_file.as_ref().map(|path| {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            parse_script(&text).unwrap_or_else(|e| {
                eprintln!("bad request script: {e}");
                std::process::exit(2);
            })
        });
        let algos = match &requests {
            Some(reqs) => script_algos(reqs, n),
            None => vec![
                ClusterAlgo::PageRank {
                    iters: args.pr_iters,
                },
                ClusterAlgo::Bfs {
                    source: args
                        .bfs_source
                        .map(|v| v % n.max(1) as u32)
                        .unwrap_or_else(|| default_source(&g)),
                },
                ClusterAlgo::Cc,
            ],
        };
        if algos.is_empty() {
            eprintln!("request script contains no bfs/label requests — nothing to run");
            std::process::exit(2);
        }

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        eprintln!(
            "cluster: {} workers | {} partitioner | {} (n = {n}, m = {}) | coordinator {addr}",
            args.workers,
            args.partitioner.name(),
            dataset.name(),
            g.num_edges(),
        );

        let mut children: Vec<Child> = Vec::with_capacity(args.workers);
        for _ in 0..args.workers {
            match spawn_worker(addr, dataset, scale, args.partitioner) {
                Ok(child) => children.push(child),
                Err(e) => {
                    eprintln!("spawning worker: {e}");
                    kill_all(&mut children);
                    std::process::exit(1);
                }
            }
        }
        let outputs = Coordinator::accept(&listener, args.workers)
            .and_then(|mut c| c.run(n, &algos))
            .unwrap_or_else(|e| {
                eprintln!("coordinator: {e}");
                kill_all(&mut children);
                std::process::exit(1);
            });
        reap(children);

        match &requests {
            Some(reqs) => {
                // vebo-serve's exact output shape, so CI can diff the two.
                let digests: Vec<u64> = reqs
                    .iter()
                    .map(|r| request_digest(r, &outputs, n))
                    .collect();
                for (i, (req, digest)) in reqs.iter().zip(&digests).enumerate() {
                    println!("req {i:>4} {:<5} digest={digest:016x}", req.code());
                }
                println!("batch digest={:016x}", digest_u64s(digests.iter().copied()));
            }
            None => {
                for out in &outputs {
                    println!(
                        "cluster {:<8} digest={:016x} supersteps={} sent={}",
                        out.algo.name(),
                        out.digest,
                        out.supersteps,
                        out.values_sent,
                    );
                }
            }
        }

        if args.verify_local {
            let mut ok = true;
            for out in &outputs {
                let local =
                    run_local(&g, args.partitioner, args.workers, out.algo).unwrap_or_else(|e| {
                        eprintln!("verify-local: {e}");
                        std::process::exit(1);
                    });
                if local.digest != out.digest || local.values != out.values {
                    eprintln!(
                        "verify-local MISMATCH {}: cluster {:016x} vs local {:016x}",
                        out.algo.name(),
                        out.digest,
                        local.digest
                    );
                    ok = false;
                } else {
                    eprintln!(
                        "verify-local OK {:<8} digest={:016x}",
                        out.algo.name(),
                        out.digest
                    );
                }
            }
            if !ok {
                std::process::exit(1);
            }
        }
    }
}
