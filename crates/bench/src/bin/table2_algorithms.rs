//! Table II: algorithm characteristics — traversal direction, vertex/edge
//! orientation, and the frontier density classes actually observed.
//!
//! ```text
//! cargo run --release -p vebo-bench --bin table2_algorithms -- --quick
//! ```

use vebo_algorithms::{needs_weights, run_algorithm, AlgorithmKind};
use vebo_bench::{HarnessArgs, Table};
use vebo_engine::{PreparedGraph, SystemProfile};
use vebo_graph::Dataset;

fn main() {
    let args = HarnessArgs::parse("table2_algorithms", "Table II: algorithm characteristics");
    let dataset = args.dataset.unwrap_or(Dataset::LiveJournalLike);
    let scale = args.scale_or(0.5);
    println!(
        "== Table II: algorithm characteristics (measured on {}, scale {scale}) ==\n",
        dataset.name()
    );

    let base = args.build_dataset(dataset, scale);
    let mut t = Table::new(&[
        "Code",
        "B/F",
        "V/E",
        "Frontiers (measured)",
        "Iterations",
        "Edges examined",
    ]);
    for kind in AlgorithmKind::ALL {
        let g = if needs_weights(kind) {
            base.clone().with_hash_weights(32)
        } else {
            base.clone()
        };
        let profile = SystemProfile::ligra_like();
        let pg = PreparedGraph::builder(g).profile(profile).build().unwrap();
        let report = run_algorithm(kind, &args.executor(profile), &pg);
        let classes: Vec<&str> = report.observed_classes().iter().map(|c| c.code()).collect();
        t.row(&[
            kind.code().to_string(),
            kind.direction().to_string(),
            kind.orientation().to_string(),
            classes.join("/"),
            report.iterations.to_string(),
            report.total_edges().to_string(),
        ]);
    }
    t.print();
    println!(
        "\nPaper (Table II): BC=B/V/m-s, CC=B/E/d-m-s, PR=B/E/d, BFS=B/V/m-s,\n\
         PRD=F/E/d-m-s, SPMV=F/E/d, BF=F/V/d-m-s, BP=F/E/d."
    );
}
