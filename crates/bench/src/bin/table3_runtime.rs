//! Table III: simulated 48-thread runtime of the three systems under four
//! vertex orderings, for all eight algorithms and datasets.
//!
//! Runtime = sum over edgemap/vertexmap operations of the operation's
//! simulated makespan (measured per-task cost + the system's scheduling
//! policy). Defaults to `--scale 0.25` because the full cross product is
//! 768 runs; pass `--scale 1.0` for the full-size analogues.
//!
//! ```text
//! cargo run --release -p vebo-bench --bin table3_runtime -- --quick
//! ```

use vebo_algorithms::{needs_weights, run_algorithm, AlgorithmKind};
use vebo_bench::pipeline::ordered_with_starts;
use vebo_bench::{HarnessArgs, OrderingKind, Table};
use vebo_engine::{PreparedGraph, SystemKind, SystemProfile};
use vebo_graph::Graph;
use vebo_partition::EdgeOrder;

/// The three system profiles of §IV. VEBO pairs GraphGrind with CSR edge
/// order (§V-G); the original order uses Hilbert, as shipped.
fn profile_for(kind: SystemKind, ordering: OrderingKind) -> SystemProfile {
    match kind {
        SystemKind::LigraLike => SystemProfile::ligra_like(),
        SystemKind::PolymerLike => SystemProfile::polymer_like(),
        SystemKind::GraphGrindLike => {
            let order = if ordering == OrderingKind::Vebo {
                EdgeOrder::Csr
            } else {
                EdgeOrder::Hilbert
            };
            SystemProfile::graphgrind_like(order)
        }
    }
}

fn vebo_partitions(kind: SystemKind) -> usize {
    match kind {
        SystemKind::PolymerLike => 4, // one per NUMA socket, as in §IV
        _ => 384,
    }
}

fn main() {
    let args = HarnessArgs::parse(
        "table3_runtime",
        "Table III: runtimes of 3 systems x 4 orderings",
    );
    let scale = args.scale_or(0.25);
    let orderings: &[OrderingKind] = if args.extended {
        &OrderingKind::TABLE3_EXTENDED
    } else {
        &OrderingKind::TABLE3
    };
    let systems = [
        SystemKind::LigraLike,
        SystemKind::PolymerLike,
        SystemKind::GraphGrindLike,
    ];
    println!(
        "== Table III: simulated {}-thread runtime in seconds (scale {scale}) ==",
        args.threads
    );
    let names: Vec<&str> = orderings.iter().map(|o| o.name()).collect();
    println!(
        "   (per system: {}; * marks the fastest)\n",
        names.join(" / ")
    );

    let mut header: Vec<String> = vec!["Graph".into(), "Algo".into()];
    for s in systems {
        for o in orderings {
            header.push(format!("{}:{}", s.name(), o.name()));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);

    // Geometric-mean speedup of VEBO over each system's original order.
    let mut speedup_log: Vec<(SystemKind, f64)> = Vec::new();

    for dataset in args.datasets() {
        let base = args.build_dataset(dataset, scale);
        // Reordered graphs, one per (ordering, partition-count) pair,
        // keeping VEBO's exact boundaries for the partitioned systems.
        type Entry = (OrderingKind, usize, Graph, Option<Vec<usize>>);
        let mut graphs: Vec<Entry> = Vec::new();
        for &ordering in orderings {
            for p in [4usize, 384] {
                let partition_dependent =
                    matches!(ordering, OrderingKind::Vebo | OrderingKind::MetisLike);
                if !partition_dependent && p == 4 {
                    continue; // only VEBO/METIS-like depend on the partition count
                }
                let (h, starts, _) = ordered_with_starts(&base, ordering, p);
                graphs.push((ordering, p, h, starts));
            }
        }
        let lookup = |ordering: OrderingKind, p: usize| -> (&Graph, Option<&[usize]>) {
            graphs
                .iter()
                .find(|(o, q, _, _)| {
                    *o == ordering
                        && (!matches!(o, OrderingKind::Vebo | OrderingKind::MetisLike) || *q == p)
                })
                .map(|(_, _, g, s)| (g, s.as_deref()))
                .unwrap()
        };

        for kind in AlgorithmKind::ALL {
            let mut cells: Vec<String> = vec![dataset.name().into(), kind.code().into()];
            for system in systems {
                let mut times = Vec::new();
                for &ordering in orderings {
                    let profile = profile_for(system, ordering).with_partitions(match system {
                        SystemKind::PolymerLike => 4,
                        _ => args.partitions.unwrap_or(384),
                    });
                    let (g, starts) = lookup(ordering, vebo_partitions(system));
                    let g = if needs_weights(kind) {
                        g.clone().with_hash_weights(32)
                    } else {
                        g.clone()
                    };
                    let exec = args.executor(profile);
                    let pg = PreparedGraph::builder(g)
                        .profile(profile)
                        .vebo_starts(starts)
                        .build()
                        .expect("VEBO boundaries are valid");
                    let report = run_algorithm(kind, &exec, &pg);
                    times.push(exec.simulated_seconds(&report));
                }
                let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
                for (i, time) in times.iter().enumerate() {
                    let mark = if *time == best { "*" } else { "" };
                    cells.push(format!("{time:.4}{mark}"));
                    if orderings[i] == OrderingKind::Vebo {
                        speedup_log.push((system, times[0] / time));
                    }
                }
            }
            t.row(&cells);
        }
    }
    t.print();

    println!("\nGeometric-mean speedup of VEBO over the original ordering:");
    for system in systems {
        let logs: Vec<f64> = speedup_log
            .iter()
            .filter(|(s, _)| *s == system)
            .map(|(_, r)| r.ln())
            .collect();
        let gm = (logs.iter().sum::<f64>() / logs.len() as f64).exp();
        println!(
            "  {:<11} {gm:.2}x   (paper: Ligra 1.09x, Polymer 1.41x, GraphGrind 1.65x)",
            system.name()
        );
    }
}
