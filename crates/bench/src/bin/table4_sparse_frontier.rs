//! Table IV: distribution of active edges over partitions for the sparse
//! iterations of BFS (original order vs VEBO, 384 partitions).
//!
//! ```text
//! cargo run --release -p vebo-bench --bin table4_sparse_frontier -- --quick
//! ```

use vebo_algorithms::default_source;
use vebo_bench::pipeline::ordered_graph;
use vebo_bench::{HarnessArgs, OrderingKind, Table};
use vebo_core::balance::summarize;
use vebo_engine::{Executor, Frontier, PreparedGraph, SystemProfile};
use vebo_graph::{Dataset, Graph, VertexId};
use vebo_partition::{EdgeOrder, PartitionBounds};

/// Runs BFS, returning the input frontier (as a vertex list) of every
/// iteration.
fn bfs_frontiers(g: &Graph) -> Vec<Vec<VertexId>> {
    use std::sync::atomic::{AtomicU32, Ordering};
    struct Op {
        parent: Vec<AtomicU32>,
    }
    impl vebo_engine::EdgeOp for Op {
        fn update(&self, s: VertexId, d: VertexId, _w: f32) -> bool {
            if self.parent[d as usize].load(Ordering::Relaxed) == u32::MAX {
                self.parent[d as usize].store(s, Ordering::Relaxed);
                true
            } else {
                false
            }
        }
        fn update_atomic(&self, s: VertexId, d: VertexId, _w: f32) -> bool {
            self.parent[d as usize]
                .compare_exchange(u32::MAX, s, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        }
        fn cond(&self, d: VertexId) -> bool {
            self.parent[d as usize].load(Ordering::Relaxed) == u32::MAX
        }
    }
    let n = g.num_vertices();
    let src = default_source(g);
    let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
    let exec = Executor::new(profile);
    let pg = PreparedGraph::builder(g.clone())
        .profile(profile)
        .build()
        .unwrap();
    let op = Op {
        parent: (0..n).map(|_| AtomicU32::new(u32::MAX)).collect(),
    };
    op.parent[src as usize].store(src, Ordering::Relaxed);
    let mut frontier = Frontier::single(n, src);
    let mut out = Vec::new();
    while !frontier.is_empty() {
        out.push(frontier.to_sparse().iter_active().collect());
        let (next, _) = exec.edge_map(&pg, &frontier, &op);
        frontier = next;
    }
    out
}

fn main() {
    let args = HarnessArgs::parse(
        "table4_sparse_frontier",
        "Table IV: active edges per partition in BFS",
    );
    let dataset = args.dataset.unwrap_or(Dataset::TwitterLike);
    let p = args.partitions.unwrap_or(384);
    println!(
        "== Table IV: active-edge distribution over {p} partitions, BFS on {} (scale {}) ==\n",
        dataset.name(),
        args.scale
    );

    let g = args.build_dataset(dataset, args.scale);
    let (vebo_g, _) = ordered_graph(&g, OrderingKind::Vebo, p);

    let mut t = Table::new(&[
        "Iter",
        "ActiveEdges",
        "Ideal/Part",
        "Order",
        "Min",
        "Median",
        "S.D.",
        "Max",
    ]);
    for (label, graph) in [("Orig.", &g), ("VEBO", &vebo_g)] {
        let bounds = PartitionBounds::edge_balanced(graph, p);
        let frontiers = bfs_frontiers(graph);
        for (iter, frontier) in frontiers.iter().enumerate() {
            let counts =
                vebo_partition::stats::active_edges_per_partition(graph, &bounds, frontier);
            let total: u64 = counts.iter().sum();
            if total == 0 {
                continue;
            }
            let vals: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
            let s = summarize(&vals);
            t.row(&[
                iter.to_string(),
                total.to_string(),
                format!("{:.1}", total as f64 / p as f64),
                label.to_string(),
                format!("{:.0}", s.min),
                format!("{:.1}", s.median),
                format!("{:.1}", s.std_dev),
                format!("{:.0}", s.max),
            ]);
        }
    }
    t.print();
    println!(
        "\nPaper: VEBO raises the minimum (original has many partitions with zero\n\
         active edges), raises the median toward the ideal, and cuts the standard\n\
         deviation by up to 1.5x on the dominant iterations."
    );
}
