//! The serving layer behind `vebo-serve`: batched query workloads driven
//! concurrently through one shared [`Executor`].
//!
//! Three request kinds model a graph-serving API:
//!
//! * [`Request::PageRankSeed`] — personalized PageRank pushed from one
//!   seed vertex (a fixed number of forward-push rounds);
//! * [`Request::Bfs`] — BFS reachability/levels from a seed;
//! * [`Request::Label`] — component-label lookup against labels
//!   precomputed at startup (the "cheap read" class of request).
//!
//! Each response is reduced to a 64-bit FNV-1a digest so whole batches
//! can be diffed across executor backends: on the partitioned profiles
//! (Polymer, GraphGrind — the `vebo-serve` default) every float
//! accumulation is destination-owned, so digests are **bit-identical**
//! across the sequential, rayon, and sharded backends and CI fails on
//! any mismatch. (On the Ligra profile, sparse push interleaves atomic
//! f64 additions across tasks, so last-ulp differences between backends
//! are legitimate there.)
//!
//! Batches run on `concurrency` request threads pulling from a shared
//! cursor; per-request latency is forwarded to the engine's
//! [`InstrumentSink::record_request`],
//! and the [`ShardMetricsSink`] snapshot reports per-shard queue depth,
//! occupancy, steals, and latency quantiles.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use vebo_algorithms::bfs::{bfs, levels_from_parents};
use vebo_algorithms::cc::cc;
use vebo_engine::shared::{atomic_f64_vec, snapshot_f64, AtomicF64};
use vebo_engine::{
    EdgeOp, Executor, Frontier, InstrumentSink, PreparedGraph, ShardMetrics, ShardMetricsSink,
    SystemProfile,
};
use vebo_graph::graph::mix64;
use vebo_graph::{Graph, VertexId};

/// One serving request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Personalized PageRank pushed from `seed`.
    PageRankSeed {
        /// Seed vertex (taken modulo the vertex count).
        seed: VertexId,
    },
    /// BFS levels from `seed`.
    Bfs {
        /// Source vertex (taken modulo the vertex count).
        seed: VertexId,
    },
    /// Component-label lookup for `v`.
    Label {
        /// Queried vertex (taken modulo the vertex count).
        v: VertexId,
    },
}

impl Request {
    /// Short kind code used in scripts and output (`pr`, `bfs`, `label`).
    pub fn code(&self) -> &'static str {
        match self {
            Request::PageRankSeed { .. } => "pr",
            Request::Bfs { .. } => "bfs",
            Request::Label { .. } => "label",
        }
    }
}

/// One handled request.
#[derive(Clone, Copy, Debug)]
pub struct Response {
    /// FNV-1a digest of the canonical result.
    pub digest: u64,
    /// Wall-clock latency of the request in nanoseconds.
    pub nanos: u64,
}

/// Result of one [`ServeEngine::run_batch`].
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One response per request, in request order.
    pub responses: Vec<Response>,
    /// Snapshot of the engine's shard/latency metrics as of the end of
    /// this batch — cumulative over every request served by the engine
    /// so far (startup precomputation is never counted).
    pub metrics: ShardMetrics,
    /// Batch wall-clock seconds.
    pub wall_seconds: f64,
}

impl BatchReport {
    /// Order-sensitive digest over all response digests — one number to
    /// diff across executor backends.
    pub fn combined_digest(&self) -> u64 {
        let mut h = Fnv::new();
        for r in &self.responses {
            h.write_u64(r.digest);
        }
        h.finish()
    }
}

/// FNV-1a, 64 bit — tiny, dependency-free, stable across platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

fn digest_u64s(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = Fnv::new();
    for v in values {
        h.write_u64(v);
    }
    h.finish()
}

/// Forward-push personalized-PageRank operator: `acc[dst] += contrib[src]`.
struct PushOp<'a> {
    contrib: &'a [AtomicF64],
    acc: &'a [AtomicF64],
}

impl EdgeOp for PushOp<'_> {
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        let a = &self.acc[dst as usize];
        a.store(a.load() + self.contrib[src as usize].load());
        true
    }
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.acc[dst as usize].fetch_add(self.contrib[src as usize].load());
        true
    }
}

/// A prepared graph plus the executor and precomputed state every
/// request handler shares. Cheap to share across request threads
/// (`&self` everywhere); the executor's sharded pool, when selected,
/// is likewise shared.
pub struct ServeEngine {
    exec: Executor,
    pg: PreparedGraph,
    labels: Vec<u32>,
    metrics: Arc<ShardMetricsSink>,
    /// Push rounds per PageRank-from-seed request.
    pub ppr_rounds: usize,
}

impl ServeEngine {
    /// Prepares `g` for `profile`, attaches a [`ShardMetricsSink`] to
    /// `exec`, and precomputes the component labels served by
    /// [`Request::Label`].
    pub fn new(g: Graph, profile: SystemProfile, exec: Executor) -> ServeEngine {
        let pg = PreparedGraph::builder(g)
            .profile(profile)
            .build()
            .expect("no explicit bounds, cannot fail");
        // Precompute before attaching the metrics sink, so the serving
        // metrics only ever describe served requests, not startup work.
        let (labels, _) = cc(&exec, &pg);
        let metrics = Arc::new(ShardMetricsSink::new());
        let exec = exec.with_sink(metrics.clone());
        ServeEngine {
            exec,
            pg,
            labels,
            metrics,
            ppr_rounds: 10,
        }
    }

    /// The prepared graph requests run against.
    pub fn prepared(&self) -> &PreparedGraph {
        &self.pg
    }

    /// The executor requests run through.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// A snapshot of the shard/latency metrics accumulated so far.
    pub fn metrics(&self) -> ShardMetrics {
        self.metrics.snapshot()
    }

    /// Handles one request, recording its latency.
    pub fn handle(&self, req: &Request) -> Response {
        let t0 = Instant::now();
        let n = self.pg.graph().num_vertices().max(1) as u32;
        let digest = match *req {
            Request::PageRankSeed { seed } => self.ppr_digest(seed % n),
            Request::Bfs { seed } => self.bfs_digest(seed % n),
            Request::Label { v } => digest_u64s([self.labels[(v % n) as usize] as u64]),
        };
        let nanos = t0.elapsed().as_nanos() as u64;
        self.metrics.record_request(nanos);
        Response { digest, nanos }
    }

    /// Runs `requests` on `concurrency` request threads sharing this
    /// engine (and its sharded worker pool, when selected). Responses
    /// land in request order regardless of completion order.
    pub fn run_batch(&self, requests: &[Request], concurrency: usize) -> BatchReport {
        let t0 = Instant::now();
        let cursor = AtomicUsize::new(0);
        let responses: Mutex<Vec<Option<Response>>> = Mutex::new(vec![None; requests.len()]);
        let workers = concurrency.max(1).min(requests.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= requests.len() {
                        break;
                    }
                    let r = self.handle(&requests[i]);
                    responses.lock().unwrap()[i] = Some(r);
                });
            }
        });
        let responses = responses
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("every request handled"))
            .collect();
        BatchReport {
            responses,
            metrics: self.metrics.snapshot(),
            wall_seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Personalized PageRank from `seed`: `ppr_rounds` forward-push
    /// rounds of `x_{k+1} = d · Aᵀ x_k` with `p += (1 − d) · x_k`,
    /// starting from `x_0 = e_seed`. The digest covers the bit patterns
    /// of every nonzero score.
    ///
    /// Per-round work is frontier-scoped: contributions are staged over
    /// the active set only (every traversal kernel gates reads by
    /// frontier membership, so stale `contrib`/`x` entries on inactive
    /// vertices are never observed), and the accumulated mass is folded
    /// back — and the accumulator re-zeroed — over just the vertices
    /// the push touched. A request on a small neighborhood therefore
    /// costs O(touched), not O(n · rounds).
    fn ppr_digest(&self, seed: VertexId) -> u64 {
        const DAMPING: f64 = 0.85;
        let n = self.pg.graph().num_vertices();
        let g = self.pg.graph();
        let p = atomic_f64_vec(n, 0.0);
        let x = atomic_f64_vec(n, 0.0);
        let acc = atomic_f64_vec(n, 0.0);
        let contrib = atomic_f64_vec(n, 0.0);
        x[seed as usize].store(1.0);
        let mut frontier = Frontier::single(n, seed);
        for _ in 0..self.ppr_rounds {
            if frontier.is_empty() {
                break;
            }
            // Stage this round's contributions over the active set;
            // absorb (1 - d) into the scores as the mass leaves.
            self.exec.vertex_map(&self.pg, &frontier, |v| {
                let i = v as usize;
                let xi = x[i].load();
                let d = g.out_degree(v);
                contrib[i].store(if d > 0 { DAMPING * xi / d as f64 } else { 0.0 });
                p[i].store(p[i].load() + (1.0 - DAMPING) * xi);
                true
            });
            let op = PushOp {
                contrib: &contrib,
                acc: &acc,
            };
            let (touched, _) = self.exec.edge_map(&self.pg, &frontier, &op);
            // The accumulated mass becomes the next x and the
            // accumulator is re-zeroed, both over the touched set only;
            // tiny residues leave the frontier so request cost stays
            // bounded.
            let (next, _) = self.exec.vertex_map(&self.pg, &touched, |v| {
                let i = v as usize;
                let nx = acc[i].load();
                x[i].store(nx);
                acc[i].store(0.0);
                nx > 1e-12
            });
            frontier = next;
        }
        digest_u64s(
            snapshot_f64(&p)
                .into_iter()
                .enumerate()
                .filter(|&(_, s)| s != 0.0)
                .flat_map(|(v, s)| [v as u64, s.to_bits()]),
        )
    }

    /// BFS from `seed`, digested over the (deterministic) level array —
    /// parent choice is a legitimate tie-break, levels are not.
    fn bfs_digest(&self, seed: VertexId) -> u64 {
        let (parents, _) = bfs(&self.exec, &self.pg, seed);
        let levels = levels_from_parents(&parents, seed);
        digest_u64s(levels.into_iter().map(u64::from))
    }
}

/// Parses a request script: one request per line — `pr <seed>`,
/// `bfs <seed>`, or `label <v>`; blank lines and `#` comments ignored.
pub fn parse_script(text: &str) -> Result<Vec<Request>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap();
        let arg: VertexId = parts
            .next()
            .ok_or_else(|| format!("line {}: missing vertex argument", lineno + 1))?
            .parse()
            .map_err(|_| format!("line {}: bad vertex id", lineno + 1))?;
        if parts.next().is_some() {
            return Err(format!("line {}: trailing tokens", lineno + 1));
        }
        out.push(match kind {
            "pr" => Request::PageRankSeed { seed: arg },
            "bfs" => Request::Bfs { seed: arg },
            "label" => Request::Label { v: arg },
            other => return Err(format!("line {}: unknown request '{other}'", lineno + 1)),
        });
    }
    Ok(out)
}

/// Deterministically generates a mixed workload of `count` requests
/// (cheap label lookups dominate, as in a real serving mix).
pub fn generate_requests(count: usize, seed: u64) -> Vec<Request> {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = mix64(state);
        state
    };
    (0..count)
        .map(|_| {
            let v = (next() >> 32) as VertexId;
            match next() % 10 {
                0..=1 => Request::PageRankSeed { seed: v },
                2..=4 => Request::Bfs { seed: v },
                _ => Request::Label { v },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_engine::ExecMode;
    use vebo_graph::Dataset;

    fn engine(mode: ExecMode) -> ServeEngine {
        let g = Dataset::YahooLike.build(0.03);
        let profile = SystemProfile::polymer_like();
        ServeEngine::new(g, profile, Executor::new(profile).with_mode(mode))
    }

    #[test]
    fn script_round_trips() {
        let script = "# mixed\npr 3\n\nbfs 7\nlabel 12\n";
        let reqs = parse_script(script).unwrap();
        assert_eq!(
            reqs,
            vec![
                Request::PageRankSeed { seed: 3 },
                Request::Bfs { seed: 7 },
                Request::Label { v: 12 },
            ]
        );
        assert!(parse_script("pr\n").is_err());
        assert!(parse_script("walk 3\n").is_err());
        assert!(parse_script("pr 1 2\n").is_err());
    }

    #[test]
    fn generated_workload_is_deterministic_and_mixed() {
        let a = generate_requests(64, 42);
        let b = generate_requests(64, 42);
        assert_eq!(a, b);
        assert_ne!(a, generate_requests(64, 43));
        for code in ["pr", "bfs", "label"] {
            assert!(a.iter().any(|r| r.code() == code), "no {code} requests");
        }
    }

    #[test]
    fn batch_digests_match_across_backends() {
        let reqs = generate_requests(12, 7);
        let seq = engine(ExecMode::Sequential).run_batch(&reqs, 1);
        let sharded = engine(ExecMode::Sharded { shards: 3 }).run_batch(&reqs, 4);
        for (i, (a, b)) in seq.responses.iter().zip(&sharded.responses).enumerate() {
            assert_eq!(a.digest, b.digest, "request {i} ({})", reqs[i].code());
        }
        assert_eq!(seq.combined_digest(), sharded.combined_digest());
        // The sharded run exercised the pool and recorded latencies.
        let m = sharded.metrics;
        assert!(m.ops > 0, "no sharded ops recorded");
        assert_eq!(m.request_nanos.len(), reqs.len());
        assert!(m.latency_quantile(0.99).unwrap() >= m.latency_quantile(0.5).unwrap());
    }

    #[test]
    fn label_requests_serve_component_labels() {
        let e = engine(ExecMode::Sequential);
        let n = e.prepared().graph().num_vertices() as u32;
        let a = e.handle(&Request::Label { v: 5 });
        let b = e.handle(&Request::Label { v: 5 + n });
        assert_eq!(a.digest, b.digest, "lookup wraps modulo n");
    }
}
