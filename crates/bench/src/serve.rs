//! The serving layer behind `vebo-serve`: batched query workloads driven
//! concurrently through one shared [`Executor`] — over a **mutable**
//! graph.
//!
//! Six request kinds model a graph-serving API (the roster lives in
//! [`vebo::REQUEST_SPECS`], the single source of truth the script parser
//! resolves against):
//!
//! * [`Request::PageRankSeed`] — personalized PageRank pushed from one
//!   seed vertex (a fixed number of forward-push rounds);
//! * [`Request::PageRankDelta`] — a whole-graph PageRankDelta sweep
//!   (Table II's PRD) capped at a round count, digesting the rank
//!   vector;
//! * [`Request::Bfs`] — BFS reachability/levels from a seed;
//! * [`Request::Label`] — component-label lookup against labels
//!   maintained incrementally across mutations (the "cheap read" class
//!   of request);
//! * [`Request::AddEdge`] / [`Request::DelEdge`] — edge mutations
//!   against the engine's [`DynamicGraph`].
//!
//! ## The mutable serving loop
//!
//! The engine owns a [`DynamicGraph`] and publishes an immutable
//! [`Arc`]`<ServeState>` (prepared graph + component labels) that query
//! threads clone under a briefly-held read lock — queries **never block
//! on mutations**. Mutations serialize on a separate lock: each one is
//! buffered into the dynamic graph's delta log, component labels are
//! repaired incrementally ([`IncrementalCc`] — exact label propagation
//! on inserts, overlay-aware recompute on deletes), and a new state
//! carrying the delta overlay is published so subsequent queries observe
//! the mutation before any compaction. Every `compact_every` buffered
//! ops the log is merged into a fresh CSR/CSC snapshot off the query
//! path; a [`DriftTrigger`] then decides whether the partition placement
//! has drifted enough to recompute task bounds (a "reorder") or whether
//! the old bounds carry over. Compaction counts, reorders, the published
//! epoch, and the epoch's age in requests are reported through the
//! [`ShardMetricsSink`].
//!
//! Each response is reduced to a 64-bit FNV-1a digest so whole batches
//! can be diffed across executor backends: on the partitioned profiles
//! (Polymer, GraphGrind — the `vebo-serve` default) every float
//! accumulation is destination-owned, so digests on delta-free epochs
//! are **bit-identical** across the sequential, rayon, and sharded
//! backends and CI fails on any mismatch. (On the Ligra profile, and on
//! dirty epochs — where the overlay routes sparse traversals through the
//! atomic push kernel — float digests may differ in the last ulp between
//! parallel backends; integer digests, `bfs` and `label`, stay exact
//! everywhere.)
//!
//! Batches run on `concurrency` request threads pulling from a shared
//! cursor; per-request latency is forwarded to the engine's
//! [`InstrumentSink::record_request`],
//! and the [`ShardMetricsSink`] snapshot reports per-shard queue depth,
//! occupancy, steals, and latency quantiles.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;
use vebo::request_spec;
use vebo_algorithms::bfs::{bfs, levels_from_parents};
use vebo_algorithms::cc::cc;
use vebo_algorithms::pagerank_delta::{pagerank_delta, PageRankDeltaConfig};
use vebo_algorithms::IncrementalCc;
use vebo_core::{edge_counts_for_starts, DriftTrigger};
use vebo_engine::shared::{atomic_f64_vec, snapshot_f64, AtomicF64};
use vebo_engine::{
    EdgeOp, Executor, Frontier, InstrumentSink, PreparedGraph, ShardMetrics, ShardMetricsSink,
    SystemProfile,
};
use vebo_graph::graph::mix64;
use vebo_graph::{CompactionStats, DynamicGraph, Graph, VertexId};

/// One serving request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Personalized PageRank pushed from `seed`.
    PageRankSeed {
        /// Seed vertex (taken modulo the vertex count).
        seed: VertexId,
    },
    /// A whole-graph PageRankDelta sweep capped at `rounds` rounds.
    PageRankDelta {
        /// Maximum delta-propagation rounds (at least 1).
        rounds: u32,
    },
    /// BFS levels from `seed`.
    Bfs {
        /// Source vertex (taken modulo the vertex count).
        seed: VertexId,
    },
    /// Component-label lookup for `v`.
    Label {
        /// Queried vertex (taken modulo the vertex count).
        v: VertexId,
    },
    /// Insert edge `(u, v)` into the dynamic graph.
    AddEdge {
        /// Source endpoint (taken modulo the vertex count).
        u: VertexId,
        /// Destination endpoint (taken modulo the vertex count).
        v: VertexId,
    },
    /// Delete edge `(u, v)` from the dynamic graph.
    DelEdge {
        /// Source endpoint (taken modulo the vertex count).
        u: VertexId,
        /// Destination endpoint (taken modulo the vertex count).
        v: VertexId,
    },
}

impl Request {
    /// Short kind code used in scripts and output — the
    /// [`vebo::RequestSpec::code`] of this request's roster entry.
    pub fn code(&self) -> &'static str {
        match self {
            Request::PageRankSeed { .. } => "pr",
            Request::PageRankDelta { .. } => "prd",
            Request::Bfs { .. } => "bfs",
            Request::Label { .. } => "label",
            Request::AddEdge { .. } => "add",
            Request::DelEdge { .. } => "del",
        }
    }

    /// Whether handling this request mutates the dynamic graph, per the
    /// [`vebo::REQUEST_SPECS`] roster.
    pub fn mutates(&self) -> bool {
        request_spec(self.code())
            .expect("every request code is in the roster")
            .mutates
    }
}

/// One handled request.
#[derive(Clone, Copy, Debug)]
pub struct Response {
    /// FNV-1a digest of the canonical result.
    pub digest: u64,
    /// Wall-clock latency of the request in nanoseconds.
    pub nanos: u64,
}

/// Result of one [`ServeEngine::run_batch`].
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One response per request, in request order.
    pub responses: Vec<Response>,
    /// Snapshot of the engine's shard/latency metrics as of the end of
    /// this batch — cumulative over every request served by the engine
    /// so far (startup precomputation is never counted).
    pub metrics: ShardMetrics,
    /// Batch wall-clock seconds.
    pub wall_seconds: f64,
}

impl BatchReport {
    /// Order-sensitive digest over all response digests — one number to
    /// diff across executor backends.
    pub fn combined_digest(&self) -> u64 {
        let mut h = Fnv::new();
        for r in &self.responses {
            h.write_u64(r.digest);
        }
        h.finish()
    }
}

/// FNV-1a, 64 bit — tiny, dependency-free, stable across platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

fn digest_u64s(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = Fnv::new();
    for v in values {
        h.write_u64(v);
    }
    h.finish()
}

/// Forward-push personalized-PageRank operator: `acc[dst] += contrib[src]`.
struct PushOp<'a> {
    contrib: &'a [AtomicF64],
    acc: &'a [AtomicF64],
}

impl EdgeOp for PushOp<'_> {
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        let a = &self.acc[dst as usize];
        a.store(a.load() + self.contrib[src as usize].load());
        true
    }
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.acc[dst as usize].fetch_add(self.contrib[src as usize].load());
        true
    }
}

/// What query threads read: one epoch's prepared graph (snapshot +
/// possibly a delta overlay) and the component labels current as of that
/// epoch. Immutable once published; swapped wholesale behind an `Arc`.
struct ServeState {
    pg: PreparedGraph,
    labels: Vec<u32>,
}

/// Mutation-path state, serialized under one lock so mutations apply in
/// a total order: the incremental component-label maintainer and the
/// placement-drift trigger consulted at each compaction.
struct MutationState {
    cc: IncrementalCc,
    trigger: DriftTrigger,
}

/// A dynamic graph plus the executor and published per-epoch state every
/// request handler shares. Cheap to share across request threads
/// (`&self` everywhere); the executor's sharded pool, when selected, is
/// likewise shared. Queries clone the published state `Arc` under a
/// briefly-held read lock and run entirely against that pinned epoch, so
/// they never block on (or observe a half-applied) mutation.
pub struct ServeEngine {
    exec: Executor,
    profile: SystemProfile,
    graph: DynamicGraph,
    state: RwLock<Arc<ServeState>>,
    mutation: Mutex<MutationState>,
    metrics: Arc<ShardMetricsSink>,
    /// Push rounds per PageRank-from-seed request.
    pub ppr_rounds: usize,
    compact_every: usize,
}

/// Default mutation count between compactions.
pub const DEFAULT_COMPACT_EVERY: usize = 8;
/// Default relative per-partition edge-count drift that triggers a
/// placement recompute at compaction time.
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.25;

impl ServeEngine {
    /// Wraps `g` in a [`DynamicGraph`], prepares its initial snapshot
    /// for `profile`, attaches a [`ShardMetricsSink`] to `exec`, and
    /// precomputes the component labels served by [`Request::Label`]
    /// (maintained incrementally from then on). Compaction policy starts
    /// at [`DEFAULT_COMPACT_EVERY`] / [`DEFAULT_DRIFT_THRESHOLD`]; see
    /// [`ServeEngine::configure_compaction`].
    pub fn new(g: Graph, profile: SystemProfile, exec: Executor) -> ServeEngine {
        let pg = PreparedGraph::new(g.clone(), profile);
        let graph = DynamicGraph::new(g);
        // Precompute before attaching the metrics sink, so the serving
        // metrics only ever describe served requests, not startup work.
        let (labels, _) = cc(&exec, &pg);
        let baseline = edge_counts_for_starts(pg.graph(), pg.tasks().starts());
        let mutation = Mutex::new(MutationState {
            cc: IncrementalCc::new(labels.clone()),
            trigger: DriftTrigger::new(DEFAULT_DRIFT_THRESHOLD, baseline),
        });
        let metrics = Arc::new(ShardMetricsSink::new());
        let exec = exec.with_sink(metrics.clone());
        ServeEngine {
            exec,
            profile,
            graph,
            state: RwLock::new(Arc::new(ServeState { pg, labels })),
            mutation,
            metrics,
            ppr_rounds: 10,
            compact_every: DEFAULT_COMPACT_EVERY,
        }
    }

    /// Sets the compaction policy: merge the delta log every `every`
    /// buffered mutations, and recompute partition placement when the
    /// per-partition edge-count drift reaches `drift_threshold`.
    pub fn configure_compaction(&mut self, every: usize, drift_threshold: f64) {
        assert!(every >= 1, "compaction period must be at least 1");
        self.compact_every = every;
        let mu = self.mutation.get_mut().unwrap();
        mu.trigger = DriftTrigger::new(drift_threshold, mu.trigger.baseline().to_vec());
    }

    /// The prepared graph of the currently published epoch. A cheap
    /// clone: layouts are shared behind an `Arc`.
    pub fn prepared(&self) -> PreparedGraph {
        self.state.read().unwrap().pg.clone()
    }

    /// The dynamic graph behind the engine.
    pub fn dynamic(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The executor requests run through.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// A snapshot of the shard/latency metrics accumulated so far.
    pub fn metrics(&self) -> ShardMetrics {
        self.metrics.snapshot()
    }

    /// Forces a compaction (merging any buffered mutations into a fresh
    /// snapshot and republishing the serving state), regardless of the
    /// `compact_every` threshold. No-op on a clean engine.
    pub fn compact_now(&self) -> CompactionStats {
        let mut mu = self.mutation.lock().unwrap();
        self.compact_locked(&mut mu)
    }

    /// Handles one request, recording its latency.
    pub fn handle(&self, req: &Request) -> Response {
        let t0 = Instant::now();
        let n = self.graph.num_vertices().max(1) as u32;
        let digest = match *req {
            Request::AddEdge { u, v } => self.apply_mutation(true, u % n, v % n),
            Request::DelEdge { u, v } => self.apply_mutation(false, u % n, v % n),
            _ => {
                let state = self.state.read().unwrap().clone();
                match *req {
                    Request::PageRankSeed { seed } => self.ppr_digest(&state, seed % n),
                    Request::PageRankDelta { rounds } => self.prd_digest(&state, rounds),
                    Request::Bfs { seed } => self.bfs_digest(&state, seed % n),
                    Request::Label { v } => digest_u64s([state.labels[(v % n) as usize] as u64]),
                    Request::AddEdge { .. } | Request::DelEdge { .. } => unreachable!(),
                }
            }
        };
        let nanos = t0.elapsed().as_nanos() as u64;
        self.metrics.record_request(nanos);
        Response { digest, nanos }
    }

    /// The mutation path: buffer the op, repair (insert) or recompute
    /// (delete) component labels, publish a dirty epoch carrying the
    /// delta overlay, and compact when the log reaches `compact_every`.
    /// Serialized on the mutation lock; the state write lock is only
    /// held for the `Arc` swap, so concurrent queries keep reading their
    /// pinned epoch throughout.
    fn apply_mutation(&self, insert: bool, u: VertexId, v: VertexId) -> u64 {
        let mut mu = self.mutation.lock().unwrap();
        if insert {
            self.graph.insert_edge(u, v);
        } else {
            self.graph.delete_edge(u, v);
        }
        let pin = self.graph.pin();
        let base = self.state.read().unwrap().pg.clone();
        let pg = base.with_overlay(Some(pin.overlay().clone()), pin.epoch());
        if insert {
            mu.cc.on_insert(pin.graph(), Some(pin.overlay()), u, v);
        } else {
            // A delete can split a component, which label lowering
            // cannot express: recompute on the overlay-aware handle.
            mu.cc.recompute(&self.exec, &pg);
        }
        let labels = mu.cc.labels().to_vec();
        *self.state.write().unwrap() = Arc::new(ServeState { pg, labels });
        if self.graph.pending_len() >= self.compact_every {
            self.compact_locked(&mut mu);
        }
        digest_u64s([if insert { 1 } else { 2 }, u as u64, v as u64])
    }

    /// Compacts the delta log into a fresh snapshot and republishes the
    /// serving state — on the mutation path, never the query path. The
    /// [`DriftTrigger`] compares per-partition edge counts on the new
    /// snapshot against its baseline: past the threshold the placement
    /// is recomputed from scratch (a "reorder"); otherwise the previous
    /// task bounds carry over and only the layouts rebuild.
    fn compact_locked(&self, mu: &mut MutationState) -> CompactionStats {
        let stats = self.graph.compact();
        let cur = self.state.read().unwrap().clone();
        if stats.applied == 0 && cur.pg.overlay().is_none() {
            return stats;
        }
        let snapshot = self.graph.snapshot();
        let counts = edge_counts_for_starts(&snapshot, cur.pg.tasks().starts());
        let reorder = mu.trigger.should_reorder(&counts);
        let pg = if reorder {
            PreparedGraph::new((*snapshot).clone(), self.profile)
        } else {
            PreparedGraph::builder((*snapshot).clone())
                .profile(self.profile)
                .bounds(cur.pg.tasks().clone())
                .build()
                .expect("carried-over bounds span the same vertex range")
        };
        mu.trigger
            .rebase(edge_counts_for_starts(pg.graph(), pg.tasks().starts()));
        let pg = pg.with_overlay(None, stats.epoch);
        let labels = mu.cc.labels().to_vec();
        self.metrics.record_compaction(stats.epoch, reorder);
        *self.state.write().unwrap() = Arc::new(ServeState { pg, labels });
        stats
    }

    /// Personalized PageRank from `seed`: `ppr_rounds` forward-push
    /// rounds of `x_{k+1} = d · Aᵀ x_k` with `p += (1 − d) · x_k`,
    /// starting from `x_0 = e_seed`. The digest covers the bit patterns
    /// of every nonzero score.
    ///
    /// Per-round work is frontier-scoped: contributions are staged over
    /// the active set only (every traversal kernel gates reads by
    /// frontier membership, so stale `contrib`/`x` entries on inactive
    /// vertices are never observed), and the accumulated mass is folded
    /// back — and the accumulator re-zeroed — over just the vertices
    /// the push touched. A request on a small neighborhood therefore
    /// costs O(touched), not O(n · rounds).
    ///
    /// Degrees go through the prepared handle, which is overlay-aware:
    /// on a dirty epoch the push divisor matches the merged adjacency
    /// the edge map traverses.
    fn ppr_digest(&self, state: &ServeState, seed: VertexId) -> u64 {
        const DAMPING: f64 = 0.85;
        let pg = &state.pg;
        let n = pg.graph().num_vertices();
        let p = atomic_f64_vec(n, 0.0);
        let x = atomic_f64_vec(n, 0.0);
        let acc = atomic_f64_vec(n, 0.0);
        let contrib = atomic_f64_vec(n, 0.0);
        x[seed as usize].store(1.0);
        let mut frontier = Frontier::single(n, seed);
        for _ in 0..self.ppr_rounds {
            if frontier.is_empty() {
                break;
            }
            // Stage this round's contributions over the active set;
            // absorb (1 - d) into the scores as the mass leaves.
            self.exec.vertex_map(pg, &frontier, |v| {
                let i = v as usize;
                let xi = x[i].load();
                let d = pg.out_degree(v);
                contrib[i].store(if d > 0 { DAMPING * xi / d as f64 } else { 0.0 });
                p[i].store(p[i].load() + (1.0 - DAMPING) * xi);
                true
            });
            let op = PushOp {
                contrib: &contrib,
                acc: &acc,
            };
            let (touched, _) = self.exec.edge_map(pg, &frontier, &op);
            // The accumulated mass becomes the next x and the
            // accumulator is re-zeroed, both over the touched set only;
            // tiny residues leave the frontier so request cost stays
            // bounded.
            let (next, _) = self.exec.vertex_map(pg, &touched, |v| {
                let i = v as usize;
                let nx = acc[i].load();
                x[i].store(nx);
                acc[i].store(0.0);
                nx > 1e-12
            });
            frontier = next;
        }
        digest_u64s(
            snapshot_f64(&p)
                .into_iter()
                .enumerate()
                .filter(|&(_, s)| s != 0.0)
                .flat_map(|(v, s)| [v as u64, s.to_bits()]),
        )
    }

    /// PageRankDelta over the whole pinned epoch, digested over the bit
    /// patterns of the final rank vector.
    fn prd_digest(&self, state: &ServeState, rounds: u32) -> u64 {
        let cfg = PageRankDeltaConfig {
            max_iterations: rounds.max(1) as usize,
            ..Default::default()
        };
        let (ranks, _) = pagerank_delta(&self.exec, &state.pg, &cfg);
        digest_u64s(ranks.into_iter().map(f64::to_bits))
    }

    /// BFS from `seed`, digested over the (deterministic) level array —
    /// parent choice is a legitimate tie-break, levels are not.
    fn bfs_digest(&self, state: &ServeState, seed: VertexId) -> u64 {
        let (parents, _) = bfs(&self.exec, &state.pg, seed);
        let levels = levels_from_parents(&parents, seed);
        digest_u64s(levels.into_iter().map(u64::from))
    }

    /// Runs `requests` on `concurrency` request threads sharing this
    /// engine (and its sharded worker pool, when selected). Responses
    /// land in request order regardless of completion order. Mutations
    /// in the batch serialize on the mutation lock; queries proceed
    /// against their pinned epoch concurrently with them.
    pub fn run_batch(&self, requests: &[Request], concurrency: usize) -> BatchReport {
        let t0 = Instant::now();
        let cursor = AtomicUsize::new(0);
        let responses: Mutex<Vec<Option<Response>>> = Mutex::new(vec![None; requests.len()]);
        let workers = concurrency.max(1).min(requests.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= requests.len() {
                        break;
                    }
                    let r = self.handle(&requests[i]);
                    responses.lock().unwrap()[i] = Some(r);
                });
            }
        });
        let responses = responses
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("every request handled"))
            .collect();
        BatchReport {
            responses,
            metrics: self.metrics.snapshot(),
            wall_seconds: t0.elapsed().as_secs_f64(),
        }
    }
}

/// Parses a request script: one request per line, resolved against the
/// [`vebo::REQUEST_SPECS`] roster — `pr <seed>`, `prd <rounds>`,
/// `bfs <seed>`, `label <v>`, `add <u> <v>`, `del <u> <v>`; blank lines
/// and `#` comments ignored.
pub fn parse_script(text: &str) -> Result<Vec<Request>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap();
        let spec = request_spec(kind)
            .ok_or_else(|| format!("line {}: unknown request '{kind}'", lineno + 1))?;
        let mut args = [0 as VertexId; 2];
        for slot in args.iter_mut().take(spec.arity) {
            *slot = parts
                .next()
                .ok_or_else(|| {
                    format!(
                        "line {}: '{}' takes {} argument(s)",
                        lineno + 1,
                        spec.code,
                        spec.arity
                    )
                })?
                .parse()
                .map_err(|_| format!("line {}: bad vertex id", lineno + 1))?;
        }
        if parts.next().is_some() {
            return Err(format!("line {}: trailing tokens", lineno + 1));
        }
        out.push(match spec.code {
            "pr" => Request::PageRankSeed { seed: args[0] },
            "prd" => Request::PageRankDelta { rounds: args[0] },
            "bfs" => Request::Bfs { seed: args[0] },
            "label" => Request::Label { v: args[0] },
            "add" => Request::AddEdge {
                u: args[0],
                v: args[1],
            },
            "del" => Request::DelEdge {
                u: args[0],
                v: args[1],
            },
            other => unreachable!("roster and Request enum out of sync: {other}"),
        });
    }
    Ok(out)
}

/// Deterministically generates a mixed workload of `count` requests:
/// cheap label lookups dominate, with a mutation share (~15% adds and
/// deletes) and an occasional whole-graph PRD sweep, as in a real
/// serving mix.
pub fn generate_requests(count: usize, seed: u64) -> Vec<Request> {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = mix64(state);
        state
    };
    (0..count)
        .map(|_| {
            let v = (next() >> 32) as VertexId;
            let u = (next() >> 32) as VertexId;
            match next() % 20 {
                0..=1 => Request::PageRankSeed { seed: v },
                2 => Request::PageRankDelta {
                    rounds: 2 + (u % 4),
                },
                3..=6 => Request::Bfs { seed: v },
                7..=8 => Request::AddEdge { u, v },
                9 => Request::DelEdge { u, v },
                _ => Request::Label { v },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_engine::ExecMode;
    use vebo_graph::Dataset;

    fn engine(mode: ExecMode) -> ServeEngine {
        let g = Dataset::YahooLike.build(0.03);
        let profile = SystemProfile::polymer_like();
        ServeEngine::new(g, profile, Executor::new(profile).with_mode(mode))
    }

    #[test]
    fn script_round_trips() {
        let script = "# mixed\npr 3\n\nbfs 7\nlabel 12\nprd 4\nadd 1 2\ndel 2 1\n";
        let reqs = parse_script(script).unwrap();
        assert_eq!(
            reqs,
            vec![
                Request::PageRankSeed { seed: 3 },
                Request::Bfs { seed: 7 },
                Request::Label { v: 12 },
                Request::PageRankDelta { rounds: 4 },
                Request::AddEdge { u: 1, v: 2 },
                Request::DelEdge { u: 2, v: 1 },
            ]
        );
        assert!(parse_script("pr\n").is_err());
        assert!(parse_script("walk 3\n").is_err());
        assert!(parse_script("pr 1 2\n").is_err());
        assert!(parse_script("add 3\n").is_err(), "add is binary");
        assert!(parse_script("add 3 4 5\n").is_err());
    }

    #[test]
    fn generated_workload_is_deterministic_and_mixed() {
        let a = generate_requests(256, 42);
        let b = generate_requests(256, 42);
        assert_eq!(a, b);
        assert_ne!(a, generate_requests(256, 43));
        for spec in &vebo::REQUEST_SPECS {
            assert!(
                a.iter().any(|r| r.code() == spec.code),
                "no {} requests",
                spec.code
            );
        }
        let mutations = a.iter().filter(|r| r.mutates()).count();
        assert!(mutations * 10 >= a.len(), "mutation share too small");
        assert!(mutations * 4 <= a.len(), "mutation share too large");
    }

    #[test]
    fn batch_digests_match_across_backends() {
        // Read-only slice of the mix at request concurrency 4: digests
        // must be bit-identical between backends on the partitioned
        // profile.
        let reqs: Vec<Request> = generate_requests(40, 7)
            .into_iter()
            .filter(|r| !r.mutates())
            .take(12)
            .collect();
        let seq = engine(ExecMode::Sequential).run_batch(&reqs, 1);
        let sharded = engine(ExecMode::Sharded { shards: 3 }).run_batch(&reqs, 4);
        for (i, (a, b)) in seq.responses.iter().zip(&sharded.responses).enumerate() {
            assert_eq!(a.digest, b.digest, "request {i} ({})", reqs[i].code());
        }
        assert_eq!(seq.combined_digest(), sharded.combined_digest());
        // The sharded run exercised the pool and recorded latencies.
        let m = sharded.metrics;
        assert!(m.ops > 0, "no sharded ops recorded");
        assert_eq!(m.request_nanos.len(), reqs.len());
        assert!(m.latency_quantile(0.99).unwrap() >= m.latency_quantile(0.5).unwrap());
    }

    #[test]
    fn mutating_batch_digests_match_across_backends() {
        // Interleaved mutate+query stream, applied in order (request
        // concurrency 1) with compaction after every mutation so float
        // queries always run on delta-free epochs: every digest must be
        // bit-identical between the sequential and sharded backends.
        let reqs = generate_requests(32, 11);
        assert!(reqs.iter().any(|r| r.mutates()), "mix lost its mutations");
        let mut a = engine(ExecMode::Sequential);
        a.configure_compaction(1, DEFAULT_DRIFT_THRESHOLD);
        let mut b = engine(ExecMode::Sharded { shards: 3 });
        b.configure_compaction(1, DEFAULT_DRIFT_THRESHOLD);
        let ra = a.run_batch(&reqs, 1);
        let rb = b.run_batch(&reqs, 1);
        for (i, (x, y)) in ra.responses.iter().zip(&rb.responses).enumerate() {
            assert_eq!(x.digest, y.digest, "request {i} ({})", reqs[i].code());
        }
        assert_eq!(ra.combined_digest(), rb.combined_digest());
        assert_eq!(a.metrics().compactions, b.metrics().compactions);
        assert!(a.metrics().compactions > 0);
    }

    #[test]
    fn label_requests_serve_component_labels() {
        let e = engine(ExecMode::Sequential);
        let n = e.prepared().graph().num_vertices() as u32;
        let a = e.handle(&Request::Label { v: 5 });
        let b = e.handle(&Request::Label { v: 5 + n });
        assert_eq!(a.digest, b.digest, "lookup wraps modulo n");
    }

    #[test]
    fn inserts_repair_labels_before_compaction() {
        // Two components; bridge them with an add and the label lookup
        // must reflect the merge immediately, while the epoch is still
        // dirty (no compaction has happened).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)], false);
        let profile = SystemProfile::polymer_like();
        let e = ServeEngine::new(g, profile, Executor::new(profile));
        let before = e.handle(&Request::Label { v: 4 }).digest;
        assert_ne!(before, e.handle(&Request::Label { v: 0 }).digest);
        e.handle(&Request::AddEdge { u: 2, v: 3 });
        assert!(e.dynamic().is_dirty(), "compaction should not have fired");
        assert_eq!(
            e.handle(&Request::Label { v: 4 }).digest,
            e.handle(&Request::Label { v: 0 }).digest,
            "incremental repair merges the components"
        );
        assert!(e.prepared().overlay().is_some(), "dirty epoch published");
    }

    #[test]
    fn deletes_recompute_labels_via_overlay() {
        // A path 0-1-2: deleting (1, 2) splits the component, which the
        // overlay-aware recompute must observe pre-compaction.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], false);
        let profile = SystemProfile::polymer_like();
        let e = ServeEngine::new(g, profile, Executor::new(profile));
        assert_eq!(
            e.handle(&Request::Label { v: 2 }).digest,
            e.handle(&Request::Label { v: 0 }).digest
        );
        e.handle(&Request::DelEdge { u: 1, v: 2 });
        assert!(e.dynamic().is_dirty());
        assert_ne!(
            e.handle(&Request::Label { v: 2 }).digest,
            e.handle(&Request::Label { v: 0 }).digest,
            "split observed before compaction"
        );
    }

    #[test]
    fn compaction_fires_on_schedule_and_matches_static_rebuild() {
        let g = Graph::from_edges(8, &[(0, 1), (2, 3)], false);
        let profile = SystemProfile::polymer_like();
        let mut e = ServeEngine::new(g, profile, Executor::new(profile));
        e.configure_compaction(3, DEFAULT_DRIFT_THRESHOLD);
        e.handle(&Request::AddEdge { u: 1, v: 2 });
        e.handle(&Request::AddEdge { u: 3, v: 4 });
        assert_eq!(e.metrics().compactions, 0);
        e.handle(&Request::AddEdge { u: 4, v: 5 });
        let m = e.metrics();
        assert_eq!(m.compactions, 1);
        assert_eq!(m.epoch, 1);
        assert!(!e.dynamic().is_dirty());
        assert!(e.prepared().overlay().is_none(), "clean epoch published");
        assert_eq!(e.prepared().epoch(), 1);

        // The compacted adjacency equals a from-scratch static build.
        let want = Graph::from_edges(8, &[(0, 1), (2, 3), (1, 2), (3, 4), (4, 5)], false);
        let got = e.dynamic().snapshot();
        for v in 0..8u32 {
            assert_eq!(got.out_neighbors(v), want.out_neighbors(v), "vertex {v}");
        }

        // And the post-compaction queries match a fresh engine on the
        // statically rebuilt graph.
        let f = ServeEngine::new(want, profile, Executor::new(profile));
        for req in [
            Request::Bfs { seed: 0 },
            Request::PageRankSeed { seed: 1 },
            Request::PageRankDelta { rounds: 4 },
        ] {
            assert_eq!(
                e.handle(&req).digest,
                f.handle(&req).digest,
                "{}",
                req.code()
            );
        }
    }

    #[test]
    fn epoch_age_tracks_requests_since_compaction() {
        let e = engine(ExecMode::Sequential);
        e.handle(&Request::Label { v: 1 });
        e.handle(&Request::Label { v: 2 });
        assert_eq!(e.metrics().epoch_age, 2);
        e.handle(&Request::AddEdge { u: 1, v: 2 });
        let _ = e.compact_now();
        assert_eq!(e.metrics().epoch_age, 0, "compaction resets the age");
        e.handle(&Request::Label { v: 3 });
        assert_eq!(e.metrics().epoch_age, 1);
    }

    #[test]
    fn drift_triggers_placement_reorder() {
        // Pile inserts onto the tail partition with a hair-trigger
        // threshold: the compaction must recompute placement.
        let g = Dataset::YahooLike.build(0.02);
        let n = g.num_vertices() as u32;
        let profile = SystemProfile::polymer_like();
        let mut e = ServeEngine::new(g, profile, Executor::new(profile));
        e.configure_compaction(16, 1e-6);
        for i in 0..16u32 {
            e.handle(&Request::AddEdge {
                u: n - 1 - (i % 8),
                v: n - 9 - (i % 8),
            });
        }
        let m = e.metrics();
        assert_eq!(m.compactions, 1);
        assert_eq!(m.reorders, 1, "drift threshold of ~0 must reorder");
    }
}
