//! The serving layer behind `vebo-serve`: batched query workloads driven
//! concurrently through one shared [`Executor`] — over a **mutable**
//! graph.
//!
//! Six request kinds model a graph-serving API (the roster lives in
//! [`vebo::REQUEST_SPECS`], the single source of truth the script parser
//! resolves against):
//!
//! * [`Request::PageRankSeed`] — personalized PageRank pushed from one
//!   seed vertex (a fixed number of forward-push rounds);
//! * [`Request::PageRankDelta`] — a whole-graph PageRankDelta sweep
//!   (Table II's PRD) capped at a round count, digesting the rank
//!   vector;
//! * [`Request::Bfs`] — BFS reachability/levels from a seed;
//! * [`Request::Label`] — component-label lookup against labels
//!   maintained incrementally across mutations (the "cheap read" class
//!   of request);
//! * [`Request::AddEdge`] / [`Request::DelEdge`] — edge mutations
//!   against the engine's [`DynamicGraph`].
//!
//! ## The mutable serving loop
//!
//! The engine owns a [`DynamicGraph`] and publishes an immutable
//! [`Arc`]`<ServeState>` (prepared graph + component labels) that query
//! threads clone under a briefly-held read lock — queries **never block
//! on mutations**. Mutations serialize on a separate lock: each one is
//! buffered into the dynamic graph's delta log, component labels are
//! repaired incrementally ([`IncrementalCc`] — exact label propagation
//! on inserts, overlay-aware recompute on deletes), and a new state
//! carrying the delta overlay is published so subsequent queries observe
//! the mutation before any compaction.
//!
//! ## Background compaction
//!
//! Compaction never runs on the mutation path. The engine owns a
//! [`Compactor`] — a dedicated thread that, on request, merge-rebuilds
//! the delta log into a fresh CSR/CSC snapshot, runs the
//! [`DriftTrigger`] placement decision (recompute task bounds on a
//! "reorder", carry the old bounds otherwise), and republishes the
//! serving state. Every `compact_every` buffered ops a mutation
//! *signals* the compactor; in the default **blocking** mode it then
//! waits for the cycle (so compaction scheduling stays exactly as
//! observable as the old inline behavior — what the digest-diffing CI
//! legs rely on), while in background mode
//! ([`ServeEngine::set_compaction_blocking`]`(false)`) it returns
//! immediately and the rebuild proceeds concurrently — the mutation
//! lane's latency becomes independent of graph size. The delta log can
//! be bounded ([`ServeEngine::set_log_capacity`]): a full log refuses
//! mutations with [`ServeError::Busy`] (wire-level BUSY) instead of
//! growing without bound while compaction is behind. Compaction counts,
//! reorders, cycle-latency quantiles, log-depth high-water, stall
//! counts, the published epoch, and the epoch's age in requests are
//! reported through the [`ShardMetricsSink`].
//!
//! Each response is reduced to a 64-bit FNV-1a digest so whole batches
//! can be diffed across executor backends: on the partitioned profiles
//! (Polymer, GraphGrind — the `vebo-serve` default) every float
//! accumulation is destination-owned, so digests on delta-free epochs
//! are **bit-identical** across the sequential, rayon, and sharded
//! backends and CI fails on any mismatch. (On the Ligra profile, and on
//! dirty epochs — where the overlay routes sparse traversals through the
//! atomic push kernel — float digests may differ in the last ulp between
//! parallel backends; integer digests, `bfs` and `label`, stay exact
//! everywhere.)
//!
//! Batches run on `concurrency` request threads pulling from a shared
//! cursor; each request's latency is recorded per kind through the
//! [`ShardMetricsSink`] (the kind-tagged counterpart of
//! [`vebo_engine::InstrumentSink::record_request`] — every request goes
//! through exactly one of the two), and the sink's snapshot reports
//! per-shard queue depth, occupancy, steals, and latency quantiles.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;
use vebo::request_spec;
use vebo_algorithms::bfs::{bfs, levels_from_parents};
use vebo_algorithms::cc::cc;
use vebo_algorithms::pagerank_delta::{pagerank_delta, PageRankDeltaConfig};
use vebo_algorithms::IncrementalCc;
use vebo_core::{edge_counts_for_starts, DriftTrigger};
use vebo_engine::shared::{atomic_f64_vec, snapshot_f64, AtomicF64};
use vebo_engine::{
    EdgeOp, Executor, Frontier, PreparedGraph, ShardMetrics, ShardMetricsSink, SystemProfile,
};
use vebo_graph::graph::mix64;
use vebo_graph::{Compactor, DynamicGraph, Graph, GraphError, VertexId};

/// One serving request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Request {
    /// Personalized PageRank pushed from `seed`.
    PageRankSeed {
        /// Seed vertex (taken modulo the vertex count).
        seed: VertexId,
    },
    /// A whole-graph PageRankDelta sweep capped at `rounds` rounds.
    PageRankDelta {
        /// Maximum delta-propagation rounds (at least 1).
        rounds: u32,
    },
    /// BFS levels from `seed`.
    Bfs {
        /// Source vertex (taken modulo the vertex count).
        seed: VertexId,
    },
    /// Component-label lookup for `v`.
    Label {
        /// Queried vertex (taken modulo the vertex count).
        v: VertexId,
    },
    /// Insert edge `(u, v)` into the dynamic graph.
    AddEdge {
        /// Source endpoint (taken modulo the vertex count).
        u: VertexId,
        /// Destination endpoint (taken modulo the vertex count).
        v: VertexId,
    },
    /// Delete edge `(u, v)` from the dynamic graph.
    DelEdge {
        /// Source endpoint (taken modulo the vertex count).
        u: VertexId,
        /// Destination endpoint (taken modulo the vertex count).
        v: VertexId,
    },
}

impl Request {
    /// Short kind code used in scripts and output — the
    /// [`vebo::RequestSpec::code`] of this request's roster entry.
    pub fn code(&self) -> &'static str {
        match self {
            Request::PageRankSeed { .. } => "pr",
            Request::PageRankDelta { .. } => "prd",
            Request::Bfs { .. } => "bfs",
            Request::Label { .. } => "label",
            Request::AddEdge { .. } => "add",
            Request::DelEdge { .. } => "del",
        }
    }

    /// Whether handling this request mutates the dynamic graph, per the
    /// [`vebo::REQUEST_SPECS`] roster.
    pub fn mutates(&self) -> bool {
        request_spec(self.code())
            .expect("every request code is in the roster")
            .mutates
    }

    /// The integer arguments, in roster order (unused slots zero).
    fn args(&self) -> [VertexId; 2] {
        match *self {
            Request::PageRankSeed { seed } => [seed, 0],
            Request::PageRankDelta { rounds } => [rounds, 0],
            Request::Bfs { seed } => [seed, 0],
            Request::Label { v } => [v, 0],
            Request::AddEdge { u, v } => [u, v],
            Request::DelEdge { u, v } => [u, v],
        }
    }

    /// Renders the request as one script/wire line (`"pr 3"`,
    /// `"add 1 2"`) — the inverse of [`parse_request_line`], so network
    /// clients and script writers share one grammar.
    pub fn to_line(&self) -> String {
        let spec = request_spec(self.code()).expect("every request code is in the roster");
        let args = self.args();
        let mut out = String::from(spec.code);
        for a in &args[..spec.arity()] {
            out.push(' ');
            out.push_str(&a.to_string());
        }
        out
    }

    /// Builds the request a parsed `(spec, args)` pair denotes — the one
    /// place the roster maps onto this enum, shared by the script parser
    /// and the network protocol decoder.
    fn from_spec_args(spec: &vebo::RequestSpec, args: [VertexId; 2]) -> Request {
        match spec.code {
            "pr" => Request::PageRankSeed { seed: args[0] },
            "prd" => Request::PageRankDelta { rounds: args[0] },
            "bfs" => Request::Bfs { seed: args[0] },
            "label" => Request::Label { v: args[0] },
            "add" => Request::AddEdge {
                u: args[0],
                v: args[1],
            },
            "del" => Request::DelEdge {
                u: args[0],
                v: args[1],
            },
            other => unreachable!("roster and Request enum out of sync: {other}"),
        }
    }

    /// The canonical form two requests must share to be answered by one
    /// execution on an `n`-vertex graph: vertex arguments reduced modulo
    /// `n` (exactly what [`ServeEngine::handle`] does before executing)
    /// and degenerate round counts clamped. Used by the coalescing
    /// batch path to detect duplicates.
    pub fn canonical(&self, n: u32) -> Request {
        let n = n.max(1);
        match *self {
            Request::PageRankSeed { seed } => Request::PageRankSeed { seed: seed % n },
            Request::PageRankDelta { rounds } => Request::PageRankDelta {
                rounds: rounds.max(1),
            },
            Request::Bfs { seed } => Request::Bfs { seed: seed % n },
            Request::Label { v } => Request::Label { v: v % n },
            Request::AddEdge { u, v } => Request::AddEdge { u: u % n, v: v % n },
            Request::DelEdge { u, v } => Request::DelEdge { u: u % n, v: v % n },
        }
    }
}

/// One handled request.
#[derive(Clone, Copy, Debug)]
pub struct Response {
    /// FNV-1a digest of the canonical result.
    pub digest: u64,
    /// Wall-clock latency of the request in nanoseconds.
    pub nanos: u64,
}

/// Result of one [`ServeEngine::run_batch`].
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One slot per request, in request order. `None` marks requests a
    /// graceful drain ([`ServeEngine::run_batch_until`]) skipped; a full
    /// run is all `Some`.
    pub responses: Vec<Option<Response>>,
    /// Snapshot of the engine's shard/latency metrics as of the end of
    /// this batch — cumulative over every request served by the engine
    /// so far (startup precomputation is never counted).
    pub metrics: ShardMetrics,
    /// Batch wall-clock seconds.
    pub wall_seconds: f64,
}

impl BatchReport {
    /// Number of requests that actually completed.
    pub fn completed(&self) -> usize {
        self.responses.iter().flatten().count()
    }

    /// Order-sensitive digest over all completed response digests — one
    /// number to diff across executor backends.
    pub fn combined_digest(&self) -> u64 {
        digest_u64s(self.responses.iter().flatten().map(|r| r.digest))
    }
}

/// Order-sensitive FNV-1a digest over a `u64` stream — the digest every
/// response reduces to, exported so network clients can recompute the
/// combined batch digest the in-process harness prints. Re-exported from
/// [`vebo_graph::digest`], where the cluster runtime shares it.
pub use vebo_graph::digest_u64s;

/// Forward-push personalized-PageRank operator: `acc[dst] += contrib[src]`.
struct PushOp<'a> {
    contrib: &'a [AtomicF64],
    acc: &'a [AtomicF64],
}

impl EdgeOp for PushOp<'_> {
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        let a = &self.acc[dst as usize];
        a.store(a.load() + self.contrib[src as usize].load());
        true
    }
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.acc[dst as usize].fetch_add(self.contrib[src as usize].load());
        true
    }
}

/// What query threads read: one epoch's prepared graph (snapshot +
/// possibly a delta overlay) and the component labels current as of that
/// epoch. Immutable once published; swapped wholesale behind an `Arc`.
struct ServeState {
    pg: PreparedGraph,
    labels: Vec<u32>,
}

/// Mutation-path state, serialized under one lock so mutations apply in
/// a total order: the incremental component-label maintainer. The
/// compaction thread also takes this lock — only around its O(1)
/// publication step, never around the rebuild.
struct MutationState {
    cc: IncrementalCc,
}

/// Placement-drift state, consulted and rebased on the compaction
/// thread only (and when reconfiguring the policy).
struct PlacementState {
    trigger: DriftTrigger,
}

/// Why a request was refused instead of answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The mutation lane is backpressured: the bounded delta log is full
    /// until the background compaction catches up. Surfaced on the wire
    /// as the BUSY reply (same admission-control seam as queue-depth
    /// rejection); the request had no effect and can be retried.
    Busy {
        /// Mutations buffered when the request was refused.
        pending: usize,
    },
    /// The request can never be served by this engine (e.g. a mutation
    /// against a weighted snapshot, or an out-of-range endpoint).
    /// Surfaced on the wire as an `err` reply.
    Rejected(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Busy { pending } => {
                write!(f, "busy: delta log full ({pending} pending mutations)")
            }
            ServeError::Rejected(msg) => write!(f, "rejected: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Everything the request threads and the background compaction thread
/// share: the dynamic graph, the executor, the published per-epoch
/// serving state, and the metrics sink. [`ServeEngine`] wraps this in an
/// `Arc` so the compactor's job closure can own a handle to it.
struct EngineCore {
    exec: Executor,
    profile: SystemProfile,
    graph: DynamicGraph,
    state: RwLock<Arc<ServeState>>,
    mutation: Mutex<MutationState>,
    placement: Mutex<PlacementState>,
    metrics: Arc<ShardMetricsSink>,
    ppr_rounds: AtomicUsize,
    compact_every: AtomicUsize,
}

/// A dynamic graph plus the executor and published per-epoch state every
/// request handler shares, with a dedicated background compaction
/// thread. Cheap to share across request threads (`&self` everywhere);
/// the executor's sharded pool, when selected, is likewise shared.
/// Queries clone the published state `Arc` under a briefly-held read
/// lock and run entirely against that pinned epoch, so they never block
/// on (or observe a half-applied) mutation — and mutations never run a
/// CSR rebuild inline: they append to the delta log, signal the
/// [`Compactor`], and return (see the [module docs](self)).
pub struct ServeEngine {
    core: Arc<EngineCore>,
    compactor: Compactor,
    /// Whether a mutation that trips the `compact_every` threshold waits
    /// for the signalled cycle to complete (deterministic scheduling)
    /// or returns immediately (background mode).
    blocking_compaction: bool,
}

/// Default mutation count between compactions.
pub const DEFAULT_COMPACT_EVERY: usize = 8;
/// Default relative per-partition edge-count drift that triggers a
/// placement recompute at compaction time.
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.25;

impl ServeEngine {
    /// Wraps `g` in a [`DynamicGraph`], prepares its initial snapshot
    /// for `profile`, attaches a [`ShardMetricsSink`] to `exec`, and
    /// precomputes the component labels served by [`Request::Label`]
    /// (maintained incrementally from then on). Compaction policy starts
    /// at [`DEFAULT_COMPACT_EVERY`] / [`DEFAULT_DRIFT_THRESHOLD`]; see
    /// [`ServeEngine::configure_compaction`].
    pub fn new(g: Graph, profile: SystemProfile, exec: Executor) -> ServeEngine {
        let pg = PreparedGraph::new(g.clone(), profile);
        let graph = DynamicGraph::new(g);
        // Precompute before attaching the metrics sink, so the serving
        // metrics only ever describe served requests, not startup work.
        let (labels, _) = cc(&exec, &pg);
        let baseline = edge_counts_for_starts(pg.graph(), pg.tasks().starts());
        let mutation = Mutex::new(MutationState {
            cc: IncrementalCc::new(labels.clone()),
        });
        let placement = Mutex::new(PlacementState {
            trigger: DriftTrigger::new(DEFAULT_DRIFT_THRESHOLD, baseline),
        });
        let metrics = Arc::new(ShardMetricsSink::new());
        let exec = exec.with_sink(metrics.clone());
        let core = Arc::new(EngineCore {
            exec,
            profile,
            graph,
            state: RwLock::new(Arc::new(ServeState { pg, labels })),
            mutation,
            placement,
            metrics,
            ppr_rounds: AtomicUsize::new(10),
            compact_every: AtomicUsize::new(DEFAULT_COMPACT_EVERY),
        });
        let worker = Arc::clone(&core);
        let compactor = Compactor::spawn(move || worker.compaction_cycle());
        ServeEngine {
            core,
            compactor,
            blocking_compaction: true,
        }
    }

    /// Sets the compaction policy: merge the delta log every `every`
    /// buffered mutations, and recompute partition placement when the
    /// per-partition edge-count drift reaches `drift_threshold`.
    pub fn configure_compaction(&mut self, every: usize, drift_threshold: f64) {
        assert!(every >= 1, "compaction period must be at least 1");
        self.core.compact_every.store(every, Ordering::Relaxed);
        let mut pl = self.core.placement.lock().unwrap();
        pl.trigger = DriftTrigger::new(drift_threshold, pl.trigger.baseline().to_vec());
    }

    /// Sets how many forward-push rounds each PageRank-from-seed request
    /// runs (default 10).
    pub fn set_ppr_rounds(&mut self, rounds: usize) {
        self.core.ppr_rounds.store(rounds, Ordering::Relaxed);
    }

    /// Selects whether a mutation that trips the `compact_every`
    /// threshold blocks on the signalled compaction cycle (`true`, the
    /// default — compaction scheduling stays deterministic at request
    /// concurrency 1, which the cross-backend digest diffs rely on) or
    /// returns immediately while the cycle runs in the background
    /// (`false` — the serving daemon's mode, where mutation latency must
    /// stay independent of graph size). The rebuild itself runs on the
    /// compaction thread either way.
    pub fn set_compaction_blocking(&mut self, blocking: bool) {
        self.blocking_compaction = blocking;
    }

    /// Bounds the dynamic graph's delta log: once `capacity` mutations
    /// are buffered, further ones answer [`ServeError::Busy`] until a
    /// compaction drains the log (see the [module docs](self)).
    pub fn set_log_capacity(&mut self, capacity: usize) {
        self.core.graph.set_log_capacity(capacity);
    }

    /// The prepared graph of the currently published epoch. A cheap
    /// clone: layouts are shared behind an `Arc`.
    pub fn prepared(&self) -> PreparedGraph {
        self.core.state.read().unwrap().pg.clone()
    }

    /// The dynamic graph behind the engine.
    pub fn dynamic(&self) -> &DynamicGraph {
        &self.core.graph
    }

    /// The executor requests run through.
    pub fn executor(&self) -> &Executor {
        &self.core.exec
    }

    /// A snapshot of the shard/latency metrics accumulated so far.
    pub fn metrics(&self) -> ShardMetrics {
        self.core.metrics.snapshot()
    }

    /// The metrics sink itself — serving frontends (the `serve-net` TCP
    /// server) record admission decisions and queue depths into the same
    /// sink the engine feeds, so one snapshot correlates frontend
    /// backpressure with shard occupancy and latency.
    pub fn sink(&self) -> &Arc<ShardMetricsSink> {
        &self.core.metrics
    }

    /// Forces a full compaction cycle (merging any buffered mutations
    /// into a fresh snapshot and republishing the serving state) and
    /// waits for it, regardless of the `compact_every` threshold. The
    /// cycle still runs on the compaction thread. No-op on a clean
    /// engine.
    pub fn compact_now(&self) {
        self.compactor.request_and_wait();
    }

    /// Blocks until every signalled compaction cycle has completed — the
    /// graceful-shutdown path: daemons drain the compactor before
    /// printing final metrics, so the log is as compact as requested and
    /// no cycle is torn mid-publication.
    pub fn drain_compaction(&self) {
        self.compactor.drain();
    }

    /// Handles one request, recording its latency (aggregate and
    /// per-kind); the fallible version is [`ServeEngine::try_handle`].
    ///
    /// Panics if the request is refused (full bounded log, weighted
    /// snapshot) — callers that serve untrusted traffic or configure
    /// backpressure must use `try_handle` and map the error to a wire
    /// reply.
    pub fn handle(&self, req: &Request) -> Response {
        match self.try_handle(req) {
            Ok(resp) => resp,
            Err(e) => panic!("request '{}' refused: {e}", req.to_line()),
        }
    }

    /// Handles one request: queries run lock-free against the pinned
    /// published epoch; mutations append to the delta log, repair
    /// labels, publish the dirty state, and — every `compact_every`
    /// buffered ops — signal the background compactor (waiting for the
    /// cycle only in blocking mode). Refusals come back as
    /// [`ServeError`]: `Busy` when the bounded delta log is full
    /// (the compactor is nudged so the backlog drains), `Rejected` when
    /// the engine can never apply the mutation. Latency is recorded
    /// (aggregate and per-kind) for answered requests only.
    pub fn try_handle(&self, req: &Request) -> Result<Response, ServeError> {
        let t0 = Instant::now();
        let n = self.core.graph.num_vertices().max(1) as u32;
        let digest = match *req {
            Request::AddEdge { u, v } => self.mutate(true, u % n, v % n)?,
            Request::DelEdge { u, v } => self.mutate(false, u % n, v % n)?,
            _ => {
                let state = self.core.state.read().unwrap().clone();
                self.core.query_digest(&state, req)
            }
        };
        let nanos = t0.elapsed().as_nanos() as u64;
        self.core.metrics.record_request_kind(req.code(), nanos);
        Ok(Response { digest, nanos })
    }

    /// The mutation lane: apply through the core (no rebuild inline),
    /// then signal the compactor when the log reached the threshold — or
    /// nudge it and bubble BUSY when the log is full.
    fn mutate(&self, insert: bool, u: VertexId, v: VertexId) -> Result<u64, ServeError> {
        match self.core.apply_mutation(insert, u, v) {
            Ok((digest, compact)) => {
                if compact {
                    let ticket = self.compactor.request();
                    if self.blocking_compaction {
                        self.compactor.wait(ticket);
                    }
                }
                Ok(digest)
            }
            Err(e) => {
                if matches!(e, ServeError::Busy { .. }) {
                    // Make sure a cycle is scheduled to drain the
                    // backlog the client is being pushed back over.
                    self.compactor.request();
                }
                Err(e)
            }
        }
    }

    /// The micro-batching seam: serves a batch of **query** requests
    /// against one pinned epoch, coalescing compatible requests — same
    /// algorithm, same (canonicalized) arguments, same epoch — into a
    /// single execution whose digest fans out to every rider. Digests
    /// are bit-identical to handling each request individually (the
    /// execution path is `ServeEngine::query_digest` either way, and
    /// the shared epoch is exactly what sequential handling would have
    /// pinned when no mutation interleaves). Batches containing a
    /// mutation fall back to in-order [`ServeEngine::handle`] calls —
    /// mutations serialize on the mutation lock and are never coalesced.
    ///
    /// Every request's latency is recorded per kind, and the batch's
    /// size/execution counts land in the [`ShardMetrics`] batching
    /// counters (`batches`, `batched_requests`, `batch_executions`).
    ///
    /// Like [`ServeEngine::handle`], the mutation fallback panics on a
    /// refused mutation — frontends route mutations through
    /// [`ServeEngine::try_handle`] individually and only coalesce
    /// queries.
    pub fn run_coalesced(&self, requests: &[Request]) -> Vec<Response> {
        if requests.is_empty() {
            return Vec::new();
        }
        if requests.iter().any(|r| r.mutates()) {
            return requests.iter().map(|r| self.handle(r)).collect();
        }
        let n = self.core.graph.num_vertices().max(1) as u32;
        let state = self.core.state.read().unwrap().clone();
        // Group by canonical form, preserving first-seen order so the
        // executions themselves happen in request order.
        let mut unique: Vec<Request> = Vec::new();
        let mut slot_of: HashMap<Request, usize> = HashMap::new();
        let slots: Vec<usize> = requests
            .iter()
            .map(|req| {
                let c = req.canonical(n);
                *slot_of.entry(c).or_insert_with(|| {
                    unique.push(c);
                    unique.len() - 1
                })
            })
            .collect();
        let executed: Vec<Response> = unique
            .iter()
            .map(|req| {
                let t0 = Instant::now();
                let digest = self.core.query_digest(&state, req);
                Response {
                    digest,
                    nanos: t0.elapsed().as_nanos() as u64,
                }
            })
            .collect();
        self.core
            .metrics
            .record_batch(requests.len() as u64, unique.len() as u64);
        slots
            .iter()
            .zip(requests)
            .map(|(&slot, req)| {
                let r = executed[slot];
                self.core.metrics.record_request_kind(req.code(), r.nanos);
                r
            })
            .collect()
    }

    /// Runs `requests` on `concurrency` request threads sharing this
    /// engine (and its sharded worker pool, when selected). Responses
    /// land in request order regardless of completion order. Mutations
    /// in the batch serialize on the mutation lock; queries proceed
    /// against their pinned epoch concurrently with them.
    pub fn run_batch(&self, requests: &[Request], concurrency: usize) -> BatchReport {
        self.run_batch_until(requests, concurrency, None)
    }

    /// [`ServeEngine::run_batch`] with a cooperative stop flag: once
    /// `stop` reads `true`, workers finish the request they are on
    /// (in-flight work drains, nothing is torn mid-request) but claim no
    /// more — the graceful-shutdown path `vebo-serve` takes on SIGINT.
    /// Unclaimed requests stay `None` in the report, as do requests the
    /// engine refused (BUSY under a bounded delta log — the refusal is
    /// already counted in the log-stall metrics).
    pub fn run_batch_until(
        &self,
        requests: &[Request],
        concurrency: usize,
        stop: Option<&AtomicBool>,
    ) -> BatchReport {
        let t0 = Instant::now();
        let cursor = AtomicUsize::new(0);
        let responses: Mutex<Vec<Option<Response>>> = Mutex::new(vec![None; requests.len()]);
        let workers = concurrency.max(1).min(requests.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= requests.len() {
                        break;
                    }
                    if let Ok(r) = self.try_handle(&requests[i]) {
                        responses.lock().unwrap()[i] = Some(r);
                    }
                });
            }
        });
        BatchReport {
            responses: responses.into_inner().unwrap(),
            metrics: self.core.metrics.snapshot(),
            wall_seconds: t0.elapsed().as_secs_f64(),
        }
    }
}

impl EngineCore {
    /// Computes a query's digest against one pinned serving state — the
    /// exact execution path [`ServeEngine::handle`] takes, factored out
    /// so the coalescing batch path produces bit-identical digests.
    /// Panics on mutation requests (those never share a pinned state).
    fn query_digest(&self, state: &ServeState, req: &Request) -> u64 {
        let n = self.graph.num_vertices().max(1) as u32;
        match *req {
            Request::PageRankSeed { seed } => self.ppr_digest(state, seed % n),
            Request::PageRankDelta { rounds } => self.prd_digest(state, rounds),
            Request::Bfs { seed } => self.bfs_digest(state, seed % n),
            Request::Label { v } => digest_u64s([state.labels[(v % n) as usize] as u64]),
            Request::AddEdge { .. } | Request::DelEdge { .. } => {
                unreachable!("mutations are never coalesced")
            }
        }
    }

    /// The mutation path: buffer the op (refusing it typed when the
    /// bounded log is full or the snapshot is weighted), repair (insert)
    /// or recompute (delete) component labels, and publish a dirty epoch
    /// carrying the delta overlay. **No CSR rebuild happens here** —
    /// the returned flag tells the caller the log reached the
    /// `compact_every` threshold and the compactor should be signalled.
    /// Serialized on the mutation lock; the state write lock is only
    /// held for the `Arc` swap, so concurrent queries keep reading their
    /// pinned epoch throughout.
    fn apply_mutation(
        &self,
        insert: bool,
        u: VertexId,
        v: VertexId,
    ) -> Result<(u64, bool), ServeError> {
        let mut mu = self.mutation.lock().unwrap();
        let buffered = if insert {
            self.graph.insert_edge(u, v)
        } else {
            self.graph.delete_edge(u, v)
        };
        match buffered {
            Ok(()) => {}
            Err(GraphError::DeltaLogFull { pending, .. }) => {
                self.metrics.record_log_stall(pending as u64);
                return Err(ServeError::Busy { pending });
            }
            Err(e) => return Err(ServeError::Rejected(e.to_string())),
        }
        let pending = self.graph.pending_len();
        self.metrics.record_log_depth(pending as u64);
        let pin = self.graph.pin();
        let base = self.state.read().unwrap().pg.clone();
        let pg = base.with_overlay(Some(pin.overlay().clone()), pin.epoch());
        if insert {
            mu.cc.on_insert(pin.graph(), Some(pin.overlay()), u, v);
        } else {
            // A delete can split a component, which label lowering
            // cannot express: recompute on the overlay-aware handle.
            mu.cc.recompute(&self.exec, &pg);
        }
        let labels = mu.cc.labels().to_vec();
        *self.state.write().unwrap() = Arc::new(ServeState { pg, labels });
        let digest = digest_u64s([if insert { 1 } else { 2 }, u as u64, v as u64]);
        Ok((
            digest,
            pending >= self.compact_every.load(Ordering::Relaxed),
        ))
    }

    /// One compaction cycle, run on the [`Compactor`] thread only —
    /// never the mutation or query path. Phases:
    ///
    /// 1. **Prepare** (compaction gate held, no other lock): the delta
    ///    log is merge-rebuilt into a fresh CSR/CSC snapshot.
    /// 2. **Placement** (placement lock): the [`DriftTrigger`] compares
    ///    per-partition edge counts on the post-merge snapshot against
    ///    its baseline — past the threshold the placement is recomputed
    ///    from scratch (a "reorder"); otherwise the previous task bounds
    ///    carry over and only the layouts rebuild.
    /// 3. **Publish** (mutation lock, O(1) work): the snapshot commits
    ///    via the `Arc` swap, a fresh pin picks up any mutations that
    ///    arrived during the rebuild (they stay buffered as the new
    ///    epoch's overlay), and the serving state republishes. Taking
    ///    the mutation lock here keeps publication atomic with respect
    ///    to concurrent `apply_mutation` calls — their pin and state
    ///    base can never straddle the swap.
    fn compaction_cycle(&self) {
        let t0 = Instant::now();
        let pending = self.graph.compact_prepare();
        let cur = self.state.read().unwrap().clone();
        if pending.applied() == 0 && cur.pg.overlay().is_none() {
            return;
        }
        let snapshot = Arc::clone(pending.snapshot());
        let counts = edge_counts_for_starts(&snapshot, cur.pg.tasks().starts());
        let (pg, reorder) = {
            let mut pl = self.placement.lock().unwrap();
            let reorder = pl.trigger.should_reorder(&counts);
            let pg = if reorder {
                PreparedGraph::new((*snapshot).clone(), self.profile)
            } else {
                PreparedGraph::builder((*snapshot).clone())
                    .profile(self.profile)
                    .bounds(cur.pg.tasks().clone())
                    .build()
                    .expect("carried-over bounds span the same vertex range")
            };
            pl.trigger
                .rebase(edge_counts_for_starts(pg.graph(), pg.tasks().starts()));
            (pg, reorder)
        };
        let mu = self.mutation.lock().unwrap();
        let stats = pending.commit();
        // Mutations that raced the rebuild stay buffered: republish them
        // as the new epoch's overlay so no applied mutation disappears
        // from the served view.
        let pin = self.graph.pin();
        let pg = if pin.is_dirty() {
            pg.with_overlay(Some(pin.overlay().clone()), pin.epoch())
        } else {
            pg.with_overlay(None, stats.epoch)
        };
        let labels = mu.cc.labels().to_vec();
        self.metrics
            .record_compaction(stats.epoch, reorder, t0.elapsed().as_nanos() as u64);
        *self.state.write().unwrap() = Arc::new(ServeState { pg, labels });
    }

    /// Personalized PageRank from `seed`: `ppr_rounds` forward-push
    /// rounds of `x_{k+1} = d · Aᵀ x_k` with `p += (1 − d) · x_k`,
    /// starting from `x_0 = e_seed`. The digest covers the bit patterns
    /// of every nonzero score.
    ///
    /// Per-round work is frontier-scoped: contributions are staged over
    /// the active set only (every traversal kernel gates reads by
    /// frontier membership, so stale `contrib`/`x` entries on inactive
    /// vertices are never observed), and the accumulated mass is folded
    /// back — and the accumulator re-zeroed — over just the vertices
    /// the push touched. A request on a small neighborhood therefore
    /// costs O(touched), not O(n · rounds).
    ///
    /// Degrees go through the prepared handle, which is overlay-aware:
    /// on a dirty epoch the push divisor matches the merged adjacency
    /// the edge map traverses.
    fn ppr_digest(&self, state: &ServeState, seed: VertexId) -> u64 {
        const DAMPING: f64 = 0.85;
        let pg = &state.pg;
        let n = pg.graph().num_vertices();
        let p = atomic_f64_vec(n, 0.0);
        let x = atomic_f64_vec(n, 0.0);
        let acc = atomic_f64_vec(n, 0.0);
        let contrib = atomic_f64_vec(n, 0.0);
        x[seed as usize].store(1.0);
        let mut frontier = Frontier::single(n, seed);
        for _ in 0..self.ppr_rounds.load(Ordering::Relaxed) {
            if frontier.is_empty() {
                break;
            }
            // Stage this round's contributions over the active set;
            // absorb (1 - d) into the scores as the mass leaves.
            self.exec.vertex_map(pg, &frontier, |v| {
                let i = v as usize;
                let xi = x[i].load();
                let d = pg.out_degree(v);
                contrib[i].store(if d > 0 { DAMPING * xi / d as f64 } else { 0.0 });
                p[i].store(p[i].load() + (1.0 - DAMPING) * xi);
                true
            });
            let op = PushOp {
                contrib: &contrib,
                acc: &acc,
            };
            let (touched, _) = self.exec.edge_map(pg, &frontier, &op);
            // The accumulated mass becomes the next x and the
            // accumulator is re-zeroed, both over the touched set only;
            // tiny residues leave the frontier so request cost stays
            // bounded.
            let (next, _) = self.exec.vertex_map(pg, &touched, |v| {
                let i = v as usize;
                let nx = acc[i].load();
                x[i].store(nx);
                acc[i].store(0.0);
                nx > 1e-12
            });
            frontier = next;
        }
        digest_u64s(
            snapshot_f64(&p)
                .into_iter()
                .enumerate()
                .filter(|&(_, s)| s != 0.0)
                .flat_map(|(v, s)| [v as u64, s.to_bits()]),
        )
    }

    /// PageRankDelta over the whole pinned epoch, digested over the bit
    /// patterns of the final rank vector.
    fn prd_digest(&self, state: &ServeState, rounds: u32) -> u64 {
        let cfg = PageRankDeltaConfig {
            max_iterations: rounds.max(1) as usize,
            ..Default::default()
        };
        let (ranks, _) = pagerank_delta(&self.exec, &state.pg, &cfg);
        digest_u64s(ranks.into_iter().map(f64::to_bits))
    }

    /// BFS from `seed`, digested over the (deterministic) level array —
    /// parent choice is a legitimate tie-break, levels are not.
    fn bfs_digest(&self, state: &ServeState, seed: VertexId) -> u64 {
        let (parents, _) = bfs(&self.exec, &state.pg, seed);
        let levels = levels_from_parents(&parents, seed);
        digest_u64s(levels.into_iter().map(u64::from))
    }
}

/// Parses one request line against the [`vebo::REQUEST_SPECS`] roster —
/// the grammar is exactly [`vebo::request_grammar`]. Returns `Ok(None)`
/// for blank lines and `#` comments. This is the **single** request
/// decoder: the script parser ([`parse_script`]) and the `serve-net`
/// wire protocol both route through it, so the network protocol, the
/// script format, and the usage text cannot drift apart.
pub fn parse_request_line(line: &str) -> Result<Option<Request>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let kind = parts.next().unwrap();
    let spec = request_spec(kind).ok_or_else(|| format!("unknown request '{kind}'"))?;
    let mut args = [0 as VertexId; 2];
    for slot in args.iter_mut().take(spec.arity()) {
        *slot = parts
            .next()
            .ok_or_else(|| format!("'{}' takes {} argument(s)", spec.code, spec.arity()))?
            .parse()
            .map_err(|_| "bad vertex id".to_string())?;
    }
    if parts.next().is_some() {
        return Err("trailing tokens".to_string());
    }
    Ok(Some(Request::from_spec_args(spec, args)))
}

/// Parses a request script: one request per line via
/// [`parse_request_line`] (blank lines and `#` comments ignored), with
/// 1-based line numbers on errors.
pub fn parse_script(text: &str) -> Result<Vec<Request>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        match parse_request_line(line) {
            Ok(Some(req)) => out.push(req),
            Ok(None) => {}
            Err(e) => return Err(format!("line {}: {e}", lineno + 1)),
        }
    }
    Ok(out)
}

/// Renders the serving-side metric lines shared by `vebo-serve` and the
/// `serve-net` daemon: overall and per-request-kind latency quantiles
/// (p50/p95/p99/max), the micro-batching counters, admission-control
/// counters (when a frontend recorded any), and the dynamic-graph
/// compaction/epoch line.
pub fn metrics_summary(m: &ShardMetrics) -> String {
    let fmt_ns = |ns: Option<u64>| {
        ns.map(|ns| format!("{:.2}ms", ns as f64 / 1e6))
            .unwrap_or_else(|| "-".to_string())
    };
    let mut out = format!(
        "latency p50 {} | p95 {} | p99 {} | max {}\n",
        fmt_ns(m.latency_quantile(0.50)),
        fmt_ns(m.latency_quantile(0.95)),
        fmt_ns(m.latency_quantile(0.99)),
        fmt_ns(m.latency_quantile(1.0)),
    );
    for k in &m.kinds {
        out.push_str(&format!(
            "latency[{:<5}] n={:<6} p50 {} | p95 {} | p99 {}\n",
            k.code,
            k.nanos.len(),
            fmt_ns(m.kind_quantile(k.code, 0.50)),
            fmt_ns(m.kind_quantile(k.code, 0.95)),
            fmt_ns(m.kind_quantile(k.code, 0.99)),
        ));
    }
    if m.batches > 0 {
        out.push_str(&format!(
            "batches={} batched-requests={} executions={} coalesced={}\n",
            m.batches,
            m.batched_requests,
            m.batch_executions,
            m.batched_requests - m.batch_executions,
        ));
    }
    if m.queue_depth_samples > 0 {
        out.push_str(&format!(
            "admitted={} rejected-busy={} queue-depth mean={:.1} max={}\n",
            m.admitted,
            m.rejected,
            m.mean_admission_depth(),
            m.queue_depth_max,
        ));
    }
    out.push_str(&format!(
        "compactions={} reorders={} epoch={} epoch-age={}\n",
        m.compactions, m.reorders, m.epoch, m.epoch_age,
    ));
    if m.compactions > 0 || m.log_stalls > 0 {
        out.push_str(&format!(
            "compaction p50 {} | p99 {} | max {} log-depth-max={} log-stalls={}\n",
            fmt_ns(m.compaction_quantile(0.50)),
            fmt_ns(m.compaction_quantile(0.99)),
            fmt_ns(m.compaction_quantile(1.0)),
            m.log_depth_max,
            m.log_stalls,
        ));
    }
    if m.supersteps > 0 {
        out.push_str(&format!(
            "supersteps={} sync-sent={} sync-received={} superstep p50 {} | p99 {} | max {}\n",
            m.supersteps,
            m.sync_values_sent,
            m.sync_values_received,
            fmt_ns(m.superstep_quantile(0.50)),
            fmt_ns(m.superstep_quantile(0.99)),
            fmt_ns(m.superstep_quantile(1.0)),
        ));
    }
    out
}

/// Deterministically generates a mixed workload of `count` requests:
/// cheap label lookups dominate, with a mutation share (~15% adds and
/// deletes) and an occasional whole-graph PRD sweep, as in a real
/// serving mix.
pub fn generate_requests(count: usize, seed: u64) -> Vec<Request> {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = mix64(state);
        state
    };
    (0..count)
        .map(|_| {
            let v = (next() >> 32) as VertexId;
            let u = (next() >> 32) as VertexId;
            match next() % 20 {
                0..=1 => Request::PageRankSeed { seed: v },
                2 => Request::PageRankDelta {
                    rounds: 2 + (u % 4),
                },
                3..=6 => Request::Bfs { seed: v },
                7..=8 => Request::AddEdge { u, v },
                9 => Request::DelEdge { u, v },
                _ => Request::Label { v },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_engine::ExecMode;
    use vebo_graph::Dataset;

    fn engine(mode: ExecMode) -> ServeEngine {
        let g = Dataset::YahooLike.build(0.03);
        let profile = SystemProfile::polymer_like();
        ServeEngine::new(g, profile, Executor::new(profile).with_mode(mode))
    }

    #[test]
    fn metrics_summary_renders_dashes_for_empty_series() {
        // A mutation-only served run reaches the summary with empty
        // latency/compaction series: each empty quantile renders `-`,
        // and the superstep block only appears once a cluster ran.
        let sink = ShardMetricsSink::new();
        sink.record_log_stall(2);
        let s = metrics_summary(&sink.snapshot());
        assert!(
            s.starts_with("latency p50 - | p95 - | p99 - | max -\n"),
            "{s}"
        );
        assert!(
            s.contains("compaction p50 - | p99 - | max - log-depth-max=2 log-stalls=1"),
            "{s}"
        );
        assert!(!s.contains("supersteps="), "{s}");
        sink.record_superstep(4, 4, 2_000_000);
        let s = metrics_summary(&sink.snapshot());
        assert!(
            s.contains("supersteps=1 sync-sent=4 sync-received=4"),
            "{s}"
        );
        assert!(s.contains("superstep p50 2.00ms"), "{s}");
    }

    #[test]
    fn mutation_only_runs_leave_query_kind_quantiles_empty() {
        let e = engine(ExecMode::Sequential);
        let reqs = vec![
            Request::AddEdge { u: 1, v: 2 },
            Request::DelEdge { u: 1, v: 2 },
        ];
        e.run_batch(&reqs, 1);
        let m = e.metrics();
        assert!(m.kind_quantile("add", 0.5).is_some());
        for code in ["pr", "prd", "bfs", "label"] {
            assert_eq!(m.kind_quantile(code, 0.5), None, "{code}");
        }
        // The rendered summary has no per-kind line for unseen kinds and
        // no bogus numbers for them.
        let s = metrics_summary(&m);
        assert!(!s.contains("latency[pr "), "{s}");
        assert!(!s.contains("latency[bfs"), "{s}");
    }

    #[test]
    fn script_round_trips() {
        let script = "# mixed\npr 3\n\nbfs 7\nlabel 12\nprd 4\nadd 1 2\ndel 2 1\n";
        let reqs = parse_script(script).unwrap();
        assert_eq!(
            reqs,
            vec![
                Request::PageRankSeed { seed: 3 },
                Request::Bfs { seed: 7 },
                Request::Label { v: 12 },
                Request::PageRankDelta { rounds: 4 },
                Request::AddEdge { u: 1, v: 2 },
                Request::DelEdge { u: 2, v: 1 },
            ]
        );
        assert!(parse_script("pr\n").is_err());
        assert!(parse_script("walk 3\n").is_err());
        assert!(parse_script("pr 1 2\n").is_err());
        assert!(parse_script("add 3\n").is_err(), "add is binary");
        assert!(parse_script("add 3 4 5\n").is_err());
    }

    #[test]
    fn generated_workload_is_deterministic_and_mixed() {
        let a = generate_requests(256, 42);
        let b = generate_requests(256, 42);
        assert_eq!(a, b);
        assert_ne!(a, generate_requests(256, 43));
        for spec in &vebo::REQUEST_SPECS {
            assert!(
                a.iter().any(|r| r.code() == spec.code),
                "no {} requests",
                spec.code
            );
        }
        let mutations = a.iter().filter(|r| r.mutates()).count();
        assert!(mutations * 10 >= a.len(), "mutation share too small");
        assert!(mutations * 4 <= a.len(), "mutation share too large");
    }

    #[test]
    fn batch_digests_match_across_backends() {
        // Read-only slice of the mix at request concurrency 4: digests
        // must be bit-identical between backends on the partitioned
        // profile.
        let reqs: Vec<Request> = generate_requests(40, 7)
            .into_iter()
            .filter(|r| !r.mutates())
            .take(12)
            .collect();
        let seq = engine(ExecMode::Sequential).run_batch(&reqs, 1);
        let sharded = engine(ExecMode::Sharded { shards: 3 }).run_batch(&reqs, 4);
        assert_eq!(seq.completed(), reqs.len());
        for (i, (a, b)) in seq.responses.iter().zip(&sharded.responses).enumerate() {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.digest, b.digest, "request {i} ({})", reqs[i].code());
        }
        assert_eq!(seq.combined_digest(), sharded.combined_digest());
        // The sharded run exercised the pool and recorded latencies.
        let m = sharded.metrics;
        assert!(m.ops > 0, "no sharded ops recorded");
        assert_eq!(m.request_nanos.len(), reqs.len());
        assert!(m.latency_quantile(0.99).unwrap() >= m.latency_quantile(0.5).unwrap());
    }

    #[test]
    fn mutating_batch_digests_match_across_backends() {
        // Interleaved mutate+query stream, applied in order (request
        // concurrency 1) with compaction after every mutation so float
        // queries always run on delta-free epochs: every digest must be
        // bit-identical between the sequential and sharded backends.
        let reqs = generate_requests(32, 11);
        assert!(reqs.iter().any(|r| r.mutates()), "mix lost its mutations");
        let mut a = engine(ExecMode::Sequential);
        a.configure_compaction(1, DEFAULT_DRIFT_THRESHOLD);
        let mut b = engine(ExecMode::Sharded { shards: 3 });
        b.configure_compaction(1, DEFAULT_DRIFT_THRESHOLD);
        let ra = a.run_batch(&reqs, 1);
        let rb = b.run_batch(&reqs, 1);
        for (i, (x, y)) in ra.responses.iter().zip(&rb.responses).enumerate() {
            let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
            assert_eq!(x.digest, y.digest, "request {i} ({})", reqs[i].code());
        }
        assert_eq!(ra.combined_digest(), rb.combined_digest());
        assert_eq!(a.metrics().compactions, b.metrics().compactions);
        assert!(a.metrics().compactions > 0);
    }

    #[test]
    fn request_lines_round_trip_through_roster_grammar() {
        for req in generate_requests(64, 5) {
            let line = req.to_line();
            let back = parse_request_line(&line).unwrap().unwrap();
            assert_eq!(back, req, "{line}");
        }
        assert_eq!(parse_request_line("  # comment").unwrap(), None);
        assert_eq!(parse_request_line("").unwrap(), None);
        assert!(parse_request_line("pr").is_err());
    }

    #[test]
    fn coalesced_batch_matches_individual_handling() {
        let e = engine(ExecMode::Sequential);
        let n = e.prepared().graph().num_vertices() as u32;
        // Duplicates (including one that only matches modulo n) plus
        // distinct queries of every kind.
        let reqs = vec![
            Request::Bfs { seed: 7 },
            Request::Label { v: 3 },
            Request::Bfs { seed: 7 },
            Request::PageRankSeed { seed: 11 },
            Request::Label { v: 3 + n },
            Request::PageRankDelta { rounds: 3 },
            Request::Bfs { seed: 9 },
            Request::PageRankSeed { seed: 11 },
        ];
        let coalesced = e.run_coalesced(&reqs);
        let reference = engine(ExecMode::Sequential);
        for (req, got) in reqs.iter().zip(&coalesced) {
            assert_eq!(
                got.digest,
                reference.handle(req).digest,
                "{}",
                req.to_line()
            );
        }
        let m = e.metrics();
        assert_eq!(m.batches, 1);
        assert_eq!(m.batched_requests, 8);
        assert_eq!(m.batch_executions, 5, "three duplicates coalesced");
        assert_eq!(m.request_nanos.len(), 8, "every rider recorded");
        assert!(m.kind_quantile("bfs", 0.99).is_some());
    }

    #[test]
    fn coalesced_batch_with_mutations_falls_back_to_in_order_handling() {
        let reqs = generate_requests(24, 11);
        assert!(reqs.iter().any(|r| r.mutates()));
        let a = engine(ExecMode::Sequential);
        let b = engine(ExecMode::Sequential);
        let coalesced = a.run_coalesced(&reqs);
        let reference: Vec<Response> = reqs.iter().map(|r| b.handle(r)).collect();
        for (i, (x, y)) in coalesced.iter().zip(&reference).enumerate() {
            assert_eq!(x.digest, y.digest, "request {i} ({})", reqs[i].code());
        }
        assert_eq!(a.metrics().batches, 0, "mutating batches never coalesce");
    }

    #[test]
    fn run_batch_until_drains_on_stop() {
        let e = engine(ExecMode::Sequential);
        let reqs = vec![Request::Label { v: 1 }; 8];
        let stop = AtomicBool::new(true);
        let r = e.run_batch_until(&reqs, 2, Some(&stop));
        assert_eq!(r.completed(), 0, "pre-set stop claims nothing");
        assert!(r.responses.iter().all(|r| r.is_none()));
        let r = e.run_batch_until(&reqs, 2, None);
        assert_eq!(r.completed(), reqs.len());
    }

    #[test]
    fn label_requests_serve_component_labels() {
        let e = engine(ExecMode::Sequential);
        let n = e.prepared().graph().num_vertices() as u32;
        let a = e.handle(&Request::Label { v: 5 });
        let b = e.handle(&Request::Label { v: 5 + n });
        assert_eq!(a.digest, b.digest, "lookup wraps modulo n");
    }

    #[test]
    fn inserts_repair_labels_before_compaction() {
        // Two components; bridge them with an add and the label lookup
        // must reflect the merge immediately, while the epoch is still
        // dirty (no compaction has happened).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)], false);
        let profile = SystemProfile::polymer_like();
        let e = ServeEngine::new(g, profile, Executor::new(profile));
        let before = e.handle(&Request::Label { v: 4 }).digest;
        assert_ne!(before, e.handle(&Request::Label { v: 0 }).digest);
        e.handle(&Request::AddEdge { u: 2, v: 3 });
        assert!(e.dynamic().is_dirty(), "compaction should not have fired");
        assert_eq!(
            e.handle(&Request::Label { v: 4 }).digest,
            e.handle(&Request::Label { v: 0 }).digest,
            "incremental repair merges the components"
        );
        assert!(e.prepared().overlay().is_some(), "dirty epoch published");
    }

    #[test]
    fn deletes_recompute_labels_via_overlay() {
        // A path 0-1-2: deleting (1, 2) splits the component, which the
        // overlay-aware recompute must observe pre-compaction.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], false);
        let profile = SystemProfile::polymer_like();
        let e = ServeEngine::new(g, profile, Executor::new(profile));
        assert_eq!(
            e.handle(&Request::Label { v: 2 }).digest,
            e.handle(&Request::Label { v: 0 }).digest
        );
        e.handle(&Request::DelEdge { u: 1, v: 2 });
        assert!(e.dynamic().is_dirty());
        assert_ne!(
            e.handle(&Request::Label { v: 2 }).digest,
            e.handle(&Request::Label { v: 0 }).digest,
            "split observed before compaction"
        );
    }

    #[test]
    fn compaction_fires_on_schedule_and_matches_static_rebuild() {
        let g = Graph::from_edges(8, &[(0, 1), (2, 3)], false);
        let profile = SystemProfile::polymer_like();
        let mut e = ServeEngine::new(g, profile, Executor::new(profile));
        e.configure_compaction(3, DEFAULT_DRIFT_THRESHOLD);
        e.handle(&Request::AddEdge { u: 1, v: 2 });
        e.handle(&Request::AddEdge { u: 3, v: 4 });
        assert_eq!(e.metrics().compactions, 0);
        e.handle(&Request::AddEdge { u: 4, v: 5 });
        let m = e.metrics();
        assert_eq!(m.compactions, 1);
        assert_eq!(m.epoch, 1);
        assert!(!e.dynamic().is_dirty());
        assert!(e.prepared().overlay().is_none(), "clean epoch published");
        assert_eq!(e.prepared().epoch(), 1);

        // The compacted adjacency equals a from-scratch static build.
        let want = Graph::from_edges(8, &[(0, 1), (2, 3), (1, 2), (3, 4), (4, 5)], false);
        let got = e.dynamic().snapshot();
        for v in 0..8u32 {
            assert_eq!(got.out_neighbors(v), want.out_neighbors(v), "vertex {v}");
        }

        // And the post-compaction queries match a fresh engine on the
        // statically rebuilt graph.
        let f = ServeEngine::new(want, profile, Executor::new(profile));
        for req in [
            Request::Bfs { seed: 0 },
            Request::PageRankSeed { seed: 1 },
            Request::PageRankDelta { rounds: 4 },
        ] {
            assert_eq!(
                e.handle(&req).digest,
                f.handle(&req).digest,
                "{}",
                req.code()
            );
        }
    }

    #[test]
    fn epoch_age_tracks_requests_since_compaction() {
        let e = engine(ExecMode::Sequential);
        e.handle(&Request::Label { v: 1 });
        e.handle(&Request::Label { v: 2 });
        assert_eq!(e.metrics().epoch_age, 2);
        e.handle(&Request::AddEdge { u: 1, v: 2 });
        e.compact_now();
        assert_eq!(e.metrics().epoch_age, 0, "compaction resets the age");
        e.handle(&Request::Label { v: 3 });
        assert_eq!(e.metrics().epoch_age, 1);
    }

    #[test]
    fn drift_triggers_placement_reorder() {
        // Pile inserts onto the tail partition with a hair-trigger
        // threshold: the compaction must recompute placement.
        let g = Dataset::YahooLike.build(0.02);
        let n = g.num_vertices() as u32;
        let profile = SystemProfile::polymer_like();
        let mut e = ServeEngine::new(g, profile, Executor::new(profile));
        e.configure_compaction(16, 1e-6);
        for i in 0..16u32 {
            e.handle(&Request::AddEdge {
                u: n - 1 - (i % 8),
                v: n - 9 - (i % 8),
            });
        }
        let m = e.metrics();
        assert_eq!(m.compactions, 1);
        assert_eq!(m.reorders, 1, "drift threshold of ~0 must reorder");
    }
}
