//! # vebo-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `src/bin/`) plus Criterion micro-benchmarks (`benches/`). This library
//! holds the shared pieces: a tiny CLI parser, a column-aligned table
//! printer, the ordering/preparation/run pipeline every experiment
//! reuses, and the [`serve`] layer behind the `vebo-serve` request loop.

#![warn(missing_docs)]

pub mod args;
pub mod pipeline;
pub mod serve;
pub mod shutdown;
pub mod table;

pub use args::HarnessArgs;
pub use pipeline::{ordered_graph, ordered_with_starts, OrderingKind};
pub use serve::{
    metrics_summary, parse_request_line, parse_script, BatchReport, Request, Response, ServeEngine,
    ServeError,
};
pub use table::Table;
