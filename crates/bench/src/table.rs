//! Column-aligned plain-text table printer for harness output.

/// A simple table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-literal rows.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Table {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = h.len();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", cell, w = width[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds with three significant decimals (the paper's unit).
pub fn secs(s: f64) -> String {
    format!("{s:.3}")
}

/// Formats a ratio as `1.23x`.
pub fn speedup(r: f64) -> String {
    format!("{r:.2}x")
}

/// Writes a CSV file (used by the figure harnesses to dump full series).
pub fn write_csv(
    path: &str,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<String>>,
) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row_str(&["a", "1"]).row_str(&["longer", "22"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
        // The "value" column starts at the same offset in every row.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
        assert_eq!(&lines[3][col..col + 2], "22");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        Table::new(&["a", "b"]).row_str(&["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(speedup(1.6543), "1.65x");
    }
}
