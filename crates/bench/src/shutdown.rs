//! Cooperative SIGINT shutdown shared by the serving binaries
//! (`vebo-serve`'s request-thread drain and `serve-net`'s `vebo-served`
//! daemon).
//!
//! The handler is installed through the same minimal `extern "C"`
//! pattern as the raw `Mmap` wrapper in `vebo_graph::storage` — the
//! workspace vendors no signal crate, and Rust binaries on unix already
//! link libc. The handler itself only stores into a static
//! [`AtomicBool`] (the one async-signal-safe thing a handler may do) and
//! then resets the disposition to the OS default, so a **second** Ctrl-C
//! kills the process immediately instead of being swallowed — the
//! standard "first signal drains, second signal aborts" daemon contract.
//!
//! Serving loops poll [`requested`] (or pass [`flag`] into
//! `ServeEngine::run_batch_until`) between requests: in-flight work
//! always completes, nothing is torn mid-request.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    use std::os::raw::c_int;

    pub const SIGINT: c_int = 2;
    /// `SIG_DFL` — the OS-default disposition (terminate, for SIGINT).
    pub const SIG_DFL: usize = 0;
    /// `SIG_ERR` — `signal(2)`'s failure return.
    pub const SIG_ERR: usize = usize::MAX;

    extern "C" {
        pub fn signal(signum: c_int, handler: usize) -> usize;
    }
}

#[cfg(unix)]
extern "C" fn on_sigint(_signum: std::os::raw::c_int) {
    REQUESTED.store(true, Ordering::SeqCst);
    // Restore the default disposition: a second Ctrl-C terminates
    // immediately. `signal(2)` is async-signal-safe.
    unsafe {
        sys::signal(sys::SIGINT, sys::SIG_DFL);
    }
}

/// Installs the SIGINT handler (idempotent). Returns `false` when the
/// handler could not be installed (non-unix platforms, or a `signal(2)`
/// failure) — callers then simply run without graceful drain.
pub fn install() -> bool {
    #[cfg(unix)]
    {
        let handler: extern "C" fn(std::os::raw::c_int) = on_sigint;
        // SAFETY: `on_sigint` is an async-signal-safe extern "C"
        // handler; installing it races with nothing (worst case the old
        // disposition handles one more signal).
        unsafe { sys::signal(sys::SIGINT, handler as usize) != sys::SIG_ERR }
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// Whether a SIGINT has been observed since [`install`] (or [`trigger`]
/// was called).
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// The flag itself, for loops that want to pass it down (e.g. into
/// `ServeEngine::run_batch_until`).
pub fn flag() -> &'static AtomicBool {
    &REQUESTED
}

/// Requests shutdown programmatically — what the signal handler does,
/// callable from tests and from in-process drains.
pub fn trigger() {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests only — a real daemon shuts down once).
pub fn reset() {
    REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_and_reset_drive_the_flag() {
        reset();
        assert!(!requested());
        trigger();
        assert!(requested());
        assert!(flag().load(std::sync::atomic::Ordering::SeqCst));
        reset();
        assert!(!requested());
    }

    #[cfg(unix)]
    #[test]
    fn install_succeeds_on_unix() {
        assert!(install());
    }
}
