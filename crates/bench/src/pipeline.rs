//! The experiment pipeline shared by every harness binary: apply a vertex
//! ordering, prepare the graph through the engine's `PreparedGraph`
//! builder, run an algorithm through an `Executor`, convert per-task
//! measurements into the simulated 48-thread runtime.

use std::time::{Duration, Instant};
use vebo::OrderingRegistry;
use vebo_core::Vebo;
use vebo_engine::{Executor, PreparedGraph, SystemProfile};
use vebo_graph::{Graph, Permutation};

/// The vertex orderings compared in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderingKind {
    /// Original ids (the "Orig." columns).
    Original,
    /// Reverse Cuthill–McKee.
    Rcm,
    /// Gorder (hub-capped for time-boxed harness runs; the Criterion
    /// `ordering` bench and Table VI also measure the faithful variant).
    Gorder,
    /// VEBO with the target system's partition count.
    Vebo,
    /// Uniformly random permutation (§V-C).
    Random,
    /// VEBO applied on top of the random permutation (§V-C).
    RandomPlusVebo,
    /// High-to-low degree sort (§V-G).
    HighToLow,
    /// SlashBurn hub-removal ordering (extension; §VI related work).
    SlashBurn,
    /// METIS-like multilevel partition + contiguous relabeling
    /// (extension; §VI's "additional vertex relabeling" remark).
    MetisLike,
    /// BOBA first-touch edge-stream ordering (extension; Drescher &
    /// Porumbescu, arXiv:2306.10410) — the lightweight O(m) comparator
    /// in VEBO's own reordering-cost class.
    Boba,
}

impl OrderingKind {
    /// The four orderings of Table III, in column order.
    pub const TABLE3: [OrderingKind; 4] = [
        OrderingKind::Original,
        OrderingKind::Rcm,
        OrderingKind::Gorder,
        OrderingKind::Vebo,
    ];

    /// Table III's columns plus the extension orderings (`table3_runtime
    /// --extended`).
    pub const TABLE3_EXTENDED: [OrderingKind; 7] = [
        OrderingKind::Original,
        OrderingKind::Rcm,
        OrderingKind::Gorder,
        OrderingKind::Vebo,
        OrderingKind::SlashBurn,
        OrderingKind::MetisLike,
        OrderingKind::Boba,
    ];

    /// The four orderings of Figure 5.
    pub const FIG5: [OrderingKind; 4] = [
        OrderingKind::Original,
        OrderingKind::Vebo,
        OrderingKind::Random,
        OrderingKind::RandomPlusVebo,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OrderingKind::Original => "Orig.",
            OrderingKind::Rcm => "RCM",
            OrderingKind::Gorder => "Gorder",
            OrderingKind::Vebo => "VEBO",
            OrderingKind::Random => "Random",
            OrderingKind::RandomPlusVebo => "Random+VEBO",
            OrderingKind::HighToLow => "HighToLow",
            OrderingKind::SlashBurn => "SlashBurn",
            OrderingKind::MetisLike => "METIS-like",
            OrderingKind::Boba => "BOBA",
        }
    }

    /// Registry name of this ordering, or `None` for the two kinds that
    /// are not plain roster members (the identity and the Random+VEBO
    /// composition).
    pub fn registry_name(self) -> Option<&'static str> {
        match self {
            OrderingKind::Original | OrderingKind::RandomPlusVebo => None,
            OrderingKind::Rcm => Some("rcm"),
            OrderingKind::Gorder => Some("gorder"),
            OrderingKind::Vebo => Some("vebo"),
            OrderingKind::Random => Some("random"),
            OrderingKind::HighToLow => Some("hightolow"),
            OrderingKind::SlashBurn => Some("slashburn"),
            OrderingKind::MetisLike => Some("metis"),
            OrderingKind::Boba => Some("boba"),
        }
    }

    /// The registry every harness resolves through. The hub cap keeps
    /// Gorder's sibling-update fan-out bounded so the full Table III cross
    /// product stays time-boxed (Table VI measures the faithful, uncapped
    /// cost separately); the random seed is the §V-C experiment seed.
    pub fn registry(num_partitions: usize) -> OrderingRegistry {
        OrderingRegistry::new(num_partitions)
            .with_gorder_hub_cap(Some(64))
            .with_random_seed(0xF1665)
    }

    /// Computes the permutation for `g` (with `num_partitions` as VEBO's
    /// target), returning it with the ordering wall time (Table VI).
    pub fn compute(self, g: &Graph, num_partitions: usize) -> (Permutation, Duration) {
        let t0 = Instant::now();
        let registry = Self::registry(num_partitions);
        let resolve = |name: &str| registry.resolve(name).expect("roster names always resolve");
        let perm = match self.registry_name() {
            Some(name) => resolve(name).compute(g),
            None => match self {
                OrderingKind::Original => Permutation::identity(g.num_vertices()),
                OrderingKind::RandomPlusVebo => {
                    let random = resolve("random").compute(g);
                    let shuffled = random.apply_graph(g);
                    let vebo = resolve("vebo").compute(&shuffled);
                    random.then(&vebo)
                }
                _ => unreachable!("registry_name covers every other kind"),
            },
        };
        (perm, t0.elapsed())
    }
}

/// Applies `ordering` to `g` and returns the reordered graph plus the
/// ordering time.
pub fn ordered_graph(
    g: &Graph,
    ordering: OrderingKind,
    num_partitions: usize,
) -> (Graph, Duration) {
    let (h, _, t) = ordered_with_starts(g, ordering, num_partitions);
    (h, t)
}

/// As [`ordered_graph`], additionally returning VEBO's exact phase-3
/// partition boundaries (in the *new* id space) when the ordering is
/// VEBO-based — Algorithm 2's output includes these "partition end
/// points", and the systems consume them instead of re-running the chunk
/// walk.
pub fn ordered_with_starts(
    g: &Graph,
    ordering: OrderingKind,
    num_partitions: usize,
) -> (Graph, Option<Vec<usize>>, Duration) {
    let t0 = Instant::now();
    match ordering {
        OrderingKind::Vebo => {
            let res = Vebo::new(num_partitions).compute_full(g);
            let h = res.permutation.apply_graph(g);
            (h, Some(res.starts), t0.elapsed())
        }
        OrderingKind::RandomPlusVebo => {
            let random = OrderingKind::registry(num_partitions)
                .resolve("random")
                .expect("random is a roster name")
                .compute(g);
            let shuffled = random.apply_graph(g);
            let res = Vebo::new(num_partitions).compute_full(&shuffled);
            let h = res.permutation.apply_graph(&shuffled);
            (h, Some(res.starts), t0.elapsed())
        }
        other => {
            let (perm, t) = other.compute(g, num_partitions);
            (perm.apply_graph(g), None, t)
        }
    }
}

/// Runs one PageRank iteration under the GraphGrind profile and returns
/// the per-partition task measurements of its edgemap — the raw series
/// behind Figures 1, 4a and 6.
pub fn pr_one_iteration_tasks(
    g: &Graph,
    num_partitions: usize,
    edge_order: vebo_partition::EdgeOrder,
) -> Vec<vebo_engine::TaskStats> {
    use vebo_algorithms::pagerank::{pagerank, PageRankConfig};
    let profile = SystemProfile::graphgrind_like(edge_order).with_partitions(num_partitions);
    let pg = PreparedGraph::builder(g.clone())
        .profile(profile)
        .build()
        .expect("no explicit bounds, cannot fail");
    let cfg = PageRankConfig {
        iterations: 1,
        ..Default::default()
    };
    let (_, report) = pagerank(&Executor::new(profile), &pg, &cfg);
    report.edge_maps[0].tasks.clone()
}

/// Per-partition PageRank edgemap time, aggregated over `repeats`
/// iterations to lift the signal above timer noise (scaled-down
/// partitions process microseconds of work per iteration; the paper's
/// full-size partitions process milliseconds). Returns the *minimum*
/// nanoseconds per partition across iterations — each iteration does
/// identical work, so the minimum is the standard noise-robust estimate.
/// `vebo_starts` supplies exact boundaries when available.
pub fn pr_partition_nanos(
    g: &Graph,
    num_partitions: usize,
    edge_order: vebo_partition::EdgeOrder,
    repeats: usize,
    vebo_starts: Option<&[usize]>,
) -> Vec<u64> {
    let profile = SystemProfile::graphgrind_like(edge_order).with_partitions(num_partitions);
    pr_task_nanos(g, profile, repeats, vebo_starts)
}

/// As [`pr_partition_nanos`] for an arbitrary profile: min-per-task
/// nanoseconds of the dense PageRank edgemap across `repeats` iterations.
pub fn pr_task_nanos(
    g: &Graph,
    profile: SystemProfile,
    repeats: usize,
    vebo_starts: Option<&[usize]>,
) -> Vec<u64> {
    use vebo_algorithms::pagerank::{pagerank, PageRankConfig};
    let pg = PreparedGraph::builder(g.clone())
        .profile(profile)
        .vebo_starts(vebo_starts)
        .build()
        .expect("harness boundaries come from VEBO and are valid");
    let cfg = PageRankConfig {
        iterations: repeats.max(1),
        ..Default::default()
    };
    let (_, report) = pagerank(&Executor::new(profile), &pg, &cfg);
    let mut nanos = vec![u64::MAX; pg.num_tasks()];
    for em in &report.edge_maps {
        for (p, task) in em.tasks.iter().enumerate() {
            nanos[p] = nanos[p].min(task.nanos);
        }
    }
    nanos
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::{Dataset, VertexOrdering};

    #[test]
    fn all_orderings_produce_valid_graphs() {
        let g = Dataset::YahooLike.build(0.02);
        for ord in [
            OrderingKind::Original,
            OrderingKind::Rcm,
            OrderingKind::Gorder,
            OrderingKind::Vebo,
            OrderingKind::Random,
            OrderingKind::RandomPlusVebo,
            OrderingKind::HighToLow,
            OrderingKind::SlashBurn,
            OrderingKind::MetisLike,
            OrderingKind::Boba,
        ] {
            let (h, t) = ordered_graph(&g, ord, 16);
            assert_eq!(h.num_vertices(), g.num_vertices(), "{}", ord.name());
            assert_eq!(h.num_edges(), g.num_edges(), "{}", ord.name());
            assert!(t.as_nanos() > 0 || ord == OrderingKind::Original);
        }
    }

    #[test]
    fn random_plus_vebo_composes() {
        // Applying Random+VEBO must equal applying random, then VEBO on
        // the shuffled graph.
        let g = Dataset::YahooLike.build(0.02);
        let (perm, _) = OrderingKind::RandomPlusVebo.compute(&g, 8);
        let direct = perm.apply_graph(&g);
        let random = OrderingKind::registry(8)
            .resolve("random")
            .unwrap()
            .compute(&g);
        let shuffled = random.apply_graph(&g);
        let vebo = Vebo::new(8).compute(&shuffled);
        let two_step = vebo.apply_graph(&shuffled);
        assert_eq!(direct.csr().offsets(), two_step.csr().offsets());
        assert_eq!(direct.csr().targets(), two_step.csr().targets());
    }

    #[test]
    fn table3_column_order() {
        let names: Vec<&str> = OrderingKind::TABLE3.iter().map(|o| o.name()).collect();
        assert_eq!(names, vec!["Orig.", "RCM", "Gorder", "VEBO"]);
    }
}
