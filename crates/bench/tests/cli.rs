//! CLI contract tests for `vebo-serve`: flag validation reachable from
//! the command line must exit with a usage error, never a panic.

use std::process::Command;

#[test]
fn compact_every_zero_is_a_usage_error_not_a_panic() {
    let out = Command::new(env!("CARGO_BIN_EXE_vebo-serve"))
        .args(["--compact-every", "0"])
        .output()
        .expect("spawn vebo-serve");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr:\n{stderr}");
    assert!(
        stderr.contains("--compact-every must be at least 1"),
        "stderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "validation fell through to a panic:\n{stderr}"
    );
}

#[test]
fn unknown_compact_mode_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_vebo-serve"))
        .args(["--compact-mode", "sometimes"])
        .output()
        .expect("spawn vebo-serve");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr:\n{stderr}");
    assert!(stderr.contains("unknown compact mode"), "stderr:\n{stderr}");
}
