//! CLI contract tests for `vebo-serve` and `vebo-cluster`: flag
//! validation reachable from the command line must exit with a usage
//! error, never a panic — and the cluster bin's script mode must print
//! digests bit-identical to the single-process `vebo-serve` run, which
//! is exactly what the CI `cluster-smoke` job diffs.

use std::process::Command;

#[test]
fn compact_every_zero_is_a_usage_error_not_a_panic() {
    let out = Command::new(env!("CARGO_BIN_EXE_vebo-serve"))
        .args(["--compact-every", "0"])
        .output()
        .expect("spawn vebo-serve");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr:\n{stderr}");
    assert!(
        stderr.contains("--compact-every must be at least 1"),
        "stderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "validation fell through to a panic:\n{stderr}"
    );
}

#[test]
fn unknown_compact_mode_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_vebo-serve"))
        .args(["--compact-mode", "sometimes"])
        .output()
        .expect("spawn vebo-serve");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr:\n{stderr}");
    assert!(stderr.contains("unknown compact mode"), "stderr:\n{stderr}");
}

#[test]
fn cluster_unknown_partitioner_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_vebo-cluster"))
        .args(["--partitioner", "metis"])
        .output()
        .expect("spawn vebo-cluster");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr:\n{stderr}");
    assert!(stderr.contains("unknown partitioner"), "stderr:\n{stderr}");
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");
}

#[cfg(target_os = "linux")]
#[test]
fn cluster_rejects_mutating_scripts() {
    let script = write_script("mutating", "bfs 3\nadd 1 2\n");
    let out = Command::new(env!("CARGO_BIN_EXE_vebo-cluster"))
        .args(["--workers", "2", "--dataset", "twitter", "--scale", "0.02"])
        .args(["--requests", script.to_str().unwrap()])
        .output()
        .expect("spawn vebo-cluster");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr:\n{stderr}");
    assert!(stderr.contains("not distributable"), "stderr:\n{stderr}");
}

/// The whole point of the bin: coordinator + worker *processes* over
/// real loopback sockets reproduce the in-process digests bit-for-bit.
#[cfg(target_os = "linux")]
#[test]
fn cluster_verify_local_passes_across_process_boundaries() {
    let out = Command::new(env!("CARGO_BIN_EXE_vebo-cluster"))
        .args(["--workers", "2", "--partitioner", "vertex-cut"])
        .args(["--dataset", "twitter", "--scale", "0.03"])
        .args(["--pr-iters", "4", "--verify-local"])
        .output()
        .expect("spawn vebo-cluster");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout:\n{stdout}\nstderr:\n{stderr}");
    for algo in ["pagerank", "bfs", "cc"] {
        assert!(
            stdout.contains(&format!("cluster {algo}")),
            "missing {algo} line:\n{stdout}"
        );
    }
    assert_eq!(stderr.matches("verify-local OK").count(), 3, "{stderr}");
}

/// Script mode must be line-for-line identical to the single-process
/// `vebo-serve` run on the same dataset — the CI cluster-smoke diff.
#[cfg(target_os = "linux")]
#[test]
fn cluster_script_digests_match_vebo_serve() {
    let script = write_script("conformance", "bfs 3\nlabel 7\nbfs 3\nlabel 4099\nbfs 41\n");
    let dataset = ["--dataset", "twitter", "--scale", "0.03"];
    let serve = Command::new(env!("CARGO_BIN_EXE_vebo-serve"))
        .args(dataset)
        .args(["--requests", script.to_str().unwrap(), "--concurrency", "1"])
        .output()
        .expect("spawn vebo-serve");
    assert!(
        serve.status.success(),
        "vebo-serve: {}",
        String::from_utf8_lossy(&serve.stderr)
    );
    for partitioner in ["vertex-cut", "hash"] {
        let cluster = Command::new(env!("CARGO_BIN_EXE_vebo-cluster"))
            .args(dataset)
            .args(["--workers", "3", "--partitioner", partitioner])
            .args(["--requests", script.to_str().unwrap()])
            .output()
            .expect("spawn vebo-cluster");
        assert!(
            cluster.status.success(),
            "vebo-cluster: {}",
            String::from_utf8_lossy(&cluster.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&serve.stdout),
            String::from_utf8_lossy(&cluster.stdout),
            "{partitioner}: 3-process cluster digests diverge from single-process serve"
        );
    }
}

#[cfg(target_os = "linux")]
fn write_script(tag: &str, text: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("vebo-cluster-cli-{tag}-{}.txt", std::process::id()));
    std::fs::write(&path, text).expect("write request script");
    path
}
