//! Property-based tests over every baseline ordering: whatever the input
//! graph, each must produce a valid permutation whose application is an
//! isomorphism, deterministically.

use proptest::prelude::*;
use vebo_baselines::{DegreeSort, Gorder, RandomOrder, Rcm, SlashBurn};
use vebo_graph::graph::mix64;
use vebo_graph::permute::OriginalOrder;
use vebo_graph::{Graph, VertexId, VertexOrdering};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..70, 0usize..350, any::<u64>(), any::<bool>()).prop_map(|(n, m, seed, directed)| {
        let mut x = seed;
        let mut next = || {
            x = mix64(x);
            x
        };
        let edges: Vec<(VertexId, VertexId)> = (0..m)
            .map(|_| {
                (
                    (next() % n as u64) as VertexId,
                    (next() % n as u64) as VertexId,
                )
            })
            .collect();
        Graph::from_edges(n, &edges, directed)
    })
}

fn orderings() -> Vec<Box<dyn VertexOrdering>> {
    vec![
        Box::new(OriginalOrder),
        Box::new(Rcm),
        Box::new(Gorder::new()),
        Box::new(DegreeSort),
        Box::new(RandomOrder::new(42)),
        Box::new(SlashBurn::default()),
        Box::new(SlashBurn::new(0.1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every ordering emits a bijection over 0..n.
    #[test]
    fn orderings_are_bijections(g in arb_graph()) {
        for o in orderings() {
            let p = o.compute(&g);
            prop_assert_eq!(p.len(), g.num_vertices(), "{} length", o.name());
            let mut seen = vec![false; g.num_vertices()];
            for v in g.vertices() {
                let id = p.new_id(v) as usize;
                prop_assert!(!seen[id], "{} duplicates id {}", o.name(), id);
                seen[id] = true;
            }
        }
    }

    /// Applying any ordering preserves the degree multiset and edge count
    /// (isomorphism witness).
    #[test]
    fn reordered_graph_is_isomorphic(g in arb_graph()) {
        for o in orderings() {
            let p = o.compute(&g);
            let h = p.apply_graph(&g);
            prop_assert_eq!(h.num_edges(), g.num_edges(), "{} edges", o.name());
            let mut dg: Vec<(usize, usize)> =
                g.vertices().map(|v| (g.in_degree(v), g.out_degree(v))).collect();
            let mut dh: Vec<(usize, usize)> =
                h.vertices().map(|v| (h.in_degree(v), h.out_degree(v))).collect();
            dg.sort_unstable();
            dh.sort_unstable();
            prop_assert_eq!(dg, dh, "{} degree multiset", o.name());
        }
    }

    /// Orderings are pure functions of the graph.
    #[test]
    fn orderings_are_deterministic(g in arb_graph()) {
        for o in orderings() {
            prop_assert_eq!(o.compute(&g), o.compute(&g), "{}", o.name());
        }
    }

    /// Every arc of the original graph exists in the reordered graph
    /// under the id map (full adjacency preservation, stronger than the
    /// degree-multiset check).
    #[test]
    fn adjacency_preserved_under_relabeling(g in arb_graph()) {
        for o in orderings() {
            let p = o.compute(&g);
            let h = p.apply_graph(&g);
            for u in g.vertices() {
                let hu = p.new_id(u);
                let mut want: Vec<VertexId> =
                    g.out_neighbors(u).iter().map(|&v| p.new_id(v)).collect();
                want.sort_unstable();
                let mut got: Vec<VertexId> = h.out_neighbors(hu).to_vec();
                got.sort_unstable();
                prop_assert_eq!(got, want, "{} adjacency of {}", o.name(), u);
            }
        }
    }
}
