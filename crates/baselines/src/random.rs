//! Uniformly random vertex permutation (§V-C).
//!
//! The paper uses a random permutation as a lower bound: it destroys both
//! load balance and any collection-order locality, and VEBO applied *on
//! top of* the random permutation must restore performance to near the
//! VEBO-on-original level.

use vebo_graph::gen::random_permutation;
use vebo_graph::{Graph, Permutation, VertexOrdering};

/// Seeded random ordering.
#[derive(Clone, Copy, Debug)]
pub struct RandomOrder {
    seed: u64,
}

impl RandomOrder {
    /// A random order with the given seed.
    pub fn new(seed: u64) -> RandomOrder {
        RandomOrder { seed }
    }

    /// The seed [`RandomOrder::default`] uses.
    pub fn default_seed() -> u64 {
        0xBAD5EED
    }
}

impl Default for RandomOrder {
    fn default() -> Self {
        RandomOrder {
            seed: Self::default_seed(),
        }
    }
}

impl VertexOrdering for RandomOrder {
    fn name(&self) -> &str {
        "Random"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        random_permutation(g.num_vertices(), self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::Dataset;

    #[test]
    fn random_order_is_valid_and_seeded() {
        let g = Dataset::YahooLike.build(0.05);
        let a = RandomOrder::new(1).compute(&g);
        let b = RandomOrder::new(1).compute(&g);
        let c = RandomOrder::new(2).compute(&g);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
        assert!(!a.is_identity());
    }

    #[test]
    fn preserves_graph_size() {
        let g = Dataset::UsaRoadLike.build(0.05);
        let h = RandomOrder::default().compute(&g).apply_graph(&g);
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert_eq!(h.num_edges(), g.num_edges());
    }
}
