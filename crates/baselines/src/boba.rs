//! BOBA-style lightweight reordering (Drescher & Porumbescu,
//! arXiv:2306.10410).
//!
//! BOBA ("Order By Attachment") assigns new vertex ids by *first
//! appearance as a destination in the edge stream*: one O(m) pass over
//! the edges in storage order, no degree histogram, no sorting, no
//! traversal. The insight is that real edge lists already carry creation
//! /crawl locality, so the first-touch order inherits much of that
//! locality at a reordering cost orders of magnitude below heavyweight
//! schemes — the natural "cheap" comparator for VEBO, which also runs in
//! O(m) but balances partitions as well (§VI discusses this trade-off
//! space). Vertices that never appear as a destination (sources only,
//! or isolated) are appended afterwards in ascending original id order,
//! keeping the result a total permutation.

use vebo_graph::{Graph, Permutation, VertexId, VertexOrdering};

/// First-touch-by-destination edge-stream ordering (BOBA).
#[derive(Clone, Copy, Debug, Default)]
pub struct Boba;

impl VertexOrdering for Boba {
    fn name(&self) -> &str {
        "BOBA"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        let n = g.num_vertices();
        let mut order: Vec<VertexId> = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        // One pass over the edge stream in storage order: destinations
        // get ids in order of first appearance.
        for v in g.csr().targets() {
            let v = *v as usize;
            if !seen[v] {
                seen[v] = true;
                order.push(v as VertexId);
            }
        }
        // Untouched vertices (pure sources, isolated) close the order.
        for (v, &s) in seen.iter().enumerate() {
            if !s {
                order.push(v as VertexId);
            }
        }
        Permutation::from_order(&order).expect("first-touch order is a permutation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::Dataset;

    #[test]
    fn name_is_boba() {
        assert_eq!(Boba.name(), "BOBA");
    }

    #[test]
    fn first_destination_gets_id_zero() {
        // Edge stream in CSR order: (0,2), (1,2), (1,3), (3,0).
        let g = Graph::from_edges(4, &[(0, 2), (1, 2), (1, 3), (3, 0)], true);
        let p = Boba.compute(&g);
        assert_eq!(p.new_id(2), 0); // first destination touched
        assert_eq!(p.new_id(3), 1);
        assert_eq!(p.new_id(0), 2);
        // Vertex 1 is never a destination: appended last.
        assert_eq!(p.new_id(1), 3);
    }

    #[test]
    fn is_a_permutation_on_generated_graphs() {
        let g = Dataset::TwitterLike.build(0.05);
        let p = Boba.compute(&g);
        let mut hit = vec![false; g.num_vertices()];
        for v in g.vertices() {
            let nv = p.new_id(v) as usize;
            assert!(!hit[nv]);
            hit[nv] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn isolated_vertices_are_appended() {
        let g = Graph::from_edges(5, &[(0, 1)], true);
        let p = Boba.compute(&g);
        assert_eq!(p.new_id(1), 0);
        // 0, 2, 3, 4 never appear as destinations; ascending order after.
        assert_eq!(p.new_id(0), 1);
        assert_eq!(p.new_id(2), 2);
        assert_eq!(p.new_id(3), 3);
        assert_eq!(p.new_id(4), 4);
    }

    #[test]
    fn reordered_graph_preserves_structure() {
        let g = Dataset::LiveJournalLike.build(0.05);
        let p = Boba.compute(&g);
        let h = p.apply_graph(&g);
        assert_eq!(g.num_vertices(), h.num_vertices());
        assert_eq!(g.num_edges(), h.num_edges());
    }
}
