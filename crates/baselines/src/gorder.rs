//! Gorder (Wei, Yu, Lu, Lin — SIGMOD 2016): greedy windowed vertex
//! ordering that maximizes CPU-cache locality.
//!
//! Gorder maximizes `F(pi) = sum s(u, v)` over pairs within a sliding
//! window of size `w` in the final order, where the score
//! `s(u, v) = S_s(u, v) + S_n(u, v)` counts common in-neighbors (sibling
//! score) plus direct adjacency (neighbor score). The greedy algorithm
//! repeatedly picks the unplaced vertex with the highest total score
//! against the current window.
//!
//! The paper evaluates Gorder as its strongest locality baseline and
//! measures its ordering cost at 1524x VEBO's (Table VI) — a consequence
//! of the `O(sum_v deg_out(v)^2)` sibling updates, which this
//! implementation reproduces faithfully (an optional `hub_cap` bounds the
//! update fan-out for time-boxed harness runs; `None` is the faithful
//! default).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use vebo_graph::{Graph, Permutation, VertexId, VertexOrdering};

/// The Gorder greedy ordering.
#[derive(Clone, Copy, Debug)]
pub struct Gorder {
    /// Sliding window size (the Gorder paper and ours use 5).
    pub window: usize,
    /// Optional cap on the out-degree of in-neighbors considered during
    /// sibling updates. `None` = faithful (quadratic in hub degrees).
    pub hub_cap: Option<usize>,
}

impl Default for Gorder {
    fn default() -> Self {
        Gorder {
            window: 5,
            hub_cap: None,
        }
    }
}

impl Gorder {
    /// Gorder with the default window of 5.
    pub fn new() -> Gorder {
        Gorder::default()
    }

    /// Bounds sibling-update fan-out for large harness runs.
    pub fn with_hub_cap(mut self, cap: usize) -> Gorder {
        self.hub_cap = Some(cap);
        self
    }

    /// Applies +/-1 score updates for vertex `u` entering (+1) or leaving
    /// (-1) the window.
    fn apply_updates(
        &self,
        g: &Graph,
        u: VertexId,
        sign: i64,
        key: &mut [i64],
        heap: &mut BinaryHeap<(i64, Reverse<VertexId>)>,
        placed: &[bool],
    ) {
        let bump =
            |w: VertexId, key: &mut [i64], heap: &mut BinaryHeap<(i64, Reverse<VertexId>)>| {
                key[w as usize] += sign;
                if sign > 0 && !placed[w as usize] {
                    heap.push((key[w as usize], Reverse(w)));
                }
            };
        // Neighbor score: u -> w and w -> u.
        for &w in g.out_neighbors(u) {
            if w != u {
                bump(w, key, heap);
            }
        }
        for &w in g.in_neighbors(u) {
            if w != u {
                bump(w, key, heap);
            }
        }
        // Sibling score: every w sharing an in-neighbor x with u.
        for &x in g.in_neighbors(u) {
            if let Some(cap) = self.hub_cap {
                if g.out_degree(x) > cap {
                    continue;
                }
            }
            for &w in g.out_neighbors(x) {
                if w != u {
                    bump(w, key, heap);
                }
            }
        }
    }
}

impl VertexOrdering for Gorder {
    fn name(&self) -> &str {
        "Gorder"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        let n = g.num_vertices();
        if n == 0 {
            return Permutation::identity(0);
        }
        let w = self.window.max(1);
        let mut key = vec![0i64; n];
        let mut placed = vec![false; n];
        // Lazy max-heap: stale entries are discarded on pop by comparing
        // against the authoritative `key` array.
        let mut heap: BinaryHeap<(i64, Reverse<VertexId>)> = BinaryHeap::new();
        let mut window: VecDeque<VertexId> = VecDeque::with_capacity(w + 1);
        let mut order: Vec<VertexId> = Vec::with_capacity(n);

        // Fallback seed order: decreasing in-degree (Gorder restarts from
        // the highest-degree unplaced vertex when the frontier dies out).
        let seeds = vebo_graph::degree::vertices_by_decreasing_in_degree(g);
        let mut seed_cursor = 0usize;

        while order.len() < n {
            // Select the next vertex: highest key, ties to lowest id.
            let next = loop {
                match heap.pop() {
                    Some((k, Reverse(v))) => {
                        if placed[v as usize] {
                            continue;
                        }
                        if k != key[v as usize] {
                            // Stale: re-arm with the authoritative key.
                            if k > key[v as usize] {
                                heap.push((key[v as usize], Reverse(v)));
                            }
                            continue;
                        }
                        break Some(v);
                    }
                    None => break None,
                }
            };
            let v = next.unwrap_or_else(|| {
                while placed[seeds[seed_cursor] as usize] {
                    seed_cursor += 1;
                }
                seeds[seed_cursor]
            });

            placed[v as usize] = true;
            order.push(v);
            window.push_back(v);
            self.apply_updates(g, v, 1, &mut key, &mut heap, &placed);
            if window.len() > w {
                let old = window.pop_front().unwrap();
                self.apply_updates(g, old, -1, &mut key, &mut heap, &placed);
            }
        }
        Permutation::from_order(&order).expect("Gorder places every vertex once")
    }
}

/// Gorder's objective: `F(pi) = sum of s(u, v)` over pairs at distance
/// `<= window` in the new order. Brute force, for tests and diagnostics.
pub fn locality_objective(g: &Graph, perm: &Permutation, window: usize) -> u64 {
    let n = g.num_vertices();
    let inv = perm.inverse();
    let by_rank: Vec<VertexId> = (0..n as VertexId).map(|r| inv.new_id(r)).collect();
    let mut total = 0u64;
    for i in 0..n {
        for j in (i + 1)..(i + 1 + window).min(n) {
            total += pair_score(g, by_rank[i], by_rank[j]);
        }
    }
    total
}

/// `s(u, v)`: common in-neighbors plus direct adjacency.
pub fn pair_score(g: &Graph, u: VertexId, v: VertexId) -> u64 {
    let mut s = 0u64;
    if g.csr().has_edge(u, v) || g.csr().has_edge(v, u) {
        s += 1;
    }
    // Sorted-list intersection of in-neighbor sets.
    let (mut a, mut b) = (
        g.in_neighbors(u).iter().peekable(),
        g.in_neighbors(v).iter().peekable(),
    );
    while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                a.next();
            }
            std::cmp::Ordering::Greater => {
                b.next();
            }
            std::cmp::Ordering::Equal => {
                s += 1;
                a.next();
                b.next();
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomOrder;
    use vebo_graph::{Dataset, Graph};

    #[test]
    fn gorder_is_a_valid_permutation() {
        let g = Dataset::YahooLike.build(0.03);
        let p = Gorder::new().compute(&g);
        assert_eq!(p.len(), g.num_vertices());
        let h = p.apply_graph(&g);
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    fn gorder_beats_random_on_its_own_objective() {
        let g = Dataset::LiveJournalLike.build(0.02);
        let gorder = Gorder::new().compute(&g);
        let random = RandomOrder::new(5).compute(&g);
        let fo = locality_objective(&g, &gorder, 5);
        let fr = locality_objective(&g, &random, 5);
        assert!(fo > fr, "Gorder {fo} must beat random {fr}");
    }

    #[test]
    fn gorder_groups_siblings() {
        // Star-of-listeners: 0 -> {1..6}; all of 1..6 share in-neighbor 0,
        // so Gorder must place them consecutively.
        let edges: Vec<(u32, u32)> = (1..7).map(|v| (0, v)).collect();
        let g = Graph::from_edges(7, &edges, true);
        let p = Gorder::new().compute(&g);
        let mut ranks: Vec<u32> = (1..7).map(|v| p.new_id(v)).collect();
        ranks.sort_unstable();
        // The six siblings stay tightly packed — at most the hub vertex 0
        // (their common in-neighbor, itself high-scoring) interleaves.
        assert!(ranks[5] - ranks[0] <= 6, "ranks {ranks:?}");
    }

    #[test]
    fn gorder_is_deterministic() {
        let g = Dataset::PowerLaw.build(0.02);
        let a = Gorder::new().compute(&g);
        let b = Gorder::new().compute(&g);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn hub_cap_still_valid_permutation() {
        let g = Dataset::TwitterLike.build(0.03);
        let p = Gorder::new().with_hub_cap(32).compute(&g);
        assert_eq!(p.len(), g.num_vertices());
    }

    #[test]
    fn tiny_graphs_and_small_windows() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], true);
        for w in 1..5 {
            let p = Gorder {
                window: w,
                hub_cap: None,
            }
            .compute(&g);
            assert_eq!(p.len(), 3);
        }
    }

    #[test]
    fn handles_edgeless_graph() {
        let g = Graph::from_edges(5, &[], true);
        let p = Gorder::new().compute(&g);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn pair_score_counts_adjacency_and_siblings() {
        // 2 -> 0, 2 -> 1 (common in-neighbor), 0 -> 1 (adjacency).
        let g = Graph::from_edges(4, &[(2, 0), (2, 1), (0, 1)], true);
        assert_eq!(pair_score(&g, 0, 1), 2); // sibling + adjacency
        assert_eq!(pair_score(&g, 0, 2), 1); // adjacency only (2 -> 0)
        assert_eq!(pair_score(&g, 0, 3), 0); // unrelated
    }
}
