//! Reverse Cuthill–McKee ordering.
//!
//! RCM reduces the bandwidth of a sparse matrix: a BFS from a
//! pseudo-peripheral vertex, visiting neighbors in increasing-degree
//! order, then reversing the resulting order. The paper evaluates it as a
//! locality-oriented baseline (§IV) and reports its `O(N log N |V|)` cost
//! in §III-E.

use std::collections::VecDeque;
use vebo_graph::{Adjacency, Graph, Permutation, VertexId, VertexOrdering};

/// The RCM ordering algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct Rcm;

impl VertexOrdering for Rcm {
    fn name(&self) -> &str {
        "RCM"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        let n = g.num_vertices();
        let sym = symmetrized(g);
        let degree = |v: VertexId| sym.degree(v);

        let mut order: Vec<VertexId> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut level = vec![0u32; n];

        // Components in order of their minimum-degree representative.
        let mut by_degree: Vec<VertexId> = (0..n as VertexId).collect();
        by_degree.sort_by_key(|&v| (degree(v), v));

        let mut neighbor_buf: Vec<VertexId> = Vec::new();
        for &seed in &by_degree {
            if visited[seed as usize] {
                continue;
            }
            let start = pseudo_peripheral(&sym, seed, &mut level);
            // Cuthill-McKee BFS from `start`.
            let mut queue = VecDeque::new();
            visited[start as usize] = true;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                order.push(u);
                neighbor_buf.clear();
                neighbor_buf.extend(
                    sym.neighbors(u)
                        .iter()
                        .copied()
                        .filter(|&w| !visited[w as usize]),
                );
                neighbor_buf.sort_by_key(|&w| (degree(w), w));
                for &w in &neighbor_buf {
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), n);
        order.reverse();
        Permutation::from_order(&order).expect("RCM visits every vertex once")
    }
}

/// Undirected view of the graph: union of in- and out-neighbors, deduped.
fn symmetrized(g: &Graph) -> Adjacency {
    if !g.is_directed() {
        return g.csr().clone();
    }
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(g.num_edges() * 2);
    for u in g.vertices() {
        for &v in g.out_neighbors(u) {
            if u != v {
                pairs.push((u, v));
                pairs.push((v, u));
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    Adjacency::from_pairs(g.num_vertices(), &pairs)
}

/// George–Liu pseudo-peripheral vertex finder: repeated BFS, hopping to a
/// minimum-degree vertex of the last level until the eccentricity stops
/// growing.
fn pseudo_peripheral(sym: &Adjacency, seed: VertexId, level: &mut [u32]) -> VertexId {
    let mut start = seed;
    let mut best_ecc = 0u32;
    for _ in 0..8 {
        // bounded: eccentricity growth converges in a few rounds
        let (ecc, last_level) = bfs_levels(sym, start, level);
        if ecc <= best_ecc {
            break;
        }
        best_ecc = ecc;
        // Minimum-degree vertex of the deepest level.
        let next = last_level
            .iter()
            .copied()
            .min_by_key(|&v| (sym.degree(v), v))
            .unwrap_or(start);
        if next == start {
            break;
        }
        start = next;
    }
    start
}

/// BFS recording levels; returns (eccentricity, vertices of last level).
fn bfs_levels(sym: &Adjacency, start: VertexId, level: &mut [u32]) -> (u32, Vec<VertexId>) {
    level.fill(u32::MAX);
    level[start as usize] = 0;
    let mut frontier = vec![start];
    let mut depth = 0u32;
    let mut last = frontier.clone();
    while !frontier.is_empty() {
        last = frontier.clone();
        let mut next = Vec::new();
        for &u in &frontier {
            for &w in sym.neighbors(u) {
                if level[w as usize] == u32::MAX {
                    level[w as usize] = depth + 1;
                    next.push(w);
                }
            }
        }
        frontier = next;
        depth += 1;
    }
    (depth.saturating_sub(1), last)
}

/// Matrix bandwidth under a given permutation: the maximum |new(u) -
/// new(v)| over all edges. RCM exists to shrink this.
pub fn bandwidth(g: &Graph, perm: &Permutation) -> usize {
    let mut bw = 0usize;
    for u in g.vertices() {
        let nu = perm.new_id(u) as i64;
        for &v in g.out_neighbors(u) {
            let d = (nu - perm.new_id(v) as i64).unsigned_abs() as usize;
            bw = bw.max(d);
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::gen::grid::{grid_graph, GridConfig};
    use vebo_graph::Dataset;

    #[test]
    fn rcm_is_a_valid_permutation() {
        let g = Dataset::LiveJournalLike.build(0.03);
        let p = Rcm.compute(&g);
        assert_eq!(p.len(), g.num_vertices());
        // from_order already validates bijectivity; check the graph too.
        let h = p.apply_graph(&g);
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    fn rcm_shrinks_bandwidth_of_shuffled_grid() {
        // A grid has bandwidth ~width under row-major ids; shuffle it, then
        // RCM must restore a bandwidth near the grid width (not n).
        let g = grid_graph(&GridConfig {
            width: 24,
            height: 24,
            diagonal_prob: 0.0,
            deletion_prob: 0.0,
            seed: 1,
        });
        let shuffled = vebo_graph::gen::random_permutation(g.num_vertices(), 99).apply_graph(&g);
        let before = bandwidth(&shuffled, &Permutation::identity(shuffled.num_vertices()));
        let p = Rcm.compute(&shuffled);
        let after = bandwidth(&shuffled, &p);
        assert!(
            after * 4 < before,
            "RCM should shrink bandwidth: before {before}, after {after}"
        );
        assert!(
            after <= 60,
            "grid bandwidth should be near its width, got {after}"
        );
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        // Two disjoint triangles + isolated vertices.
        let g = Graph::from_edges(8, &[(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)], false);
        let p = Rcm.compute(&g);
        assert_eq!(p.len(), 8);
        let h = p.apply_graph(&g);
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    fn rcm_on_path_yields_contiguous_order() {
        // A path graph reordered by RCM must have bandwidth 1.
        let g = Graph::from_edges(10, &[(0, 5), (5, 2), (2, 8), (8, 1), (1, 9)], false);
        let p = Rcm.compute(&g);
        assert_eq!(bandwidth(&g, &p), 1);
    }

    #[test]
    fn rcm_name() {
        assert_eq!(Rcm.name(), "RCM");
    }

    #[test]
    fn symmetrized_unions_directions() {
        let g = Graph::from_edges(3, &[(0, 1), (2, 1)], true);
        let s = symmetrized(&g);
        assert_eq!(s.neighbors(1), &[0, 2]);
        assert_eq!(s.neighbors(0), &[1]);
    }

    #[test]
    fn pseudo_peripheral_finds_path_end() {
        // On a path 0-1-2-3-4 the pseudo-peripheral vertex from the middle
        // must be one of the two ends.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], false);
        let sym = symmetrized(&g);
        let mut level = vec![0u32; 5];
        let pp = pseudo_peripheral(&sym, 2, &mut level);
        assert!(pp == 0 || pp == 4, "got {pp}");
    }
}
