//! # vebo-baselines
//!
//! The comparator vertex orderings of the paper's evaluation, rebuilt from
//! scratch:
//!
//! * [`rcm`] — Reverse Cuthill–McKee, the sparse-matrix bandwidth-reduction
//!   ordering (George & Liu), with a pseudo-peripheral start vertex;
//! * [`gorder`] — Gorder (Wei et al., SIGMOD 2016), the greedy windowed
//!   locality-maximizing ordering;
//! * [`degree_sort`] — plain high-to-low in-degree sort (§V-G's
//!   "high-to-low" order);
//! * [`random`] — a uniformly random permutation (§V-C's stress test);
//! * [`slashburn`] — SlashBurn (Lim et al., TKDE 2014), the hub-removal
//!   compression ordering §VI cites;
//! * [`boba`] — BOBA (Drescher & Porumbescu, arXiv:2306.10410), the
//!   O(m) first-touch edge-stream ordering — the lightweight comparator
//!   in VEBO's own cost class.
//!
//! All of them implement [`vebo_graph::VertexOrdering`], so they can be
//! swapped against `vebo_core::Vebo` anywhere in the pipeline.

#![warn(missing_docs)]

pub mod boba;
pub mod degree_sort;
pub mod gorder;
pub mod random;
pub mod rcm;
pub mod slashburn;

pub use boba::Boba;
pub use degree_sort::DegreeSort;
pub use gorder::Gorder;
pub use random::RandomOrder;
pub use rcm::Rcm;
pub use slashburn::SlashBurn;
