//! High-to-low degree sort (the "high-to-low" order of §V-G).
//!
//! Sorting all vertices by decreasing in-degree, then chunking with
//! Algorithm 1, puts the hubs in the first partitions and exclusively
//! degree-1 vertices in the last — the configuration Figure 6 uses to
//! show that per-edge processing speed depends on the in-degree mix.

use vebo_graph::degree::vertices_by_decreasing_in_degree;
use vebo_graph::{Graph, Permutation, VertexOrdering};

/// Sort-by-decreasing-in-degree ordering.
#[derive(Clone, Copy, Debug, Default)]
pub struct DegreeSort;

impl VertexOrdering for DegreeSort {
    fn name(&self) -> &str {
        "HighToLow"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        let order = vertices_by_decreasing_in_degree(g);
        Permutation::from_order(&order).expect("degree sort is a permutation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::Dataset;

    #[test]
    fn reordered_graph_has_monotone_in_degrees() {
        let g = Dataset::TwitterLike.build(0.05);
        let p = DegreeSort.compute(&g);
        let h = p.apply_graph(&g);
        let degs: Vec<usize> = h.vertices().map(|v| h.in_degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn hub_gets_id_zero() {
        let g = Graph::from_edges(4, &[(0, 2), (1, 2), (3, 2), (2, 1)], true);
        let p = DegreeSort.compute(&g);
        assert_eq!(p.new_id(2), 0);
    }

    #[test]
    fn name_is_high_to_low() {
        assert_eq!(DegreeSort.name(), "HighToLow");
    }

    #[test]
    fn is_stable_within_degree_class() {
        // Equal degrees keep ascending original id order.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)], true);
        let p = DegreeSort.compute(&g);
        // vertices 1 and 3 both have in-degree 1; 1 comes first.
        assert!(p.new_id(1) < p.new_id(3));
    }
}
