//! SlashBurn (Lim, Kang & Faloutsos, TKDE 2014) — the hub-removal ordering
//! the paper's §VI cites as an alternative community notion ("exploits the
//! hubs and their neighbours to define an alternative community different
//! from the traditional community").
//!
//! Each round removes the `k` highest-degree *hubs* (they receive the next
//! lowest new ids), splits the remainder into connected components, sends
//! every non-giant component (the *spokes*) to the back of the id range,
//! and recurses on the giant connected component. The result concentrates
//! the non-zeros of the adjacency matrix into the top-left corner, which
//! is why SlashBurn was proposed for graph compression.
//!
//! Like RCM and Gorder it optimizes a structural objective, not load
//! balance, so in this reproduction it serves as one more comparator that
//! VEBO should beat on balance-sensitive (static-scheduled) systems.

use vebo_graph::{Graph, Permutation, VertexId, VertexOrdering};

/// SlashBurn ordering with a hub-fraction parameter.
#[derive(Clone, Copy, Debug)]
pub struct SlashBurn {
    /// Fraction of the *original* vertex count removed as hubs per round
    /// (the paper's `k`, expressed relative to `n`). Clamped to at least
    /// one vertex per round.
    pub hub_fraction: f64,
}

impl Default for SlashBurn {
    /// The 0.5% hub fraction the SlashBurn paper recommends.
    fn default() -> SlashBurn {
        SlashBurn {
            hub_fraction: 0.005,
        }
    }
}

impl SlashBurn {
    /// SlashBurn with an explicit hub fraction.
    pub fn new(hub_fraction: f64) -> SlashBurn {
        assert!(
            hub_fraction > 0.0 && hub_fraction <= 1.0,
            "hub fraction must be in (0, 1]"
        );
        SlashBurn { hub_fraction }
    }

    /// Number of hubs removed per round for a graph of `n` vertices.
    pub fn hubs_per_round(&self, n: usize) -> usize {
        ((self.hub_fraction * n as f64).ceil() as usize).clamp(1, n.max(1))
    }
}

/// Degree of `v` counting only alive neighbours. For undirected graphs the
/// two adjacency halves are identical, so only the out half is scanned.
fn alive_degree(g: &Graph, v: VertexId, alive: &[bool]) -> usize {
    let out = g
        .out_neighbors(v)
        .iter()
        .filter(|&&u| alive[u as usize])
        .count();
    if g.is_directed() {
        out + g
            .in_neighbors(v)
            .iter()
            .filter(|&&u| alive[u as usize])
            .count()
    } else {
        out
    }
}

/// Undirected connected components over the alive subgraph. Returns
/// `(component id per alive vertex, component sizes)`; dead vertices get
/// `u32::MAX`.
fn components(g: &Graph, alive: &[bool]) -> (Vec<u32>, Vec<usize>) {
    let n = g.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut stack = Vec::new();
    for s in 0..n {
        if !alive[s] || comp[s] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        sizes.push(0);
        comp[s] = id;
        stack.push(s as VertexId);
        while let Some(v) = stack.pop() {
            sizes[id as usize] += 1;
            let mut visit = |u: VertexId| {
                if alive[u as usize] && comp[u as usize] == u32::MAX {
                    comp[u as usize] = id;
                    stack.push(u);
                }
            };
            for &u in g.out_neighbors(v) {
                visit(u);
            }
            if g.is_directed() {
                for &u in g.in_neighbors(v) {
                    visit(u);
                }
            }
        }
    }
    (comp, sizes)
}

impl VertexOrdering for SlashBurn {
    fn name(&self) -> &str {
        "SlashBurn"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        let n = g.num_vertices();
        if n == 0 {
            return Permutation::identity(0);
        }
        let k = self.hubs_per_round(n);
        let mut new_id = vec![0 as VertexId; n];
        let mut alive = vec![true; n];
        // `front` grows forward past hubs, `back` shrinks backward past
        // spokes; the loop ends when the giant component fits between.
        let mut front = 0usize;
        let mut back = n;
        let mut gcc: Vec<VertexId> = (0..n as VertexId).collect();

        while gcc.len() > k {
            // 1. Slash: remove the k highest-degree alive vertices.
            let mut by_degree: Vec<(usize, VertexId)> = gcc
                .iter()
                .map(|&v| (alive_degree(g, v, &alive), v))
                .collect();
            // Highest degree first, ties by ascending id for determinism.
            by_degree.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            if by_degree[0].0 == 0 {
                break; // no edges left: the remainder is all spokes
            }
            for &(_, v) in by_degree.iter().take(k) {
                alive[v as usize] = false;
                new_id[v as usize] = front as VertexId;
                front += 1;
            }

            // 2. Burn: non-giant components become spokes at the back.
            let (comp, sizes) = components(g, &alive);
            if sizes.is_empty() {
                gcc.clear();
                break;
            }
            let giant = (0..sizes.len())
                .max_by_key(|&c| (sizes[c], usize::MAX - c))
                .unwrap() as u32;
            // Spoke vertices ordered by (ascending component size,
            // component id, vertex id): the smallest spokes end up with
            // the highest new ids, mirroring the paper's layout.
            let mut spokes: Vec<(usize, u32, VertexId)> = gcc
                .iter()
                .filter(|&&v| alive[v as usize] && comp[v as usize] != giant)
                .map(|&v| (sizes[comp[v as usize] as usize], comp[v as usize], v))
                .collect();
            spokes.sort_unstable();
            for &(_, _, v) in spokes.iter().rev() {
                alive[v as usize] = false;
                back -= 1;
                new_id[v as usize] = back as VertexId;
            }
            gcc.retain(|&v| alive[v as usize]);
        }

        // 3. Whatever survives (the final small core, or isolated leftovers
        // when the loop broke early) fills the middle, hubs first.
        let mut rest: Vec<(usize, VertexId)> = gcc
            .iter()
            .filter(|&&v| alive[v as usize])
            .map(|&v| (alive_degree(g, v, &alive), v))
            .collect();
        rest.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, v) in &rest {
            new_id[v as usize] = front as VertexId;
            front += 1;
        }
        debug_assert_eq!(front, back, "front/back must meet exactly");
        Permutation::from_new_ids(new_id).expect("SlashBurn produced a non-bijection")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::Dataset;

    fn star_with_tail(leaves: usize) -> Graph {
        // Hub 0 with `leaves` leaves, plus an isolated 2-chain at the end.
        let n = leaves + 3;
        let mut edges: Vec<(VertexId, VertexId)> =
            (1..=leaves as VertexId).map(|u| (0, u)).collect();
        edges.push((leaves as VertexId + 1, leaves as VertexId + 2));
        Graph::from_edges(n, &edges, false)
    }

    #[test]
    fn output_is_a_permutation() {
        let g = Dataset::TwitterLike.build(0.05);
        let p = SlashBurn::default().compute(&g);
        assert_eq!(p.len(), g.num_vertices());
        // from_new_ids already validates bijectivity; double-check inverse.
        let inv = p.inverse();
        for v in 0..100.min(g.num_vertices()) as VertexId {
            assert_eq!(inv.new_id(p.new_id(v)), v);
        }
    }

    #[test]
    fn hub_of_star_gets_id_zero() {
        let g = star_with_tail(50);
        let p = SlashBurn::new(0.02).compute(&g); // k = 2 per round
        assert_eq!(p.new_id(0), 0, "the star hub must be slashed first");
    }

    #[test]
    fn spokes_go_to_the_back() {
        let g = star_with_tail(50);
        let p = SlashBurn::new(0.02).compute(&g);
        let n = g.num_vertices() as VertexId;
        // After removing the hub, the 50 leaves are singleton spokes and
        // the 2-chain is a size-2 component: all must sit behind the hub
        // ids, and the chain (largest spoke) in front of the singletons.
        let chain_lo = p.new_id(51).min(p.new_id(52));
        for leaf in 1..=50 {
            assert!(p.new_id(leaf) > 0, "leaf {leaf} must not precede the hub");
        }
        assert!(chain_lo < n - 1, "chain must not be the very last");
        // The 2-chain is a bigger component than any singleton leaf, so it
        // receives lower back-ids than every singleton.
        let max_leaf = (1..=50).map(|l| p.new_id(l)).max().unwrap();
        assert!(p.new_id(51).max(p.new_id(52)) < max_leaf || max_leaf == n - 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = Dataset::OrkutLike.build(0.05);
        let a = SlashBurn::default().compute(&g);
        let b = SlashBurn::default().compute(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn larger_k_still_valid() {
        let g = Dataset::LiveJournalLike.build(0.05);
        for frac in [0.001, 0.01, 0.1, 0.5] {
            let p = SlashBurn::new(frac).compute(&g);
            assert_eq!(p.len(), g.num_vertices());
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[], true);
        let p = SlashBurn::default().compute(&g);
        assert!(p.is_empty());
    }

    #[test]
    fn edgeless_graph_orders_all_vertices() {
        let g = Graph::from_edges(5, &[], true);
        let p = SlashBurn::default().compute(&g);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn directed_graph_uses_both_degree_halves() {
        // Vertex 2 has in-degree 3 but out-degree 0: it must still be
        // recognized as the hub.
        let g = Graph::from_edges(5, &[(0, 2), (1, 2), (3, 2), (0, 4)], true);
        let p = SlashBurn::new(0.2).compute(&g); // k = 1
        assert_eq!(p.new_id(2), 0);
    }

    #[test]
    fn hubs_per_round_clamps() {
        assert_eq!(SlashBurn::new(0.005).hubs_per_round(10), 1);
        assert_eq!(SlashBurn::new(1.0).hubs_per_round(10), 10);
        assert_eq!(SlashBurn::new(0.25).hubs_per_round(10), 3);
    }

    #[test]
    #[should_panic(expected = "hub fraction")]
    fn zero_fraction_rejected() {
        SlashBurn::new(0.0);
    }

    #[test]
    fn name_is_slashburn() {
        assert_eq!(SlashBurn::default().name(), "SlashBurn");
    }

    #[test]
    fn reordering_preserves_graph_structure() {
        let g = Dataset::YahooLike.build(0.05);
        let p = SlashBurn::default().compute(&g);
        let h = p.apply_graph(&g);
        assert_eq!(h.num_edges(), g.num_edges());
        assert_eq!(h.num_vertices(), g.num_vertices());
        // Degree multiset must be preserved under isomorphism.
        let mut dg: Vec<usize> = g.vertices().map(|v| g.in_degree(v)).collect();
        let mut dh: Vec<usize> = h.vertices().map(|v| h.in_degree(v)).collect();
        dg.sort_unstable();
        dh.sort_unstable();
        assert_eq!(dg, dh);
    }
}
