//! Property-based tests for the engine: all traversal modes must agree,
//! and the executor's policies (mode, NUMA placement) must never change
//! results.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use vebo_engine::shared::AtomicF64;
use vebo_engine::{Direction, EdgeOp, ExecMode, Executor, Frontier, PreparedGraph, SystemProfile};
use vebo_graph::graph::mix64;
use vebo_graph::{Graph, VertexId};
use vebo_partition::EdgeOrder;

fn arb_case() -> impl Strategy<Value = (Graph, Vec<VertexId>)> {
    (2usize..60, 0usize..300, any::<u64>(), 1usize..10).prop_map(|(n, m, seed, f)| {
        let mut x = seed;
        let mut next = || {
            x = mix64(x);
            x
        };
        let edges: Vec<(VertexId, VertexId)> = (0..m)
            .map(|_| {
                (
                    (next() % n as u64) as VertexId,
                    (next() % n as u64) as VertexId,
                )
            })
            .collect();
        let frontier: Vec<VertexId> = (0..f).map(|_| (next() % n as u64) as VertexId).collect();
        (Graph::from_edges(n, &edges, true), frontier)
    })
}

/// Min-relaxation operator: commutative and idempotent, so any traversal
/// order must produce the same state and the same activation set.
struct MinOp {
    val: Vec<AtomicF64>,
}

impl EdgeOp for MinOp {
    fn update(&self, s: VertexId, d: VertexId, w: f32) -> bool {
        let cand = self.val[s as usize].load() + w as f64;
        if cand < self.val[d as usize].load() {
            self.val[d as usize].store(cand);
            true
        } else {
            false
        }
    }
    fn update_atomic(&self, s: VertexId, d: VertexId, w: f32) -> bool {
        self.val[d as usize].fetch_min(self.val[s as usize].load() + w as f64)
    }
}

fn run_mode(
    g: &Graph,
    frontier: &[VertexId],
    exec: &Executor,
    direction: Direction,
) -> (Vec<f64>, Vec<VertexId>) {
    let n = g.num_vertices();
    let pg = PreparedGraph::builder(g.clone())
        .profile(*exec.profile())
        .build()
        .expect("no explicit bounds, cannot fail");
    let op = MinOp {
        val: (0..n).map(|_| AtomicF64::new(f64::INFINITY)).collect(),
    };
    for &v in frontier {
        op.val[v as usize].store(0.0);
    }
    let f = Frontier::from_vertices(n, frontier.to_vec());
    let (out, _) = exec.edge_map_in(&pg, &f, &op, direction);
    let mut active: Vec<VertexId> = out.iter_active().collect();
    active.sort_unstable();
    (op.val.iter().map(|a| a.load()).collect(), active)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All (profile, direction) combinations compute the same relaxation.
    #[test]
    fn all_modes_agree((g, frontier) in arb_case()) {
        let reference = run_mode(
            &g,
            &frontier,
            &Executor::new(SystemProfile::ligra_like()),
            Direction::Sparse,
        );
        for profile in [
            SystemProfile::ligra_like(),
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Csr),
            SystemProfile::graphgrind_like(EdgeOrder::Hilbert),
        ] {
            for direction in [Direction::Dense, Direction::Sparse, Direction::Auto] {
                let got = run_mode(&g, &frontier, &Executor::new(profile), direction);
                prop_assert_eq!(&got.1, &reference.1, "activation sets differ");
                for (a, b) in got.0.iter().zip(&reference.0) {
                    prop_assert!(
                        (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-12,
                        "state differs: {} vs {}", a, b
                    );
                }
            }
        }
    }

    /// Executor policies — parallel mode, NUMA placement on/off — never
    /// change the result, on every profile.
    #[test]
    fn executor_policies_preserve_results((g, frontier) in arb_case()) {
        for profile in [
            SystemProfile::ligra_like(),
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Csr),
        ] {
            let reference = run_mode(&g, &frontier, &Executor::new(profile), Direction::Auto);
            for exec in [
                Executor::new(profile).with_mode(ExecMode::Parallel),
                Executor::new(profile).with_numa_placement(false),
                Executor::new(profile)
                    .with_mode(ExecMode::Parallel)
                    .with_numa_placement(false),
            ] {
                let got = run_mode(&g, &frontier, &exec, Direction::Auto);
                prop_assert_eq!(&got.1, &reference.1, "activation sets differ");
                for (a, b) in got.0.iter().zip(&reference.0) {
                    prop_assert!(
                        (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-12,
                        "state differs: {} vs {}", a, b
                    );
                }
            }
        }
    }

    /// The NUMA-placed execution order is always a permutation of the
    /// unplaced (index) order, and every task has a socket within the
    /// topology.
    #[test]
    fn placement_order_is_a_permutation(num_tasks in 0usize..600) {
        for profile in [
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Csr),
        ] {
            let exec = Executor::new(profile);
            let plan = exec.placement(num_tasks).expect("static profiles place tasks");
            let order = plan.execution_order();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..num_tasks).collect::<Vec<_>>());
            for t in 0..num_tasks {
                prop_assert!(plan.socket_of(t) < profile.topology.num_sockets);
            }
        }
        prop_assert!(Executor::new(SystemProfile::ligra_like()).placement(num_tasks).is_none());
    }

    /// BFS-style single-activation: each destination enters the next
    /// frontier at most once, in every mode.
    #[test]
    fn single_activation((g, frontier) in arb_case()) {
        struct Once {
            hit: Vec<AtomicU32>,
        }
        impl EdgeOp for Once {
            fn update(&self, _s: VertexId, d: VertexId, _w: f32) -> bool {
                self.hit[d as usize].fetch_add(1, Ordering::Relaxed) == 0
            }
            fn update_atomic(&self, s: VertexId, d: VertexId, w: f32) -> bool {
                self.update(s, d, w)
            }
            fn cond(&self, d: VertexId) -> bool {
                self.hit[d as usize].load(Ordering::Relaxed) == 0
            }
        }
        let n = g.num_vertices();
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
        let exec = Executor::new(profile);
        for direction in [Direction::Dense, Direction::Sparse] {
            let pg = PreparedGraph::builder(g.clone()).profile(profile).build().unwrap();
            let op = Once { hit: (0..n).map(|_| AtomicU32::new(0)).collect() };
            let f = Frontier::from_vertices(n, frontier.clone());
            let (out, _) = exec.edge_map_in(&pg, &f, &op, direction);
            // The output frontier is exactly the set of touched dsts.
            let mut expect: Vec<VertexId> = (0..n as VertexId)
                .filter(|&v| op.hit[v as usize].load(Ordering::Relaxed) > 0)
                .collect();
            expect.sort_unstable();
            let mut got: Vec<VertexId> = out.iter_active().collect();
            got.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }

    /// Frontier representation switches never change membership.
    #[test]
    fn frontier_representation_is_lossless(n in 1usize..500, seed in any::<u64>()) {
        let mut x = seed;
        let mut ids = Vec::new();
        for _ in 0..(x % 64) {
            x = mix64(x);
            ids.push((x % n as u64) as VertexId);
        }
        let f = Frontier::from_vertices(n, ids);
        let rt = f.to_dense().to_sparse().to_dense().to_sparse();
        let a: Vec<VertexId> = f.iter_active().collect();
        let b: Vec<VertexId> = rt.iter_active().collect();
        prop_assert_eq!(a, b);
    }

    /// Scheduling simulator invariants: makespan bounds.
    #[test]
    fn makespan_bounds(costs in proptest::collection::vec(0.0f64..100.0, 1..200), threads in 1usize..64) {
        use vebo_engine::{simulate, Scheduling};
        for policy in [Scheduling::Static, Scheduling::Dynamic] {
            let r = simulate(&costs, threads, policy);
            let total: f64 = costs.iter().sum();
            let maxc = costs.iter().cloned().fold(0.0, f64::max);
            // makespan >= max(total/threads, largest task); <= total.
            prop_assert!(r.makespan + 1e-9 >= total / threads as f64);
            prop_assert!(r.makespan + 1e-9 >= maxc);
            prop_assert!(r.makespan <= total + 1e-9);
            prop_assert!((r.per_thread.iter().sum::<f64>() - total).abs() < 1e-6);
        }
    }
}
