//! The multicore scheduling simulator.
//!
//! The paper's experiments ran on a 48-thread, 4-socket Xeon; this
//! reproduction measures per-task work on whatever machine it runs on and
//! *simulates* the parallel makespan under the target system's scheduling
//! policy. Load imbalance — the paper's subject — is a property of the
//! work distribution and the policy, both of which are captured exactly:
//!
//! * **static** scheduling assigns contiguous task blocks to threads; the
//!   loop finishes when the last thread does ("the execution time of the
//!   loop is determined by the last-completing thread", §I);
//! * **dynamic** scheduling hands the next task to the least-loaded
//!   thread, a standard model of work stealing (greedy list scheduling,
//!   within 2x of optimal by Graham's bound — and near-exact for the
//!   many-small-tasks regime Cilk creates).

use crate::profile::Scheduling;

/// Outcome of scheduling a task set onto `threads` workers.
#[derive(Clone, Debug)]
pub struct MakespanReport {
    /// Total load assigned to each thread.
    pub per_thread: Vec<f64>,
    /// Simulated parallel time = max per-thread load.
    pub makespan: f64,
    /// Total work = sum of task costs.
    pub total_work: f64,
}

impl MakespanReport {
    /// Ratio of makespan to perfectly balanced time (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let ideal = self.total_work / self.per_thread.len() as f64;
        if ideal == 0.0 {
            1.0
        } else {
            self.makespan / ideal
        }
    }

    /// Parallel speedup over single-threaded execution.
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0.0 {
            self.per_thread.len() as f64
        } else {
            self.total_work / self.makespan
        }
    }
}

/// Simulates the makespan of `task_costs` on `threads` workers.
pub fn simulate(task_costs: &[f64], threads: usize, policy: Scheduling) -> MakespanReport {
    assert!(threads >= 1);
    let mut per_thread = vec![0.0f64; threads];
    match policy {
        Scheduling::Static => {
            // Contiguous blocks: task t on thread t * threads / tasks —
            // exactly GraphGrind's "partitions 8t..8t+8 on thread t".
            let tasks = task_costs.len();
            for (t, &c) in task_costs.iter().enumerate() {
                per_thread[t * threads / tasks.max(1)] += c;
            }
        }
        Scheduling::Dynamic => {
            // Greedy list scheduling in task order.
            for &c in task_costs {
                let (idx, _) = per_thread
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap();
                per_thread[idx] += c;
            }
        }
    }
    let makespan = per_thread.iter().copied().fold(0.0, f64::max);
    let total_work = task_costs.iter().sum();
    MakespanReport {
        per_thread,
        makespan,
        total_work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_tasks_balance_under_both_policies() {
        let costs = vec![1.0; 96];
        for policy in [Scheduling::Static, Scheduling::Dynamic] {
            let r = simulate(&costs, 48, policy);
            assert_eq!(r.makespan, 2.0);
            assert!((r.imbalance() - 1.0).abs() < 1e-12);
            assert_eq!(r.total_work, 96.0);
        }
    }

    #[test]
    fn static_suffers_from_clustered_load() {
        // All heavy tasks land in the first contiguous block: static
        // scheduling serializes them on thread 0; dynamic spreads them.
        let mut costs = vec![0.1f64; 96];
        for c in costs.iter_mut().take(8) {
            *c = 10.0;
        }
        // 12 threads: the block of 8 heavy tasks lands entirely on thread
        // 0 under static blocks (96/12 = 8 tasks per thread).
        let stat = simulate(&costs, 12, Scheduling::Static);
        let dyn_ = simulate(&costs, 12, Scheduling::Dynamic);
        assert!(
            stat.makespan > 3.0 * dyn_.makespan,
            "static {} dynamic {}",
            stat.makespan,
            dyn_.makespan
        );
    }

    #[test]
    fn dynamic_matches_greedy_bound() {
        // Graham: greedy <= (2 - 1/m) * OPT. With one giant task, OPT is
        // the giant task itself.
        let mut costs = vec![1.0; 47];
        costs.push(100.0);
        let r = simulate(&costs, 48, Scheduling::Dynamic);
        assert_eq!(r.makespan, 100.0);
    }

    #[test]
    fn static_is_deterministic_blocks() {
        let costs = vec![1.0, 2.0, 3.0, 4.0];
        let r = simulate(&costs, 2, Scheduling::Static);
        assert_eq!(r.per_thread, vec![3.0, 7.0]);
        assert_eq!(r.makespan, 7.0);
    }

    #[test]
    fn fewer_tasks_than_threads() {
        let r = simulate(&[5.0, 1.0], 48, Scheduling::Static);
        assert_eq!(r.makespan, 5.0);
        let r = simulate(&[5.0, 1.0], 48, Scheduling::Dynamic);
        assert_eq!(r.makespan, 5.0);
    }

    #[test]
    fn empty_task_set() {
        let r = simulate(&[], 8, Scheduling::Dynamic);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.speedup(), 8.0);
    }

    #[test]
    fn speedup_of_balanced_load_is_thread_count() {
        let costs = vec![1.0; 480];
        let r = simulate(&costs, 48, Scheduling::Static);
        assert!((r.speedup() - 48.0).abs() < 1e-9);
    }
}
