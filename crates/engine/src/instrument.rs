//! Instrumentation: the pluggable sink every [`crate::Executor`] feeds,
//! and the standard [`RunReport`] accumulator built on top of it.
//!
//! Before the executor existed, every algorithm hand-rolled the same
//! bookkeeping — compute the input frontier's density class, call the
//! free `edge_map`, push `(class, report)` into a `RunReport`, repeat for
//! `vertex_map`. The executor now does that once, centrally: each
//! `edge_map`/`vertex_map` call is forwarded to every attached
//! [`InstrumentSink`]. [`Recorder`] is the default sink; algorithms take
//! a recorded clone of their caller's executor and hand back
//! `recorder.take()` as their [`RunReport`].

use crate::edge_map::EdgeMapReport;
use crate::frontier::DensityClass;
use crate::profile::Scheduling;
use crate::schedule::{simulate, MakespanReport};
use crate::sharded::ShardOpReport;
use crate::vertex_map::VertexMapReport;
use std::sync::Mutex;

/// Receives every engine operation an [`crate::Executor`] runs.
///
/// Implementations must be thread-safe (`Send + Sync`): one executor may
/// be shared across threads, and recording happens after each operation's
/// parallel section completes.
pub trait InstrumentSink: Send + Sync {
    /// One `edge_map` completed; `class` is the *input* frontier's
    /// density class (Table II's "F" column).
    fn record_edge_map(&self, class: DensityClass, report: &EdgeMapReport);

    /// One `vertex_map` completed.
    fn record_vertex_map(&self, report: &VertexMapReport);

    /// One operation completed on the sharded backend
    /// ([`crate::ExecMode::Sharded`]); `op` carries per-shard queue
    /// depth, tasks run/stolen, and busy time. Default: ignored, so
    /// sinks that don't care about shard occupancy need not change.
    fn record_shard_op(&self, op: &ShardOpReport) {
        let _ = op;
    }

    /// One serving-layer request completed in `nanos` wall-clock
    /// nanoseconds. The engine never calls this itself — request loops
    /// (e.g. `vebo-serve`) forward per-request latencies through it so
    /// one sink can correlate tail latency with shard occupancy.
    /// Default: ignored.
    fn record_request(&self, nanos: u64) {
        let _ = nanos;
    }
}

/// The default sink: accumulates operations into a [`RunReport`].
#[derive(Debug, Default)]
pub struct Recorder {
    log: Mutex<RunReport>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Takes the accumulated report, leaving the recorder empty.
    pub fn take(&self) -> RunReport {
        std::mem::take(&mut self.log.lock().unwrap())
    }
}

impl InstrumentSink for Recorder {
    fn record_edge_map(&self, class: DensityClass, report: &EdgeMapReport) {
        self.log.lock().unwrap().push_edge(class, report.clone());
    }

    fn record_vertex_map(&self, report: &VertexMapReport) {
        self.log.lock().unwrap().push_vertex(report.clone());
    }
}

/// Aggregated sharded-backend metrics: per-shard queue depth, work, and
/// occupancy across every operation, plus request tail latency — the
/// serving dashboard's data source. Attach with
/// [`Executor::with_sink`](crate::Executor::with_sink); request loops
/// additionally forward per-request latencies via
/// [`InstrumentSink::record_request`].
#[derive(Debug, Default)]
pub struct ShardMetricsSink {
    inner: Mutex<ShardMetrics>,
}

/// Snapshot of a [`ShardMetricsSink`].
#[derive(Clone, Debug, Default)]
pub struct ShardMetrics {
    /// Sharded operations observed.
    pub ops: u64,
    /// Per-shard totals, indexed by shard id (grows to the largest shard
    /// count seen).
    pub shards: Vec<ShardTotals>,
    /// Per-request wall-clock latencies (nanoseconds), in completion
    /// order.
    pub request_nanos: Vec<u64>,
    /// Per-request-kind latency series, keyed by the request's wire code
    /// (`pr`, `bfs`, ...), in first-seen order — the per-type SLO data
    /// behind [`ShardMetrics::kind_quantile`].
    pub kinds: Vec<KindLatency>,
    /// Dynamic-graph compactions observed (snapshot republications).
    pub compactions: u64,
    /// Compactions that additionally recomputed the partition placement
    /// because per-partition edge drift crossed the trigger threshold.
    pub reorders: u64,
    /// The latest published snapshot epoch.
    pub epoch: u64,
    /// Requests recorded since the last compaction — the "epoch age"
    /// staleness measure. Each request is counted exactly once, whether
    /// it lands through [`InstrumentSink::record_request`] or
    /// [`ShardMetricsSink::record_request_kind`] (a request must be
    /// recorded through exactly one of the two).
    pub epoch_age: u64,
    /// Wall-clock duration of each compaction cycle (nanoseconds), in
    /// completion order — the tail of this series is what background
    /// compaction takes off the mutation path.
    pub compaction_nanos: Vec<u64>,
    /// Largest delta-log depth sampled at mutation time (high-water
    /// mark of buffered-but-uncompacted mutations).
    pub log_depth_max: u64,
    /// Mutations refused because the bounded delta log was full —
    /// backpressure stalls surfaced as BUSY to clients.
    pub log_stalls: u64,
    /// Requests the serving frontend admitted into its queue.
    pub admitted: u64,
    /// Requests the serving frontend rejected with an explicit BUSY
    /// response because an admission bound (in-flight requests or
    /// buffered response bytes) was crossed.
    pub rejected: u64,
    /// Sum of admission-queue depths sampled at each admission decision.
    pub queue_depth_sum: u64,
    /// Number of admission-queue depth samples taken.
    pub queue_depth_samples: u64,
    /// Largest admission-queue depth sampled.
    pub queue_depth_max: u64,
    /// Micro-batches the serving layer executed through the coalescing
    /// batch-submit seam.
    pub batches: u64,
    /// Requests that rode in those micro-batches.
    pub batched_requests: u64,
    /// Unique executions the micro-batches reduced to (compatible
    /// requests — same algorithm, same arguments, same epoch — share one
    /// execution, so `batch_executions <= batched_requests`).
    pub batch_executions: u64,
    /// BSP supersteps the cluster runtime executed on this shard.
    pub supersteps: u64,
    /// Value pairs this shard shipped to remote peers across all
    /// supersteps (gather + scatter).
    pub sync_values_sent: u64,
    /// Value pairs this shard received from remote peers.
    pub sync_values_received: u64,
    /// Wall-clock duration of each superstep (nanoseconds), in
    /// execution order — the barrier-to-barrier latency series behind
    /// [`ShardMetrics::superstep_quantile`].
    pub superstep_nanos: Vec<u64>,
}

/// Latency series of one request kind inside a [`ShardMetrics`]
/// snapshot.
#[derive(Clone, Debug)]
pub struct KindLatency {
    /// The request kind's wire code (`pr`, `bfs`, `label`, ...).
    pub code: &'static str,
    /// Wall-clock latencies (nanoseconds), in completion order.
    pub nanos: Vec<u64>,
}

/// Accumulated per-shard counters of a [`ShardMetricsSink`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardTotals {
    /// Sum of queue depths sampled at each operation's start.
    pub queue_depth_sum: u64,
    /// Largest queue depth sampled.
    pub queue_depth_max: u64,
    /// Tasks run from the shard's own queue.
    pub tasks_run: u64,
    /// Tasks stolen from other shards.
    pub tasks_stolen: u64,
    /// Busy nanoseconds across all operations.
    pub busy_nanos: u64,
    /// Wall nanoseconds across all operations (same for every shard of
    /// one op; kept per shard so occupancy stays a per-shard ratio).
    pub wall_nanos: u64,
}

impl ShardTotals {
    /// Busy time as a fraction of operation wall time (0 when nothing
    /// was measured).
    pub fn occupancy(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.busy_nanos as f64 / self.wall_nanos as f64
        }
    }
}

impl ShardMetrics {
    /// Mean queue depth of shard `s` at operation start.
    pub fn mean_queue_depth(&self, s: usize) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.shards[s].queue_depth_sum as f64 / self.ops as f64
        }
    }

    /// The `q`-quantile (0.0..=1.0) of request latency in nanoseconds
    /// (nearest-rank); `None` when no requests were recorded.
    pub fn latency_quantile(&self, q: f64) -> Option<u64> {
        quantile(&self.request_nanos, q)
    }

    /// The `q`-quantile of request latency for one request kind (by wire
    /// code); `None` when no requests of that kind were recorded.
    pub fn kind_quantile(&self, code: &str, q: f64) -> Option<u64> {
        self.kinds
            .iter()
            .find(|k| k.code == code)
            .and_then(|k| quantile(&k.nanos, q))
    }

    /// Mean admission-queue depth over every admission decision the
    /// serving frontend recorded (0 when none were).
    pub fn mean_admission_depth(&self) -> f64 {
        if self.queue_depth_samples == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.queue_depth_samples as f64
        }
    }

    /// The `q`-quantile (0.0..=1.0) of compaction-cycle duration in
    /// nanoseconds (nearest-rank); `None` when no compactions ran.
    pub fn compaction_quantile(&self, q: f64) -> Option<u64> {
        quantile(&self.compaction_nanos, q)
    }

    /// The `q`-quantile (0.0..=1.0) of superstep duration in
    /// nanoseconds (nearest-rank); `None` when no supersteps ran.
    pub fn superstep_quantile(&self, q: f64) -> Option<u64> {
        quantile(&self.superstep_nanos, q)
    }
}

fn quantile(nanos: &[u64], q: f64) -> Option<u64> {
    if nanos.is_empty() {
        return None;
    }
    let mut sorted = nanos.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    Some(sorted[rank])
}

impl ShardMetricsSink {
    /// An empty metrics sink.
    pub fn new() -> ShardMetricsSink {
        ShardMetricsSink::default()
    }

    /// A snapshot of everything accumulated so far.
    pub fn snapshot(&self) -> ShardMetrics {
        self.inner.lock().unwrap().clone()
    }

    /// Records a dynamic-graph compaction that published `epoch` after a
    /// cycle lasting `nanos` wall-clock nanoseconds; `reordered` marks
    /// the drift-triggered placement recomputations. Resets the
    /// epoch-age counter — subsequent requests age the new epoch. Called
    /// by the serving layer (from its compaction thread), not the
    /// engine.
    pub fn record_compaction(&self, epoch: u64, reordered: bool, nanos: u64) {
        let mut m = self.inner.lock().unwrap();
        m.compactions += 1;
        if reordered {
            m.reorders += 1;
        }
        m.epoch = epoch;
        m.epoch_age = 0;
        m.compaction_nanos.push(nanos);
    }

    /// Records the delta-log depth observed after one accepted mutation
    /// (the high-water mark feeds the serving summary).
    pub fn record_log_depth(&self, depth: u64) {
        let mut m = self.inner.lock().unwrap();
        m.log_depth_max = m.log_depth_max.max(depth);
    }

    /// Records one mutation refused because the bounded delta log was
    /// full (`depth` buffered entries) — a backpressure stall.
    pub fn record_log_stall(&self, depth: u64) {
        let mut m = self.inner.lock().unwrap();
        m.log_stalls += 1;
        m.log_depth_max = m.log_depth_max.max(depth);
    }

    /// The single request-recording path: every completed request —
    /// tagged or not — lands here exactly once, so `epoch_age` counts
    /// "requests since last compaction" without double counting mixed
    /// request/batch traffic.
    fn push_request(m: &mut ShardMetrics, nanos: u64) {
        m.request_nanos.push(nanos);
        m.epoch_age += 1;
    }

    /// Records one completed request of kind `code` (a wire code from
    /// the serving roster): the latency lands in the aggregate series
    /// (exactly like [`InstrumentSink::record_request`]) *and* in the
    /// per-kind series behind [`ShardMetrics::kind_quantile`]. Called by
    /// the serving layer — a request recorded here must not also go
    /// through [`InstrumentSink::record_request`].
    pub fn record_request_kind(&self, code: &'static str, nanos: u64) {
        let mut m = self.inner.lock().unwrap();
        Self::push_request(&mut m, nanos);
        match m.kinds.iter_mut().find(|k| k.code == code) {
            Some(k) => k.nanos.push(nanos),
            None => m.kinds.push(KindLatency {
                code,
                nanos: vec![nanos],
            }),
        }
    }

    /// Records one admission decision of the serving frontend: whether
    /// the request was `admitted` (vs rejected with BUSY) and the
    /// admission-queue `depth` observed when deciding.
    pub fn record_admission(&self, admitted: bool, depth: u64) {
        let mut m = self.inner.lock().unwrap();
        if admitted {
            m.admitted += 1;
        } else {
            m.rejected += 1;
        }
        m.queue_depth_sum += depth;
        m.queue_depth_samples += 1;
        m.queue_depth_max = m.queue_depth_max.max(depth);
    }

    /// Records one completed BSP superstep of the cluster runtime:
    /// `sent`/`received` value pairs crossed the network for this shard
    /// and the step took `nanos` wall-clock nanoseconds barrier to
    /// barrier. Called by the distributed superstep loop, not the
    /// engine.
    pub fn record_superstep(&self, sent: u64, received: u64, nanos: u64) {
        let mut m = self.inner.lock().unwrap();
        m.supersteps += 1;
        m.sync_values_sent += sent;
        m.sync_values_received += received;
        m.superstep_nanos.push(nanos);
    }

    /// Records one coalesced micro-batch: `requests` rode in it and were
    /// served by `executions` unique executions (`executions <=
    /// requests` whenever compatible requests coalesced).
    pub fn record_batch(&self, requests: u64, executions: u64) {
        let mut m = self.inner.lock().unwrap();
        m.batches += 1;
        m.batched_requests += requests;
        m.batch_executions += executions;
    }
}

impl InstrumentSink for ShardMetricsSink {
    fn record_edge_map(&self, _class: DensityClass, _report: &EdgeMapReport) {}

    fn record_vertex_map(&self, _report: &VertexMapReport) {}

    fn record_shard_op(&self, op: &ShardOpReport) {
        let mut m = self.inner.lock().unwrap();
        m.ops += 1;
        if m.shards.len() < op.shards.len() {
            m.shards.resize(op.shards.len(), ShardTotals::default());
        }
        for (s, stats) in op.shards.iter().enumerate() {
            let t = &mut m.shards[s];
            t.queue_depth_sum += stats.queue_depth;
            t.queue_depth_max = t.queue_depth_max.max(stats.queue_depth);
            t.tasks_run += stats.tasks_run;
            t.tasks_stolen += stats.tasks_stolen;
            t.busy_nanos += stats.busy_nanos;
            t.wall_nanos += op.wall_nanos;
        }
    }

    fn record_request(&self, nanos: u64) {
        let mut m = self.inner.lock().unwrap();
        Self::push_request(&mut m, nanos);
    }
}

/// Everything measured while running one algorithm on one prepared graph.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Number of edgemap rounds executed.
    pub iterations: usize,
    /// One report per `edge_map` call, in execution order.
    pub edge_maps: Vec<EdgeMapReport>,
    /// One report per `vertex_map` call.
    pub vertex_maps: Vec<VertexMapReport>,
    /// Density class of the input frontier of each edgemap (Table II's
    /// "F" column).
    pub frontier_classes: Vec<DensityClass>,
}

impl RunReport {
    /// Records one edgemap round.
    pub fn push_edge(&mut self, class: DensityClass, report: EdgeMapReport) {
        self.iterations += 1;
        self.frontier_classes.push(class);
        self.edge_maps.push(report);
    }

    /// Records one vertexmap pass.
    pub fn push_vertex(&mut self, report: VertexMapReport) {
        self.vertex_maps.push(report);
    }

    /// Total sequential time across all operations (nanoseconds).
    pub fn sequential_nanos(&self) -> u64 {
        self.edge_maps.iter().map(|r| r.total_nanos()).sum::<u64>()
            + self
                .vertex_maps
                .iter()
                .map(|r| r.total_nanos())
                .sum::<u64>()
    }

    /// Simulated parallel runtime on `threads` workers under `scheduling`:
    /// the sum over operations of each operation's makespan (operations
    /// are separated by barriers in all three systems).
    pub fn simulated_nanos(&self, threads: usize, scheduling: Scheduling) -> f64 {
        let em: f64 = self
            .edge_maps
            .iter()
            .map(|r| r.makespan(threads, scheduling).makespan)
            .sum();
        let vm: f64 = self
            .vertex_maps
            .iter()
            .map(|r| {
                let costs: Vec<f64> = r.tasks.iter().map(|t| t.nanos as f64).collect();
                simulate(&costs, threads, scheduling).makespan
            })
            .sum();
        em + vm
    }

    /// Deterministic work-model variant of [`RunReport::simulated_nanos`]
    /// (task cost = edges + destination vertices, the paper's joint cost
    /// drivers); noise-free, used by tests.
    pub fn simulated_work(&self, threads: usize, scheduling: Scheduling) -> f64 {
        let em: f64 = self
            .edge_maps
            .iter()
            .map(|r| r.makespan_by_work(threads, scheduling).makespan)
            .sum();
        let vm: f64 = self
            .vertex_maps
            .iter()
            .map(|r| {
                let costs: Vec<f64> = r.tasks.iter().map(|t| t.vertices as f64).collect();
                simulate(&costs, threads, scheduling).makespan
            })
            .sum();
        em + vm
    }

    /// Total edges examined over the whole run.
    pub fn total_edges(&self) -> u64 {
        self.edge_maps.iter().map(|r| r.total_edges()).sum()
    }

    /// Distinct density classes observed, in first-seen order — the
    /// "d/m/s" annotations of Table II.
    pub fn observed_classes(&self) -> Vec<DensityClass> {
        let mut seen = Vec::new();
        for &c in &self.frontier_classes {
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        seen
    }

    /// Aggregated makespan report of the whole run under measured costs.
    pub fn aggregate_makespan(&self, threads: usize, scheduling: Scheduling) -> MakespanReport {
        let mut per_thread = vec![0.0; threads];
        for r in &self.edge_maps {
            let m = r.makespan(threads, scheduling);
            for (t, c) in m.per_thread.iter().enumerate() {
                per_thread[t] += c;
            }
        }
        let makespan = self.simulated_nanos(threads, scheduling);
        let total_work = per_thread.iter().sum();
        MakespanReport {
            per_thread,
            makespan,
            total_work,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_map::{TaskStats, Traversal};

    fn em(nanos: &[u64]) -> EdgeMapReport {
        EdgeMapReport {
            traversal: Traversal::DensePull,
            tasks: nanos
                .iter()
                .map(|&n| TaskStats {
                    nanos: n,
                    edges: n,
                    vertices: 1,
                    socket: 0,
                })
                .collect(),
            output_size: 0,
            shards: None,
        }
    }

    #[test]
    fn empty_report_is_zero() {
        let r = RunReport::default();
        assert_eq!(r.sequential_nanos(), 0);
        assert_eq!(r.total_edges(), 0);
        assert_eq!(r.simulated_work(48, Scheduling::Static), 0.0);
        assert!(r.observed_classes().is_empty());
    }

    #[test]
    fn recorder_accumulates_and_takes() {
        let rec = Recorder::new();
        rec.record_edge_map(DensityClass::Dense, &em(&[1, 2]));
        rec.record_edge_map(DensityClass::Sparse, &em(&[3]));
        rec.record_vertex_map(&VertexMapReport {
            tasks: Vec::new(),
            shards: None,
        });
        let report = rec.take();
        assert_eq!(report.iterations, 2);
        assert_eq!(report.edge_maps.len(), 2);
        assert_eq!(report.vertex_maps.len(), 1);
        assert_eq!(
            report.observed_classes(),
            vec![DensityClass::Dense, DensityClass::Sparse]
        );
        assert_eq!(report.total_edges(), 6);
        // Taking drains the recorder.
        assert_eq!(rec.take().iterations, 0);
    }

    #[test]
    fn shard_metrics_aggregate_ops_and_latencies() {
        use crate::sharded::{ShardOpReport, ShardOpStats};
        let sink = ShardMetricsSink::new();
        let op = ShardOpReport {
            shards: vec![
                ShardOpStats {
                    queue_depth: 4,
                    tasks_run: 4,
                    tasks_stolen: 0,
                    busy_nanos: 50,
                },
                ShardOpStats {
                    queue_depth: 2,
                    tasks_run: 2,
                    tasks_stolen: 1,
                    busy_nanos: 100,
                },
            ],
            wall_nanos: 100,
        };
        sink.record_shard_op(&op);
        sink.record_shard_op(&op);
        for nanos in [10, 30, 20, 90, 40] {
            sink.record_request(nanos);
        }
        let m = sink.snapshot();
        assert_eq!(m.ops, 2);
        assert_eq!(m.shards.len(), 2);
        assert_eq!(m.shards[0].tasks_run, 8);
        assert_eq!(m.shards[1].tasks_stolen, 2);
        assert_eq!(m.mean_queue_depth(0), 4.0);
        assert_eq!(m.shards[0].queue_depth_max, 4);
        assert!((m.shards[1].occupancy() - 1.0).abs() < 1e-12);
        assert_eq!(m.latency_quantile(0.5), Some(30));
        assert_eq!(m.latency_quantile(1.0), Some(90));
        assert_eq!(ShardMetrics::default().latency_quantile(0.5), None);
    }

    #[test]
    fn serving_counters_accumulate() {
        let sink = ShardMetricsSink::new();
        sink.record_admission(true, 0);
        sink.record_admission(true, 3);
        sink.record_admission(false, 7);
        sink.record_batch(5, 2);
        sink.record_batch(1, 1);
        sink.record_request_kind("label", 10);
        sink.record_request_kind("bfs", 40);
        sink.record_request_kind("label", 30);
        sink.record_request_kind("label", 20);
        let m = sink.snapshot();
        assert_eq!(m.admitted, 2);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.queue_depth_max, 7);
        assert_eq!(m.queue_depth_samples, 3);
        assert!((m.mean_admission_depth() - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.batches, 2);
        assert_eq!(m.batched_requests, 6);
        assert_eq!(m.batch_executions, 3);
        // Kind series feed both the per-kind and the aggregate quantiles,
        // and epoch age counts every request.
        assert_eq!(m.request_nanos.len(), 4);
        assert_eq!(m.epoch_age, 4);
        assert_eq!(m.kind_quantile("label", 0.5), Some(20));
        assert_eq!(m.kind_quantile("label", 1.0), Some(30));
        assert_eq!(m.kind_quantile("bfs", 0.5), Some(40));
        assert_eq!(m.kind_quantile("pr", 0.5), None);
        assert_eq!(m.latency_quantile(1.0), Some(40));
    }

    #[test]
    fn empty_series_quantiles_are_none_not_bogus() {
        // A served run that handled only mutations records no query-kind
        // latencies, never compacts, and runs no supersteps: every
        // quantile over an empty series must be `None` (rendered `-` by
        // the summary), never a fabricated number.
        let sink = ShardMetricsSink::new();
        sink.record_request_kind("add", 10);
        sink.record_request_kind("del", 20);
        sink.record_log_stall(3);
        let m = sink.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(m.kind_quantile("pr", q), None);
            assert_eq!(m.kind_quantile("bfs", q), None);
            assert_eq!(m.kind_quantile("label", q), None);
            assert_eq!(m.compaction_quantile(q), None);
            assert_eq!(m.superstep_quantile(q), None);
        }
        assert_eq!(ShardMetrics::default().latency_quantile(0.5), None);
        assert_eq!(ShardMetrics::default().kind_quantile("pr", 0.5), None);
    }

    #[test]
    fn compaction_resets_epoch_age() {
        let sink = ShardMetricsSink::new();
        sink.record_request(5);
        sink.record_request(7);
        assert_eq!(sink.snapshot().epoch_age, 2);
        sink.record_compaction(3, false, 100);
        let m = sink.snapshot();
        assert_eq!(m.compactions, 1);
        assert_eq!(m.reorders, 0);
        assert_eq!(m.epoch, 3);
        assert_eq!(m.epoch_age, 0);
        sink.record_request(9);
        sink.record_compaction(4, true, 300);
        let m = sink.snapshot();
        assert_eq!(m.compactions, 2);
        assert_eq!(m.reorders, 1);
        assert_eq!(m.epoch, 4);
        // Compaction latencies form their own quantile series.
        assert_eq!(m.compaction_nanos, vec![100, 300]);
        assert_eq!(m.compaction_quantile(0.5), Some(100));
        assert_eq!(m.compaction_quantile(1.0), Some(300));
        assert_eq!(ShardMetrics::default().compaction_quantile(0.5), None);
    }

    #[test]
    fn epoch_age_counts_each_request_exactly_once() {
        // Mixed traffic: kind-tagged requests (the serving path) and
        // untagged ones (the trait path) must each age the epoch by one
        // — the age is "requests since last compaction", not "record
        // calls summed across paths".
        let sink = ShardMetricsSink::new();
        sink.record_request_kind("label", 10);
        sink.record_request(20);
        sink.record_request_kind("bfs", 30);
        sink.record_request(40);
        let m = sink.snapshot();
        assert_eq!(m.epoch_age, 4);
        assert_eq!(m.request_nanos.len(), 4);
        sink.record_compaction(1, false, 50);
        sink.record_request_kind("label", 5);
        assert_eq!(sink.snapshot().epoch_age, 1);
    }

    #[test]
    fn log_depth_and_stalls_accumulate() {
        let sink = ShardMetricsSink::new();
        sink.record_log_depth(3);
        sink.record_log_depth(1);
        sink.record_log_stall(8);
        sink.record_log_stall(8);
        let m = sink.snapshot();
        assert_eq!(m.log_depth_max, 8);
        assert_eq!(m.log_stalls, 2);
    }
}
