//! Instrumentation: the pluggable sink every [`crate::Executor`] feeds,
//! and the standard [`RunReport`] accumulator built on top of it.
//!
//! Before the executor existed, every algorithm hand-rolled the same
//! bookkeeping — compute the input frontier's density class, call the
//! free `edge_map`, push `(class, report)` into a `RunReport`, repeat for
//! `vertex_map`. The executor now does that once, centrally: each
//! `edge_map`/`vertex_map` call is forwarded to every attached
//! [`InstrumentSink`]. [`Recorder`] is the default sink; algorithms take
//! a recorded clone of their caller's executor and hand back
//! `recorder.take()` as their [`RunReport`].

use crate::edge_map::EdgeMapReport;
use crate::frontier::DensityClass;
use crate::profile::Scheduling;
use crate::schedule::{simulate, MakespanReport};
use crate::vertex_map::VertexMapReport;
use std::sync::Mutex;

/// Receives every engine operation an [`crate::Executor`] runs.
///
/// Implementations must be thread-safe (`Send + Sync`): one executor may
/// be shared across threads, and recording happens after each operation's
/// parallel section completes.
pub trait InstrumentSink: Send + Sync {
    /// One `edge_map` completed; `class` is the *input* frontier's
    /// density class (Table II's "F" column).
    fn record_edge_map(&self, class: DensityClass, report: &EdgeMapReport);

    /// One `vertex_map` completed.
    fn record_vertex_map(&self, report: &VertexMapReport);
}

/// The default sink: accumulates operations into a [`RunReport`].
#[derive(Debug, Default)]
pub struct Recorder {
    log: Mutex<RunReport>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Takes the accumulated report, leaving the recorder empty.
    pub fn take(&self) -> RunReport {
        std::mem::take(&mut self.log.lock().unwrap())
    }
}

impl InstrumentSink for Recorder {
    fn record_edge_map(&self, class: DensityClass, report: &EdgeMapReport) {
        self.log.lock().unwrap().push_edge(class, report.clone());
    }

    fn record_vertex_map(&self, report: &VertexMapReport) {
        self.log.lock().unwrap().push_vertex(report.clone());
    }
}

/// Everything measured while running one algorithm on one prepared graph.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Number of edgemap rounds executed.
    pub iterations: usize,
    /// One report per `edge_map` call, in execution order.
    pub edge_maps: Vec<EdgeMapReport>,
    /// One report per `vertex_map` call.
    pub vertex_maps: Vec<VertexMapReport>,
    /// Density class of the input frontier of each edgemap (Table II's
    /// "F" column).
    pub frontier_classes: Vec<DensityClass>,
}

impl RunReport {
    /// Records one edgemap round.
    pub fn push_edge(&mut self, class: DensityClass, report: EdgeMapReport) {
        self.iterations += 1;
        self.frontier_classes.push(class);
        self.edge_maps.push(report);
    }

    /// Records one vertexmap pass.
    pub fn push_vertex(&mut self, report: VertexMapReport) {
        self.vertex_maps.push(report);
    }

    /// Total sequential time across all operations (nanoseconds).
    pub fn sequential_nanos(&self) -> u64 {
        self.edge_maps.iter().map(|r| r.total_nanos()).sum::<u64>()
            + self
                .vertex_maps
                .iter()
                .map(|r| r.total_nanos())
                .sum::<u64>()
    }

    /// Simulated parallel runtime on `threads` workers under `scheduling`:
    /// the sum over operations of each operation's makespan (operations
    /// are separated by barriers in all three systems).
    pub fn simulated_nanos(&self, threads: usize, scheduling: Scheduling) -> f64 {
        let em: f64 = self
            .edge_maps
            .iter()
            .map(|r| r.makespan(threads, scheduling).makespan)
            .sum();
        let vm: f64 = self
            .vertex_maps
            .iter()
            .map(|r| {
                let costs: Vec<f64> = r.tasks.iter().map(|t| t.nanos as f64).collect();
                simulate(&costs, threads, scheduling).makespan
            })
            .sum();
        em + vm
    }

    /// Deterministic work-model variant of [`RunReport::simulated_nanos`]
    /// (task cost = edges + destination vertices, the paper's joint cost
    /// drivers); noise-free, used by tests.
    pub fn simulated_work(&self, threads: usize, scheduling: Scheduling) -> f64 {
        let em: f64 = self
            .edge_maps
            .iter()
            .map(|r| r.makespan_by_work(threads, scheduling).makespan)
            .sum();
        let vm: f64 = self
            .vertex_maps
            .iter()
            .map(|r| {
                let costs: Vec<f64> = r.tasks.iter().map(|t| t.vertices as f64).collect();
                simulate(&costs, threads, scheduling).makespan
            })
            .sum();
        em + vm
    }

    /// Total edges examined over the whole run.
    pub fn total_edges(&self) -> u64 {
        self.edge_maps.iter().map(|r| r.total_edges()).sum()
    }

    /// Distinct density classes observed, in first-seen order — the
    /// "d/m/s" annotations of Table II.
    pub fn observed_classes(&self) -> Vec<DensityClass> {
        let mut seen = Vec::new();
        for &c in &self.frontier_classes {
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        seen
    }

    /// Aggregated makespan report of the whole run under measured costs.
    pub fn aggregate_makespan(&self, threads: usize, scheduling: Scheduling) -> MakespanReport {
        let mut per_thread = vec![0.0; threads];
        for r in &self.edge_maps {
            let m = r.makespan(threads, scheduling);
            for (t, c) in m.per_thread.iter().enumerate() {
                per_thread[t] += c;
            }
        }
        let makespan = self.simulated_nanos(threads, scheduling);
        let total_work = per_thread.iter().sum();
        MakespanReport {
            per_thread,
            makespan,
            total_work,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_map::{TaskStats, Traversal};

    fn em(nanos: &[u64]) -> EdgeMapReport {
        EdgeMapReport {
            traversal: Traversal::DensePull,
            tasks: nanos
                .iter()
                .map(|&n| TaskStats {
                    nanos: n,
                    edges: n,
                    vertices: 1,
                    socket: 0,
                })
                .collect(),
            output_size: 0,
        }
    }

    #[test]
    fn empty_report_is_zero() {
        let r = RunReport::default();
        assert_eq!(r.sequential_nanos(), 0);
        assert_eq!(r.total_edges(), 0);
        assert_eq!(r.simulated_work(48, Scheduling::Static), 0.0);
        assert!(r.observed_classes().is_empty());
    }

    #[test]
    fn recorder_accumulates_and_takes() {
        let rec = Recorder::new();
        rec.record_edge_map(DensityClass::Dense, &em(&[1, 2]));
        rec.record_edge_map(DensityClass::Sparse, &em(&[3]));
        rec.record_vertex_map(&VertexMapReport { tasks: Vec::new() });
        let report = rec.take();
        assert_eq!(report.iterations, 2);
        assert_eq!(report.edge_maps.len(), 2);
        assert_eq!(report.vertex_maps.len(), 1);
        assert_eq!(
            report.observed_classes(),
            vec![DensityClass::Dense, DensityClass::Sparse]
        );
        assert_eq!(report.total_edges(), 6);
        // Taking drains the recorder.
        assert_eq!(rec.take().iterations, 0);
    }
}
