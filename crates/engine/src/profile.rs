//! System profiles: the load-balance-relevant design axes of the three
//! frameworks the paper evaluates (§IV), captured as engine configuration.
//!
//! | axis | Ligra | Polymer | GraphGrind |
//! |---|---|---|---|
//! | partitions | none (implicit Cilk chunks) | 4 (one per socket) | 384 |
//! | scheduling | dynamic (work stealing) | static | static (8 parts/thread) |
//! | dense layout | CSC pull | CSC pull | COO (Hilbert or CSR order) |
//! | sparse layout | global CSR push | partitioned sub-CSR | partitioned sub-CSR |

use vebo_partition::numa::NumaTopology;
use vebo_partition::EdgeOrder;

/// Which framework a profile models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Ligra: dynamic scheduling, no explicit partitioning.
    LigraLike,
    /// Polymer: static scheduling, one partition per NUMA socket.
    PolymerLike,
    /// GraphGrind: static socket binding, 384 partitions, COO dense mode.
    GraphGrindLike,
}

impl SystemKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::LigraLike => "Ligra",
            SystemKind::PolymerLike => "Polymer",
            SystemKind::GraphGrindLike => "GraphGrind",
        }
    }
}

/// Scheduling policy of the simulated machine.
///
/// The [`crate::Executor`] consumes this twice: makespan simulation
/// replays measured task costs under the policy, and NUMA placement
/// engages only for [`Scheduling::Static`] profiles (work stealing
/// defeats static socket binding).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduling {
    /// Work-stealing: tasks go to the least-loaded thread greedily
    /// (models Cilk's dynamic behaviour).
    Dynamic,
    /// Contiguous static blocks: task `t` runs on thread
    /// `t * threads / tasks` (models Polymer/GraphGrind binding).
    Static,
}

/// Dense-iteration memory layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DenseLayout {
    /// Pull over the CSC, one destination at a time (Ligra/Polymer).
    CscPull,
    /// Stream the partition's COO edges in the given order (GraphGrind).
    Coo(EdgeOrder),
}

/// Full engine configuration for one simulated system.
#[derive(Clone, Copy, Debug)]
pub struct SystemProfile {
    /// Which framework this profile models.
    pub kind: SystemKind,
    /// Task granularity: partitions for Polymer/GraphGrind; implicit
    /// loop-chunk count for Ligra.
    pub num_partitions: usize,
    /// Scheduling policy of the simulated parallel loops.
    pub scheduling: Scheduling,
    /// Data layout used for dense edgemap traversal.
    pub dense_layout: DenseLayout,
    /// Whether sparse traversal uses per-partition sub-CSRs (Polymer /
    /// GraphGrind) or a global push (Ligra).
    pub partitioned_sparse: bool,
    /// Simulated machine topology (paper: 4 sockets x 12 threads).
    pub topology: NumaTopology,
}

impl SystemProfile {
    /// Ligra-like: no explicit partitioning, dynamic scheduling, CSC pull.
    /// `num_partitions` models Cilk's recursive loop chunking — fine
    /// grained (64 chunks per thread) so work stealing can compensate for
    /// imbalance, which is why the paper measures Ligra as the least
    /// ordering-sensitive system.
    pub fn ligra_like() -> SystemProfile {
        let topology = NumaTopology::default();
        SystemProfile {
            kind: SystemKind::LigraLike,
            num_partitions: topology.num_threads * 64,
            scheduling: Scheduling::Dynamic,
            dense_layout: DenseLayout::CscPull,
            partitioned_sparse: false,
            topology,
        }
    }

    /// Polymer-like: one partition per NUMA socket, static scheduling,
    /// CSC pull. (The engine subdivides each partition among the socket's
    /// threads; see `PreparedGraph::task_bounds`.)
    pub fn polymer_like() -> SystemProfile {
        let topology = NumaTopology::default();
        SystemProfile {
            kind: SystemKind::PolymerLike,
            num_partitions: topology.num_sockets,
            scheduling: Scheduling::Static,
            dense_layout: DenseLayout::CscPull,
            partitioned_sparse: true,
            topology,
        }
    }

    /// GraphGrind-like: 384 partitions, static contiguous thread binding,
    /// COO dense traversal in the given edge order (the paper's default is
    /// Hilbert; VEBO switches it to CSR order, §V-G).
    pub fn graphgrind_like(edge_order: EdgeOrder) -> SystemProfile {
        let topology = NumaTopology::default();
        SystemProfile {
            kind: SystemKind::GraphGrindLike,
            num_partitions: 384,
            scheduling: Scheduling::Static,
            dense_layout: DenseLayout::Coo(edge_order),
            partitioned_sparse: true,
            topology,
        }
    }

    /// Overrides the partition count (e.g. for partition-count sweeps).
    pub fn with_partitions(mut self, p: usize) -> SystemProfile {
        assert!(p >= 1);
        self.num_partitions = p;
        self
    }

    /// Overrides the simulated topology.
    pub fn with_topology(mut self, topology: NumaTopology) -> SystemProfile {
        self.topology = topology;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_configuration() {
        let l = SystemProfile::ligra_like();
        assert_eq!(l.scheduling, Scheduling::Dynamic);
        assert!(!l.partitioned_sparse);
        assert_eq!(l.num_partitions, 3072); // 48 threads x 64 chunks

        let p = SystemProfile::polymer_like();
        assert_eq!(p.num_partitions, 4);
        assert_eq!(p.scheduling, Scheduling::Static);
        assert_eq!(p.dense_layout, DenseLayout::CscPull);

        let g = SystemProfile::graphgrind_like(EdgeOrder::Hilbert);
        assert_eq!(g.num_partitions, 384);
        assert_eq!(g.dense_layout, DenseLayout::Coo(EdgeOrder::Hilbert));
        assert_eq!(g.scheduling, Scheduling::Static);
    }

    #[test]
    fn names() {
        assert_eq!(SystemKind::LigraLike.name(), "Ligra");
        assert_eq!(SystemKind::PolymerLike.name(), "Polymer");
        assert_eq!(SystemKind::GraphGrindLike.name(), "GraphGrind");
    }

    #[test]
    fn overrides() {
        let p = SystemProfile::graphgrind_like(EdgeOrder::Csr).with_partitions(64);
        assert_eq!(p.num_partitions, 64);
    }
}
