//! Frontiers (vertex subsets), with the dense/sparse dual representation
//! and automatic switching all three frameworks in the paper implement.

use crate::shared::AtomicBitset;
use vebo_graph::{Graph, VertexId};

/// A subset of the vertices, stored sparse (id list) or dense (bitmap).
#[derive(Clone, Debug)]
pub enum Frontier {
    /// Sorted list of active vertex ids.
    Sparse {
        /// Total vertices in the graph.
        num_vertices: usize,
        /// Active vertex ids, sorted ascending.
        vertices: Vec<VertexId>,
    },
    /// Bitmap plus population count.
    Dense {
        /// One bit per vertex, 64 per word.
        bits: Vec<u64>,
        /// Number of set bits.
        count: usize,
        /// Total vertices in the graph.
        num_vertices: usize,
    },
}

/// Density classes as used in Table II ("d", "m", "s").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DensityClass {
    /// Most vertices active ("d").
    Dense,
    /// A moderate share active ("m").
    MediumDense,
    /// Few vertices active ("s").
    Sparse,
}

impl DensityClass {
    /// Single-letter code as printed in Table II.
    pub fn code(self) -> &'static str {
        match self {
            DensityClass::Dense => "d",
            DensityClass::MediumDense => "m",
            DensityClass::Sparse => "s",
        }
    }
}

impl Frontier {
    /// The empty frontier.
    pub fn empty(num_vertices: usize) -> Frontier {
        Frontier::Sparse {
            num_vertices,
            vertices: Vec::new(),
        }
    }

    /// A single active vertex.
    pub fn single(num_vertices: usize, v: VertexId) -> Frontier {
        Frontier::Sparse {
            num_vertices,
            vertices: vec![v],
        }
    }

    /// All vertices active (dense).
    pub fn all(num_vertices: usize) -> Frontier {
        let mut bits = vec![u64::MAX; num_vertices.div_ceil(64)];
        trim_tail(&mut bits, num_vertices);
        Frontier::Dense {
            bits,
            count: num_vertices,
            num_vertices,
        }
    }

    /// From an explicit vertex list (sorted + deduped internally).
    pub fn from_vertices(num_vertices: usize, mut vertices: Vec<VertexId>) -> Frontier {
        vertices.sort_unstable();
        vertices.dedup();
        debug_assert!(vertices.iter().all(|&v| (v as usize) < num_vertices));
        Frontier::Sparse {
            num_vertices,
            vertices,
        }
    }

    /// A sparse frontier from a list the caller guarantees is already
    /// sorted ascending and duplicate-free — skips the re-sort of
    /// [`Frontier::from_vertices`]. Callers that maintain sorted active
    /// sets across rounds (e.g. the cluster runtime's per-superstep
    /// frontiers) use this on their hot path; the invariant is checked
    /// in debug builds.
    pub fn from_sorted_vertices(num_vertices: usize, vertices: Vec<VertexId>) -> Frontier {
        debug_assert!(
            vertices.windows(2).all(|w| w[0] < w[1]),
            "vertices must be strictly ascending"
        );
        debug_assert!(vertices.iter().all(|&v| (v as usize) < num_vertices));
        Frontier::Sparse {
            num_vertices,
            vertices,
        }
    }

    /// From a finished next-frontier bitset.
    pub fn from_bitset(bits: AtomicBitset) -> Frontier {
        let num_vertices = bits.len();
        let count = bits.count();
        Frontier::Dense {
            bits: bits.into_words(),
            count,
            num_vertices,
        }
    }

    /// Number of active vertices.
    pub fn len(&self) -> usize {
        match self {
            Frontier::Sparse { vertices, .. } => vertices.len(),
            Frontier::Dense { count, .. } => *count,
        }
    }

    /// `true` when no vertex is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total vertex-space size `n`.
    pub fn num_vertices(&self) -> usize {
        match self {
            Frontier::Sparse { num_vertices, .. } => *num_vertices,
            Frontier::Dense { num_vertices, .. } => *num_vertices,
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        match self {
            Frontier::Sparse { vertices, .. } => vertices.binary_search(&v).is_ok(),
            Frontier::Dense { bits, .. } => bits[v as usize >> 6] & (1 << (v as usize & 63)) != 0,
        }
    }

    /// Sum of out-degrees of active vertices — the second term of Ligra's
    /// density heuristic.
    pub fn active_out_degree(&self, g: &Graph) -> u64 {
        match self {
            Frontier::Sparse { vertices, .. } => {
                vertices.iter().map(|&v| g.out_degree(v) as u64).sum()
            }
            Frontier::Dense { .. } => self.iter_active().map(|v| g.out_degree(v) as u64).sum(),
        }
    }

    /// Ligra's direction heuristic: dense when
    /// `|F| + outdeg(F) > m / threshold_den` (threshold_den = 20).
    pub fn is_dense_for(&self, g: &Graph, threshold_den: usize) -> bool {
        let work = self.len() as u64 + self.active_out_degree(g);
        work > (g.num_edges() / threshold_den) as u64
    }

    /// Density class for Table II: dense if active vertices exceed n/2,
    /// sparse if the work heuristic stays below m/20, medium otherwise.
    pub fn density_class(&self, g: &Graph) -> DensityClass {
        if self.len() * 2 >= g.num_vertices() {
            DensityClass::Dense
        } else if !self.is_dense_for(g, 20) {
            DensityClass::Sparse
        } else {
            DensityClass::MediumDense
        }
    }

    /// Materializes the dense bitmap (no-op when already dense).
    pub fn to_dense(&self) -> Frontier {
        match self {
            Frontier::Dense { .. } => self.clone(),
            Frontier::Sparse {
                num_vertices,
                vertices,
            } => {
                let mut bits = vec![0u64; num_vertices.div_ceil(64)];
                for &v in vertices {
                    bits[v as usize >> 6] |= 1 << (v as usize & 63);
                }
                Frontier::Dense {
                    bits,
                    count: vertices.len(),
                    num_vertices: *num_vertices,
                }
            }
        }
    }

    /// Materializes the sorted id list (no-op when already sparse).
    pub fn to_sparse(&self) -> Frontier {
        match self {
            Frontier::Sparse { .. } => self.clone(),
            Frontier::Dense {
                bits, num_vertices, ..
            } => {
                let mut vertices = Vec::with_capacity(self.len());
                for (w, &word) in bits.iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        let b = word.trailing_zeros() as usize;
                        vertices.push((w * 64 + b) as VertexId);
                        word &= word - 1;
                    }
                }
                Frontier::Sparse {
                    num_vertices: *num_vertices,
                    vertices,
                }
            }
        }
    }

    /// Iterates active vertices in ascending id order.
    pub fn iter_active(&self) -> Box<dyn Iterator<Item = VertexId> + '_> {
        match self {
            Frontier::Sparse { vertices, .. } => Box::new(vertices.iter().copied()),
            Frontier::Dense { bits, .. } => {
                Box::new(bits.iter().enumerate().flat_map(|(w, &word)| {
                    let mut out = Vec::with_capacity(word.count_ones() as usize);
                    let mut word = word;
                    while word != 0 {
                        let b = word.trailing_zeros() as usize;
                        out.push((w * 64 + b) as VertexId);
                        word &= word - 1;
                    }
                    out
                }))
            }
        }
    }

    /// Dense word view (panics on sparse frontiers; call `to_dense` first).
    pub fn words(&self) -> &[u64] {
        match self {
            Frontier::Dense { bits, .. } => bits,
            Frontier::Sparse { .. } => panic!("frontier is sparse; call to_dense() first"),
        }
    }
}

fn trim_tail(bits: &mut [u64], n: usize) {
    let tail = n & 63;
    if tail != 0 {
        if let Some(last) = bits.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::Dataset;

    #[test]
    fn empty_and_all() {
        let e = Frontier::empty(100);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let a = Frontier::all(100);
        assert_eq!(a.len(), 100);
        assert!(a.contains(0) && a.contains(99));
    }

    #[test]
    fn all_trims_tail_bits() {
        let a = Frontier::all(70);
        assert_eq!(a.len(), 70);
        // Count of raw bits must also be 70 (no stray tail bits).
        let total: u32 = a.words().iter().map(|w| w.count_ones()).sum();
        assert_eq!(total, 70);
    }

    #[test]
    fn sparse_dense_roundtrip() {
        let f = Frontier::from_vertices(200, vec![5, 64, 63, 128, 199, 5]);
        assert_eq!(f.len(), 5); // dedup
        let d = f.to_dense();
        assert_eq!(d.len(), 5);
        let s = d.to_sparse();
        let ids: Vec<VertexId> = s.iter_active().collect();
        assert_eq!(ids, vec![5, 63, 64, 128, 199]);
    }

    #[test]
    fn contains_agrees_between_representations() {
        let f = Frontier::from_vertices(128, vec![1, 2, 70]);
        let d = f.to_dense();
        for v in 0..128 {
            assert_eq!(f.contains(v), d.contains(v), "v = {v}");
        }
    }

    #[test]
    fn active_out_degree_sums() {
        let g = vebo_graph::Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3)], true);
        let f = Frontier::from_vertices(4, vec![0, 1]);
        assert_eq!(f.active_out_degree(&g), 3);
        assert_eq!(f.to_dense().active_out_degree(&g), 3);
    }

    #[test]
    fn ligra_density_heuristic() {
        let g = Dataset::YahooLike.build(0.05);
        let n = g.num_vertices();
        assert!(Frontier::all(n).is_dense_for(&g, 20));
        assert!(!Frontier::single(n, 0).is_dense_for(&g, 20));
    }

    #[test]
    fn density_classes() {
        let g = Dataset::YahooLike.build(0.05);
        let n = g.num_vertices();
        assert_eq!(Frontier::all(n).density_class(&g), DensityClass::Dense);
        // An isolated-ish single vertex is sparse.
        let v = g.vertices().min_by_key(|&v| g.out_degree(v)).unwrap();
        assert_eq!(
            Frontier::single(n, v).density_class(&g),
            DensityClass::Sparse
        );
        assert_eq!(DensityClass::MediumDense.code(), "m");
    }

    #[test]
    fn from_bitset_counts() {
        let b = AtomicBitset::new(80);
        b.set(3);
        b.set(79);
        let f = Frontier::from_bitset(b);
        assert_eq!(f.len(), 2);
        assert!(f.contains(3) && f.contains(79));
    }

    #[test]
    fn iter_active_on_dense_matches_sparse() {
        let f = Frontier::from_vertices(300, vec![0, 64, 65, 255, 299]);
        let d = f.to_dense();
        let a: Vec<VertexId> = f.iter_active().collect();
        let b: Vec<VertexId> = d.iter_active().collect();
        assert_eq!(a, b);
    }
}
