//! # vebo-engine
//!
//! A shared-memory graph processing engine in the Ligra mold, rebuilt from
//! scratch for the VEBO reproduction. One engine, three **system
//! profiles** capturing the load-balance-relevant design axes of the three
//! frameworks the paper evaluates (Ligra, Polymer, GraphGrind — §IV):
//! partition count, scheduling policy, and dense-iteration layout.
//!
//! The container this reproduction runs in has a single hardware thread,
//! so parallel wall-clock cannot be observed directly; instead, every
//! `edge_map`/`vertex_map` measures per-task work and a deterministic
//! [`schedule`] simulator computes the 48-thread makespan under each
//! profile's scheduling policy (static vs work-stealing). Rayon-parallel
//! execution paths are provided and tested for equivalence.
//!
//! ```
//! use vebo_engine::{edge_map, EdgeMapOptions, Frontier, PreparedGraph, SystemProfile};
//! use vebo_engine::ops::EdgeOp;
//! use std::sync::atomic::{AtomicU32, Ordering};
//!
//! struct Hops(Vec<AtomicU32>);
//! impl EdgeOp for Hops {
//!     fn update(&self, _s: u32, d: u32, _w: f32) -> bool {
//!         self.0[d as usize].store(1, Ordering::Relaxed);
//!         true
//!     }
//!     fn update_atomic(&self, s: u32, d: u32, w: f32) -> bool { self.update(s, d, w) }
//!     fn cond(&self, d: u32) -> bool { self.0[d as usize].load(Ordering::Relaxed) == 0 }
//! }
//!
//! let g = vebo_graph::Dataset::YahooLike.build(0.05);
//! let n = g.num_vertices();
//! let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
//! let op = Hops((0..n).map(|_| AtomicU32::new(0)).collect());
//! let start = Frontier::single(n, 0);
//! let (next, report) = edge_map(&pg, &start, &op, &EdgeMapOptions::default());
//! assert_eq!(next.len(), report.output_size);
//! ```

#![warn(missing_docs)]

pub mod edge_map;
pub mod frontier;
pub mod ops;
pub mod prepared;
pub mod profile;
pub mod schedule;
pub mod shared;
pub mod vertex_map;

pub use edge_map::{edge_map, EdgeMapOptions, EdgeMapReport, TaskStats, Traversal};
pub use frontier::{DensityClass, Frontier};
pub use ops::EdgeOp;
pub use prepared::{subdivide_for_threads, PreparedGraph};
pub use profile::{DenseLayout, Scheduling, SystemKind, SystemProfile};
pub use schedule::{simulate, MakespanReport};
pub use vertex_map::{vertex_map, vertex_map_all, VertexMapReport};
