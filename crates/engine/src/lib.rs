//! # vebo-engine
//!
//! A shared-memory graph processing engine in the Ligra mold, rebuilt from
//! scratch for the VEBO reproduction. One engine, three **system
//! profiles** capturing the load-balance-relevant design axes of the three
//! frameworks the paper evaluates (Ligra, Polymer, GraphGrind — §IV):
//! partition count, scheduling policy, and dense-iteration layout.
//!
//! Execution is organized around one object, the [`Executor`]: it owns
//! the parallelism mode, the NUMA placement plan binding each task to
//! the socket that owns its partition's arrays, the scheduling policy
//! used for makespan simulation, and the instrumentation sinks that
//! accumulate [`RunReport`]s. Graphs are prepared for a profile through
//! [`PreparedGraph::builder`], which also routes VEBO's exact phase-3
//! boundaries to the right layout per profile.
//!
//! The container this reproduction runs in has a single hardware thread,
//! so parallel wall-clock cannot be observed directly; instead, every
//! `edge_map`/`vertex_map` measures per-task work and a deterministic
//! [`schedule`] simulator computes the 48-thread makespan under each
//! profile's scheduling policy (static vs work-stealing). Two concurrent
//! backends are provided and conformance-tested for equivalence:
//! rayon-parallel execution ([`ExecMode::Parallel`]) for one-shot batch
//! jobs, and the [`sharded`] serving backend ([`ExecMode::Sharded`]) —
//! long-lived per-shard worker threads with work-stealing — for
//! request loops firing many small operations (see `vebo-serve`).
//!
//! ```
//! use vebo_engine::{Executor, Frontier, PreparedGraph, SystemProfile};
//! use vebo_engine::ops::EdgeOp;
//! use std::sync::atomic::{AtomicU32, Ordering};
//!
//! struct Hops(Vec<AtomicU32>);
//! impl EdgeOp for Hops {
//!     fn update(&self, _s: u32, d: u32, _w: f32) -> bool {
//!         self.0[d as usize].store(1, Ordering::Relaxed);
//!         true
//!     }
//!     fn update_atomic(&self, s: u32, d: u32, w: f32) -> bool { self.update(s, d, w) }
//!     fn cond(&self, d: u32) -> bool { self.0[d as usize].load(Ordering::Relaxed) == 0 }
//! }
//!
//! let g = vebo_graph::Dataset::YahooLike.build(0.05);
//! let n = g.num_vertices();
//! let profile = SystemProfile::polymer_like();
//! let exec = Executor::new(profile);
//! let pg = PreparedGraph::builder(g).profile(profile).build().unwrap();
//! let op = Hops((0..n).map(|_| AtomicU32::new(0)).collect());
//! let start = Frontier::single(n, 0);
//! let (next, report) = exec.edge_map(&pg, &start, &op);
//! assert_eq!(next.len(), report.output_size);
//! // Statically scheduled profiles place every task on a socket.
//! let plan = exec.placement(pg.num_tasks()).unwrap();
//! assert_eq!(plan.num_tasks(), pg.num_tasks());
//! ```

#![warn(missing_docs)]

pub mod edge_map;
pub mod executor;
pub mod frontier;
pub mod instrument;
pub mod ops;
pub mod prepared;
pub mod profile;
pub mod schedule;
pub mod sharded;
pub mod shared;
pub mod vertex_map;

pub use edge_map::{EdgeMapReport, TaskStats, Traversal};
pub use executor::{Direction, ExecMode, Executor};
pub use frontier::{DensityClass, Frontier};
pub use instrument::{
    InstrumentSink, KindLatency, Recorder, RunReport, ShardMetrics, ShardMetricsSink, ShardTotals,
};
pub use ops::EdgeOp;
pub use prepared::{subdivide_for_threads, PrepareError, PreparedGraph, PreparedGraphBuilder};
pub use profile::{DenseLayout, Scheduling, SystemKind, SystemProfile};
pub use schedule::{simulate, MakespanReport};
pub use sharded::{ShardOpReport, ShardOpStats, ShardedExecutor};
pub use vertex_map::VertexMapReport;
