//! `edge_map`: the central traversal primitive (Ligra's `EDGEMAP`), with
//! direction optimization and per-task work measurement.
//!
//! Four traversal modes cover the three systems' layouts:
//!
//! * [`Traversal::DensePull`] — backward over the CSC, one destination at
//!   a time with `cond` early exit (Ligra/Polymer dense);
//! * [`Traversal::DenseCoo`] — stream each partition's COO chunk
//!   (GraphGrind dense; edge order = CSR or Hilbert);
//! * [`Traversal::SparsePush`] — forward over the out-edges of active
//!   vertices with atomic updates (Ligra sparse);
//! * [`Traversal::SparsePartitioned`] — per-partition sub-CSR scan of the
//!   active list; destinations stay partition-local, so updates need no
//!   atomics and per-partition work equals the "active edges per
//!   partition" of Table IV (Polymer/GraphGrind sparse).
//!
//! Every call returns an [`EdgeMapReport`] with per-task durations and
//! work counts; the scheduling simulator turns those into the simulated
//! 48-thread makespan.
//!
//! The traversal kernels live here; execution policy (mode, NUMA
//! placement, scheduling, instrumentation) lives on [`crate::Executor`],
//! whose [`crate::Executor::edge_map`] is the public entry point. (The
//! free `edge_map` shim deprecated when the executor landed has been
//! removed after its one-release grace period.)
//!
//! Every kernel is storage-agnostic: the CSR/CSC arrays are hoisted once
//! per call as flat slices, so graphs whose sections are zero-copy views
//! of a memory-mapped `.vgr` file (see `vebo_graph::storage`) traverse
//! through exactly the same code as owned graphs, byte for byte.
//!
//! ## The neighbor-cursor seam
//!
//! The pull and push kernels are written once against a small private
//! `NeighborScan` trait and monomorphized per backing. The plain-CSR
//! implementation extracts each vertex's neighbor list as a *single*
//! bounds-checked slice (`&targets[offsets[v]..offsets[v + 1]]`) and
//! hands it to the kernel as one block, so the per-edge loop iterates a
//! slice directly — no per-edge bounds checks, and a shape the
//! autovectorizer can work with. The compressed implementation
//! ([`vebo_graph::CompressedCsr`]) decodes delta-varint neighbor lists
//! block-by-block ([`vebo_graph::DECODE_BLOCK`] targets at a time) into a
//! stack buffer and hands the kernel the same `(base, block)` view, so
//! update order, early-exit points, and per-task edge counts are
//! bit-identical across backings. Both implementations issue a software
//! prefetch for the next vertex's offset and neighbor-list cache lines
//! (x86-64 `prefetcht0`; a no-op elsewhere) ahead of the current scan.
//! The sharded worker path reuses these kernels through the internal
//! `TaskPolicy::run`, so it inherits the same treatment.
//!
//! ## The delta-overlay seam
//!
//! When the [`PreparedGraph`] handle describes a *dirty* epoch of a
//! [`vebo_graph::DynamicGraph`] (buffered edge mutations not yet
//! compacted), the kernels run against an `OverlayScan`: a third
//! `NeighborScan` implementation that serves the overlay's fully merged
//! neighbor list for dirty vertices and delegates untouched vertices to
//! the underlying plain or compressed scanner. Because the overlay
//! stores *merged* lists (not patches), the kernel sees each dirty
//! vertex as one ordinary sorted block — update order and early-exit
//! semantics are identical to a compacted graph, on every backend.
//!
//! Two routing rules keep the overlay correct: the COO and sub-CSR
//! layouts are materialized from the snapshot and know nothing about
//! deltas, so a dirty handle always traverses `DensePull` (over the
//! CSC overlay half) or `SparsePush` (over the CSR overlay half); and
//! overlays exist only for unweighted graphs (enforced by
//! `DynamicGraph::new`), so the `offsets`-based weight addressing is
//! never consulted for an overlay list.

use crate::executor::TaskPolicy;
use crate::frontier::Frontier;
use crate::ops::EdgeOp;
use crate::prepared::PreparedGraph;
use crate::profile::DenseLayout;
use crate::schedule::{simulate, MakespanReport};
use crate::sharded::ShardOpReport;
use crate::shared::AtomicBitset;
use vebo_graph::{CompressedCsr, NeighborDecoder, OverlayHalf, VertexId, DECODE_BLOCK};

/// Issues a best-effort read prefetch for `slice[idx]`'s cache line.
/// Out-of-range indices are ignored, so callers can speculate one vertex
/// ahead without edge-case guards. Compiles to `prefetcht0` on x86-64 and
/// to nothing elsewhere.
#[inline(always)]
fn prefetch_read<T>(slice: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if idx < slice.len() {
            // SAFETY: the index is in range and prefetch has no
            // architectural side effects — it is purely a cache hint.
            unsafe {
                use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch(slice.as_ptr().add(idx).cast::<i8>(), _MM_HINT_T0);
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slice, idx);
    }
}

/// The neighbor-cursor seam: visits one vertex's neighbor list as a
/// sequence of contiguous blocks. Kernels are generic over this trait and
/// monomorphize per backing, so the plain path keeps its single-slice
/// inner loop while the compressed path decodes on the fly.
trait NeighborScan: Sync {
    /// Calls `visit(base, block)` for successive chunks of `v`'s neighbor
    /// list, where `base` is the index of `block[0]` within the list (so
    /// `offsets[v] + base + k` addresses the weight of `block[k]`).
    /// `visit` returns `false` to stop the scan early (Ligra's `cond`
    /// exit); remaining blocks are then neither decoded nor counted.
    fn scan<F: FnMut(usize, &[VertexId]) -> bool>(&self, v: usize, visit: F);

    /// Hints the hardware prefetcher at vertex `v`'s offset entry and
    /// neighbor-list head, one vertex ahead of the scan.
    fn prefetch(&self, v: usize);
}

/// Plain-CSR scanner: one bounds check per vertex, then a borrowed slice.
struct PlainScan<'a> {
    offsets: &'a [usize],
    targets: &'a [VertexId],
}

impl NeighborScan for PlainScan<'_> {
    #[inline(always)]
    fn scan<F: FnMut(usize, &[VertexId]) -> bool>(&self, v: usize, mut visit: F) {
        // The whole list is one block: a single slice extraction hoists
        // the bounds checks out of the per-edge loop for every kernel.
        visit(0, &self.targets[self.offsets[v]..self.offsets[v + 1]]);
    }

    #[inline(always)]
    fn prefetch(&self, v: usize) {
        prefetch_read(self.offsets, v + 1);
        if let Some(&start) = self.offsets.get(v) {
            prefetch_read(self.targets, start);
        }
    }
}

/// Delta-varint scanner: decodes [`DECODE_BLOCK`]-target blocks into a
/// stack buffer; the kernel sees the same `(base, block)` shape as the
/// plain path.
struct CompressedScan<'a> {
    comp: &'a CompressedCsr,
}

impl NeighborScan for CompressedScan<'_> {
    #[inline(always)]
    fn scan<F: FnMut(usize, &[VertexId]) -> bool>(&self, v: usize, mut visit: F) {
        let mut dec = NeighborDecoder::new(self.comp, v);
        let mut buf = [0 as VertexId; DECODE_BLOCK];
        let mut base = 0usize;
        loop {
            let len = dec.next_block(&mut buf);
            if len == 0 {
                return;
            }
            if !visit(base, &buf[..len]) {
                return;
            }
            base += len;
        }
    }

    #[inline(always)]
    fn prefetch(&self, v: usize) {
        let byte_offsets = self.comp.byte_offsets();
        prefetch_read(byte_offsets, v + 1);
        if let Some(&start) = byte_offsets.get(v) {
            prefetch_read(self.comp.data(), start);
        }
    }
}

/// Delta-overlay scanner: serves the merged neighbor list for vertices
/// dirtied by buffered mutations, delegates the rest to the snapshot
/// scanner (plain or compressed). The merged list arrives as a single
/// sorted block, indistinguishable from a compacted graph's.
struct OverlayScan<'a, S> {
    inner: S,
    half: &'a OverlayHalf,
}

impl<S: NeighborScan> NeighborScan for OverlayScan<'_, S> {
    #[inline(always)]
    fn scan<F: FnMut(usize, &[VertexId]) -> bool>(&self, v: usize, mut visit: F) {
        match self.half.merged(v as VertexId) {
            Some(list) => {
                visit(0, list);
            }
            None => self.inner.scan(v, visit),
        }
    }

    #[inline(always)]
    fn prefetch(&self, v: usize) {
        // Dirty vertices are rare; hinting the snapshot arrays is the
        // right speculation either way.
        self.inner.prefetch(v);
    }
}

/// Which traversal `edge_map` chose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Traversal {
    /// Dense backward/pull over the CSC (Ligra/Polymer dense mode).
    DensePull,
    /// Dense streaming over per-partition COO chunks (GraphGrind).
    DenseCoo,
    /// Sparse forward/push over active sources with atomics.
    SparsePush,
    /// Sparse pull over per-partition sub-CSRs.
    SparsePartitioned,
}

impl Traversal {
    /// Whether this is a dense (backward) traversal — the "B" column of
    /// Table II.
    pub fn is_dense(self) -> bool {
        matches!(self, Traversal::DensePull | Traversal::DenseCoo)
    }
}

/// Per-task measurement: wall time, edges examined, and destination
/// vertices covered. Both work terms matter: the paper's core observation
/// is that partition processing time depends on edges *and* unique
/// destinations (§II), so the deterministic work model charges both.
#[derive(Clone, Copy, Debug, Default)]
pub struct TaskStats {
    /// Measured wall-clock nanoseconds of the task.
    pub nanos: u64,
    /// Edges traversed by the task.
    pub edges: u64,
    /// Destination vertices touched by the task.
    pub vertices: u64,
    /// Socket the task was placed on (0 when the executor ran without a
    /// NUMA placement plan, e.g. dynamically scheduled profiles).
    pub socket: u32,
}

/// Result of one `edge_map` invocation.
#[derive(Clone, Debug)]
pub struct EdgeMapReport {
    /// Traversal mode the direction heuristic selected.
    pub traversal: Traversal,
    /// Per-task (per-partition) measurements.
    pub tasks: Vec<TaskStats>,
    /// Active vertices in the output frontier.
    pub output_size: usize,
    /// Per-shard queue/occupancy measurements — `Some` exactly when the
    /// operation ran on the sharded backend
    /// ([`crate::ExecMode::Sharded`]).
    pub shards: Option<ShardOpReport>,
}

impl EdgeMapReport {
    /// Simulated makespan using measured per-task nanoseconds.
    pub fn makespan(
        &self,
        threads: usize,
        scheduling: crate::profile::Scheduling,
    ) -> MakespanReport {
        let costs: Vec<f64> = self.tasks.iter().map(|t| t.nanos as f64).collect();
        simulate(&costs, threads, scheduling)
    }

    /// Simulated makespan using the deterministic work model
    /// `cost = edges + vertices` (the paper's joint cost drivers, §II).
    pub fn makespan_by_work(
        &self,
        threads: usize,
        scheduling: crate::profile::Scheduling,
    ) -> MakespanReport {
        let costs: Vec<f64> = self
            .tasks
            .iter()
            .map(|t| (t.edges + t.vertices) as f64)
            .collect();
        simulate(&costs, threads, scheduling)
    }

    /// Total edges examined.
    pub fn total_edges(&self) -> u64 {
        self.tasks.iter().map(|t| t.edges).sum()
    }

    /// Aggregates measured nanoseconds per socket (index = socket id;
    /// a single entry when the operation ran without NUMA placement).
    pub fn per_socket_nanos(&self) -> Vec<u64> {
        let sockets = self.tasks.iter().map(|t| t.socket).max().unwrap_or(0) as usize + 1;
        let mut out = vec![0u64; sockets];
        for t in &self.tasks {
            out[t.socket as usize] += t.nanos;
        }
        out
    }

    /// Total sequential time.
    pub fn total_nanos(&self) -> u64 {
        self.tasks.iter().map(|t| t.nanos).sum()
    }
}

/// The traversal dispatcher behind [`crate::Executor::edge_map`]:
/// direction selection, kernel choice, output-representation switch.
pub(crate) fn edge_map_impl<O: EdgeOp>(
    pg: &PreparedGraph,
    frontier: &Frontier,
    op: &O,
    force_dense: Option<bool>,
    threshold_den: usize,
    policy: &TaskPolicy,
) -> (Frontier, EdgeMapReport) {
    let g = pg.graph();
    let n = g.num_vertices();
    if frontier.is_empty() {
        return (
            Frontier::empty(n),
            EdgeMapReport {
                traversal: Traversal::SparsePush,
                tasks: Vec::new(),
                output_size: 0,
                shards: None,
            },
        );
    }
    let dense = force_dense.unwrap_or_else(|| frontier.is_dense_for(g, threshold_den));
    let next = AtomicBitset::new(n);
    // A dirty epoch's COO chunks and sub-CSRs describe the snapshot
    // only; route every traversal through the overlay-capable pull and
    // push kernels instead. Overlays are unweighted by construction
    // (`DynamicGraph::new` rejects weighted snapshots), which is what
    // keeps the offsets-based weight addressing out of overlay lists.
    let dirty = pg.overlay().is_some();
    debug_assert!(
        !dirty || !g.has_weights(),
        "delta overlays are defined for unweighted graphs only"
    );
    let (traversal, (tasks, shards)) = if dense {
        let f = frontier.to_dense();
        match (dirty, pg.profile().dense_layout) {
            (false, DenseLayout::Coo(_)) => {
                (Traversal::DenseCoo, dense_coo(pg, &f, op, &next, policy))
            }
            _ => (Traversal::DensePull, dense_pull(pg, &f, op, &next, policy)),
        }
    } else {
        let f = frontier.to_sparse();
        let active: &[VertexId] = match &f {
            Frontier::Sparse { vertices, .. } => vertices,
            Frontier::Dense { .. } => unreachable!("to_sparse returned dense"),
        };
        if !dirty && pg.profile().partitioned_sparse {
            (
                Traversal::SparsePartitioned,
                sparse_partitioned(pg, active, op, &next, policy),
            )
        } else {
            (
                Traversal::SparsePush,
                sparse_push(pg, active, op, &next, policy),
            )
        }
    };
    let out = Frontier::from_bitset(next);
    let output_size = out.len();
    // Representation switch on output size, as all three systems do.
    let out = if output_size * threshold_den < n {
        out.to_sparse()
    } else {
        out
    };
    (
        out,
        EdgeMapReport {
            traversal,
            tasks,
            output_size,
            shards,
        },
    )
}

fn dense_pull<O: EdgeOp>(
    pg: &PreparedGraph,
    frontier: &Frontier,
    op: &O,
    next: &AtomicBitset,
    policy: &TaskPolicy,
) -> (Vec<TaskStats>, Option<ShardOpReport>) {
    let g = pg.graph();
    let csc = g.csc();
    // Flat storage-agnostic views, hoisted once per call: whether the
    // arrays are owned vectors or zero-copy sections of a mapped `.vgr`
    // file, the kernel below indexes plain slices.
    let offsets = csc.offsets();
    let weights = csc.raw_weights();
    let half = pg.overlay().map(|ov| ov.inbound());
    match (csc.compressed(), half) {
        (Some(comp), None) => dense_pull_scan(
            pg,
            &CompressedScan { comp },
            offsets,
            weights,
            frontier,
            op,
            next,
            policy,
        ),
        (None, None) => dense_pull_scan(
            pg,
            &PlainScan {
                offsets,
                targets: csc.targets(),
            },
            offsets,
            weights,
            frontier,
            op,
            next,
            policy,
        ),
        (Some(comp), Some(half)) => dense_pull_scan(
            pg,
            &OverlayScan {
                inner: CompressedScan { comp },
                half,
            },
            offsets,
            weights,
            frontier,
            op,
            next,
            policy,
        ),
        (None, Some(half)) => dense_pull_scan(
            pg,
            &OverlayScan {
                inner: PlainScan {
                    offsets,
                    targets: csc.targets(),
                },
                half,
            },
            offsets,
            weights,
            frontier,
            op,
            next,
            policy,
        ),
    }
}

/// The pull kernel body, monomorphized per neighbor-list backing. Update
/// order, the `cond` early exit, and edge counts match the historical
/// per-edge loop exactly, so `TaskStats` agree bit-for-bit across
/// backings.
#[allow(clippy::too_many_arguments)]
fn dense_pull_scan<O: EdgeOp, S: NeighborScan>(
    pg: &PreparedGraph,
    scan: &S,
    offsets: &[usize],
    weights: Option<&[f32]>,
    frontier: &Frontier,
    op: &O,
    next: &AtomicBitset,
    policy: &TaskPolicy,
) -> (Vec<TaskStats>, Option<ShardOpReport>) {
    let words = frontier.words();
    let tasks = pg.tasks();
    policy.run(tasks.num_partitions(), |t| {
        let mut edges = 0u64;
        let vertices = tasks.range(t).len() as u64;
        for v in tasks.range(t) {
            let vid = v as VertexId;
            if !op.cond(vid) {
                continue;
            }
            // Hint the next vertex's offset/list cache lines while this
            // vertex's neighbors are scanned.
            scan.prefetch(v + 1);
            let e0 = offsets[v];
            let mut activated = false;
            scan.scan(v, |base, block| {
                for (k, &u) in block.iter().enumerate() {
                    edges += 1;
                    if words[u as usize >> 6] >> (u as usize & 63) & 1 == 1 {
                        let w = weights.map_or(1.0, |ws| ws[e0 + base + k]);
                        if op.update(u, vid, w) {
                            activated = true;
                        }
                        if !op.cond(vid) {
                            return false; // Ligra's early exit once cond turns false
                        }
                    }
                }
                true
            });
            if activated {
                next.set(v);
            }
        }
        (edges, vertices)
    })
}

fn dense_coo<O: EdgeOp>(
    pg: &PreparedGraph,
    frontier: &Frontier,
    op: &O,
    next: &AtomicBitset,
    policy: &TaskPolicy,
) -> (Vec<TaskStats>, Option<ShardOpReport>) {
    let coo = pg.coo().expect("profile declares a COO dense layout");
    let words = frontier.words();
    let tasks = pg.tasks();
    policy.run(coo.num_partitions(), |p| {
        let (src, dst) = coo.partition_edges(p);
        let vertices = tasks.range(p).len() as u64;
        let ws = coo.has_weights().then(|| coo.partition_weights(p));
        for e in 0..src.len() {
            let (u, v) = (src[e], dst[e]);
            if words[u as usize >> 6] >> (u as usize & 63) & 1 == 1 && op.cond(v) {
                let w = ws.map_or(1.0, |ws| ws[e]);
                if op.update(u, v, w) {
                    next.set(v as usize);
                }
            }
        }
        (src.len() as u64, vertices)
    })
}

fn sparse_push<O: EdgeOp>(
    pg: &PreparedGraph,
    active: &[VertexId],
    op: &O,
    next: &AtomicBitset,
    policy: &TaskPolicy,
) -> (Vec<TaskStats>, Option<ShardOpReport>) {
    let g = pg.graph();
    let csr = g.csr();
    // Storage-agnostic flat views (owned or mapped), hoisted once.
    let offsets = csr.offsets();
    let weights = csr.raw_weights();
    let half = pg.overlay().map(|ov| ov.out());
    match (csr.compressed(), half) {
        (Some(comp), None) => sparse_push_scan(
            pg,
            &CompressedScan { comp },
            offsets,
            weights,
            active,
            op,
            next,
            policy,
        ),
        (None, None) => sparse_push_scan(
            pg,
            &PlainScan {
                offsets,
                targets: csr.targets(),
            },
            offsets,
            weights,
            active,
            op,
            next,
            policy,
        ),
        (Some(comp), Some(half)) => sparse_push_scan(
            pg,
            &OverlayScan {
                inner: CompressedScan { comp },
                half,
            },
            offsets,
            weights,
            active,
            op,
            next,
            policy,
        ),
        (None, Some(half)) => sparse_push_scan(
            pg,
            &OverlayScan {
                inner: PlainScan {
                    offsets,
                    targets: csr.targets(),
                },
                half,
            },
            offsets,
            weights,
            active,
            op,
            next,
            policy,
        ),
    }
}

/// The push kernel body, monomorphized per neighbor-list backing. Every
/// out-edge of every active vertex is examined (no early exit), exactly
/// as the historical per-edge loop did.
#[allow(clippy::too_many_arguments)]
fn sparse_push_scan<O: EdgeOp, S: NeighborScan>(
    pg: &PreparedGraph,
    scan: &S,
    offsets: &[usize],
    weights: Option<&[f32]>,
    active: &[VertexId],
    op: &O,
    next: &AtomicBitset,
    policy: &TaskPolicy,
) -> (Vec<TaskStats>, Option<ShardOpReport>) {
    let num_chunks = pg.num_tasks().min(active.len()).max(1);
    policy.run(num_chunks, |c| {
        let lo = c * active.len() / num_chunks;
        let hi = (c + 1) * active.len() / num_chunks;
        let mut edges = 0u64;
        let vertices = (hi - lo) as u64;
        for (i, &u) in active[lo..hi].iter().enumerate() {
            // Hint the next active vertex's list while scanning this one.
            if let Some(&nu) = active[lo..hi].get(i + 1) {
                scan.prefetch(nu as usize);
            }
            let e0 = offsets[u as usize];
            scan.scan(u as usize, |base, block| {
                for (k, &v) in block.iter().enumerate() {
                    edges += 1;
                    if op.cond(v) {
                        let w = weights.map_or(1.0, |ws| ws[e0 + base + k]);
                        if op.update_atomic(u, v, w) {
                            next.set(v as usize);
                        }
                    }
                }
                true
            });
        }
        (edges, vertices)
    })
}

fn sparse_partitioned<O: EdgeOp>(
    pg: &PreparedGraph,
    active: &[VertexId],
    op: &O,
    next: &AtomicBitset,
    policy: &TaskPolicy,
) -> (Vec<TaskStats>, Option<ShardOpReport>) {
    let sub = pg
        .sub_csr()
        .expect("profile declares partitioned sparse layout");
    policy.run(sub.num_partitions(), |p| {
        let part = sub.partition(p);
        let mut edges = 0u64;
        let mut vertices = 0u64;
        if part.sources().is_empty() {
            return (0, 0);
        }
        for &u in active {
            // Destinations are partition-local, so the non-atomic update
            // path is race-free even when partitions run in parallel.
            if let Some(dsts) = part.edges_of(u) {
                vertices += 1;
                if pg.graph().has_weights() {
                    let (dsts, ws) = part.weighted_edges_of(u).unwrap();
                    for (k, &v) in dsts.iter().enumerate() {
                        edges += 1;
                        if op.cond(v) && op.update(u, v, ws[k]) {
                            next.set(v as usize);
                        }
                    }
                } else {
                    for &v in dsts {
                        edges += 1;
                        if op.cond(v) && op.update(u, v, 1.0) {
                            next.set(v as usize);
                        }
                    }
                }
            }
        }
        (edges, vertices)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Direction, ExecMode, Executor};
    use crate::profile::SystemProfile;
    use std::sync::atomic::{AtomicU32, Ordering};
    use vebo_graph::{Dataset, Graph};
    use vebo_partition::EdgeOrder;

    /// BFS-style parent setter: activates each destination exactly once.
    struct ParentOp {
        parent: Vec<AtomicU32>,
    }

    impl ParentOp {
        fn new(n: usize) -> ParentOp {
            ParentOp {
                parent: (0..n).map(|_| AtomicU32::new(u32::MAX)).collect(),
            }
        }
    }

    impl EdgeOp for ParentOp {
        fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
            if self.parent[dst as usize].load(Ordering::Relaxed) == u32::MAX {
                self.parent[dst as usize].store(src, Ordering::Relaxed);
                true
            } else {
                false
            }
        }
        fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
            self.parent[dst as usize]
                .compare_exchange(u32::MAX, src, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        }
        fn cond(&self, dst: VertexId) -> bool {
            self.parent[dst as usize].load(Ordering::Relaxed) == u32::MAX
        }
    }

    fn profiles() -> Vec<SystemProfile> {
        vec![
            SystemProfile::ligra_like(),
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Csr),
            SystemProfile::graphgrind_like(EdgeOrder::Hilbert),
        ]
    }

    fn test_graph() -> Graph {
        Dataset::LiveJournalLike.build(0.03)
    }

    #[test]
    fn one_hop_frontier_matches_reference_on_all_profiles() {
        let g = test_graph();
        let n = g.num_vertices();
        let root: VertexId = g.vertices().max_by_key(|&v| g.out_degree(v)).unwrap();
        // Reference: out-neighbors of the root, deduped, excluding root.
        let mut expect: Vec<VertexId> = g
            .out_neighbors(root)
            .iter()
            .copied()
            .filter(|&v| v != root)
            .collect();
        expect.sort_unstable();
        expect.dedup();

        for profile in profiles() {
            for force in [Direction::Dense, Direction::Sparse, Direction::Auto] {
                let exec = Executor::new(profile);
                let pg = PreparedGraph::new(g.clone(), profile);
                let op = ParentOp::new(n);
                op.parent[root as usize].store(root, Ordering::Relaxed); // don't re-activate root
                let f = Frontier::single(n, root);
                let (out, report) = exec.edge_map_in(&pg, &f, &op, force);
                let mut got: Vec<VertexId> = out.iter_active().collect();
                got.sort_unstable();
                assert_eq!(got, expect, "profile {:?} force {force:?}", profile.kind);
                assert_eq!(report.output_size, expect.len());
            }
        }
    }

    #[test]
    fn dense_and_sparse_agree_on_multi_vertex_frontier() {
        let g = test_graph();
        let n = g.num_vertices();
        let seeds: Vec<VertexId> = (0..20).map(|i| i * 37 % n as u32).collect();
        let mut reference: Option<Vec<VertexId>> = None;
        for profile in profiles() {
            for force in [Direction::Dense, Direction::Sparse] {
                let exec = Executor::new(profile).with_direction(force);
                let pg = PreparedGraph::new(g.clone(), profile);
                let op = ParentOp::new(n);
                for &s in &seeds {
                    op.parent[s as usize].store(s, Ordering::Relaxed);
                }
                let f = Frontier::from_vertices(n, seeds.clone());
                let (out, _) = exec.edge_map(&pg, &f, &op);
                let mut got: Vec<VertexId> = out.iter_active().collect();
                got.sort_unstable();
                match &reference {
                    None => reference = Some(got),
                    Some(r) => assert_eq!(&got, r, "profile {:?} force {force:?}", profile.kind),
                }
            }
        }
    }

    #[test]
    fn rayon_parallel_matches_sequential() {
        let g = test_graph();
        let n = g.num_vertices();
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
        let pg = PreparedGraph::new(g.clone(), profile);
        let seeds: Vec<VertexId> = (0..50).map(|i| i * 13 % n as u32).collect();
        let mut outputs = Vec::new();
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let exec = Executor::new(profile).with_mode(mode);
            let op = ParentOp::new(n);
            for &s in &seeds {
                op.parent[s as usize].store(s, Ordering::Relaxed);
            }
            let f = Frontier::from_vertices(n, seeds.clone());
            let (out, _) = exec.edge_map(&pg, &f, &op);
            let mut got: Vec<VertexId> = out.iter_active().collect();
            got.sort_unstable();
            outputs.push(got);
        }
        assert_eq!(outputs[0], outputs[1]);
    }

    /// The sharded backend matches sequential execution and attaches a
    /// per-shard report accounting for every task.
    #[test]
    fn sharded_mode_matches_sequential() {
        let g = test_graph();
        let n = g.num_vertices();
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
        let pg = PreparedGraph::new(g.clone(), profile);
        let run = |exec: &Executor| -> (Vec<VertexId>, EdgeMapReport) {
            let op = ParentOp::new(n);
            op.parent[0].store(0, Ordering::Relaxed);
            let f = Frontier::single(n, 0);
            let (out, report) = exec.edge_map(&pg, &f, &op);
            let mut got: Vec<VertexId> = out.iter_active().collect();
            got.sort_unstable();
            (got, report)
        };
        let (seq, seq_rep) = run(&Executor::new(profile));
        assert!(seq_rep.shards.is_none());
        for shards in [1usize, 2, 7] {
            let (got, report) = run(&Executor::sharded(profile, shards));
            assert_eq!(got, seq, "shards = {shards}");
            let sr = report.shards.expect("sharded run reports shard stats");
            assert_eq!(sr.shards.len(), shards);
            let done: u64 = sr.shards.iter().map(|s| s.tasks_run + s.tasks_stolen).sum();
            assert_eq!(done, report.tasks.len() as u64);
        }
    }

    #[test]
    fn report_edge_totals_are_sane() {
        let g = test_graph();
        let n = g.num_vertices();
        let m = g.num_edges() as u64;
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
        let pg = PreparedGraph::new(g.clone(), profile);
        let op = ParentOp::new(n);
        let f = Frontier::all(n);
        let (_, report) = Executor::new(profile).edge_map_in(&pg, &f, &op, Direction::Dense);
        // Dense COO scans every edge exactly once.
        assert_eq!(report.traversal, Traversal::DenseCoo);
        assert_eq!(report.total_edges(), m);
        assert_eq!(report.tasks.len(), 384);
    }

    #[test]
    fn sparse_partitioned_work_equals_active_edges() {
        let g = test_graph();
        let n = g.num_vertices();
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
        let pg = PreparedGraph::new(g.clone(), profile);
        let seeds: Vec<VertexId> = (0..10).map(|i| i * 101 % n as u32).collect();
        let op = ParentOp::new(n);
        let f = Frontier::from_vertices(n, seeds.clone());
        let (_, report) = Executor::new(profile).edge_map_in(&pg, &f, &op, Direction::Sparse);
        assert_eq!(report.traversal, Traversal::SparsePartitioned);
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        let expected: u64 = dedup.iter().map(|&u| g.out_degree(u) as u64).sum();
        assert_eq!(report.total_edges(), expected);
    }

    #[test]
    fn empty_frontier_short_circuits() {
        let g = test_graph();
        let n = g.num_vertices();
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let op = ParentOp::new(n);
        let (out, report) =
            Executor::new(SystemProfile::ligra_like()).edge_map(&pg, &Frontier::empty(n), &op);
        assert!(out.is_empty());
        assert!(report.tasks.is_empty());
    }

    #[test]
    fn direction_heuristic_picks_dense_for_full_frontier() {
        let g = test_graph();
        let n = g.num_vertices();
        let exec = Executor::new(SystemProfile::ligra_like());
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let op = ParentOp::new(n);
        let (_, report) = exec.edge_map(&pg, &Frontier::all(n), &op);
        assert!(report.traversal.is_dense());
        let pg2 = PreparedGraph::new(test_graph(), SystemProfile::ligra_like());
        let op2 = ParentOp::new(n);
        let (_, report2) = exec.edge_map(&pg2, &Frontier::single(n, 0), &op2);
        assert!(!report2.traversal.is_dense());
    }

    /// The compressed backing must reproduce the plain backing exactly:
    /// same output frontier, same per-task edge counts — on every
    /// profile, both directions, and the parallel/sharded policies.
    #[test]
    fn compressed_backing_matches_plain_on_all_profiles() {
        let g = test_graph();
        let n = g.num_vertices();
        let seeds: Vec<VertexId> = (0..20).map(|i| i * 37 % n as u32).collect();
        for profile in profiles() {
            for force in [Direction::Dense, Direction::Sparse] {
                let mut outputs: Vec<(Vec<VertexId>, Vec<u64>)> = Vec::new();
                for compress in [false, true] {
                    let exec = Executor::new(profile).with_direction(force);
                    let pg = PreparedGraph::builder(g.clone())
                        .profile(profile)
                        .compress(compress)
                        .build()
                        .unwrap();
                    let op = ParentOp::new(n);
                    for &s in &seeds {
                        op.parent[s as usize].store(s, Ordering::Relaxed);
                    }
                    let f = Frontier::from_vertices(n, seeds.clone());
                    let (out, report) = exec.edge_map(&pg, &f, &op);
                    let mut got: Vec<VertexId> = out.iter_active().collect();
                    got.sort_unstable();
                    outputs.push((got, report.tasks.iter().map(|t| t.edges).collect()));
                }
                assert_eq!(
                    outputs[0], outputs[1],
                    "profile {:?} force {force:?}",
                    profile.kind
                );
            }
        }
    }

    /// Same parity check under the sharded policy (the worker path goes
    /// through the identical monomorphized kernels).
    #[test]
    fn compressed_backing_matches_plain_on_sharded_backend() {
        let g = test_graph();
        let n = g.num_vertices();
        let profile = SystemProfile::ligra_like();
        let mut outputs = Vec::new();
        for compress in [false, true] {
            let exec = Executor::sharded(profile, 2);
            let pg = PreparedGraph::builder(g.clone())
                .profile(profile)
                .compress(compress)
                .build()
                .unwrap();
            let op = ParentOp::new(n);
            op.parent[0].store(0, Ordering::Relaxed);
            let f = Frontier::single(n, 0);
            let (out, report) = exec.edge_map(&pg, &f, &op);
            let mut got: Vec<VertexId> = out.iter_active().collect();
            got.sort_unstable();
            outputs.push((got, report.total_edges()));
        }
        assert_eq!(outputs[0], outputs[1]);
    }

    #[test]
    fn makespan_reports_compute() {
        let g = test_graph();
        let n = g.num_vertices();
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
        let pg = PreparedGraph::new(g, profile);
        let op = ParentOp::new(n);
        let (_, report) = Executor::new(profile).edge_map(&pg, &Frontier::all(n), &op);
        let ms = report.makespan_by_work(48, crate::profile::Scheduling::Static);
        assert!(ms.makespan > 0.0);
        assert!(ms.imbalance() >= 1.0);
        assert_eq!(ms.per_thread.len(), 48);
    }
}
