//! The sharded serving backend behind the [`crate::Executor`] policy
//! seam: `S` long-lived worker threads, each owning one shard of the
//! task space, with per-shard work queues and a work-stealing fallback
//! for straggler shards.
//!
//! The rayon backend ([`crate::ExecMode::Parallel`]) spins up scoped
//! threads per operation — right for one big batch job, wasteful when a
//! serving process fires thousands of small operations per second. The
//! sharded backend amortizes thread creation to zero: workers are
//! spawned once when [`crate::ExecMode::Sharded`] is selected and live
//! as long as the executor (any clone of it) does. Each `edge_map` /
//! `vertex_map` becomes a **fan-out** (one job message per worker, the
//! operation closure shared by reference) and a **fan-in** (a latch the
//! caller waits on), so concurrent request threads can drive the same
//! pool simultaneously — jobs interleave at operation granularity in
//! each worker's queue.
//!
//! Shards are derived by [`ShardPlan`]: unions of whole partitions,
//! aligned to the [`PlacementPlan`](vebo_partition::PlacementPlan)
//! socket blocks on statically scheduled profiles, so the vertex- and
//! edge-balance VEBO establishes per partition carries over to the
//! shards. Within a shard, tasks run in ascending index order off an
//! atomic cursor (the shard's queue); a worker that drains its own
//! queue steals from the most loaded remaining shard, one task at a
//! time — VEBO's balance makes stealing rare, but skew in the *active*
//! frontier can still produce stragglers.
//!
//! Every operation reports per-shard occupancy through
//! [`ShardOpReport`] (queue depth at start, tasks run, tasks stolen,
//! busy nanoseconds), which rides on the operation reports and is
//! forwarded to [`InstrumentSink::record_shard_op`](crate::InstrumentSink::record_shard_op).

use crate::edge_map::TaskStats;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use vebo_partition::numa::NumaTopology;
use vebo_partition::ShardPlan;

/// One shard's share of one operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardOpStats {
    /// Tasks pending in this shard's queue when its worker picked the
    /// operation up.
    pub queue_depth: u64,
    /// Tasks this shard's worker claimed from its own queue.
    pub tasks_run: u64,
    /// Tasks this shard's worker stole from other shards' queues after
    /// draining its own.
    pub tasks_stolen: u64,
    /// Wall-clock nanoseconds the worker spent on the operation.
    pub busy_nanos: u64,
}

/// Per-shard measurements of one fan-out operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardOpReport {
    /// One entry per shard, indexed by shard id.
    pub shards: Vec<ShardOpStats>,
    /// Wall-clock nanoseconds from fan-out to fan-in completion.
    pub wall_nanos: u64,
}

impl ShardOpReport {
    /// Total tasks stolen across shards — nonzero means a straggler
    /// shard was helped out.
    pub fn total_stolen(&self) -> u64 {
        self.shards.iter().map(|s| s.tasks_stolen).sum()
    }

    /// Per-shard occupancy: busy time as a fraction of the operation's
    /// wall time (0 when the operation was too fast to measure).
    pub fn occupancy(&self) -> Vec<f64> {
        self.shards
            .iter()
            .map(|s| {
                if self.wall_nanos == 0 {
                    0.0
                } else {
                    s.busy_nanos as f64 / self.wall_nanos as f64
                }
            })
            .collect()
    }
}

/// A type-erased borrowed job: raw data pointer plus a monomorphized
/// trampoline. The caller guarantees the pointee outlives the job by
/// waiting on the fan-out latch before returning.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

// SAFETY: the pointee is `Sync` (enforced by `fan_out`'s bound) and the
// caller keeps it alive until every worker has signalled the latch.
unsafe impl Send for Job {}

enum Msg {
    Run(Job, Arc<Latch>),
    Shutdown,
}

/// Countdown latch for fan-in: the caller waits until every worker has
/// arrived; a worker whose job panicked poisons the latch.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    poisoned: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    fn arrive(&self, panicked: bool) {
        if panicked {
            self.poisoned.store(true, Ordering::Relaxed);
        }
        let mut r = self.remaining.lock().unwrap();
        *r -= 1;
        if *r == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut r = self.remaining.lock().unwrap();
        while *r > 0 {
            r = self.done.wait(r).unwrap();
        }
        assert!(
            !self.poisoned.load(Ordering::Relaxed),
            "a sharded worker panicked while running an operation"
        );
    }
}

thread_local! {
    /// Set while the current thread is a shard worker, to detect (and
    /// inline) re-entrant fan-outs that would otherwise self-deadlock.
    static ON_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The long-lived worker pool behind [`crate::ExecMode::Sharded`]: `S`
/// threads, one per shard, each with its own job queue.
///
/// Constructed internally by
/// [`Executor::with_mode`](crate::Executor::with_mode) /
/// [`Executor::sharded`](crate::Executor::sharded) and shared by every
/// clone of that executor (so `Executor::recorded` keeps reusing the
/// same workers). Workers shut down when the last clone drops.
///
/// Compared to the rayon backend, this wins exactly when operations are
/// many and small — serving-style workloads — because thread startup is
/// paid once, task-to-worker affinity is stable (shard `s`'s partitions
/// are always touched by worker `s` unless stolen, keeping caches and
/// socket-local arrays warm), and concurrent requests interleave in the
/// queues instead of fighting over a global pool. For one large batch
/// operation on an otherwise idle machine, rayon's finer-grained
/// chunking is just as good.
pub struct ShardedExecutor {
    senders: Vec<Sender<Msg>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedExecutor")
            .field("shards", &self.num_shards())
            .finish()
    }
}

impl ShardedExecutor {
    /// Spawns `num_shards` long-lived workers.
    pub fn spawn(num_shards: usize) -> ShardedExecutor {
        assert!(num_shards >= 1, "need at least one shard");
        let mut senders = Vec::with_capacity(num_shards);
        let mut workers = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let (tx, rx) = channel::<Msg>();
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("vebo-shard-{s}"))
                .spawn(move || {
                    ON_WORKER.with(|w| w.set(true));
                    while let Ok(Msg::Run(job, latch)) = rx.recv() {
                        let r = catch_unwind(AssertUnwindSafe(|| unsafe {
                            (job.call)(job.data, s);
                        }));
                        latch.arrive(r.is_err());
                    }
                })
                .expect("spawn shard worker");
            workers.push(handle);
        }
        ShardedExecutor { senders, workers }
    }

    /// Number of shards (= worker threads).
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// Runs `f(shard)` once per shard, on the shard's worker thread, and
    /// returns when all have finished. Safe to call from many request
    /// threads at once — jobs queue up per worker. A call from *inside*
    /// a worker (re-entrant operation) runs inline instead, to avoid
    /// self-deadlock.
    fn fan_out<F: Fn(usize) + Sync>(&self, f: &F) {
        if ON_WORKER.with(|w| w.get()) {
            for s in 0..self.num_shards() {
                f(s);
            }
            return;
        }
        unsafe fn call<F: Fn(usize)>(data: *const (), shard: usize) {
            (*(data as *const F))(shard);
        }
        let job = Job {
            data: f as *const F as *const (),
            call: call::<F>,
        };
        let latch = Arc::new(Latch::new(self.num_shards()));
        for tx in &self.senders {
            tx.send(Msg::Run(job, latch.clone()))
                .expect("shard worker exited early");
        }
        // The latch wait is what makes the borrowed `job` sound: no
        // worker touches it after arriving.
        latch.wait();
    }

    /// Runs `num_tasks` tasks across the shards — each shard's worker
    /// drains its own queue in ascending task order, then steals from
    /// the fullest remaining queue — timing each task, and returns the
    /// per-task stats (indexed by task, stamped with sockets when a
    /// placement topology is given) plus the per-shard report.
    pub(crate) fn run_tasks<F>(
        &self,
        num_tasks: usize,
        placement: Option<&NumaTopology>,
        f: F,
    ) -> (Vec<TaskStats>, ShardOpReport)
    where
        F: Fn(usize) -> (u64, u64) + Sync,
    {
        let num_shards = self.num_shards();
        let plan = placement.map(|topo| topo.placement_plan(num_tasks));
        let shard_plan = match &plan {
            Some(p) => ShardPlan::from_placement(p, num_shards),
            None => ShardPlan::contiguous(num_tasks, num_shards),
        };
        let cursors: Vec<AtomicUsize> = (0..num_shards)
            .map(|s| AtomicUsize::new(shard_plan.tasks_of(s).start))
            .collect();
        let collected: Mutex<Vec<(usize, TaskStats)>> = Mutex::new(Vec::with_capacity(num_tasks));
        let per_shard: Mutex<Vec<(usize, ShardOpStats)>> =
            Mutex::new(Vec::with_capacity(num_shards));

        let timed = |t: usize| {
            let t0 = Instant::now();
            let (edges, vertices) = f(t);
            TaskStats {
                nanos: t0.elapsed().as_nanos() as u64,
                edges,
                vertices,
                socket: 0,
            }
        };
        // Claims the next task of `shard`'s queue, if any remain.
        let claim = |shard: usize| -> Option<usize> {
            let end = shard_plan.tasks_of(shard).end;
            // Opportunistic check keeps drained queues cheap to probe.
            if cursors[shard].load(Ordering::Relaxed) >= end {
                return None;
            }
            let t = cursors[shard].fetch_add(1, Ordering::Relaxed);
            (t < end).then_some(t)
        };

        let t_op = Instant::now();
        self.fan_out(&|shard: usize| {
            let range = shard_plan.tasks_of(shard);
            let mut stats = ShardOpStats {
                queue_depth: range
                    .end
                    .saturating_sub(cursors[shard].load(Ordering::Relaxed).min(range.end))
                    as u64,
                ..ShardOpStats::default()
            };
            let t0 = Instant::now();
            let mut local: Vec<(usize, TaskStats)> = Vec::new();
            while let Some(t) = claim(shard) {
                local.push((t, timed(t)));
                stats.tasks_run += 1;
            }
            // Straggler fallback: steal from the fullest remaining queue
            // until everything is drained.
            loop {
                let victim = (0..num_shards)
                    .filter(|&v| v != shard)
                    .max_by_key(|&v| {
                        let end = shard_plan.tasks_of(v).end;
                        end.saturating_sub(cursors[v].load(Ordering::Relaxed).min(end))
                    })
                    .filter(|&v| {
                        let end = shard_plan.tasks_of(v).end;
                        cursors[v].load(Ordering::Relaxed) < end
                    });
                let Some(v) = victim else { break };
                if let Some(t) = claim(v) {
                    local.push((t, timed(t)));
                    stats.tasks_stolen += 1;
                }
            }
            stats.busy_nanos = t0.elapsed().as_nanos() as u64;
            collected.lock().unwrap().extend(local);
            per_shard.lock().unwrap().push((shard, stats));
        });
        let wall_nanos = t_op.elapsed().as_nanos() as u64;

        let mut tasks = vec![TaskStats::default(); num_tasks];
        for (t, s) in collected.into_inner().unwrap() {
            tasks[t] = s;
        }
        if let Some(plan) = &plan {
            for (t, s) in tasks.iter_mut().enumerate() {
                s.socket = plan.socket_of(t) as u32;
            }
        }
        let mut shards = vec![ShardOpStats::default(); num_shards];
        for (s, stats) in per_shard.into_inner().unwrap() {
            shards[s] = stats;
        }
        (tasks, ShardOpReport { shards, wall_nanos })
    }
}

impl Drop for ShardedExecutor {
    fn drop(&mut self) {
        for tx in &self.senders {
            // A worker that already exited (impossible in normal
            // operation) just yields a send error; ignore it.
            let _ = tx.send(Msg::Shutdown);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = ShardedExecutor::spawn(3);
        for num_tasks in [0usize, 1, 2, 3, 7, 100] {
            let hits: Vec<AtomicUsize> = (0..num_tasks).map(|_| AtomicUsize::new(0)).collect();
            let (stats, report) = pool.run_tasks(num_tasks, None, |t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
                (t as u64, 1)
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            assert_eq!(stats.len(), num_tasks);
            for (t, s) in stats.iter().enumerate() {
                assert_eq!(s.edges, t as u64, "stats landed at the wrong index");
            }
            assert_eq!(report.shards.len(), 3);
            let executed: u64 = report
                .shards
                .iter()
                .map(|s| s.tasks_run + s.tasks_stolen)
                .sum();
            assert_eq!(executed, num_tasks as u64);
        }
    }

    #[test]
    fn placement_stamps_sockets() {
        let pool = ShardedExecutor::spawn(2);
        let topo = NumaTopology::default();
        let (stats, _) = pool.run_tasks(96, Some(&topo), |_| (1, 1));
        let plan = topo.placement_plan(96);
        for (t, s) in stats.iter().enumerate() {
            assert_eq!(s.socket as usize, plan.socket_of(t));
        }
    }

    #[test]
    fn concurrent_fanouts_do_not_interfere() {
        let pool = ShardedExecutor::spawn(2);
        std::thread::scope(|scope| {
            for k in 0..4u64 {
                let pool = &pool;
                scope.spawn(move || {
                    for _ in 0..10 {
                        let (stats, _) = pool.run_tasks(17, None, |t| (t as u64 + k, 1));
                        for (t, s) in stats.iter().enumerate() {
                            assert_eq!(s.edges, t as u64 + k);
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn stealing_covers_a_straggler_shard() {
        // Shard 0 owns one task that sleeps; shard 1's worker must steal
        // nothing (its own queue suffices), while shard 0's long task
        // forces shard 1 to finish the rest. With 2 shards over 64 tasks
        // where task 0 is slow, stolen tasks show up in the report.
        let pool = ShardedExecutor::spawn(2);
        let (_, report) = pool.run_tasks(64, None, |t| {
            if t == 1 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            (1, 1)
        });
        let done: u64 = report
            .shards
            .iter()
            .map(|s| s.tasks_run + s.tasks_stolen)
            .sum();
        assert_eq!(done, 64);
        // Occupancy is well-formed.
        for o in report.occupancy() {
            assert!((0.0..=1.5).contains(&o), "occupancy {o}");
        }
    }

    #[test]
    fn reentrant_fanout_runs_inline() {
        let pool = Arc::new(ShardedExecutor::spawn(2));
        let inner = Arc::new(AtomicUsize::new(0));
        let (inner2, pool2) = (inner.clone(), pool.clone());
        pool.fan_out(&move |_outer| {
            // A fan-out from inside a worker must not deadlock.
            pool2.fan_out(&|_inner_shard| {
                inner2.fetch_add(1, Ordering::Relaxed);
            });
        });
        // 2 outer shards x 2 inline inner shards.
        assert_eq!(inner.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn shard_order_is_ascending_within_a_shard() {
        let pool = ShardedExecutor::spawn(1);
        let seen = Mutex::new(Vec::new());
        let (_, report) = pool.run_tasks(50, None, |t| {
            seen.lock().unwrap().push(t);
            (0, 0)
        });
        // One shard, no stealing possible: strict ascending order, the
        // same order the sequential backend uses.
        assert_eq!(*seen.lock().unwrap(), (0..50).collect::<Vec<_>>());
        assert_eq!(report.total_stolen(), 0);
        let distinct: HashSet<u64> = report.shards.iter().map(|s| s.tasks_run).collect();
        assert_eq!(distinct, HashSet::from([50]));
    }
}
