//! `vertex_map`: apply a function to every active vertex (Ligra's
//! `VERTEXMAP`), returning the subset for which it returned `true`.
//!
//! GraphGrind "spreads the iterations of the vertexmap loop equally across
//! all threads" (§V-F) while the data stays distributed by partition —
//! the engine reproduces that: dense vertexmap tasks are the partition
//! ranges, sparse vertexmap tasks are chunks of the active list.

use crate::edge_map::TaskStats;
use crate::frontier::Frontier;
use crate::prepared::PreparedGraph;
use crate::shared::AtomicBitset;
use rayon::prelude::*;
use std::time::Instant;
use vebo_graph::VertexId;

/// Result of one `vertex_map`: per-task stats (work = vertices scanned).
#[derive(Clone, Debug)]
pub struct VertexMapReport {
    /// Per-task (per-thread-chunk) measurements.
    pub tasks: Vec<TaskStats>,
}

impl VertexMapReport {
    /// Total vertices scanned.
    pub fn total_vertices(&self) -> u64 {
        self.tasks.iter().map(|t| t.vertices).sum()
    }

    /// Total sequential time.
    pub fn total_nanos(&self) -> u64 {
        self.tasks.iter().map(|t| t.nanos).sum()
    }
}

/// Applies `f` to each active vertex; the output frontier contains the
/// vertices for which `f` returned `true`.
pub fn vertex_map<F>(
    pg: &PreparedGraph,
    frontier: &Frontier,
    f: F,
    parallel: bool,
) -> (Frontier, VertexMapReport)
where
    F: Fn(VertexId) -> bool + Sync,
{
    let n = pg.graph().num_vertices();
    let next = AtomicBitset::new(n);
    let tasks = match frontier {
        Frontier::Dense { .. } => {
            let dense = frontier.to_dense();
            let words = dense.words().to_vec();
            let bounds = pg.tasks();
            run(bounds.num_partitions(), parallel, |t| {
                let mut scanned = 0u64;
                for v in bounds.range(t) {
                    if words[v >> 6] >> (v & 63) & 1 == 1 {
                        scanned += 1;
                        if f(v as VertexId) {
                            next.set(v);
                        }
                    }
                }
                scanned
            })
        }
        Frontier::Sparse { vertices, .. } => {
            let chunks = pg.num_tasks().min(vertices.len()).max(1);
            run(chunks, parallel, |c| {
                let lo = c * vertices.len() / chunks;
                let hi = (c + 1) * vertices.len() / chunks;
                for &v in &vertices[lo..hi] {
                    if f(v) {
                        next.set(v as usize);
                    }
                }
                (hi - lo) as u64
            })
        }
    };
    let out = Frontier::from_bitset(next);
    let out = if out.len() * 20 < n {
        out.to_sparse()
    } else {
        out
    };
    (out, VertexMapReport { tasks })
}

/// `vertex_map` over all vertices (dense initialization passes).
pub fn vertex_map_all<F>(pg: &PreparedGraph, f: F, parallel: bool) -> (Frontier, VertexMapReport)
where
    F: Fn(VertexId) -> bool + Sync,
{
    let all = Frontier::all(pg.graph().num_vertices());
    vertex_map(pg, &all, f, parallel)
}

fn run<F>(num_tasks: usize, parallel: bool, f: F) -> Vec<TaskStats>
where
    F: Fn(usize) -> u64 + Sync,
{
    let timed = |t: usize| {
        let t0 = Instant::now();
        let work = f(t);
        TaskStats {
            nanos: t0.elapsed().as_nanos() as u64,
            edges: 0,
            vertices: work,
        }
    };
    if parallel {
        (0..num_tasks).into_par_iter().map(timed).collect()
    } else {
        (0..num_tasks).map(timed).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SystemProfile;
    use std::sync::atomic::{AtomicU64, Ordering};
    use vebo_graph::Dataset;

    #[test]
    fn filters_by_predicate() {
        let g = Dataset::YahooLike.build(0.05);
        let n = g.num_vertices();
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let (out, rep) = vertex_map_all(&pg, |v| v % 3 == 0, false);
        let expect = n.div_ceil(3);
        assert_eq!(out.len(), expect);
        assert_eq!(rep.total_vertices(), n as u64);
        for v in out.iter_active() {
            assert_eq!(v % 3, 0);
        }
    }

    #[test]
    fn sparse_frontier_only_touches_active() {
        let g = Dataset::YahooLike.build(0.05);
        let n = g.num_vertices();
        let pg = PreparedGraph::new(g, SystemProfile::polymer_like());
        let touched = AtomicU64::new(0);
        let f = Frontier::from_vertices(n, vec![1, 5, 9]);
        let (out, rep) = vertex_map(
            &pg,
            &f,
            |v| {
                touched.fetch_add(1, Ordering::Relaxed);
                v != 5
            },
            false,
        );
        assert_eq!(touched.load(Ordering::Relaxed), 3);
        assert_eq!(rep.total_vertices(), 3);
        let got: Vec<_> = out.iter_active().collect();
        assert_eq!(got, vec![1, 9]);
    }

    #[test]
    fn dense_frontier_respects_membership() {
        let g = Dataset::YahooLike.build(0.05);
        let n = g.num_vertices();
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let f = Frontier::from_vertices(n, vec![2, 4, 6]).to_dense();
        let (out, _) = vertex_map(&pg, &f, |_| true, false);
        let got: Vec<_> = out.iter_active().collect();
        assert_eq!(got, vec![2, 4, 6]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = Dataset::YahooLike.build(0.05);
        let pg = PreparedGraph::new(
            g,
            SystemProfile::graphgrind_like(vebo_partition::EdgeOrder::Csr),
        );
        let (a, _) = vertex_map_all(&pg, |v| v % 7 == 1, false);
        let (b, _) = vertex_map_all(&pg, |v| v % 7 == 1, true);
        let va: Vec<_> = a.iter_active().collect();
        let vb: Vec<_> = b.iter_active().collect();
        assert_eq!(va, vb);
    }
}
