//! `vertex_map`: apply a function to every active vertex (Ligra's
//! `VERTEXMAP`), returning the subset for which it returned `true`.
//!
//! GraphGrind "spreads the iterations of the vertexmap loop equally across
//! all threads" (§V-F) while the data stays distributed by partition —
//! the engine reproduces that: dense vertexmap tasks are the partition
//! ranges, sparse vertexmap tasks are chunks of the active list.

use crate::edge_map::TaskStats;
use crate::executor::TaskPolicy;
use crate::frontier::Frontier;
use crate::prepared::PreparedGraph;
use crate::sharded::ShardOpReport;
use crate::shared::AtomicBitset;
use vebo_graph::VertexId;

/// Result of one `vertex_map`: per-task stats (work = vertices scanned).
#[derive(Clone, Debug)]
pub struct VertexMapReport {
    /// Per-task (per-thread-chunk) measurements.
    pub tasks: Vec<TaskStats>,
    /// Per-shard queue/occupancy measurements — `Some` exactly when the
    /// operation ran on the sharded backend
    /// ([`crate::ExecMode::Sharded`]).
    pub shards: Option<ShardOpReport>,
}

impl VertexMapReport {
    /// Total vertices scanned.
    pub fn total_vertices(&self) -> u64 {
        self.tasks.iter().map(|t| t.vertices).sum()
    }

    /// Total sequential time.
    pub fn total_nanos(&self) -> u64 {
        self.tasks.iter().map(|t| t.nanos).sum()
    }
}

/// The kernel behind [`crate::Executor::vertex_map`]: dense vertexmap
/// tasks are the partition ranges, sparse vertexmap tasks are chunks of
/// the active list.
pub(crate) fn vertex_map_impl<F>(
    pg: &PreparedGraph,
    frontier: &Frontier,
    f: F,
    policy: &TaskPolicy,
) -> (Frontier, VertexMapReport)
where
    F: Fn(VertexId) -> bool + Sync,
{
    let n = pg.graph().num_vertices();
    let next = AtomicBitset::new(n);
    let (tasks, shards) = match frontier {
        Frontier::Dense { .. } => {
            // Borrow the membership bits in place: the frontier is
            // already dense in this arm, so no clone-and-copy is needed
            // and the scan reads the caller's words directly.
            let words = frontier.words();
            let bounds = pg.tasks();
            run(bounds.num_partitions(), policy, |t| {
                let mut scanned = 0u64;
                for v in bounds.range(t) {
                    if words[v >> 6] >> (v & 63) & 1 == 1 {
                        scanned += 1;
                        if f(v as VertexId) {
                            next.set(v);
                        }
                    }
                }
                scanned
            })
        }
        Frontier::Sparse { vertices, .. } => {
            let chunks = pg.num_tasks().min(vertices.len()).max(1);
            run(chunks, policy, |c| {
                let lo = c * vertices.len() / chunks;
                let hi = (c + 1) * vertices.len() / chunks;
                for &v in &vertices[lo..hi] {
                    if f(v) {
                        next.set(v as usize);
                    }
                }
                (hi - lo) as u64
            })
        }
    };
    let out = Frontier::from_bitset(next);
    let out = if out.len() * 20 < n {
        out.to_sparse()
    } else {
        out
    };
    (out, VertexMapReport { tasks, shards })
}

fn run<F>(num_tasks: usize, policy: &TaskPolicy, f: F) -> (Vec<TaskStats>, Option<ShardOpReport>)
where
    F: Fn(usize) -> u64 + Sync,
{
    policy.run(num_tasks, |t| (0, f(t)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{ExecMode, Executor};
    use crate::profile::SystemProfile;
    use std::sync::atomic::{AtomicU64, Ordering};
    use vebo_graph::Dataset;

    #[test]
    fn filters_by_predicate() {
        let g = Dataset::YahooLike.build(0.05);
        let n = g.num_vertices();
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let exec = Executor::new(SystemProfile::ligra_like());
        let (out, rep) = exec.vertex_map_all(&pg, |v| v % 3 == 0);
        let expect = n.div_ceil(3);
        assert_eq!(out.len(), expect);
        assert_eq!(rep.total_vertices(), n as u64);
        for v in out.iter_active() {
            assert_eq!(v % 3, 0);
        }
    }

    #[test]
    fn sparse_frontier_only_touches_active() {
        let g = Dataset::YahooLike.build(0.05);
        let n = g.num_vertices();
        let pg = PreparedGraph::new(g, SystemProfile::polymer_like());
        let exec = Executor::new(SystemProfile::polymer_like());
        let touched = AtomicU64::new(0);
        let f = Frontier::from_vertices(n, vec![1, 5, 9]);
        let (out, rep) = exec.vertex_map(&pg, &f, |v| {
            touched.fetch_add(1, Ordering::Relaxed);
            v != 5
        });
        assert_eq!(touched.load(Ordering::Relaxed), 3);
        assert_eq!(rep.total_vertices(), 3);
        let got: Vec<_> = out.iter_active().collect();
        assert_eq!(got, vec![1, 9]);
    }

    #[test]
    fn dense_frontier_respects_membership() {
        let g = Dataset::YahooLike.build(0.05);
        let n = g.num_vertices();
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        let f = Frontier::from_vertices(n, vec![2, 4, 6]).to_dense();
        let (out, _) = Executor::new(SystemProfile::ligra_like()).vertex_map(&pg, &f, |_| true);
        let got: Vec<_> = out.iter_active().collect();
        assert_eq!(got, vec![2, 4, 6]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = Dataset::YahooLike.build(0.05);
        let profile = SystemProfile::graphgrind_like(vebo_partition::EdgeOrder::Csr);
        let pg = PreparedGraph::new(g, profile);
        let (a, _) = Executor::new(profile).vertex_map_all(&pg, |v| v % 7 == 1);
        let (b, _) = Executor::new(profile)
            .with_mode(ExecMode::Parallel)
            .vertex_map_all(&pg, |v| v % 7 == 1);
        let va: Vec<_> = a.iter_active().collect();
        let vb: Vec<_> = b.iter_active().collect();
        assert_eq!(va, vb);
    }

    /// The sharded backend agrees with the executor's sequential mode
    /// and carries a per-shard report.
    #[test]
    fn sharded_matches_sequential() {
        let g = Dataset::YahooLike.build(0.05);
        let profile = SystemProfile::ligra_like();
        let pg = PreparedGraph::new(g, profile);
        let (a, _) = Executor::new(profile).vertex_map_all(&pg, |v| v % 5 == 2);
        let (b, rep) = Executor::sharded(profile, 3).vertex_map_all(&pg, |v| v % 5 == 2);
        let va: Vec<_> = a.iter_active().collect();
        let vb: Vec<_> = b.iter_active().collect();
        assert_eq!(va, vb);
        let shards = rep.shards.expect("sharded run reports shard stats");
        assert_eq!(shards.shards.len(), 3);
        let done: u64 = shards
            .shards
            .iter()
            .map(|s| s.tasks_run + s.tasks_stolen)
            .sum();
        assert_eq!(done, rep.tasks.len() as u64);
    }
}
