//! Graph preparation per system profile: partition bounds, COO chunks,
//! sub-CSRs — the "edge reordering + partitioning" stage whose cost
//! Table VI reports.

use crate::profile::{DenseLayout, SystemKind, SystemProfile};
use std::time::{Duration, Instant};
use vebo_graph::Graph;
use vebo_partition::partitioned::PartitionedSubCsr;
use vebo_partition::{PartitionBounds, PartitionedCoo};

/// A graph made ready for traversal under one system profile.
#[derive(Debug)]
pub struct PreparedGraph {
    graph: Graph,
    profile: SystemProfile,
    /// Task-granularity destination ranges: one per dense task.
    tasks: PartitionBounds,
    /// Per-task COO chunks (GraphGrind dense layout).
    coo: Option<PartitionedCoo>,
    /// Per-task sub-CSRs (Polymer/GraphGrind sparse layout).
    sub_csr: Option<PartitionedSubCsr>,
    /// Time spent building the partitioned layouts (Table VI).
    prep_time: Duration,
}

impl PreparedGraph {
    /// Partitions `graph` according to `profile` and materializes the
    /// layouts that profile needs.
    pub fn new(graph: Graph, profile: SystemProfile) -> PreparedGraph {
        let t0 = Instant::now();
        let tasks = match profile.kind {
            SystemKind::LigraLike => {
                // Cilk chunks the iteration range by vertex count; no
                // graph-aware partitioning happens.
                PartitionBounds::vertex_balanced(graph.num_vertices(), profile.num_partitions)
            }
            SystemKind::PolymerLike => polymer_task_bounds(&graph, &profile),
            SystemKind::GraphGrindLike => {
                PartitionBounds::edge_balanced(&graph, profile.num_partitions)
            }
        };
        let coo = match profile.dense_layout {
            DenseLayout::Coo(order) => Some(PartitionedCoo::build(&graph, &tasks, order)),
            DenseLayout::CscPull => None,
        };
        let sub_csr = if profile.partitioned_sparse {
            Some(PartitionedSubCsr::build(&graph, &tasks))
        } else {
            None
        };
        let prep_time = t0.elapsed();
        PreparedGraph {
            graph,
            profile,
            tasks,
            coo,
            sub_csr,
            prep_time,
        }
    }

    /// As [`PreparedGraph::new`] but with explicit destination ranges
    /// (e.g. VEBO's exact phase-3 boundaries instead of Algorithm 1).
    pub fn with_bounds(
        graph: Graph,
        profile: SystemProfile,
        tasks: PartitionBounds,
    ) -> PreparedGraph {
        assert_eq!(tasks.num_vertices(), graph.num_vertices());
        let t0 = Instant::now();
        let coo = match profile.dense_layout {
            DenseLayout::Coo(order) => Some(PartitionedCoo::build(&graph, &tasks, order)),
            DenseLayout::CscPull => None,
        };
        let sub_csr = if profile.partitioned_sparse {
            Some(PartitionedSubCsr::build(&graph, &tasks))
        } else {
            None
        };
        let prep_time = t0.elapsed();
        PreparedGraph {
            graph,
            profile,
            tasks,
            coo,
            sub_csr,
            prep_time,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The profile this graph was prepared for.
    pub fn profile(&self) -> &SystemProfile {
        &self.profile
    }

    /// Dense-task destination ranges.
    pub fn tasks(&self) -> &PartitionBounds {
        &self.tasks
    }

    /// Number of dense tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.num_partitions()
    }

    /// The COO layout, if this profile uses one.
    pub fn coo(&self) -> Option<&PartitionedCoo> {
        self.coo.as_ref()
    }

    /// The sub-CSR layout, if this profile uses one.
    pub fn sub_csr(&self) -> Option<&PartitionedSubCsr> {
        self.sub_csr.as_ref()
    }

    /// Layout construction time (the partitioning column of Table VI).
    pub fn prep_time(&self) -> Duration {
        self.prep_time
    }
}

/// Polymer's two-level split: edge-balanced partitioning by destination
/// into one partition per socket, then vertex-balanced subdivision of each
/// partition among the socket's threads. Thread-level imbalance inside a
/// socket is exactly where VEBO's vertex balance pays off (§V-F).
fn polymer_task_bounds(graph: &Graph, profile: &SystemProfile) -> PartitionBounds {
    let top = PartitionBounds::edge_balanced(graph, profile.topology.num_sockets);
    subdivide_for_threads(&top, &profile.topology)
}

/// Subdivides each socket-level partition into one vertex-balanced chunk
/// per thread of that socket (Polymer's intra-socket static split). Public
/// so harnesses can feed VEBO's *exact* phase-3 boundaries through the
/// same subdivision.
pub fn subdivide_for_threads(
    top: &PartitionBounds,
    topology: &vebo_partition::numa::NumaTopology,
) -> PartitionBounds {
    let per_socket = topology.threads_per_socket();
    let n = top.num_vertices();
    let mut starts = Vec::with_capacity(top.num_partitions() * per_socket + 1);
    for (_, range) in top.iter() {
        let len = range.len();
        for k in 0..per_socket {
            starts.push(range.start + k * len / per_socket);
        }
    }
    starts.push(n);
    PartitionBounds::from_starts(starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::Dataset;
    use vebo_partition::EdgeOrder;

    #[test]
    fn ligra_prepares_vertex_chunks_without_layouts() {
        let g = Dataset::YahooLike.build(0.05);
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        assert_eq!(pg.num_tasks(), 3072);
        assert!(pg.coo().is_none());
        assert!(pg.sub_csr().is_none());
    }

    #[test]
    fn polymer_prepares_48_static_tasks() {
        let g = Dataset::YahooLike.build(0.05);
        let pg = PreparedGraph::new(g, SystemProfile::polymer_like());
        assert_eq!(pg.num_tasks(), 48);
        assert!(pg.coo().is_none());
        assert!(pg.sub_csr().is_some());
        assert_eq!(pg.sub_csr().unwrap().num_partitions(), 48);
    }

    #[test]
    fn graphgrind_prepares_coo_and_subcsr() {
        let g = Dataset::YahooLike.build(0.05);
        let m = g.num_edges();
        let pg = PreparedGraph::new(g, SystemProfile::graphgrind_like(EdgeOrder::Hilbert));
        assert_eq!(pg.num_tasks(), 384);
        assert_eq!(pg.coo().unwrap().num_edges(), m);
        assert_eq!(pg.sub_csr().unwrap().num_edges(), m);
        assert!(pg.prep_time() > Duration::ZERO);
    }

    #[test]
    fn polymer_tasks_nest_in_socket_partitions() {
        let g = Dataset::LiveJournalLike.build(0.05);
        let top = PartitionBounds::edge_balanced(&g, 4);
        let pg = PreparedGraph::new(g, SystemProfile::polymer_like());
        // Every socket boundary must appear among the task boundaries.
        for &s in top.starts() {
            assert!(pg.tasks().starts().contains(&s), "boundary {s} lost");
        }
    }

    #[test]
    fn with_bounds_uses_explicit_ranges() {
        let g = Dataset::YahooLike.build(0.05);
        let n = g.num_vertices();
        let bounds = PartitionBounds::vertex_balanced(n, 10);
        let pg =
            PreparedGraph::with_bounds(g, SystemProfile::graphgrind_like(EdgeOrder::Csr), bounds);
        assert_eq!(pg.num_tasks(), 10);
    }
}
