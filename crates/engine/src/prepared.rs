//! Graph preparation per system profile: partition bounds, COO chunks,
//! sub-CSRs — the "edge reordering + partitioning" stage whose cost
//! Table VI reports.
//!
//! Construction goes through [`PreparedGraph::builder`], which owns the
//! whole "how do VEBO's exact phase-3 boundaries reach the engine"
//! decision (it absorbed `prepare_profile` from the bench pipeline so the
//! CLI, the algorithms, the harnesses, and the tests all prepare
//! execution identically):
//!
//! ```
//! use vebo_engine::{PreparedGraph, SystemProfile};
//!
//! let g = vebo_graph::Dataset::YahooLike.build(0.05);
//! let pg = PreparedGraph::builder(g)
//!     .profile(SystemProfile::polymer_like())
//!     .build()
//!     .unwrap();
//! assert_eq!(pg.num_tasks(), 48);
//! ```

use crate::profile::{DenseLayout, SystemKind, SystemProfile};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vebo_graph::{DeltaOverlay, Graph, PinnedEpoch};
use vebo_partition::partitioned::PartitionedSubCsr;
use vebo_partition::{BoundsError, PartitionBounds, PartitionedCoo};

/// The expensive, immutable part of a [`PreparedGraph`]: the snapshot
/// and every profile-specific layout derived from it. Shared by `Arc` so
/// versioned handles over the same snapshot (e.g. successive dirty
/// epochs of a dynamic graph) clone in O(1).
#[derive(Debug)]
struct PreparedCore {
    graph: Graph,
    profile: SystemProfile,
    /// Task-granularity destination ranges: one per dense task.
    tasks: PartitionBounds,
    /// Per-task COO chunks (GraphGrind dense layout).
    coo: Option<PartitionedCoo>,
    /// Per-task sub-CSRs (Polymer/GraphGrind sparse layout).
    sub_csr: Option<PartitionedSubCsr>,
    /// Time spent building the partitioned layouts (Table VI).
    prep_time: Duration,
}

/// A graph made ready for traversal under one system profile.
///
/// Since the dynamic-graph refactor this is a cheap-to-clone *versioned
/// handle*: an `Arc`'d core (snapshot + partitioned layouts) plus an
/// optional delta overlay and an epoch number. A handle without an
/// overlay behaves exactly as before. A handle carrying an overlay
/// (built via [`PreparedGraph::for_pin`] or
/// [`PreparedGraph::with_overlay`]) makes every edge traversal read the
/// overlay's merged neighbor lists for dirty vertices — see the
/// overlay-scan seam in [`edge_map`](crate::edge_map).
#[derive(Clone, Debug)]
pub struct PreparedGraph {
    core: Arc<PreparedCore>,
    overlay: Option<Arc<DeltaOverlay>>,
    epoch: u64,
}

/// Why a [`PreparedGraphBuilder`] could not produce a [`PreparedGraph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrepareError {
    /// The supplied boundaries are malformed (not monotonic, first not
    /// zero, or covering a different vertex count than the graph).
    Bounds(BoundsError),
}

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrepareError::Bounds(e) => write!(f, "invalid partition boundaries: {e}"),
        }
    }
}

impl std::error::Error for PrepareError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PrepareError::Bounds(e) => Some(e),
        }
    }
}

impl From<BoundsError> for PrepareError {
    fn from(e: BoundsError) -> PrepareError {
        PrepareError::Bounds(e)
    }
}

/// Builds a [`PreparedGraph`], validating explicit boundaries and
/// routing VEBO's exact phase-3 boundaries per profile:
///
/// * GraphGrind — the boundaries become the partition bounds directly;
/// * Polymer — the socket-level boundaries are subdivided per thread;
/// * Ligra — no partitioning; boundaries are irrelevant.
#[derive(Debug)]
pub struct PreparedGraphBuilder {
    graph: Graph,
    profile: SystemProfile,
    vebo_starts: Option<Vec<usize>>,
    bounds: Option<PartitionBounds>,
    compress: bool,
}

impl PreparedGraphBuilder {
    /// Targets `profile` (default: [`SystemProfile::ligra_like`]).
    pub fn profile(mut self, profile: SystemProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Attaches delta-varint compressed neighbor lists
    /// ([`vebo_graph::CompressedCsr`]) to both graph halves before
    /// preparation, so the pull and push kernels stream the compressed
    /// working set instead of the raw target arrays. A no-op when the
    /// graph already carries a compressed companion (e.g. loaded from a
    /// `.vgr` version-3 file). Results are bit-identical either way.
    pub fn compress(mut self, compress: bool) -> Self {
        self.compress = compress;
        self
    }

    /// Supplies VEBO's exact phase-3 partition boundaries (Algorithm 2's
    /// "partition end points", in the *new* id space). `None` is
    /// accepted so harnesses can pass an ordering's optional boundaries
    /// straight through.
    pub fn vebo_starts<S: AsRef<[usize]>>(mut self, starts: Option<S>) -> Self {
        self.vebo_starts = starts.map(|s| s.as_ref().to_vec());
        self
    }

    /// Uses explicit destination ranges verbatim (overrides
    /// `vebo_starts`; no per-profile routing).
    pub fn bounds(mut self, bounds: PartitionBounds) -> Self {
        self.bounds = Some(bounds);
        self
    }

    /// Validates and materializes the layouts the profile needs.
    pub fn build(self) -> Result<PreparedGraph, PrepareError> {
        let t0 = Instant::now();
        let graph = if self.compress {
            self.graph.with_compressed()
        } else {
            self.graph
        };
        let n = graph.num_vertices();
        let check_covers = |b: &PartitionBounds| -> Result<(), PrepareError> {
            if b.num_vertices() != n {
                return Err(BoundsError::VertexCountMismatch {
                    expected: n,
                    found: b.num_vertices(),
                }
                .into());
            }
            Ok(())
        };
        let tasks = match (self.bounds, self.vebo_starts) {
            (Some(bounds), _) => {
                check_covers(&bounds)?;
                Some(bounds)
            }
            (None, Some(starts)) => match self.profile.kind {
                SystemKind::GraphGrindLike => {
                    let bounds = PartitionBounds::try_from_starts(starts)?;
                    check_covers(&bounds)?;
                    Some(bounds)
                }
                SystemKind::PolymerLike => {
                    let top = PartitionBounds::try_from_starts(starts)?;
                    check_covers(&top)?;
                    Some(subdivide_for_threads(&top, &self.profile.topology))
                }
                SystemKind::LigraLike => None,
            },
            (None, None) => None,
        };
        Ok(match tasks {
            Some(tasks) => PreparedGraph::from_parts(graph, self.profile, tasks, t0),
            None => PreparedGraph::new(graph, self.profile),
        })
    }
}

impl PreparedGraph {
    /// Starts a builder for `graph` — the single construction path every
    /// consumer (CLI, algorithms, harnesses, tests) goes through.
    pub fn builder(graph: Graph) -> PreparedGraphBuilder {
        PreparedGraphBuilder {
            graph,
            profile: SystemProfile::ligra_like(),
            vebo_starts: None,
            bounds: None,
            compress: false,
        }
    }

    /// Partitions `graph` according to `profile` and materializes the
    /// layouts that profile needs.
    pub fn new(graph: Graph, profile: SystemProfile) -> PreparedGraph {
        let t0 = Instant::now();
        let tasks = match profile.kind {
            SystemKind::LigraLike => {
                // Cilk chunks the iteration range by vertex count; no
                // graph-aware partitioning happens.
                PartitionBounds::vertex_balanced(graph.num_vertices(), profile.num_partitions)
            }
            SystemKind::PolymerLike => polymer_task_bounds(&graph, &profile),
            SystemKind::GraphGrindLike => {
                PartitionBounds::edge_balanced(&graph, profile.num_partitions)
            }
        };
        PreparedGraph::from_parts(graph, profile, tasks, t0)
    }

    /// Materializes the layouts for already-validated `tasks`; `t0` is
    /// when preparation began (so `prep_time` covers the bounds
    /// computation too, as Table VI charges it).
    fn from_parts(
        graph: Graph,
        profile: SystemProfile,
        tasks: PartitionBounds,
        t0: Instant,
    ) -> PreparedGraph {
        let coo = match profile.dense_layout {
            DenseLayout::Coo(order) => Some(PartitionedCoo::build(&graph, &tasks, order)),
            DenseLayout::CscPull => None,
        };
        let sub_csr = if profile.partitioned_sparse {
            Some(PartitionedSubCsr::build(&graph, &tasks))
        } else {
            None
        };
        let prep_time = t0.elapsed();
        PreparedGraph {
            core: Arc::new(PreparedCore {
                graph,
                profile,
                tasks,
                coo,
                sub_csr,
                prep_time,
            }),
            overlay: None,
            epoch: 0,
        }
    }

    /// Prepares a pinned epoch of a dynamic graph: the snapshot goes
    /// through the normal profile preparation, and the pin's delta
    /// overlay (when non-empty) rides along so traversals observe the
    /// buffered mutations.
    pub fn for_pin(pin: &PinnedEpoch, profile: SystemProfile) -> PreparedGraph {
        let prepared = PreparedGraph::new(pin.graph().clone(), profile);
        let overlay = if pin.is_dirty() {
            Some(pin.overlay().clone())
        } else {
            None
        };
        PreparedGraph {
            core: prepared.core,
            overlay,
            epoch: pin.epoch(),
        }
    }

    /// A handle over the same core with a different overlay and epoch —
    /// O(1), no layout rebuild. This is how a serving loop publishes a
    /// dirty epoch cheaply between compactions. `None` (or an empty
    /// overlay) restores pure-snapshot reads.
    pub fn with_overlay(&self, overlay: Option<Arc<DeltaOverlay>>, epoch: u64) -> PreparedGraph {
        let overlay = overlay.filter(|ov| !ov.is_empty());
        PreparedGraph {
            core: self.core.clone(),
            overlay,
            epoch,
        }
    }

    /// The delta overlay, when this handle describes a dirty epoch.
    pub fn overlay(&self) -> Option<&Arc<DeltaOverlay>> {
        self.overlay.as_ref()
    }

    /// The epoch this handle describes (0 for plain static preparation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Overlay-aware out-degree of `v`: the merged list's length for
    /// dirty vertices, the snapshot degree otherwise.
    pub fn out_degree(&self, v: vebo_graph::VertexId) -> usize {
        match &self.overlay {
            Some(ov) => ov.out_degree(&self.core.graph, v),
            None => self.core.graph.out_degree(v),
        }
    }

    /// Overlay-aware out-neighbor list of `v`.
    pub fn out_neighbors(&self, v: vebo_graph::VertexId) -> &[vebo_graph::VertexId] {
        match &self.overlay {
            Some(ov) => ov.out_neighbors(&self.core.graph, v),
            None => self.core.graph.out_neighbors(v),
        }
    }

    /// The underlying graph (the snapshot; ignores any overlay).
    pub fn graph(&self) -> &Graph {
        &self.core.graph
    }

    /// The CSR storage backing of the underlying graph —
    /// [`Mapped`](vebo_graph::StorageKind::Mapped) when the graph was
    /// loaded zero-copy from a memory-mapped `.vgr` file. Preparation is
    /// storage-agnostic: partition bounds, COO chunks, and sub-CSRs are
    /// derived identically from owned and mapped graphs, and every
    /// traversal kernel reads through flat slices either way.
    pub fn storage_kind(&self) -> vebo_graph::StorageKind {
        self.core.graph.storage_kind()
    }

    /// The profile this graph was prepared for.
    pub fn profile(&self) -> &SystemProfile {
        &self.core.profile
    }

    /// Dense-task destination ranges.
    pub fn tasks(&self) -> &PartitionBounds {
        &self.core.tasks
    }

    /// Number of dense tasks.
    pub fn num_tasks(&self) -> usize {
        self.core.tasks.num_partitions()
    }

    /// The COO layout, if this profile uses one.
    pub fn coo(&self) -> Option<&PartitionedCoo> {
        self.core.coo.as_ref()
    }

    /// The sub-CSR layout, if this profile uses one.
    pub fn sub_csr(&self) -> Option<&PartitionedSubCsr> {
        self.core.sub_csr.as_ref()
    }

    /// Layout construction time (the partitioning column of Table VI).
    pub fn prep_time(&self) -> Duration {
        self.core.prep_time
    }
}

/// Polymer's two-level split: edge-balanced partitioning by destination
/// into one partition per socket, then vertex-balanced subdivision of each
/// partition among the socket's threads. Thread-level imbalance inside a
/// socket is exactly where VEBO's vertex balance pays off (§V-F).
fn polymer_task_bounds(graph: &Graph, profile: &SystemProfile) -> PartitionBounds {
    let top = PartitionBounds::edge_balanced(graph, profile.topology.num_sockets);
    subdivide_for_threads(&top, &profile.topology)
}

/// Subdivides each socket-level partition into one vertex-balanced chunk
/// per thread of that socket (Polymer's intra-socket static split). Public
/// so harnesses can feed VEBO's *exact* phase-3 boundaries through the
/// same subdivision.
pub fn subdivide_for_threads(
    top: &PartitionBounds,
    topology: &vebo_partition::numa::NumaTopology,
) -> PartitionBounds {
    let per_socket = topology.threads_per_socket();
    let n = top.num_vertices();
    let mut starts = Vec::with_capacity(top.num_partitions() * per_socket + 1);
    for (_, range) in top.iter() {
        let len = range.len();
        for k in 0..per_socket {
            starts.push(range.start + k * len / per_socket);
        }
    }
    starts.push(n);
    PartitionBounds::from_starts(starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::Dataset;
    use vebo_partition::EdgeOrder;

    #[test]
    fn ligra_prepares_vertex_chunks_without_layouts() {
        let g = Dataset::YahooLike.build(0.05);
        let pg = PreparedGraph::new(g, SystemProfile::ligra_like());
        assert_eq!(pg.num_tasks(), 3072);
        assert!(pg.coo().is_none());
        assert!(pg.sub_csr().is_none());
    }

    #[test]
    fn polymer_prepares_48_static_tasks() {
        let g = Dataset::YahooLike.build(0.05);
        let pg = PreparedGraph::new(g, SystemProfile::polymer_like());
        assert_eq!(pg.num_tasks(), 48);
        assert!(pg.coo().is_none());
        assert!(pg.sub_csr().is_some());
        assert_eq!(pg.sub_csr().unwrap().num_partitions(), 48);
    }

    #[test]
    fn graphgrind_prepares_coo_and_subcsr() {
        let g = Dataset::YahooLike.build(0.05);
        let m = g.num_edges();
        let pg = PreparedGraph::new(g, SystemProfile::graphgrind_like(EdgeOrder::Hilbert));
        assert_eq!(pg.num_tasks(), 384);
        assert_eq!(pg.coo().unwrap().num_edges(), m);
        assert_eq!(pg.sub_csr().unwrap().num_edges(), m);
        assert!(pg.prep_time() > Duration::ZERO);
    }

    #[test]
    fn polymer_tasks_nest_in_socket_partitions() {
        let g = Dataset::LiveJournalLike.build(0.05);
        let top = PartitionBounds::edge_balanced(&g, 4);
        let pg = PreparedGraph::new(g, SystemProfile::polymer_like());
        // Every socket boundary must appear among the task boundaries.
        for &s in top.starts() {
            assert!(pg.tasks().starts().contains(&s), "boundary {s} lost");
        }
    }

    #[test]
    fn builder_uses_explicit_ranges() {
        let g = Dataset::YahooLike.build(0.05);
        let n = g.num_vertices();
        let bounds = PartitionBounds::vertex_balanced(n, 10);
        let pg = PreparedGraph::builder(g)
            .profile(SystemProfile::graphgrind_like(EdgeOrder::Csr))
            .bounds(bounds)
            .build()
            .unwrap();
        assert_eq!(pg.num_tasks(), 10);
    }

    #[test]
    fn builder_routes_vebo_starts_per_profile() {
        let g = Dataset::YahooLike.build(0.05);
        let n = g.num_vertices();
        // Fake "exact boundaries": 4 socket-level partitions.
        let starts: Vec<usize> = (0..=4).map(|p| p * n / 4).collect();

        // GraphGrind: boundaries become the bounds directly.
        let pg = PreparedGraph::builder(g.clone())
            .profile(SystemProfile::graphgrind_like(EdgeOrder::Csr))
            .vebo_starts(Some(&starts))
            .build()
            .unwrap();
        assert_eq!(pg.num_tasks(), 4);
        assert_eq!(pg.tasks().starts(), &starts[..]);

        // Polymer: socket boundaries are subdivided among 12 threads each.
        let pg = PreparedGraph::builder(g.clone())
            .profile(SystemProfile::polymer_like())
            .vebo_starts(Some(&starts))
            .build()
            .unwrap();
        assert_eq!(pg.num_tasks(), 48);
        for &s in &starts {
            assert!(pg.tasks().starts().contains(&s), "socket boundary {s} lost");
        }

        // Ligra: boundaries are irrelevant; Cilk-style vertex chunks.
        let pg = PreparedGraph::builder(g)
            .profile(SystemProfile::ligra_like())
            .vebo_starts(Some(&starts))
            .build()
            .unwrap();
        assert_eq!(pg.num_tasks(), 3072);
    }

    #[test]
    fn builder_compress_attaches_companion_to_both_halves() {
        let g = Dataset::LiveJournalLike.build(0.05);
        let pg = PreparedGraph::builder(g)
            .profile(SystemProfile::ligra_like())
            .compress(true)
            .build()
            .unwrap();
        assert_eq!(pg.storage_kind(), vebo_graph::StorageKind::Compressed);
        assert!(pg.graph().csr().compressed().is_some());
        assert!(pg.graph().csc().compressed().is_some());
        let stats = pg.graph().compression_stats().unwrap();
        assert!(stats.ratio() > 0.0);
    }

    #[test]
    fn builder_rejects_malformed_starts_with_typed_errors() {
        let g = Dataset::YahooLike.build(0.05);
        let n = g.num_vertices();
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);

        let err = PreparedGraph::builder(g.clone())
            .profile(profile)
            .vebo_starts(Some(vec![0, n / 2, n / 4, n]))
            .build()
            .unwrap_err();
        assert!(
            matches!(
                err,
                PrepareError::Bounds(vebo_partition::BoundsError::NotMonotonic { .. })
            ),
            "{err:?}"
        );

        let err = PreparedGraph::builder(g.clone())
            .profile(profile)
            .vebo_starts(Some(vec![0, n + 7]))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            PrepareError::Bounds(vebo_partition::BoundsError::VertexCountMismatch {
                expected: n,
                found: n + 7,
            })
        );

        let err = PreparedGraph::builder(g)
            .profile(SystemProfile::polymer_like())
            .vebo_starts(Some(vec![3, n]))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("first boundary"), "{err}");
    }
}
