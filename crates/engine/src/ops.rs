//! The edgemap operator interface (the paper's `edgemap` function, §IV).

use vebo_graph::VertexId;

/// One graph-algorithm step applied over edges whose source is active.
///
/// Implementations must be cheap and `Sync`; all mutable state lives in
/// atomics (see [`crate::shared`]).
///
/// # Contract
///
/// * [`EdgeOp::update`] is called from *pull-style* traversals where the
///   engine guarantees at most one thread touches a given destination —
///   plain (relaxed-atomic) reads/writes suffice.
/// * [`EdgeOp::update_atomic`] is called from *push-style* traversals
///   where multiple sources may hit the same destination concurrently; it
///   must be linearizable and must return `true` **at most once** per
///   destination per edgemap round (e.g. by CAS), since the return value
///   adds the destination to the next frontier.
/// * [`EdgeOp::cond`] gates destinations (Ligra's `cond`): pull traversal
///   stops scanning a destination's in-edges once it turns false.
pub trait EdgeOp: Sync {
    /// Pull-mode update; returns whether `dst` joins the next frontier.
    fn update(&self, src: VertexId, dst: VertexId, weight: f32) -> bool;

    /// Push-mode update; must be atomic and single-activation.
    fn update_atomic(&self, src: VertexId, dst: VertexId, weight: f32) -> bool;

    /// Whether `dst` still wants updates.
    fn cond(&self, _dst: VertexId) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountOp {
        hits: AtomicU64,
    }

    impl EdgeOp for CountOp {
        fn update(&self, _s: VertexId, _d: VertexId, _w: f32) -> bool {
            self.hits.fetch_add(1, Ordering::Relaxed);
            true
        }
        fn update_atomic(&self, s: VertexId, d: VertexId, w: f32) -> bool {
            self.update(s, d, w)
        }
    }

    #[test]
    fn default_cond_is_true() {
        let op = CountOp {
            hits: AtomicU64::new(0),
        };
        assert!(op.cond(0));
        assert!(op.update(0, 1, 1.0));
        assert_eq!(op.hits.load(Ordering::Relaxed), 1);
    }
}
