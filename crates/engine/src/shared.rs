//! Shared-state primitives for parallel graph traversal.
//!
//! All algorithm state in this workspace is stored in atomics so that
//! every traversal mode (sequential measured, rayon-parallel, push or
//! pull) is data-race free by construction — the same guarantee the
//! Cilk-based frameworks in the paper get from their runtime. On x86-64,
//! relaxed atomic loads/stores compile to plain moves, so the pull-mode
//! fast path pays nothing for this.

use std::sync::atomic::{AtomicU64, Ordering};

/// An `f64` stored in an `AtomicU64` via bit transmutation.
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// Creates with an initial value.
    pub fn new(v: f64) -> AtomicF64 {
        AtomicF64 {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    /// Relaxed load.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Relaxed store.
    #[inline]
    pub fn store(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomic `+= delta` via CAS loop; returns the *previous* value.
    #[inline]
    pub fn fetch_add(&self, delta: f64) -> f64 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(cur),
                Err(now) => cur = now,
            }
        }
    }

    /// Atomic minimum; returns `true` if the stored value was lowered.
    #[inline]
    pub fn fetch_min(&self, v: f64) -> bool {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) <= v {
                return false;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }
}

/// Allocates a slice of `AtomicF64` initialized to `v`.
pub fn atomic_f64_vec(n: usize, v: f64) -> Vec<AtomicF64> {
    (0..n).map(|_| AtomicF64::new(v)).collect()
}

/// Snapshots a slice of `AtomicF64` into plain values.
pub fn snapshot_f64(values: &[AtomicF64]) -> Vec<f64> {
    values.iter().map(|a| a.load()).collect()
}

/// A fixed-size concurrent bitset used for next-frontier construction.
#[derive(Debug)]
pub struct AtomicBitset {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitset {
    /// All-zeros bitset over `len` bits.
    pub fn new(len: usize) -> AtomicBitset {
        let words = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        AtomicBitset { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| w.load(Ordering::Relaxed) == 0)
    }

    /// Sets bit `i`; returns `true` if it was previously clear.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i & 63);
        let prev = self.words[i >> 6].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6].load(Ordering::Relaxed) & (1u64 << (i & 63)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Extracts the plain word array (consumes the atomic wrapper).
    pub fn into_words(self) -> Vec<u64> {
        self.words.into_iter().map(|w| w.into_inner()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_f64_roundtrip() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-2.25);
        assert_eq!(a.load(), -2.25);
    }

    #[test]
    fn fetch_add_accumulates() {
        let a = AtomicF64::new(1.0);
        assert_eq!(a.fetch_add(2.0), 1.0);
        assert_eq!(a.fetch_add(0.5), 3.0);
        assert_eq!(a.load(), 3.5);
    }

    #[test]
    fn fetch_add_is_correct_under_threads() {
        let a = AtomicF64::new(0.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        a.fetch_add(1.0);
                    }
                });
            }
        });
        assert_eq!(a.load(), 4000.0);
    }

    #[test]
    fn fetch_min_lowers_only() {
        let a = AtomicF64::new(5.0);
        assert!(a.fetch_min(3.0));
        assert!(!a.fetch_min(4.0));
        assert_eq!(a.load(), 3.0);
    }

    #[test]
    fn bitset_set_reports_first_setter() {
        let b = AtomicBitset::new(100);
        assert!(b.set(3));
        assert!(!b.set(3));
        assert!(b.get(3));
        assert!(!b.get(4));
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn bitset_boundaries() {
        let b = AtomicBitset::new(128);
        assert!(b.set(0));
        assert!(b.set(63));
        assert!(b.set(64));
        assert!(b.set(127));
        assert_eq!(b.count(), 4);
        let words = b.into_words();
        assert_eq!(words.len(), 2);
        assert_eq!(words[0], (1 << 0) | (1 << 63));
        assert_eq!(words[1], 1 | (1 << 63));
    }

    #[test]
    fn bitset_concurrent_single_winner() {
        let b = AtomicBitset::new(64);
        let winners: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8).map(|_| s.spawn(|| usize::from(b.set(7)))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            winners.iter().sum::<usize>(),
            1,
            "exactly one thread wins the set"
        );
    }

    #[test]
    fn helpers() {
        let v = atomic_f64_vec(3, 0.25);
        assert_eq!(snapshot_f64(&v), vec![0.25, 0.25, 0.25]);
    }
}
