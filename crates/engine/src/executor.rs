//! The [`Executor`]: one object that owns every execution policy of the
//! engine — parallelism mode, NUMA placement, scheduling, direction
//! selection, and instrumentation.
//!
//! Before the executor existed, execution policy was scattered: a
//! `parallel: bool` on `EdgeMapOptions` at every call site, NUMA topology
//! carried by [`SystemProfile`] but ignored at execution time, and
//! per-algorithm `RunReport` bookkeeping. The executor centralizes all of
//! it:
//!
//! * **Mode** ([`ExecMode`]) — sequential measured execution (the
//!   default: per-task wall times feed the scheduling simulator) or
//!   rayon-parallel execution, verified equivalent by property tests.
//! * **NUMA placement** — for statically scheduled profiles (Polymer,
//!   GraphGrind) the executor derives a
//!   [`PlacementPlan`](vebo_partition::PlacementPlan) from the profile's
//!   topology: every task is bound to the socket that owns its
//!   partition's arrays, tasks are visited in socket-major interleaved
//!   order (the per-socket thread teams advancing concurrently), and each
//!   task's [`TaskStats`] records its socket.
//! * **Scheduling** — the profile's policy drives
//!   [`Executor::simulated_seconds`] and every makespan conversion.
//! * **Instrumentation** — attached [`InstrumentSink`]s receive every
//!   operation; [`Executor::recorded`] is how algorithms accumulate a
//!   [`RunReport`] without hand-rolled bookkeeping.

use crate::edge_map::{edge_map_impl, EdgeMapReport, TaskStats};
use crate::frontier::Frontier;
use crate::instrument::{InstrumentSink, Recorder, RunReport};
use crate::ops::EdgeOp;
use crate::prepared::PreparedGraph;
use crate::profile::{Scheduling, SystemProfile};
use crate::sharded::{ShardOpReport, ShardedExecutor};
use crate::vertex_map::{vertex_map_impl, VertexMapReport};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;
use vebo_graph::VertexId;
use vebo_partition::numa::NumaTopology;

/// How an executor runs the tasks of one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One task at a time, each individually timed — the measurement mode
    /// whose per-task wall clocks feed the scheduling simulator. Default,
    /// and bit-reproducible run to run.
    #[default]
    Sequential,
    /// Tasks run on the rayon pool. Results are identical (property
    /// tested); per-task times become noisy under oversubscription, so
    /// use this for throughput, not for simulator input.
    Parallel,
    /// Tasks run on `shards` long-lived worker threads, each owning one
    /// shard of the task space with its own work queue and a
    /// work-stealing fallback — the serving backend (see
    /// [`crate::sharded`]). Results are identical to the other modes
    /// (conformance tested); selecting this mode spawns the workers,
    /// which are shared by every clone of the executor.
    Sharded {
        /// Number of shards (= worker threads); must be at least 1.
        shards: usize,
    },
}

/// Traversal direction policy for `edge_map`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Direction {
    /// Ligra's density heuristic decides per call (dense when
    /// `|F| + outdeg(F) > m / threshold_den`).
    #[default]
    Auto,
    /// Force the dense (backward) traversal.
    Dense,
    /// Force the sparse (forward) traversal.
    Sparse,
}

impl Direction {
    pub(crate) fn forced(self) -> Option<bool> {
        match self {
            Direction::Auto => None,
            Direction::Dense => Some(true),
            Direction::Sparse => Some(false),
        }
    }
}

/// Owns threading, NUMA placement, scheduling, and instrumentation for
/// every `edge_map`/`vertex_map`. Construct one per [`SystemProfile`] and
/// pass it to the algorithms (`vebo-algorithms` signatures all take
/// `&Executor`).
///
/// ```
/// use vebo_engine::{Executor, PreparedGraph, SystemProfile};
///
/// let g = vebo_graph::Dataset::YahooLike.build(0.05);
/// let profile = SystemProfile::polymer_like();
/// let exec = Executor::new(profile);
/// let pg = PreparedGraph::builder(g).profile(profile).build().unwrap();
/// // Polymer is statically scheduled: every task has a socket.
/// let plan = exec.placement(pg.num_tasks()).unwrap();
/// assert_eq!(plan.num_tasks(), pg.num_tasks());
/// ```
#[derive(Clone)]
pub struct Executor {
    profile: SystemProfile,
    mode: ExecMode,
    direction: Direction,
    threshold_den: usize,
    numa_placement: bool,
    sinks: Vec<Arc<dyn InstrumentSink>>,
    /// Long-lived worker pool, present exactly when `mode` is
    /// [`ExecMode::Sharded`]; shared (`Arc`) by every clone.
    pool: Option<Arc<ShardedExecutor>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("profile", &self.profile.kind)
            .field("mode", &self.mode)
            .field("direction", &self.direction)
            .field("threshold_den", &self.threshold_den)
            .field("numa_placement", &self.numa_placement)
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Executor {
    /// An executor for `profile`: sequential measured mode, automatic
    /// direction selection, Ligra's `|E|/20` density threshold, and NUMA
    /// placement on for statically scheduled profiles.
    pub fn new(profile: SystemProfile) -> Executor {
        Executor {
            profile,
            mode: ExecMode::default(),
            direction: Direction::default(),
            threshold_den: 20,
            numa_placement: true,
            sinks: Vec::new(),
            pool: None,
        }
    }

    /// A sharded serving executor for `profile`: shorthand for
    /// `Executor::new(profile).with_mode(ExecMode::Sharded { shards })`.
    /// Spawns the `shards` long-lived workers immediately.
    pub fn sharded(profile: SystemProfile, shards: usize) -> Executor {
        Executor::new(profile).with_mode(ExecMode::Sharded { shards })
    }

    /// The profile this executor schedules for.
    pub fn profile(&self) -> &SystemProfile {
        &self.profile
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Selects sequential (measured), rayon-parallel, or sharded
    /// execution. Selecting [`ExecMode::Sharded`] spawns the worker pool
    /// (long-lived threads shared by every clone of this executor);
    /// selecting any other mode drops this executor's reference to a
    /// previously spawned pool.
    pub fn with_mode(mut self, mode: ExecMode) -> Executor {
        self.mode = mode;
        self.pool = match mode {
            ExecMode::Sharded { shards } => Some(Arc::new(ShardedExecutor::spawn(shards))),
            _ => None,
        };
        self
    }

    /// Overrides the direction policy for every `edge_map` this executor
    /// runs (tests and ablations; the default heuristic is [`Direction::Auto`]).
    pub fn with_direction(mut self, direction: Direction) -> Executor {
        self.direction = direction;
        self
    }

    /// Overrides Ligra's density-threshold denominator (default 20).
    pub fn with_threshold_den(mut self, den: usize) -> Executor {
        assert!(den >= 1);
        self.threshold_den = den;
        self
    }

    /// Enables or disables NUMA placement (default: enabled; it only
    /// engages on statically scheduled profiles). Disabling reverts to
    /// unplaced task order — results are identical, property tested.
    pub fn with_numa_placement(mut self, on: bool) -> Executor {
        self.numa_placement = on;
        self
    }

    /// Attaches an instrumentation sink; every subsequent operation is
    /// forwarded to it (in addition to any sinks already attached).
    pub fn with_sink(mut self, sink: Arc<dyn InstrumentSink>) -> Executor {
        self.sinks.push(sink);
        self
    }

    /// A clone of this executor with a fresh [`Recorder`] attached —
    /// the standard way algorithms accumulate their [`RunReport`]:
    ///
    /// ```ignore
    /// let (exec, rec) = caller_exec.recorded();
    /// /* exec.edge_map(...) as many times as needed */
    /// let report: RunReport = rec.take();
    /// ```
    pub fn recorded(&self) -> (Executor, Arc<Recorder>) {
        let rec = Arc::new(Recorder::new());
        let exec = self.clone().with_sink(rec.clone());
        (exec, rec)
    }

    /// The NUMA placement plan this executor uses for an operation of
    /// `num_tasks` tasks: `Some` for statically scheduled profiles
    /// (Polymer, GraphGrind) with placement enabled — every task gets a
    /// socket — and `None` for dynamically scheduled ones (Ligra), whose
    /// work stealing defeats static binding.
    pub fn placement(&self, num_tasks: usize) -> Option<vebo_partition::PlacementPlan> {
        self.placement_topology()
            .map(|topo| topo.placement_plan(num_tasks))
    }

    /// Simulated runtime of `report` in seconds on this profile's
    /// machine: its thread count and scheduling policy.
    pub fn simulated_seconds(&self, report: &RunReport) -> f64 {
        report.simulated_nanos(self.profile.topology.num_threads, self.profile.scheduling) / 1e9
    }

    /// As [`Executor::simulated_seconds`] under the deterministic work
    /// model (cost = edges + destination vertices) instead of measured
    /// wall time.
    pub fn simulated_work(&self, report: &RunReport) -> f64 {
        report.simulated_work(self.profile.topology.num_threads, self.profile.scheduling)
    }

    /// Applies `op` over every edge whose source is in `frontier`,
    /// choosing the traversal by this executor's direction policy;
    /// returns the next frontier and the per-task report (also forwarded
    /// to the attached sinks).
    pub fn edge_map<O: EdgeOp>(
        &self,
        pg: &PreparedGraph,
        frontier: &Frontier,
        op: &O,
    ) -> (Frontier, EdgeMapReport) {
        self.edge_map_in(pg, frontier, op, self.direction)
    }

    /// As [`Executor::edge_map`] with an explicit direction for this one
    /// call (algorithms that are inherently dense — PR, SPMV, BP — force
    /// [`Direction::Dense`]).
    pub fn edge_map_in<O: EdgeOp>(
        &self,
        pg: &PreparedGraph,
        frontier: &Frontier,
        op: &O,
        direction: Direction,
    ) -> (Frontier, EdgeMapReport) {
        let (out, report) = edge_map_impl(
            pg,
            frontier,
            op,
            direction.forced(),
            self.threshold_den,
            &self.task_policy(),
        );
        if !self.sinks.is_empty() {
            // Classifying sums active out-degrees (O(|frontier|)); only
            // pay for it when someone is listening.
            let class = frontier.density_class(pg.graph());
            for sink in &self.sinks {
                sink.record_edge_map(class, &report);
                if let Some(shards) = &report.shards {
                    sink.record_shard_op(shards);
                }
            }
        }
        (out, report)
    }

    /// Applies `f` to each active vertex; the output frontier contains
    /// the vertices for which `f` returned `true`. The report is also
    /// forwarded to the attached sinks.
    pub fn vertex_map<F>(
        &self,
        pg: &PreparedGraph,
        frontier: &Frontier,
        f: F,
    ) -> (Frontier, VertexMapReport)
    where
        F: Fn(VertexId) -> bool + Sync,
    {
        let (out, report) = vertex_map_impl(pg, frontier, f, &self.task_policy());
        for sink in &self.sinks {
            sink.record_vertex_map(&report);
            if let Some(shards) = &report.shards {
                sink.record_shard_op(shards);
            }
        }
        (out, report)
    }

    /// [`Executor::vertex_map`] over all vertices (dense initialization
    /// passes).
    pub fn vertex_map_all<F>(&self, pg: &PreparedGraph, f: F) -> (Frontier, VertexMapReport)
    where
        F: Fn(VertexId) -> bool + Sync,
    {
        let all = Frontier::all(pg.graph().num_vertices());
        self.vertex_map(pg, &all, f)
    }

    fn placement_topology(&self) -> Option<NumaTopology> {
        (self.numa_placement && self.profile.scheduling == Scheduling::Static)
            .then_some(self.profile.topology)
    }

    fn task_policy(&self) -> TaskPolicy<'_> {
        TaskPolicy {
            exec: match (self.mode, &self.pool) {
                (ExecMode::Sharded { .. }, Some(pool)) => TaskExec::Sharded(pool),
                (ExecMode::Parallel, _) => TaskExec::Rayon,
                _ => TaskExec::Sequential,
            },
            placement: self.placement_topology(),
        }
    }
}

/// Which backend runs one operation's tasks.
enum TaskExec<'a> {
    Sequential,
    Rayon,
    Sharded(&'a ShardedExecutor),
}

/// How one operation's tasks execute: resolved from the executor, passed
/// into the traversal kernels.
pub(crate) struct TaskPolicy<'a> {
    exec: TaskExec<'a>,
    placement: Option<NumaTopology>,
}

impl TaskPolicy<'_> {
    /// Runs `num_tasks` tasks, timing each; `f(task) -> (edges, vertices)`.
    /// With a placement topology, the sequential and rayon backends visit
    /// tasks in the plan's socket-major interleaved order, the sharded
    /// backend splits them into socket-aligned shards; all three stamp
    /// each task's socket. Returns the per-task stats plus the per-shard
    /// report when the sharded backend ran.
    pub(crate) fn run<F>(&self, num_tasks: usize, f: F) -> (Vec<TaskStats>, Option<ShardOpReport>)
    where
        F: Fn(usize) -> (u64, u64) + Sync,
    {
        if let TaskExec::Sharded(pool) = &self.exec {
            let (stats, report) = pool.run_tasks(num_tasks, self.placement.as_ref(), f);
            return (stats, Some(report));
        }
        let parallel = matches!(self.exec, TaskExec::Rayon);
        let timed = |t: usize| {
            let t0 = Instant::now();
            let (edges, vertices) = f(t);
            TaskStats {
                nanos: t0.elapsed().as_nanos() as u64,
                edges,
                vertices,
                socket: 0,
            }
        };
        let stats = match &self.placement {
            None => {
                if parallel {
                    (0..num_tasks).into_par_iter().map(timed).collect()
                } else {
                    (0..num_tasks).map(timed).collect()
                }
            }
            Some(topo) => {
                let plan = topo.placement_plan(num_tasks);
                let order = plan.execution_order();
                let mut stats = vec![TaskStats::default(); num_tasks];
                if parallel {
                    let done: Vec<(usize, TaskStats)> =
                        order.par_iter().map(|&t| (t, timed(t))).collect();
                    for (t, s) in done {
                        stats[t] = s;
                    }
                } else {
                    for &t in &order {
                        stats[t] = timed(t);
                    }
                }
                for (t, s) in stats.iter_mut().enumerate() {
                    s.socket = plan.socket_of(t) as u32;
                }
                stats
            }
        };
        (stats, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SystemKind;
    use std::sync::atomic::{AtomicU32, Ordering};
    use vebo_graph::Dataset;
    use vebo_partition::EdgeOrder;

    struct ParentOp {
        parent: Vec<AtomicU32>,
    }

    impl ParentOp {
        fn new(n: usize) -> ParentOp {
            ParentOp {
                parent: (0..n).map(|_| AtomicU32::new(u32::MAX)).collect(),
            }
        }
    }

    impl EdgeOp for ParentOp {
        fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
            if self.parent[dst as usize].load(Ordering::Relaxed) == u32::MAX {
                self.parent[dst as usize].store(src, Ordering::Relaxed);
                true
            } else {
                false
            }
        }
        fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
            self.parent[dst as usize]
                .compare_exchange(u32::MAX, src, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        }
        fn cond(&self, dst: VertexId) -> bool {
            self.parent[dst as usize].load(Ordering::Relaxed) == u32::MAX
        }
    }

    #[test]
    fn static_profiles_place_every_task() {
        for profile in [
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Csr),
        ] {
            let exec = Executor::new(profile);
            let plan = exec.placement(96).expect("static profiles are placed");
            assert_eq!(plan.num_tasks(), 96);
            for t in 0..96 {
                assert!(plan.socket_of(t) < profile.topology.num_sockets);
            }
        }
        assert!(Executor::new(SystemProfile::ligra_like())
            .placement(96)
            .is_none());
    }

    #[test]
    fn reports_tag_tasks_with_sockets() {
        let g = Dataset::YahooLike.build(0.05);
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
        let exec = Executor::new(profile);
        let pg = PreparedGraph::builder(g.clone())
            .profile(profile)
            .build()
            .unwrap();
        let n = g.num_vertices();
        let op = ParentOp::new(n);
        let (_, report) = exec.edge_map_in(&pg, &Frontier::all(n), &op, Direction::Dense);
        let plan = exec.placement(report.tasks.len()).unwrap();
        for (t, stats) in report.tasks.iter().enumerate() {
            assert_eq!(stats.socket as usize, plan.socket_of(t));
        }
        // All four sockets appear.
        let mut seen: Vec<u32> = report.tasks.iter().map(|t| t.socket).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn placement_does_not_change_results() {
        let g = Dataset::LiveJournalLike.build(0.03);
        let n = g.num_vertices();
        let profile = SystemProfile::polymer_like();
        let mut outputs = Vec::new();
        for placed in [true, false] {
            let exec = Executor::new(profile).with_numa_placement(placed);
            let pg = PreparedGraph::builder(g.clone())
                .profile(profile)
                .build()
                .unwrap();
            let op = ParentOp::new(n);
            op.parent[0].store(0, Ordering::Relaxed);
            let (out, _) = exec.edge_map(&pg, &Frontier::single(n, 0), &op);
            let mut got: Vec<VertexId> = out.iter_active().collect();
            got.sort_unstable();
            outputs.push(got);
        }
        assert_eq!(outputs[0], outputs[1]);
    }

    #[test]
    fn recorded_executor_accumulates_a_run_report() {
        let g = Dataset::YahooLike.build(0.03);
        let n = g.num_vertices();
        let profile = SystemProfile::ligra_like();
        let base = Executor::new(profile);
        let (exec, rec) = base.recorded();
        let pg = PreparedGraph::builder(g).profile(profile).build().unwrap();
        let op = ParentOp::new(n);
        op.parent[0].store(0, Ordering::Relaxed);
        let (next, _) = exec.edge_map(&pg, &Frontier::single(n, 0), &op);
        let (_, _) = exec.vertex_map(&pg, &next, |_| true);
        let report = rec.take();
        assert_eq!(report.iterations, 1);
        assert_eq!(report.edge_maps.len(), 1);
        assert_eq!(report.vertex_maps.len(), 1);
        // The base executor was not mutated.
        assert_eq!(base.sinks.len(), 0);
    }

    #[test]
    fn parallel_mode_matches_sequential() {
        let g = Dataset::LiveJournalLike.build(0.03);
        let n = g.num_vertices();
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
        let pg = PreparedGraph::builder(g).profile(profile).build().unwrap();
        let seeds: Vec<VertexId> = (0..50).map(|i| i * 13 % n as u32).collect();
        let mut outputs = Vec::new();
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let exec = Executor::new(profile).with_mode(mode);
            let op = ParentOp::new(n);
            for &s in &seeds {
                op.parent[s as usize].store(s, Ordering::Relaxed);
            }
            let f = Frontier::from_vertices(n, seeds.clone());
            let (out, _) = exec.edge_map(&pg, &f, &op);
            let mut got: Vec<VertexId> = out.iter_active().collect();
            got.sort_unstable();
            outputs.push(got);
        }
        assert_eq!(outputs[0], outputs[1]);
    }

    #[test]
    fn debug_format_names_the_profile() {
        let exec = Executor::new(SystemProfile::ligra_like());
        let s = format!("{exec:?}");
        assert!(s.contains("LigraLike"), "{s}");
        assert_eq!(exec.profile().kind, SystemKind::LigraLike);
    }
}
