//! Fully-associative LRU TLB simulator (Figure 4d, Table V "TLB" columns).

/// TLB geometry.
#[derive(Clone, Copy, Debug)]
pub struct TlbConfig {
    /// Page size in bytes (4 KiB default).
    pub page_bytes: usize,
    /// Number of entries (typical L2 DTLB scale).
    pub entries: usize,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            page_bytes: 4096,
            entries: 64,
        }
    }
}

/// Fully-associative LRU TLB.
#[derive(Clone, Debug)]
pub struct TlbSim {
    page_shift: u32,
    /// `(page, stamp)` pairs; linear scan is fine at 64 entries.
    slots: Vec<(u64, u64)>,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl TlbSim {
    /// Builds the simulator.
    pub fn new(cfg: TlbConfig) -> TlbSim {
        assert!(cfg.page_bytes.is_power_of_two() && cfg.entries >= 1);
        TlbSim {
            page_shift: cfg.page_bytes.trailing_zeros(),
            slots: Vec::with_capacity(cfg.entries),
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Simulates one access; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.clock += 1;
        let page = addr >> self.page_shift;
        if let Some(slot) = self.slots.iter_mut().find(|(p, _)| *p == page) {
            slot.1 = self.clock;
            return true;
        }
        self.misses += 1;
        if self.slots.len() < self.slots.capacity() {
            self.slots.push((page, self.clock));
        } else {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
                .unwrap();
            self.slots[victim] = (page, self.clock);
        }
        false
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = TlbSim::new(TlbConfig::default());
        assert!(!t.access(0x1000));
        assert!(t.access(0x1FFF));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut t = TlbSim::new(TlbConfig {
            page_bytes: 4096,
            entries: 2,
        });
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // touch page 0
        t.access(0x2000); // page 2 evicts page 1
        assert!(t.access(0x0000));
        assert!(!t.access(0x1000));
    }

    #[test]
    fn strided_scan_within_64_pages_hits_after_warmup() {
        let mut t = TlbSim::new(TlbConfig::default());
        for _ in 0..3 {
            for p in 0..64u64 {
                t.access(p * 4096);
            }
        }
        assert_eq!(t.misses(), 64);
    }

    #[test]
    fn random_large_footprint_thrashes() {
        let mut t = TlbSim::new(TlbConfig::default());
        let mut x = 7u64;
        for _ in 0..10_000 {
            x = vebo_graph::graph::mix64(x);
            t.access((x % (1 << 20)) * 4096);
        }
        assert!(t.misses() as f64 / t.accesses() as f64 > 0.9);
    }
}
