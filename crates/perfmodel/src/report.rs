//! Per-thread micro-architectural report, in the units the paper plots
//! (misses per thousand instructions).

/// Counters for one simulated thread.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ThreadReport {
    /// Modeled instruction count.
    pub instructions: u64,
    /// Memory accesses issued to the cache model.
    pub cache_accesses: u64,
    /// Cache misses whose home socket matches the thread's socket.
    pub local_misses: u64,
    /// Cache misses homed on another socket.
    pub remote_misses: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Branch mispredictions.
    pub branch_mispredicts: u64,
    /// Branches executed.
    pub branches: u64,
}

impl ThreadReport {
    fn per_ki(&self, count: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            count as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Local LLC misses per thousand instructions (Fig. 4b).
    pub fn local_mpki(&self) -> f64 {
        self.per_ki(self.local_misses)
    }

    /// Remote LLC misses per thousand instructions (Fig. 4c).
    pub fn remote_mpki(&self) -> f64 {
        self.per_ki(self.remote_misses)
    }

    /// TLB misses per thousand instructions (Fig. 4d).
    pub fn tlb_mki(&self) -> f64 {
        self.per_ki(self.tlb_misses)
    }

    /// Branch mispredictions per thousand instructions (Fig. 4e).
    pub fn branch_mpki(&self) -> f64 {
        self.per_ki(self.branch_mispredicts)
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &ThreadReport) {
        self.instructions += other.instructions;
        self.cache_accesses += other.cache_accesses;
        self.local_misses += other.local_misses;
        self.remote_misses += other.remote_misses;
        self.tlb_misses += other.tlb_misses;
        self.branch_mispredicts += other.branch_mispredicts;
        self.branches += other.branches;
    }
}

/// Averages a set of per-thread MPKI values (the "Average Values" lines
/// in Figure 4's captions).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_math() {
        let r = ThreadReport {
            instructions: 10_000,
            cache_accesses: 5_000,
            local_misses: 50,
            remote_misses: 20,
            tlb_misses: 10,
            branch_mispredicts: 5,
            branches: 2_000,
        };
        assert!((r.local_mpki() - 5.0).abs() < 1e-12);
        assert!((r.remote_mpki() - 2.0).abs() < 1e-12);
        assert!((r.tlb_mki() - 1.0).abs() < 1e-12);
        assert!((r.branch_mpki() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_instructions_is_zero_mpki() {
        let r = ThreadReport::default();
        assert_eq!(r.local_mpki(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ThreadReport {
            instructions: 10,
            local_misses: 1,
            ..Default::default()
        };
        let b = ThreadReport {
            instructions: 5,
            local_misses: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 15);
        assert_eq!(a.local_misses, 3);
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean([]), 0.0);
    }
}
