//! A hardware stream prefetcher model.
//!
//! The paper's §V-G observes — without a microarchitectural explanation —
//! that CSR edge order beats Hilbert order on the high-degree partitions
//! ("for high-degree vertices the CSR order is more efficient than
//! Hilbert order"). The plausible mechanism is the L2/LLC *stream
//! prefetcher* every Xeon ships: CSR order walks the source-value array
//! in long monotone runs that a stream prefetcher covers for free, while
//! Hilbert order hops between curve quadrants and defeats it. This module
//! supplies the missing piece so the claim can be tested rather than
//! asserted: a classic stride-1 stream table in front of [`CacheSim`].
//!
//! The model is the textbook one: a small LRU table of recent access
//! streams; a stream whose next-line prediction comes true twice gains
//! confidence and triggers prefetches of the following `degree` lines.

use crate::cache::CacheSim;

/// Prefetcher geometry.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchConfig {
    /// Tracked concurrent streams.
    pub streams: usize,
    /// Lines fetched ahead once a stream is confirmed.
    pub degree: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        // 16 streams x 4-line degree: the common Intel configuration
        // order of magnitude.
        PrefetchConfig {
            streams: 16,
            degree: 4,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct StreamEntry {
    last_line: u64,
    /// +1, -1, or 0 while the direction is unknown.
    dir: i64,
    confidence: u8,
    stamp: u64,
}

/// The stream-table prefetcher. Feed it every demand access; it returns
/// the lines to fill.
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    cfg: PrefetchConfig,
    entries: Vec<StreamEntry>,
    clock: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// A prefetcher with the given geometry.
    pub fn new(cfg: PrefetchConfig) -> StreamPrefetcher {
        assert!(cfg.streams >= 1 && cfg.degree >= 1);
        StreamPrefetcher {
            cfg,
            entries: Vec::with_capacity(cfg.streams),
            clock: 0,
            issued: 0,
        }
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Observes a demand access to `line`; appends the lines to prefetch
    /// to `out` (not cleared).
    pub fn observe(&mut self, line: u64, out: &mut Vec<u64>) {
        self.clock += 1;
        // 0. Re-access of a stream's current line (consecutive edges of
        // the same source): refresh, don't disturb.
        for e in &mut self.entries {
            if e.last_line == line {
                e.stamp = self.clock;
                return;
            }
        }
        // 1. A confirmed or forming stream whose prediction matches?
        for e in &mut self.entries {
            let predicted = e.dir != 0 && e.last_line.wrapping_add_signed(e.dir) == line;
            if predicted {
                e.confidence = e.confidence.saturating_add(1);
                e.last_line = line;
                e.stamp = self.clock;
                if e.confidence >= 2 {
                    for k in 1..=self.cfg.degree as i64 {
                        out.push(line.wrapping_add_signed(e.dir * k));
                        self.issued += 1;
                    }
                }
                return;
            }
        }
        // 2. An undirected entry one line away? Establish the direction.
        for e in &mut self.entries {
            if e.dir == 0 && line.abs_diff(e.last_line) == 1 {
                e.dir = if line > e.last_line { 1 } else { -1 };
                e.confidence = 1;
                e.last_line = line;
                e.stamp = self.clock;
                return;
            }
        }
        // 3. Allocate (or steal the LRU entry).
        let entry = StreamEntry {
            last_line: line,
            dir: 0,
            confidence: 0,
            stamp: self.clock,
        };
        if self.entries.len() < self.cfg.streams {
            self.entries.push(entry);
        } else {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .unwrap();
            self.entries[lru] = entry;
        }
    }
}

/// A cache fronted by a stream prefetcher: demand accesses train the
/// stream table, and predicted lines are filled so the *next* access to
/// them hits.
#[derive(Clone, Debug)]
pub struct PrefetchingCache {
    cache: CacheSim,
    prefetcher: StreamPrefetcher,
    scratch: Vec<u64>,
}

impl PrefetchingCache {
    /// Wraps `cache` with a prefetcher of the given geometry.
    pub fn new(cache: CacheSim, cfg: PrefetchConfig) -> PrefetchingCache {
        PrefetchingCache {
            cache,
            prefetcher: StreamPrefetcher::new(cfg),
            scratch: Vec::new(),
        }
    }

    /// One demand access; returns `true` on hit. Trains the prefetcher
    /// and fills its predictions afterwards.
    pub fn access(&mut self, addr: u64) -> bool {
        let hit = self.cache.access(addr);
        let shift = self.cache.line_shift();
        self.scratch.clear();
        self.prefetcher.observe(addr >> shift, &mut self.scratch);
        for i in 0..self.scratch.len() {
            self.cache.fill(self.scratch[i] << shift);
        }
        hit
    }

    /// Demand accesses so far.
    pub fn accesses(&self) -> u64 {
        self.cache.accesses()
    }

    /// Demand misses so far.
    pub fn misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Demand miss ratio.
    pub fn miss_rate(&self) -> f64 {
        self.cache.miss_rate()
    }

    /// Prefetches issued so far.
    pub fn prefetches(&self) -> u64 {
        self.prefetcher.issued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    fn cache() -> CacheSim {
        CacheSim::new(CacheConfig::default())
    }

    #[test]
    fn sequential_stream_is_nearly_free() {
        let mut with = PrefetchingCache::new(cache(), PrefetchConfig::default());
        let mut without = cache();
        for addr in (0..256 * 1024u64).step_by(64) {
            with.access(addr);
            without.access(addr);
        }
        // Without prefetching every line cold-misses; with it only the
        // first few do before the stream locks on.
        assert_eq!(without.misses(), 4096);
        assert!(
            with.misses() < 16,
            "prefetched stream missed {}",
            with.misses()
        );
        assert!(with.prefetches() > 0);
    }

    #[test]
    fn descending_stream_is_covered_too() {
        let mut with = PrefetchingCache::new(cache(), PrefetchConfig::default());
        for i in (0..1024u64).rev() {
            with.access(i * 64);
        }
        assert!(
            with.misses() < 16,
            "descending stream missed {}",
            with.misses()
        );
    }

    #[test]
    fn random_stream_gains_nothing_and_loses_nothing() {
        use vebo_graph::mix64;
        let mut with = PrefetchingCache::new(cache(), PrefetchConfig::default());
        let mut without = cache();
        for i in 0..20_000u64 {
            // Random lines across a 256 MiB footprint: no streams.
            let addr = (mix64(i) % (1 << 28)) & !63;
            with.access(addr);
            without.access(addr);
        }
        let w = with.misses() as f64;
        let wo = without.misses() as f64;
        assert!((w - wo).abs() / wo < 0.05, "with {w} without {wo}");
    }

    #[test]
    fn interleaved_streams_tracked_independently() {
        // Four interleaved sequential streams in distant regions: the
        // 16-entry table must cover all of them.
        let mut with = PrefetchingCache::new(cache(), PrefetchConfig::default());
        let bases = [0u64, 1 << 24, 2 << 24, 3 << 24];
        for step in 0..1024u64 {
            for &b in &bases {
                with.access(b + step * 64);
            }
        }
        assert!(
            with.misses() < 64,
            "interleaved streams missed {}",
            with.misses()
        );
    }

    #[test]
    fn stream_table_capacity_limits_coverage() {
        // 32 interleaved streams overflow a 4-entry table: most accesses
        // miss because entries are stolen before gaining confidence.
        let small = PrefetchConfig {
            streams: 4,
            degree: 4,
        };
        let mut with = PrefetchingCache::new(cache(), small);
        let bases: Vec<u64> = (0..32u64).map(|i| i << 24).collect();
        for step in 0..256u64 {
            for &b in &bases {
                with.access(b + step * 64);
            }
        }
        let total = with.accesses();
        assert!(
            with.misses() * 2 > total / 2,
            "4-entry table should not cover 32 streams: {} misses of {}",
            with.misses(),
            total
        );
    }

    #[test]
    fn prefetch_fills_do_not_count_as_demand() {
        let mut with = PrefetchingCache::new(cache(), PrefetchConfig::default());
        for addr in (0..4096u64).step_by(64) {
            with.access(addr);
        }
        assert_eq!(with.accesses(), 64);
    }

    #[test]
    #[should_panic]
    fn zero_streams_rejected() {
        StreamPrefetcher::new(PrefetchConfig {
            streams: 0,
            degree: 4,
        });
    }
}
