//! Branch prediction model for the inner edge loop (Figure 4e).
//!
//! §V-E attributes VEBO's branch-MPKI reduction to degree sorting: "the
//! loop iteration count is determined by the degree. In the VEBO graph,
//! subsequent vertices have the same degree, which makes this branch
//! highly predictable." We model exactly that mechanism: a trip-count
//! predictor for the loop-exit branch that predicts the previous vertex's
//! trip count, plus perfect prediction of the loop-back branch.

/// Trip-count loop predictor for one static loop site.
#[derive(Clone, Debug, Default)]
pub struct LoopPredictor {
    last_trip: Option<u64>,
    branches: u64,
    mispredicts: u64,
}

impl LoopPredictor {
    /// Creates the predictor.
    pub fn new() -> LoopPredictor {
        LoopPredictor::default()
    }

    /// Simulates one full execution of the loop with `trip` iterations:
    /// `trip` taken back-edges plus one exit. The exit mispredicts iff the
    /// trip count differs from the previous execution's.
    pub fn run_loop(&mut self, trip: u64) {
        self.branches += trip + 1;
        if self.last_trip != Some(trip) {
            self.mispredicts += 1;
        }
        self.last_trip = Some(trip);
    }

    /// Branches executed.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Mispredictions.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }
}

/// Convenience: mispredictions incurred by running the loop over an
/// entire degree sequence in order.
pub fn mispredicts_for_sequence(degrees: impl IntoIterator<Item = u64>) -> (u64, u64) {
    let mut p = LoopPredictor::new();
    for d in degrees {
        p.run_loop(d);
    }
    (p.mispredicts(), p.branches())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trips_mispredict_once() {
        let (miss, branches) = mispredicts_for_sequence([5, 5, 5, 5]);
        assert_eq!(miss, 1);
        assert_eq!(branches, 4 * 6);
    }

    #[test]
    fn alternating_trips_mispredict_every_time() {
        let (miss, _) = mispredicts_for_sequence([3, 7, 3, 7, 3]);
        assert_eq!(miss, 5);
    }

    #[test]
    fn sorted_degree_runs_are_cheap() {
        // VEBO's within-partition degree sorting: 1000 vertices in 10
        // degree classes -> at most 10 mispredicts.
        let degrees = (0..10u64).flat_map(|d| std::iter::repeat_n(10 - d, 100));
        let (miss, _) = mispredicts_for_sequence(degrees);
        assert_eq!(miss, 10);
    }

    #[test]
    fn shuffled_degrees_are_expensive() {
        // Same multiset, interleaved: ~every vertex mispredicts.
        let mut degrees = Vec::new();
        for i in 0..1000u64 {
            degrees.push(1 + (i * 7919) % 10);
        }
        let (miss, _) = mispredicts_for_sequence(degrees.iter().copied());
        assert!(miss > 800, "miss = {miss}");
    }
}
