//! Simulated NUMA memory layout: which socket "homes" each byte.
//!
//! Polymer and GraphGrind allocate per-vertex arrays distributed by graph
//! partition (partition `p`'s slice lives on `p`'s socket); edge arrays
//! live with their partition. A miss whose home socket differs from the
//! accessing thread's socket counts as a *remote* miss (Figure 4c,
//! Table V).

use vebo_graph::VertexId;
use vebo_partition::numa::NumaTopology;
use vebo_partition::PartitionBounds;

/// Base addresses of the simulated arrays (1 TiB apart: they never alias
/// in the cache simulators' tag space).
pub const DST_VALUES_BASE: u64 = 0x0100_0000_0000;
/// Base address of the source-value array.
pub const SRC_VALUES_BASE: u64 = 0x0200_0000_0000;
/// Base address of the edge array.
pub const EDGE_ARRAY_BASE: u64 = 0x0300_0000_0000;

/// Bytes per per-vertex value (one `f64`).
pub const VALUE_BYTES: u64 = 8;
/// Bytes per edge entry (one `u32` neighbor id).
pub const EDGE_BYTES: u64 = 4;

/// The address/home model shared by the trace generators.
#[derive(Clone, Debug)]
pub struct NumaLayout {
    bounds: PartitionBounds,
    topology: NumaTopology,
}

impl NumaLayout {
    /// Builds a layout from partition bounds and machine topology.
    pub fn new(bounds: PartitionBounds, topology: NumaTopology) -> NumaLayout {
        NumaLayout { bounds, topology }
    }

    /// The partition bounds.
    pub fn bounds(&self) -> &PartitionBounds {
        &self.bounds
    }

    /// The topology.
    pub fn topology(&self) -> &NumaTopology {
        &self.topology
    }

    /// Address of destination-side value `v` (rank accumulator etc.).
    #[inline]
    pub fn dst_value_addr(&self, v: VertexId) -> u64 {
        DST_VALUES_BASE + v as u64 * VALUE_BYTES
    }

    /// Address of source-side value `u` (contribution array etc.).
    #[inline]
    pub fn src_value_addr(&self, u: VertexId) -> u64 {
        SRC_VALUES_BASE + u as u64 * VALUE_BYTES
    }

    /// Address of the `k`-th entry of the flat edge array.
    #[inline]
    pub fn edge_addr(&self, k: u64) -> u64 {
        EDGE_ARRAY_BASE + k * EDGE_BYTES
    }

    /// Home socket of a per-vertex value: the socket owning the vertex's
    /// partition (arrays are distributed by partition).
    #[inline]
    pub fn home_of_vertex(&self, v: VertexId) -> usize {
        let p = self.bounds.partition_of(v);
        self.topology
            .socket_of_partition(p, self.bounds.num_partitions())
    }

    /// Home socket of partition `p`'s edge storage.
    #[inline]
    pub fn home_of_partition(&self, p: usize) -> usize {
        self.topology
            .socket_of_partition(p, self.bounds.num_partitions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_do_not_alias() {
        let b = PartitionBounds::vertex_balanced(1000, 8);
        let l = NumaLayout::new(b, NumaTopology::default());
        assert!(l.dst_value_addr(999) < SRC_VALUES_BASE);
        assert!(l.src_value_addr(999) < EDGE_ARRAY_BASE);
    }

    #[test]
    fn vertex_homes_follow_partitions() {
        let b = PartitionBounds::vertex_balanced(400, 4);
        let l = NumaLayout::new(b, NumaTopology::default());
        assert_eq!(l.home_of_vertex(0), 0);
        assert_eq!(l.home_of_vertex(150), 1);
        assert_eq!(l.home_of_vertex(399), 3);
    }

    #[test]
    fn partition_homes_are_contiguous_blocks() {
        let b = PartitionBounds::vertex_balanced(3840, 384);
        let l = NumaLayout::new(b, NumaTopology::default());
        assert_eq!(l.home_of_partition(0), 0);
        assert_eq!(l.home_of_partition(95), 0);
        assert_eq!(l.home_of_partition(96), 1);
        assert_eq!(l.home_of_partition(383), 3);
    }

    #[test]
    fn addresses_are_dense_per_vertex() {
        let b = PartitionBounds::vertex_balanced(16, 2);
        let l = NumaLayout::new(b, NumaTopology::default());
        assert_eq!(l.dst_value_addr(1) - l.dst_value_addr(0), VALUE_BYTES);
        assert_eq!(l.edge_addr(1) - l.edge_addr(0), EDGE_BYTES);
    }
}
