//! # vebo-perfmodel
//!
//! Micro-architecture simulators standing in for the hardware performance
//! counters the paper reads with `perf` on its 4-socket Xeon (Figure 4,
//! Table V):
//!
//! * [`cache`] — set-associative LRU last-level cache;
//! * [`tlb`] — fully-associative LRU TLB;
//! * [`branch`] — trip-count predictor for the inner edge-loop branch
//!   (the mechanism behind VEBO's branch-MPKI reduction, §V-E);
//! * [`prefetch`] — stream prefetcher in front of the cache (the
//!   mechanism behind §V-G's CSR-beats-Hilbert finding on high-degree
//!   partitions);
//! * [`layout`] — simulated NUMA memory layout (arrays distributed by
//!   graph partition), classifying misses as local or remote;
//! * [`trace`] — replays the engine's traversal orders through the
//!   simulators to produce per-thread MPKI reports;
//! * [`report`] — MPKI bookkeeping.
//!
//! The simulators see the *exact* access streams the engine's traversals
//! generate, so ordering effects (VEBO vs original vs Gorder; Hilbert vs
//! CSR edge order) show up in the statistics just as they do in the
//! paper's hardware measurements.

#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod layout;
pub mod prefetch;
pub mod report;
pub mod tlb;
pub mod trace;

pub use cache::{CacheConfig, CacheSim};
pub use layout::NumaLayout;
pub use prefetch::{PrefetchConfig, PrefetchingCache, StreamPrefetcher};
pub use report::{mean, ThreadReport};
pub use tlb::{TlbConfig, TlbSim};
pub use trace::{simulate_edgemap_coo, simulate_edgemap_pull, simulate_vertexmap, SimConfig};
