//! Trace generation: replays the engine's exact traversal orders through
//! the cache/TLB/branch simulators, producing the per-thread statistics of
//! Figure 4 and Table V.
//!
//! The instruction-count model is deliberately simple and documented:
//! `IPV` instructions of per-vertex overhead plus `IPE` per edge for
//! edgemap, `IPV` per vertex for vertexmap. MPKI values are therefore
//! comparable *between orderings and layouts* (same model on both sides),
//! which is all the paper's figures use them for.

use crate::branch::LoopPredictor;
use crate::cache::{CacheConfig, CacheSim};
use crate::layout::NumaLayout;
use crate::prefetch::{PrefetchConfig, StreamPrefetcher};
use crate::report::ThreadReport;
use crate::tlb::{TlbConfig, TlbSim};
use vebo_graph::{Graph, VertexId};
use vebo_partition::partitioned::PartitionedCoo;

/// Instructions charged per vertex visited.
pub const IPV: u64 = 8;
/// Instructions charged per edge traversed.
pub const IPE: u64 = 6;

/// Simulator configuration (cache + TLB geometry, optional stream
/// prefetcher — see [`crate::prefetch`] for the §V-G mechanism it
/// exposes).
#[derive(Clone, Copy, Debug, Default)]
pub struct SimConfig {
    /// Cache geometry.
    pub cache: CacheConfig,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// Optional stream prefetcher (`None` = disabled).
    pub prefetch: Option<PrefetchConfig>,
}

/// One simulated hardware thread.
struct ThreadSim {
    socket: usize,
    cache: CacheSim,
    prefetcher: Option<StreamPrefetcher>,
    scratch: Vec<u64>,
    tlb: TlbSim,
    branch: LoopPredictor,
    report: ThreadReport,
}

impl ThreadSim {
    fn new(cfg: &SimConfig, socket: usize) -> ThreadSim {
        ThreadSim {
            socket,
            cache: CacheSim::new(cfg.cache),
            prefetcher: cfg.prefetch.map(StreamPrefetcher::new),
            scratch: Vec::new(),
            tlb: TlbSim::new(cfg.tlb),
            branch: LoopPredictor::new(),
            report: ThreadReport::default(),
        }
    }

    #[inline]
    fn access(&mut self, addr: u64, home: usize) {
        self.report.cache_accesses += 1;
        if !self.cache.access(addr) {
            if home == self.socket {
                self.report.local_misses += 1;
            } else {
                self.report.remote_misses += 1;
            }
        }
        if let Some(pf) = &mut self.prefetcher {
            let shift = self.cache.line_shift();
            self.scratch.clear();
            pf.observe(addr >> shift, &mut self.scratch);
            for i in 0..self.scratch.len() {
                self.cache.fill(self.scratch[i] << shift);
            }
        }
        if !self.tlb.access(addr) {
            self.report.tlb_misses += 1;
        }
    }

    fn finish(mut self) -> ThreadReport {
        self.report.branches = self.branch.branches();
        self.report.branch_mispredicts = self.branch.mispredicts();
        self.report
    }
}

/// Simulates a dense pull edgemap (CSC traversal): for each destination in
/// the thread's partitions, scan its in-edges, reading the source value
/// and writing the destination accumulator.
pub fn simulate_edgemap_pull(g: &Graph, layout: &NumaLayout, cfg: &SimConfig) -> Vec<ThreadReport> {
    let topo = layout.topology();
    let bounds = layout.bounds();
    let p_total = bounds.num_partitions();
    let csc = g.csc();
    (0..topo.num_threads)
        .map(|t| {
            let mut sim = ThreadSim::new(cfg, topo.socket_of_thread(t));
            for p in topo.partitions_of_thread(t, p_total) {
                let edge_home = layout.home_of_partition(p);
                for v in bounds.range(p) {
                    let v = v as VertexId;
                    let deg = csc.degree(v) as u64;
                    sim.report.instructions += IPV + IPE * deg;
                    sim.branch.run_loop(deg);
                    sim.access(layout.dst_value_addr(v), layout.home_of_vertex(v));
                    let base = csc.edge_start(v) as u64;
                    for (k, &u) in csc.neighbors(v).iter().enumerate() {
                        sim.access(layout.edge_addr(base + k as u64), edge_home);
                        sim.access(layout.src_value_addr(u), layout.home_of_vertex(u));
                    }
                }
            }
            sim.finish()
        })
        .collect()
}

/// Simulates a dense COO edgemap (GraphGrind layout): stream each
/// partition's edge chunk in its stored order (CSR or Hilbert), reading
/// the source value and updating the destination value per edge.
pub fn simulate_edgemap_coo(
    coo: &PartitionedCoo,
    layout: &NumaLayout,
    cfg: &SimConfig,
) -> Vec<ThreadReport> {
    let topo = layout.topology();
    let p_total = coo.num_partitions();
    assert_eq!(p_total, layout.bounds().num_partitions());
    // Global edge-array base offset of each partition.
    let mut edge_base = vec![0u64; p_total + 1];
    for p in 0..p_total {
        edge_base[p + 1] = edge_base[p] + coo.partition_len(p) as u64;
    }
    (0..topo.num_threads)
        .map(|t| {
            let mut sim = ThreadSim::new(cfg, topo.socket_of_thread(t));
            for p in topo.partitions_of_thread(t, p_total) {
                let (src, dst) = coo.partition_edges(p);
                let edge_home = layout.home_of_partition(p);
                sim.report.instructions += IPV + IPE * src.len() as u64;
                sim.branch.run_loop(src.len() as u64);
                for e in 0..src.len() {
                    // One access covers the (src, dst) pair: SoA streams
                    // move in lockstep through the same cache lines.
                    sim.access(layout.edge_addr(edge_base[p] + e as u64), edge_home);
                    sim.access(layout.src_value_addr(src[e]), layout.home_of_vertex(src[e]));
                    sim.access(layout.dst_value_addr(dst[e]), layout.home_of_vertex(dst[e]));
                }
            }
            sim.finish()
        })
        .collect()
}

/// Simulates a vertexmap: iterations are spread *equally* across threads
/// (GraphGrind's behaviour, §V-F) while the value arrays stay distributed
/// by partition — vertex imbalance between partitions therefore turns
/// into remote accesses.
pub fn simulate_vertexmap(g: &Graph, layout: &NumaLayout, cfg: &SimConfig) -> Vec<ThreadReport> {
    let topo = layout.topology();
    let n = g.num_vertices();
    (0..topo.num_threads)
        .map(|t| {
            let mut sim = ThreadSim::new(cfg, topo.socket_of_thread(t));
            let lo = t * n / topo.num_threads;
            let hi = (t + 1) * n / topo.num_threads;
            for v in lo..hi {
                let v = v as VertexId;
                sim.report.instructions += IPV;
                sim.access(layout.dst_value_addr(v), layout.home_of_vertex(v));
            }
            sim.finish()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::mean;
    use vebo_core::Vebo;
    use vebo_graph::{Dataset, VertexOrdering};
    use vebo_partition::numa::NumaTopology;
    use vebo_partition::{EdgeOrder, PartitionBounds};

    fn layout_for(g: &Graph, p: usize) -> NumaLayout {
        NumaLayout::new(
            PartitionBounds::edge_balanced(g, p),
            NumaTopology::default(),
        )
    }

    #[test]
    fn pull_instruction_model_is_exact() {
        let g = Dataset::YahooLike.build(0.02);
        let n = g.num_vertices() as u64;
        let m = g.num_edges() as u64;
        let reports = simulate_edgemap_pull(&g, &layout_for(&g, 48), &SimConfig::default());
        let total: u64 = reports.iter().map(|r| r.instructions).sum();
        assert_eq!(total, IPV * n + IPE * m);
    }

    #[test]
    fn vertexmap_covers_every_vertex_once() {
        let g = Dataset::YahooLike.build(0.02);
        let reports = simulate_vertexmap(&g, &layout_for(&g, 48), &SimConfig::default());
        let total: u64 = reports.iter().map(|r| r.instructions).sum();
        assert_eq!(total, IPV * g.num_vertices() as u64);
    }

    #[test]
    fn vebo_reduces_branch_mispredicts() {
        // §V-E / Fig 4e: degree sorting makes the edge-loop branch
        // predictable.
        // 48 partitions at this scale give each partition long
        // same-degree runs (the paper's full-size graphs have thousands
        // of vertices per partition even at P = 384).
        let g = Dataset::TwitterLike.build(0.2);
        let perm = Vebo::new(48).compute(&g);
        let h = perm.apply_graph(&g);
        let cfg = SimConfig::default();
        let orig = simulate_edgemap_pull(&g, &layout_for(&g, 48), &cfg);
        let vebo = simulate_edgemap_pull(&h, &layout_for(&h, 48), &cfg);
        let orig_bm = mean(orig.iter().map(|r| r.branch_mpki()));
        let vebo_bm = mean(vebo.iter().map(|r| r.branch_mpki()));
        assert!(
            vebo_bm < orig_bm / 2.0,
            "branch MPKI: original {orig_bm:.3} vs VEBO {vebo_bm:.3}"
        );
    }

    #[test]
    fn vebo_reduces_vertexmap_remote_misses() {
        // Table V: VEBO equalizes vertices per partition, so the equal
        // spread of vertexmap iterations lines up with the NUMA placement.
        // P = 48 satisfies the balance preconditions at this scale (the
        // integration test `claim_vertexmap_remote_misses_drop` covers
        // P = 384 at a larger scale).
        let g = Dataset::TwitterLike.build(0.2);
        let res = Vebo::new(48).compute_full(&g);
        let h = res.permutation.apply_graph(&g);
        let cfg = SimConfig::default();
        let topo = NumaTopology::default();
        let orig_layout = NumaLayout::new(PartitionBounds::edge_balanced(&g, 48), topo);
        let vebo_layout = NumaLayout::new(PartitionBounds::from_starts(res.starts.clone()), topo);
        let orig = simulate_vertexmap(&g, &orig_layout, &cfg);
        let vebo = simulate_vertexmap(&h, &vebo_layout, &cfg);
        let orig_remote: u64 = orig.iter().map(|r| r.remote_misses).sum();
        let vebo_remote: u64 = vebo.iter().map(|r| r.remote_misses).sum();
        assert!(
            vebo_remote * 2 < orig_remote.max(1),
            "remote misses: original {orig_remote} vs VEBO {vebo_remote}"
        );
    }

    #[test]
    fn coo_totals_cover_all_edges() {
        let g = Dataset::YahooLike.build(0.02);
        let bounds = PartitionBounds::edge_balanced(&g, 48);
        let coo = PartitionedCoo::build(&g, &bounds, EdgeOrder::Hilbert);
        let layout = NumaLayout::new(bounds, NumaTopology::default());
        let reports = simulate_edgemap_coo(&coo, &layout, &SimConfig::default());
        let total: u64 = reports.iter().map(|r| r.cache_accesses).sum();
        assert_eq!(total, 3 * g.num_edges() as u64);
    }

    #[test]
    fn prefetcher_widens_csr_advantage_over_hilbert() {
        // The §V-G mechanism: under the high-to-low order, the CSR-order
        // COO walks the source-value array in long monotone runs a stream
        // prefetcher covers; Hilbert order hops between curve quadrants.
        // Enabling the prefetcher must therefore help CSR order more.
        use vebo_baselines_shim::degree_sort;
        let g0 = Dataset::TwitterLike.build(0.2);
        let g = degree_sort(&g0);
        let bounds = PartitionBounds::edge_balanced(&g, 48);
        let topo = NumaTopology::default();
        let misses = |order: EdgeOrder, prefetch: bool| -> u64 {
            let cfg = SimConfig {
                prefetch: prefetch.then(crate::prefetch::PrefetchConfig::default),
                ..Default::default()
            };
            let coo = PartitionedCoo::build(&g, &bounds, order);
            simulate_edgemap_coo(&coo, &NumaLayout::new(bounds.clone(), topo), &cfg)
                .iter()
                .map(|r| r.local_misses + r.remote_misses)
                .sum()
        };
        let csr_off = misses(EdgeOrder::Csr, false) as f64;
        let csr_on = misses(EdgeOrder::Csr, true) as f64;
        let hil_off = misses(EdgeOrder::Hilbert, false) as f64;
        let hil_on = misses(EdgeOrder::Hilbert, true) as f64;
        let csr_benefit = csr_off / csr_on;
        let hil_benefit = hil_off / hil_on;
        assert!(
            csr_benefit > hil_benefit,
            "prefetch benefit: CSR {csr_benefit:.3}x vs Hilbert {hil_benefit:.3}x"
        );
        // And with the prefetcher on (as on real hardware), CSR order
        // outright beats Hilbert — the §V-G observation.
        assert!(
            csr_on < hil_on,
            "with prefetch: CSR {csr_on} vs Hilbert {hil_on}"
        );
    }

    // Minimal local copy of the high-to-low sort to avoid a dev-dependency
    // on vebo-baselines (which would create a cycle through vebo-bench).
    mod vebo_baselines_shim {
        use vebo_graph::degree::vertices_by_decreasing_in_degree;
        use vebo_graph::{Graph, Permutation};
        pub fn degree_sort(g: &Graph) -> Graph {
            let order = vertices_by_decreasing_in_degree(g);
            Permutation::from_order(&order).unwrap().apply_graph(g)
        }
    }

    #[test]
    fn hilbert_beats_shuffled_coo_on_misses() {
        // Hilbert-ordered edges must miss less than the same edges in a
        // locality-free order. Compare against a graph with shuffled ids
        // traversed in CSR order (destination stream is then random).
        let g = Dataset::OrkutLike.build(0.1);
        let bounds = PartitionBounds::edge_balanced(&g, 4);
        let topo = NumaTopology::default();
        let cfg = SimConfig::default();
        let hil = PartitionedCoo::build(&g, &bounds, EdgeOrder::Hilbert);
        let hil_reports = simulate_edgemap_coo(&hil, &NumaLayout::new(bounds.clone(), topo), &cfg);
        let shuffled = vebo_graph::gen::random_permutation(g.num_vertices(), 5).apply_graph(&g);
        let sb = PartitionBounds::edge_balanced(&shuffled, 4);
        let rnd = PartitionedCoo::build(&shuffled, &sb, EdgeOrder::Csr);
        let rnd_reports = simulate_edgemap_coo(&rnd, &NumaLayout::new(sb, topo), &cfg);
        let hil_miss: u64 = hil_reports
            .iter()
            .map(|r| r.local_misses + r.remote_misses)
            .sum();
        let rnd_miss: u64 = rnd_reports
            .iter()
            .map(|r| r.local_misses + r.remote_misses)
            .sum();
        assert!(
            hil_miss < rnd_miss,
            "hilbert {hil_miss} vs shuffled-csr {rnd_miss}"
        );
    }
}
