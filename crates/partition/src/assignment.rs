//! General (non-contiguous) vertex-to-partition assignments.
//!
//! Algorithm 1 and VEBO produce *contiguous* partitions ([`PartitionBounds`]),
//! which is what shared-memory systems want (§VI: "the best performing
//! systems ensure that each partition contains vertices with consecutive
//! vertex IDs"). Distributed partitioners — hash, LDG, Fennel, METIS-style
//! multilevel — assign arbitrary vertices to parts instead. This module is
//! the common currency between the two worlds: an arbitrary assignment,
//! quality metrics over it, and the *relabeling* permutation that turns an
//! arbitrary assignment into a contiguous one (the "additional vertex
//! relabeling" §VI says METIS needs before a shared-memory system can use
//! it).

use crate::by_destination::PartitionBounds;
use vebo_graph::{Graph, Permutation, VertexId};

/// A mapping `vertex -> partition` with no contiguity requirement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexAssignment {
    part: Vec<u32>,
    num_partitions: usize,
}

/// Quality metrics of a [`VertexAssignment`] on a given graph, the
/// quantities distributed partitioners optimize (§VI).
#[derive(Clone, Debug, PartialEq)]
pub struct AssignmentQuality {
    /// Arcs whose endpoints live in different partitions.
    pub cut_edges: u64,
    /// Total arcs.
    pub total_edges: u64,
    /// Total communication volume: over all vertices, the number of
    /// *distinct remote* partitions holding at least one out-neighbour
    /// (the messages a vertex's value must be shipped to per superstep).
    pub comm_volume: u64,
    /// Average partitions touched per vertex with out-edges (PowerGraph's
    /// replication factor; 1.0 = no replication).
    pub replication_factor: f64,
    /// max − min vertices per partition.
    pub vertex_spread: usize,
    /// max − min in-edges per partition.
    pub edge_spread: u64,
    /// max/avg vertices per partition (1.0 = perfect).
    pub vertex_imbalance: f64,
    /// max/avg in-edges per partition (1.0 = perfect).
    pub edge_imbalance: f64,
}

impl AssignmentQuality {
    /// Fraction of arcs cut.
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }
}

impl VertexAssignment {
    /// Wraps an explicit assignment. Every entry must be `< num_partitions`.
    pub fn new(part: Vec<u32>, num_partitions: usize) -> VertexAssignment {
        assert!(num_partitions >= 1);
        assert!(
            part.iter().all(|&p| (p as usize) < num_partitions),
            "assignment references a partition >= {num_partitions}"
        );
        VertexAssignment {
            part,
            num_partitions,
        }
    }

    /// The assignment induced by contiguous bounds.
    pub fn from_bounds(bounds: &PartitionBounds) -> VertexAssignment {
        let mut part = vec![0u32; bounds.num_vertices()];
        for (p, range) in bounds.iter() {
            for v in range {
                part[v] = p as u32;
            }
        }
        VertexAssignment {
            part,
            num_partitions: bounds.num_partitions(),
        }
    }

    /// Number of partitions (some may be empty).
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Number of vertices covered.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.part.len()
    }

    /// Partition of vertex `v`.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> u32 {
        self.part[v as usize]
    }

    /// The raw `vertex -> partition` slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.part
    }

    /// Vertices per partition.
    pub fn vertex_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_partitions];
        for &p in &self.part {
            counts[p as usize] += 1;
        }
        counts
    }

    /// In-edges per partition (edges belong to their destination's
    /// partition, matching Algorithm 1's partitioning by destination).
    pub fn edge_counts(&self, g: &Graph) -> Vec<u64> {
        assert_eq!(g.num_vertices(), self.part.len());
        let mut counts = vec![0u64; self.num_partitions];
        for v in g.vertices() {
            counts[self.part[v as usize] as usize] += g.in_degree(v) as u64;
        }
        counts
    }

    /// The permutation that relabels vertices so partition 0's vertices
    /// come first, then partition 1's, … — stable (by old id) within each
    /// partition — together with the resulting contiguous bounds. This is
    /// the step that makes a METIS-style partition consumable by the
    /// shared-memory systems of the paper.
    pub fn relabeling(&self) -> (Permutation, PartitionBounds) {
        let counts = self.vertex_counts();
        let mut next = Vec::with_capacity(self.num_partitions + 1);
        next.push(0usize);
        for (i, &c) in counts.iter().enumerate() {
            next.push(next[i] + c);
        }
        let starts = next.clone();
        let mut new_id = vec![0 as VertexId; self.part.len()];
        for (v, &p) in self.part.iter().enumerate() {
            new_id[v] = next[p as usize] as VertexId;
            next[p as usize] += 1;
        }
        let perm = Permutation::from_new_ids(new_id).expect("relabeling is a bijection");
        (perm, PartitionBounds::from_starts(starts))
    }

    /// Computes all quality metrics in `O(n + m)` (stamp array for the
    /// distinct-partition counts).
    pub fn quality(&self, g: &Graph) -> AssignmentQuality {
        assert_eq!(g.num_vertices(), self.part.len());
        let mut cut_edges = 0u64;
        let mut comm_volume = 0u64;
        let mut replicas = 0u64;
        let mut sources = 0u64;
        let mut stamp: Vec<u32> = vec![u32::MAX; self.num_partitions];
        for u in g.vertices() {
            let pu = self.part[u as usize];
            let nbrs = g.out_neighbors(u);
            if nbrs.is_empty() {
                continue;
            }
            sources += 1;
            let mut remote = 0u64;
            // Stamp with the source vertex id: each partition counted once
            // per source, no per-source reset needed.
            for &v in nbrs {
                let pv = self.part[v as usize];
                if pv != pu {
                    cut_edges += 1;
                }
                if stamp[pv as usize] != u {
                    stamp[pv as usize] = u;
                    if pv != pu {
                        remote += 1;
                    }
                }
            }
            // A vertex is replicated into its home partition plus every
            // remote partition it sends to.
            replicas += remote + 1;
            comm_volume += remote;
        }
        let vcounts = self.vertex_counts();
        let ecounts = self.edge_counts(g);
        let (vmax, vmin) = (
            *vcounts.iter().max().unwrap(),
            *vcounts.iter().min().unwrap(),
        );
        let (emax, emin) = (
            *ecounts.iter().max().unwrap(),
            *ecounts.iter().min().unwrap(),
        );
        let vavg = self.part.len() as f64 / self.num_partitions as f64;
        let eavg = g.num_edges() as f64 / self.num_partitions as f64;
        AssignmentQuality {
            cut_edges,
            total_edges: g.num_edges() as u64,
            comm_volume,
            replication_factor: replicas as f64 / sources.max(1) as f64,
            vertex_spread: vmax - vmin,
            edge_spread: emax - emin,
            vertex_imbalance: if vavg > 0.0 { vmax as f64 / vavg } else { 1.0 },
            edge_imbalance: if eavg > 0.0 { emax as f64 / eavg } else { 1.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::Dataset;

    #[test]
    fn from_bounds_round_trips() {
        let g = Dataset::LiveJournalLike.build(0.05);
        let b = PartitionBounds::edge_balanced(&g, 16);
        let a = VertexAssignment::from_bounds(&b);
        assert_eq!(a.num_partitions(), 16);
        for (p, r) in b.iter() {
            for v in r {
                assert_eq!(a.partition_of(v as VertexId), p as u32);
            }
        }
    }

    #[test]
    fn relabeling_of_contiguous_assignment_is_identity() {
        let g = Dataset::YahooLike.build(0.05);
        let b = PartitionBounds::edge_balanced(&g, 8);
        let a = VertexAssignment::from_bounds(&b);
        let (perm, bounds) = a.relabeling();
        assert!(perm.is_identity());
        assert_eq!(bounds, b);
    }

    #[test]
    fn relabeling_makes_partitions_contiguous() {
        // Interleaved assignment 0,1,0,1,...
        let part: Vec<u32> = (0..10).map(|v| v % 2).collect();
        let a = VertexAssignment::new(part, 2);
        let (perm, bounds) = a.relabeling();
        assert_eq!(bounds.range(0), 0..5);
        assert_eq!(bounds.range(1), 5..10);
        // Even old ids -> 0..5 stable, odd -> 5..10 stable.
        assert_eq!(perm.new_id(0), 0);
        assert_eq!(perm.new_id(2), 1);
        assert_eq!(perm.new_id(1), 5);
        assert_eq!(perm.new_id(9), 9);
    }

    #[test]
    fn quality_on_two_triangles() {
        // Two triangles joined by one edge; the natural split cuts 1 arc
        // each way.
        let g = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
            false,
        );
        let a = VertexAssignment::new(vec![0, 0, 0, 1, 1, 1], 2);
        let q = a.quality(&g);
        assert_eq!(q.cut_edges, 2); // 2->3 and 3->2 (symmetrized)
        assert_eq!(q.comm_volume, 2); // vertex 2 ships to p1, vertex 3 to p0
        assert_eq!(q.vertex_spread, 0);
        assert!((q.cut_fraction() - 2.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn replication_factor_matches_star() {
        // Hub 0 with out-edges into both partitions: replicated twice.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)], true);
        let a = VertexAssignment::new(vec![0, 0, 1, 1], 2);
        let q = a.quality(&g);
        // Only vertex 0 has out-edges: 1 home + 1 remote partition.
        assert!((q.replication_factor - 2.0).abs() < 1e-12);
        assert_eq!(q.comm_volume, 1);
        assert_eq!(q.cut_edges, 2);
    }

    #[test]
    fn single_partition_is_free() {
        let g = Dataset::OrkutLike.build(0.05);
        let a = VertexAssignment::new(vec![0; g.num_vertices()], 1);
        let q = a.quality(&g);
        assert_eq!(q.cut_edges, 0);
        assert_eq!(q.comm_volume, 0);
        assert!((q.replication_factor - 1.0).abs() < 1e-12);
        assert!((q.edge_imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_counts_sum_to_total() {
        let g = Dataset::TwitterLike.build(0.05);
        let part: Vec<u32> = g.vertices().map(|v| v % 7).collect();
        let a = VertexAssignment::new(part, 7);
        assert_eq!(a.edge_counts(&g).iter().sum::<u64>(), g.num_edges() as u64);
        assert_eq!(a.vertex_counts().iter().sum::<usize>(), g.num_vertices());
    }

    #[test]
    fn relabeled_graph_preserves_quality() {
        // Relabeling is an isomorphism: the contiguous version must have
        // the same cut metrics as the original assignment.
        let g = Dataset::LiveJournalLike.build(0.05);
        let part: Vec<u32> = g
            .vertices()
            .map(|v| (v as u64 * 2654435761 % 5) as u32)
            .collect();
        let a = VertexAssignment::new(part, 5);
        let q = a.quality(&g);
        let (perm, bounds) = a.relabeling();
        let h = perm.apply_graph(&g);
        let b = VertexAssignment::from_bounds(&bounds);
        let qb = b.quality(&h);
        assert_eq!(q.cut_edges, qb.cut_edges);
        assert_eq!(q.comm_volume, qb.comm_volume);
        assert_eq!(q.vertex_spread, qb.vertex_spread);
        assert_eq!(q.edge_spread, qb.edge_spread);
    }

    #[test]
    #[should_panic(expected = "partition >=")]
    fn out_of_range_partition_rejected() {
        VertexAssignment::new(vec![0, 3], 3);
    }
}
