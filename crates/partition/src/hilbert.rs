//! Hilbert space-filling curve over the adjacency matrix.
//!
//! GraphGrind traverses COO edges in Hilbert order to improve temporal
//! locality on dense frontiers (§IV, \[11\], \[12\]); §V-G of the paper studies
//! when this beats plain CSR order. The curve maps an edge `(src, dst)` —
//! a cell of the adjacency matrix — to a 1-D index such that consecutive
//! indices are adjacent cells, keeping both the source and destination
//! working sets small during traversal.

/// Maps matrix coordinates `(x, y)` within a `2^order x 2^order` grid to
/// the Hilbert curve index. Classic bit-twiddling formulation; `O(order)`.
pub fn xy_to_d(order: u32, mut x: u64, mut y: u64) -> u64 {
    debug_assert!(order <= 32);
    let side = 1u64 << order;
    debug_assert!(x < side && y < side);
    let mut d: u64 = 0;
    let mut s = side >> 1;
    while s > 0 {
        let rx = u64::from(x & s > 0);
        let ry = u64::from(y & s > 0);
        d += s * s * ((3 * rx) ^ ry);
        rotate(side, &mut x, &mut y, rx, ry);
        s >>= 1;
    }
    d
}

/// Inverse of [`xy_to_d`].
pub fn d_to_xy(order: u32, mut d: u64) -> (u64, u64) {
    let side = 1u64 << order;
    let (mut x, mut y) = (0u64, 0u64);
    let mut s = 1u64;
    while s < side {
        let rx = 1 & (d / 2);
        let ry = 1 & (d ^ rx);
        rotate(s, &mut x, &mut y, rx, ry);
        x += s * rx;
        y += s * ry;
        d /= 4;
        s <<= 1;
    }
    (x, y)
}

#[inline]
fn rotate(n: u64, x: &mut u64, y: &mut u64, rx: u64, ry: u64) {
    if ry == 0 {
        if rx == 1 {
            *x = n.wrapping_sub(1).wrapping_sub(*x);
            *y = n.wrapping_sub(1).wrapping_sub(*y);
        }
        std::mem::swap(x, y);
    }
}

/// The smallest curve order whose grid covers `n` points per side.
pub fn order_for(n: usize) -> u32 {
    let mut order = 0u32;
    while (1usize << order) < n {
        order += 1;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_quadrant_of_order2() {
        // The classic formulation visits (0,0) (1,0) (1,1) (0,1) in the
        // first quadrant (a "U" opening upward).
        assert_eq!(d_to_xy(2, 0), (0, 0));
        assert_eq!(d_to_xy(2, 1), (1, 0));
        assert_eq!(d_to_xy(2, 2), (1, 1));
        assert_eq!(d_to_xy(2, 3), (0, 1));
    }

    #[test]
    fn roundtrip_order4() {
        for x in 0..16 {
            for y in 0..16 {
                let d = xy_to_d(4, x, y);
                assert_eq!(d_to_xy(4, d), (x, y), "({x},{y})");
            }
        }
    }

    #[test]
    fn curve_is_a_bijection() {
        let mut seen = vec![false; 256];
        for x in 0..16 {
            for y in 0..16 {
                let d = xy_to_d(4, x, y) as usize;
                assert!(!seen[d], "duplicate index {d}");
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn consecutive_indices_are_grid_neighbors() {
        // The defining property: successive curve points differ by exactly
        // one step in one coordinate.
        let mut prev = d_to_xy(5, 0);
        for d in 1..(1u64 << 10) {
            let cur = d_to_xy(5, d);
            let dist = prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1);
            assert_eq!(dist, 1, "jump at d = {d}");
            prev = cur;
        }
    }

    #[test]
    fn order_for_sizes() {
        assert_eq!(order_for(1), 0);
        assert_eq!(order_for(2), 1);
        assert_eq!(order_for(3), 2);
        assert_eq!(order_for(1024), 10);
        assert_eq!(order_for(1025), 11);
    }

    #[test]
    fn locality_beats_row_major() {
        // Average working-set jump along the curve should be much smaller
        // than along row-major order for the same grid.
        let order = 6;
        let side = 1u64 << order;
        let mut hilbert_jump = 0u64;
        let mut prev = d_to_xy(order, 0);
        for d in 1..side * side {
            let cur = d_to_xy(order, d);
            hilbert_jump += prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1);
            prev = cur;
        }
        // Hilbert steps are all unit distance: total = side^2 - 1. Row-major
        // pays a size-`side` jump at every row end on top of its unit
        // steps, so Hilbert is strictly better.
        assert_eq!(hilbert_jump, side * side - 1);
        let row_major_jump = (side * side - 1) + (side - 1) * (side - 1);
        assert!(hilbert_jump < row_major_jump);
    }
}
