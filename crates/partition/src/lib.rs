//! # vebo-partition
//!
//! Graph partitioning for shared-memory graph processing, as used in the
//! VEBO paper:
//!
//! * [`by_destination`] — "Algorithm 1": locality-preserving edge-balanced
//!   partitioning of the destination vertices into contiguous chunks;
//! * [`stats`] — per-partition edge/vertex/source statistics (Figures 1
//!   and 4, Table IV);
//! * [`hilbert`] — Hilbert space-filling curve indexing of the adjacency
//!   matrix (§V-G);
//! * [`edge_order`] — COO edge orderings (CSR order vs Hilbert order);
//! * [`partitioned`] — materialized per-partition layouts: COO chunks for
//!   dense traversal and compact per-partition sub-CSRs for sparse
//!   traversal;
//! * [`numa`] — partition-to-socket mapping for the simulated NUMA
//!   machine;
//! * [`shard`] — derivation of serving-executor shards as unions of
//!   whole partitions, socket-block aligned;
//! * [`assignment`] — general (non-contiguous) vertex assignments with
//!   cut/replication/balance metrics and the contiguous relabeling §VI
//!   says METIS-style partitions need on shared memory;
//! * [`multilevel`] — a METIS-like multilevel k-way partitioner (heavy-
//!   edge matching, greedy-growing bisection, boundary refinement).

#![warn(missing_docs)]

pub mod assignment;
pub mod by_destination;
pub mod edge_order;
pub mod hilbert;
pub mod multilevel;
pub mod numa;
pub mod partitioned;
pub mod replication;
pub mod shard;
pub mod stats;

pub use assignment::{AssignmentQuality, VertexAssignment};
pub use by_destination::{BoundsError, PartitionBounds};
pub use edge_order::EdgeOrder;
pub use multilevel::{BalanceMode, MetisLikeOrder, Multilevel, MultilevelConfig};
pub use numa::{NumaTopology, PlacementPlan};
pub use partitioned::{PartitionedCoo, SubCsr};
pub use shard::ShardPlan;
