//! Per-partition statistics: the quantities plotted in Figures 1 and 4 and
//! tabulated in Table IV.

use crate::by_destination::PartitionBounds;
use vebo_graph::{Graph, VertexId};

/// Static (frontier-independent) statistics of one partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionStats {
    /// In-edges whose destination lies in the partition (Fig. 1a/1b x-axis).
    pub edges: u64,
    /// Destination vertices, i.e. the partition's vertex count
    /// (Fig. 1c/1d x-axis).
    pub destinations: usize,
    /// Distinct source vertices feeding the partition (Fig. 1e/1f x-axis).
    pub unique_sources: usize,
}

/// Computes [`PartitionStats`] for every partition. `O(n + m)` using a
/// stamp array for source dedup.
pub fn per_partition(g: &Graph, bounds: &PartitionBounds) -> Vec<PartitionStats> {
    assert_eq!(bounds.num_vertices(), g.num_vertices());
    let mut stats = Vec::with_capacity(bounds.num_partitions());
    let mut stamp = vec![u32::MAX; g.num_vertices()];
    for (p, range) in bounds.iter() {
        let mut edges = 0u64;
        let mut unique_sources = 0usize;
        let destinations = range.len();
        for v in range {
            let v = v as VertexId;
            for &u in g.in_neighbors(v) {
                edges += 1;
                if stamp[u as usize] != p as u32 {
                    stamp[u as usize] = p as u32;
                    unique_sources += 1;
                }
            }
        }
        stats.push(PartitionStats {
            edges,
            destinations,
            unique_sources,
        });
    }
    stats
}

/// Counts *active* edges per partition for a given set of active sources —
/// the quantity Table IV tabulates per BFS iteration. An edge is active if
/// its source is active; it counts toward the partition of its destination.
pub fn active_edges_per_partition(
    g: &Graph,
    bounds: &PartitionBounds,
    active: &[VertexId],
) -> Vec<u64> {
    let mut counts = vec![0u64; bounds.num_partitions()];
    for &u in active {
        for &v in g.out_neighbors(u) {
            counts[bounds.partition_of(v)] += 1;
        }
    }
    counts
}

/// Counts *active destinations* per partition: distinct destinations of
/// active edges, per partition (the companion statistic the paper says
/// "shows similar trends").
pub fn active_destinations_per_partition(
    g: &Graph,
    bounds: &PartitionBounds,
    active: &[VertexId],
) -> Vec<u64> {
    let mut seen = vec![false; g.num_vertices()];
    let mut counts = vec![0u64; bounds.num_partitions()];
    for &u in active {
        for &v in g.out_neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                counts[bounds.partition_of(v)] += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_core::Vebo;
    use vebo_graph::{Dataset, Graph};

    #[test]
    fn stats_totals_match_graph() {
        let g = Dataset::TwitterLike.build(0.05);
        let b = PartitionBounds::edge_balanced(&g, 24);
        let stats = per_partition(&g, &b);
        assert_eq!(
            stats.iter().map(|s| s.edges).sum::<u64>(),
            g.num_edges() as u64
        );
        assert_eq!(
            stats.iter().map(|s| s.destinations).sum::<usize>(),
            g.num_vertices()
        );
    }

    #[test]
    fn unique_sources_on_known_graph() {
        // 0,1 -> 2 and 0 -> 3; partition {2,3} sees sources {0,1}.
        let g = Graph::from_edges(4, &[(0, 2), (1, 2), (0, 3)], true);
        let b = PartitionBounds::from_starts(vec![0, 2, 4]);
        let stats = per_partition(&g, &b);
        assert_eq!(stats[0].edges, 0);
        assert_eq!(stats[1].edges, 3);
        assert_eq!(stats[1].unique_sources, 2);
        assert_eq!(stats[1].destinations, 2);
    }

    #[test]
    fn vebo_balances_edges_and_destinations_but_not_sources() {
        // Fig. 1: after VEBO, edges and destinations are balanced; unique
        // sources still vary (the paper chooses not to balance them).
        let g = Dataset::TwitterLike.build(0.1);
        let r = Vebo::new(16).compute_full(&g);
        let h = r.permutation.apply_graph(&g);
        let b = PartitionBounds::from_starts(r.starts.clone());
        let stats = per_partition(&h, &b);
        let emax = stats.iter().map(|s| s.edges).max().unwrap();
        let emin = stats.iter().map(|s| s.edges).min().unwrap();
        let dmax = stats.iter().map(|s| s.destinations).max().unwrap();
        let dmin = stats.iter().map(|s| s.destinations).min().unwrap();
        assert!(emax - emin <= 1);
        assert!(dmax - dmin <= 1);
    }

    #[test]
    fn active_edges_count_by_destination_partition() {
        let g = Graph::from_edges(4, &[(0, 2), (0, 3), (1, 0)], true);
        let b = PartitionBounds::from_starts(vec![0, 2, 4]);
        // only vertex 0 active: its 2 out-edges both land in partition 1.
        assert_eq!(active_edges_per_partition(&g, &b, &[0]), vec![0, 2]);
        // vertices 0 and 1 active: edge 1->0 lands in partition 0.
        assert_eq!(active_edges_per_partition(&g, &b, &[0, 1]), vec![1, 2]);
    }

    #[test]
    fn active_destinations_deduplicate() {
        let g = Graph::from_edges(3, &[(0, 2), (1, 2)], true);
        let b = PartitionBounds::from_starts(vec![0, 3]);
        assert_eq!(active_destinations_per_partition(&g, &b, &[0, 1]), vec![1]);
    }

    #[test]
    fn empty_frontier_has_zero_active_edges() {
        let g = Dataset::YahooLike.build(0.05);
        let b = PartitionBounds::edge_balanced(&g, 8);
        let counts = active_edges_per_partition(&g, &b, &[]);
        assert!(counts.iter().all(|&c| c == 0));
    }
}
