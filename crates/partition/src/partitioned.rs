//! Materialized per-partition graph layouts.
//!
//! Partitioning by destination (Algorithm 1) assigns every in-edge of a
//! destination chunk to one partition. Two layouts serve the two frontier
//! regimes of the processing systems:
//!
//! * [`PartitionedCoo`] — flat `(src, dst)` edge streams per partition,
//!   ordered by [`EdgeOrder`]; used by GraphGrind-style dense traversal.
//! * [`PartitionedSubCsr`] — one compact CSR *over sources* per partition
//!   (only sources with at least one edge into the partition appear);
//!   used by sparse traversal, where each partition scans the out-edges of
//!   the active vertices that fall inside it. The per-partition work is
//!   then exactly the "active edges per partition" of Table IV.

use crate::by_destination::PartitionBounds;
use crate::edge_order::EdgeOrder;
use crate::hilbert::{order_for, xy_to_d};
use vebo_graph::{Graph, VertexId};

/// Per-partition COO edge streams (struct-of-arrays, flat storage).
#[derive(Clone, Debug)]
pub struct PartitionedCoo {
    edge_starts: Vec<usize>,
    src: Vec<VertexId>,
    dst: Vec<VertexId>,
    weights: Option<Vec<f32>>,
    order: EdgeOrder,
}

impl PartitionedCoo {
    /// Collects each partition's in-edges and sorts them in the requested
    /// order. `O(m log m)` dominated by the per-partition sorts.
    pub fn build(g: &Graph, bounds: &PartitionBounds, order: EdgeOrder) -> PartitionedCoo {
        assert_eq!(bounds.num_vertices(), g.num_vertices());
        let p = bounds.num_partitions();
        let m = g.num_edges();
        let has_weights = g.has_weights();
        let mut edge_starts = Vec::with_capacity(p + 1);
        let mut src = Vec::with_capacity(m);
        let mut dst = Vec::with_capacity(m);
        let mut weights = if has_weights {
            Some(Vec::with_capacity(m))
        } else {
            None
        };
        let bits = order_for(g.num_vertices());

        for (_, range) in bounds.iter() {
            edge_starts.push(src.len());
            let part_start = src.len();
            for v in range {
                let v = v as VertexId;
                let srcs = g.in_neighbors(v);
                src.extend_from_slice(srcs);
                dst.extend(std::iter::repeat_n(v, srcs.len()));
                if let Some(w) = weights.as_mut() {
                    w.extend_from_slice(g.csc().weights_of(v));
                }
            }
            // Order within the partition. The CSC walk above yields
            // (dst, src)-sorted edges; re-sort per requested order.
            let len = src.len() - part_start;
            let mut perm: Vec<u32> = (0..len as u32).collect();
            match order {
                EdgeOrder::Csr => {
                    perm.sort_unstable_by_key(|&e| {
                        let e = part_start + e as usize;
                        (src[e], dst[e])
                    });
                }
                EdgeOrder::Hilbert => {
                    let keys: Vec<u64> = (0..len)
                        .map(|e| {
                            let e = part_start + e;
                            xy_to_d(bits, src[e] as u64, dst[e] as u64)
                        })
                        .collect();
                    perm.sort_unstable_by_key(|&e| keys[e as usize]);
                }
            }
            apply_perm(&mut src[part_start..], &perm);
            apply_perm(&mut dst[part_start..], &perm);
            if let Some(w) = weights.as_mut() {
                apply_perm(&mut w[part_start..], &perm);
            }
        }
        edge_starts.push(src.len());
        debug_assert_eq!(src.len(), m);
        PartitionedCoo {
            edge_starts,
            src,
            dst,
            weights,
            order,
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.edge_starts.len() - 1
    }

    /// Total edges.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// The edge order used.
    pub fn order(&self) -> EdgeOrder {
        self.order
    }

    /// Edge count of partition `p`.
    #[inline]
    pub fn partition_len(&self, p: usize) -> usize {
        self.edge_starts[p + 1] - self.edge_starts[p]
    }

    /// `(src, dst)` streams of partition `p`.
    #[inline]
    pub fn partition_edges(&self, p: usize) -> (&[VertexId], &[VertexId]) {
        let r = self.edge_starts[p]..self.edge_starts[p + 1];
        (&self.src[r.clone()], &self.dst[r])
    }

    /// Weight stream of partition `p` (panics if unweighted).
    #[inline]
    pub fn partition_weights(&self, p: usize) -> &[f32] {
        let w = self.weights.as_ref().expect("graph has no weights");
        &w[self.edge_starts[p]..self.edge_starts[p + 1]]
    }

    /// Whether weights are present.
    pub fn has_weights(&self) -> bool {
        self.weights.is_some()
    }
}

fn apply_perm<T: Copy>(data: &mut [T], perm: &[u32]) {
    let snapshot: Vec<T> = data.to_vec();
    for (k, &e) in perm.iter().enumerate() {
        data[k] = snapshot[e as usize];
    }
}

/// A compact CSR over the *sources* that have at least one edge into one
/// partition.
#[derive(Clone, Debug)]
pub struct SubCsr {
    sources: Vec<VertexId>,
    offsets: Vec<usize>,
    dsts: Vec<VertexId>,
    weights: Option<Vec<f32>>,
}

impl SubCsr {
    /// Sources present in this partition (sorted ascending).
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// Total edges in this partition.
    pub fn num_edges(&self) -> usize {
        self.dsts.len()
    }

    /// Destinations of `u`'s edges into this partition, or `None` if `u`
    /// has none. `O(log |sources|)`.
    pub fn edges_of(&self, u: VertexId) -> Option<&[VertexId]> {
        let i = self.sources.binary_search(&u).ok()?;
        Some(&self.dsts[self.offsets[i]..self.offsets[i + 1]])
    }

    /// Destinations and weights of `u`'s edges into this partition.
    pub fn weighted_edges_of(&self, u: VertexId) -> Option<(&[VertexId], &[f32])> {
        let i = self.sources.binary_search(&u).ok()?;
        let r = self.offsets[i]..self.offsets[i + 1];
        let w = self.weights.as_ref().expect("graph has no weights");
        Some((&self.dsts[r.clone()], &w[r]))
    }

    /// Iterates `(source, destinations)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> + '_ {
        self.sources
            .iter()
            .enumerate()
            .map(move |(i, &u)| (u, &self.dsts[self.offsets[i]..self.offsets[i + 1]]))
    }
}

/// All partitions' sub-CSRs.
#[derive(Clone, Debug)]
pub struct PartitionedSubCsr {
    parts: Vec<SubCsr>,
}

impl PartitionedSubCsr {
    /// Builds one sub-CSR per partition from the destination-partitioned
    /// edge set. `O(m log m)` total.
    pub fn build(g: &Graph, bounds: &PartitionBounds) -> PartitionedSubCsr {
        assert_eq!(bounds.num_vertices(), g.num_vertices());
        let has_weights = g.has_weights();
        let mut parts = Vec::with_capacity(bounds.num_partitions());
        for (_, range) in bounds.iter() {
            // Gather (src, dst[, w]) for this partition, sort by (src, dst).
            let cap: usize = range.clone().map(|v| g.in_degree(v as VertexId)).sum();
            let mut tuples: Vec<(VertexId, VertexId, f32)> = Vec::with_capacity(cap);
            for v in range {
                let v = v as VertexId;
                let srcs = g.in_neighbors(v);
                if has_weights {
                    for (k, &u) in srcs.iter().enumerate() {
                        tuples.push((u, v, g.csc().weights_of(v)[k]));
                    }
                } else {
                    for &u in srcs {
                        tuples.push((u, v, 0.0));
                    }
                }
            }
            tuples.sort_unstable_by_key(|&(u, v, _)| (u, v));
            let mut sources = Vec::new();
            let mut offsets = vec![0usize];
            let mut dsts = Vec::with_capacity(tuples.len());
            let mut weights = if has_weights {
                Some(Vec::with_capacity(tuples.len()))
            } else {
                None
            };
            for (u, v, w) in tuples {
                if sources.last() != Some(&u) {
                    sources.push(u);
                    offsets.push(dsts.len());
                }
                dsts.push(v);
                if let Some(ws) = weights.as_mut() {
                    ws.push(w);
                }
                *offsets.last_mut().unwrap() = dsts.len();
            }
            parts.push(SubCsr {
                sources,
                offsets,
                dsts,
                weights,
            });
        }
        PartitionedSubCsr { parts }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// The sub-CSR of partition `p`.
    pub fn partition(&self, p: usize) -> &SubCsr {
        &self.parts[p]
    }

    /// Total edges across partitions (must equal the graph's edge count).
    pub fn num_edges(&self) -> usize {
        self.parts.iter().map(|s| s.num_edges()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use vebo_graph::Dataset;

    fn setup() -> (Graph, PartitionBounds) {
        let g = Dataset::LiveJournalLike.build(0.05);
        let b = PartitionBounds::edge_balanced(&g, 16);
        (g, b)
    }

    #[test]
    fn coo_covers_every_edge_exactly_once() {
        let (g, b) = setup();
        let coo = PartitionedCoo::build(&g, &b, EdgeOrder::Csr);
        assert_eq!(coo.num_edges(), g.num_edges());
        let mut collected: Vec<(VertexId, VertexId)> = Vec::new();
        for p in 0..coo.num_partitions() {
            let (src, dst) = coo.partition_edges(p);
            collected.extend(src.iter().copied().zip(dst.iter().copied()));
        }
        collected.sort_unstable();
        let mut expected: Vec<(VertexId, VertexId)> = g
            .vertices()
            .flat_map(|u| g.out_neighbors(u).iter().map(move |&v| (u, v)))
            .collect();
        expected.sort_unstable();
        assert_eq!(collected, expected);
    }

    #[test]
    fn coo_destinations_stay_in_partition() {
        let (g, b) = setup();
        let coo = PartitionedCoo::build(&g, &b, EdgeOrder::Hilbert);
        for (p, range) in b.iter() {
            let (_, dst) = coo.partition_edges(p);
            for &v in dst {
                assert!(range.contains(&(v as usize)));
            }
        }
    }

    #[test]
    fn coo_csr_order_is_sorted_by_src() {
        let (g, b) = setup();
        let coo = PartitionedCoo::build(&g, &b, EdgeOrder::Csr);
        for p in 0..coo.num_partitions() {
            let (src, _) = coo.partition_edges(p);
            assert!(
                src.windows(2).all(|w| w[0] <= w[1]),
                "partition {p} unsorted"
            );
        }
    }

    #[test]
    fn coo_weights_travel_with_edges() {
        let g = Dataset::YahooLike.build(0.05).with_hash_weights(16);
        let b = PartitionBounds::edge_balanced(&g, 8);
        let coo = PartitionedCoo::build(&g, &b, EdgeOrder::Csr);
        assert!(coo.has_weights());
        for p in 0..coo.num_partitions() {
            let (src, dst) = coo.partition_edges(p);
            let w = coo.partition_weights(p);
            for i in 0..src.len().min(50) {
                // Every weight must match the graph's weight for that edge.
                let pos = g
                    .in_neighbors(dst[i])
                    .iter()
                    .position(|&s| s == src[i])
                    .unwrap();
                assert_eq!(w[i], g.csc().weights_of(dst[i])[pos]);
            }
        }
    }

    #[test]
    fn subcsr_covers_every_edge_exactly_once() {
        let (g, b) = setup();
        let sub = PartitionedSubCsr::build(&g, &b);
        assert_eq!(sub.num_edges(), g.num_edges());
        let mut collected: Vec<(VertexId, VertexId)> = Vec::new();
        for p in 0..sub.num_partitions() {
            for (u, dsts) in sub.partition(p).iter() {
                collected.extend(dsts.iter().map(|&v| (u, v)));
            }
        }
        collected.sort_unstable();
        let mut expected: Vec<(VertexId, VertexId)> = g
            .vertices()
            .flat_map(|u| g.out_neighbors(u).iter().map(move |&v| (u, v)))
            .collect();
        expected.sort_unstable();
        assert_eq!(collected, expected);
    }

    #[test]
    fn subcsr_lookup_matches_filtered_out_neighbors() {
        let (g, b) = setup();
        let sub = PartitionedSubCsr::build(&g, &b);
        for u in g.vertices().take(200) {
            for (p, range) in b.iter() {
                let expected: Vec<VertexId> = g
                    .out_neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&v| range.contains(&(v as usize)))
                    .collect();
                match sub.partition(p).edges_of(u) {
                    Some(dsts) => {
                        let got: BTreeSet<VertexId> = dsts.iter().copied().collect();
                        let want: BTreeSet<VertexId> = expected.iter().copied().collect();
                        assert_eq!(got, want, "u = {u}, p = {p}");
                    }
                    None => assert!(expected.is_empty(), "u = {u}, p = {p} missing edges"),
                }
            }
        }
    }

    #[test]
    fn subcsr_sources_are_sorted_and_nonempty() {
        let (g, b) = setup();
        let sub = PartitionedSubCsr::build(&g, &b);
        for p in 0..sub.num_partitions() {
            let s = sub.partition(p);
            assert!(s.sources().windows(2).all(|w| w[0] < w[1]));
            for (i, _) in s.sources().iter().enumerate() {
                assert!(s.offsets[i + 1] > s.offsets[i], "empty source entry");
            }
        }
    }

    #[test]
    fn subcsr_weighted_lookup() {
        let g = Dataset::YahooLike.build(0.05).with_hash_weights(8);
        let b = PartitionBounds::edge_balanced(&g, 4);
        let sub = PartitionedSubCsr::build(&g, &b);
        let mut checked = 0;
        for u in g.vertices() {
            if let Some((dsts, ws)) = sub.partition(0).weighted_edges_of(u) {
                for (k, &v) in dsts.iter().enumerate() {
                    let pos = g.out_neighbors(u).iter().position(|&x| x == v).unwrap();
                    assert_eq!(ws[k], g.csr().weights_of(u)[pos]);
                    checked += 1;
                }
            }
            if checked > 100 {
                break;
            }
        }
        assert!(checked > 0);
    }
}
