//! COO edge orderings within a partition (§V-G).
//!
//! GraphGrind's dense traversal reads a partition's edges as a flat COO
//! stream; *how* that stream is ordered determines the memory access
//! pattern on the source and destination value arrays:
//!
//! * [`EdgeOrder::Csr`] — ascending `(src, dst)`: the destination stream is
//!   random-ish but the source stream is monotone (and the in-partition
//!   offsets of a VEBO graph make it near-sequential);
//! * [`EdgeOrder::Hilbert`] — edges sorted by the Hilbert index of
//!   `(src, dst)`: both streams stay within a moving 2-D window.
//!
//! The paper finds CSR order beats Hilbert order on VEBO-reordered graphs
//! (high-degree partitions are processed faster in CSR order, Figure 6b)
//! and switches GraphGrind's COO to CSR order when VEBO is used.

use crate::hilbert::{order_for, xy_to_d};
use vebo_graph::Coo;

/// Edge orderings for COO streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EdgeOrder {
    /// Ascending `(src, dst)` — the traversal order of a CSR.
    #[default]
    Csr,
    /// Hilbert space-filling-curve order over the adjacency matrix.
    Hilbert,
}

impl EdgeOrder {
    /// Parses `"csr"` / `"hilbert"`.
    pub fn from_name(name: &str) -> Option<EdgeOrder> {
        match name.to_ascii_lowercase().as_str() {
            "csr" => Some(EdgeOrder::Csr),
            "hilbert" => Some(EdgeOrder::Hilbert),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EdgeOrder::Csr => "CSR",
            EdgeOrder::Hilbert => "Hilbert",
        }
    }
}

/// Sorts the edges of a COO in place according to `order`.
pub fn sort_edges(coo: &mut Coo, order: EdgeOrder) {
    let m = coo.num_edges();
    let mut perm: Vec<usize> = (0..m).collect();
    match order {
        EdgeOrder::Csr => {
            perm.sort_unstable_by_key(|&e| coo.edge(e));
        }
        EdgeOrder::Hilbert => {
            let bits = order_for(coo.num_vertices());
            let keys: Vec<u64> = (0..m)
                .map(|e| {
                    let (s, d) = coo.edge(e);
                    xy_to_d(bits, s as u64, d as u64)
                })
                .collect();
            perm.sort_unstable_by_key(|&e| keys[e]);
        }
    }
    coo.reorder_edges(&perm);
}

/// Returns the edge indices of `coo` in the requested order without
/// mutating the COO (used when the same edge set feeds several layouts).
pub fn edge_permutation(coo: &Coo, order: EdgeOrder) -> Vec<usize> {
    let m = coo.num_edges();
    let mut perm: Vec<usize> = (0..m).collect();
    match order {
        EdgeOrder::Csr => perm.sort_unstable_by_key(|&e| coo.edge(e)),
        EdgeOrder::Hilbert => {
            let bits = order_for(coo.num_vertices());
            let keys: Vec<u64> = (0..m)
                .map(|e| {
                    let (s, d) = coo.edge(e);
                    xy_to_d(bits, s as u64, d as u64)
                })
                .collect();
            perm.sort_unstable_by_key(|&e| keys[e]);
        }
    }
    perm
}

/// Measures the spatial locality of an edge stream as the mean absolute
/// jump in destination ids between consecutive edges — a cheap proxy for
/// the cache behaviour the paper measures with hardware counters.
pub fn mean_dst_jump(coo: &Coo) -> f64 {
    if coo.num_edges() < 2 {
        return 0.0;
    }
    let dst = coo.dst();
    let total: u64 = dst
        .windows(2)
        .map(|w| (w[0] as i64 - w[1] as i64).unsigned_abs())
        .sum();
    total as f64 / (dst.len() - 1) as f64
}

/// Same for the source stream.
pub fn mean_src_jump(coo: &Coo) -> f64 {
    if coo.num_edges() < 2 {
        return 0.0;
    }
    let src = coo.src();
    let total: u64 = src
        .windows(2)
        .map(|w| (w[0] as i64 - w[1] as i64).unsigned_abs())
        .sum();
    total as f64 / (src.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::gen::gnm;
    use vebo_graph::Coo;

    #[test]
    fn csr_order_sorts_by_src_then_dst() {
        let mut coo = Coo::new(4, vec![3, 0, 1, 0], vec![1, 2, 0, 1]);
        sort_edges(&mut coo, EdgeOrder::Csr);
        let edges: Vec<_> = coo.iter().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 0), (3, 1)]);
    }

    #[test]
    fn hilbert_order_preserves_edge_multiset() {
        let g = gnm(256, 2000, true, 3);
        let mut coo = Coo::from_graph(&g);
        let before = coo.canonical_edges();
        sort_edges(&mut coo, EdgeOrder::Hilbert);
        assert_eq!(coo.canonical_edges(), before);
    }

    #[test]
    fn hilbert_order_improves_joint_locality() {
        // For a random graph, Hilbert order must shrink the destination
        // jumps dramatically compared to CSR order (where dst is random).
        let g = gnm(1024, 20_000, true, 7);
        let mut csr = Coo::from_graph(&g);
        sort_edges(&mut csr, EdgeOrder::Csr);
        let mut hil = csr.clone();
        sort_edges(&mut hil, EdgeOrder::Hilbert);
        assert!(
            mean_dst_jump(&hil) < mean_dst_jump(&csr) / 4.0,
            "hilbert {} vs csr {}",
            mean_dst_jump(&hil),
            mean_dst_jump(&csr)
        );
        // CSR order has near-zero source jumps; Hilbert trades some of
        // that away.
        assert!(mean_src_jump(&csr) < mean_src_jump(&hil));
    }

    #[test]
    fn edge_permutation_matches_sort() {
        let g = gnm(128, 1000, true, 9);
        let coo = Coo::from_graph(&g);
        let perm = edge_permutation(&coo, EdgeOrder::Hilbert);
        let mut sorted = coo.clone();
        sort_edges(&mut sorted, EdgeOrder::Hilbert);
        let via_perm: Vec<_> = perm.iter().map(|&e| coo.edge(e)).collect();
        let direct: Vec<_> = sorted.iter().collect();
        assert_eq!(via_perm, direct);
    }

    #[test]
    fn names_roundtrip() {
        assert_eq!(EdgeOrder::from_name("csr"), Some(EdgeOrder::Csr));
        assert_eq!(EdgeOrder::from_name("Hilbert"), Some(EdgeOrder::Hilbert));
        assert_eq!(EdgeOrder::from_name("zorder"), None);
        assert_eq!(EdgeOrder::Hilbert.name(), "Hilbert");
    }

    #[test]
    fn empty_and_single_edge_jump_is_zero() {
        let coo = Coo::new(4, vec![1], vec![2]);
        assert_eq!(mean_dst_jump(&coo), 0.0);
        assert_eq!(mean_src_jump(&coo), 0.0);
    }
}
