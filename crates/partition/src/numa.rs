//! Partition-to-socket mapping for the simulated NUMA machine.
//!
//! Polymer binds one partition per socket; GraphGrind binds contiguous
//! blocks of partitions to sockets (384 partitions / 4 sockets = 96 each,
//! processed by the socket's 12 threads). The paper's machine is a
//! 4-socket, 48-thread Xeon; we reproduce that topology in the scheduling
//! and cache simulators.

/// A simulated NUMA topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NumaTopology {
    /// Number of sockets (paper: 4).
    pub num_sockets: usize,
    /// Total hardware threads (paper: 48).
    pub num_threads: usize,
}

impl Default for NumaTopology {
    fn default() -> Self {
        NumaTopology {
            num_sockets: 4,
            num_threads: 48,
        }
    }
}

impl NumaTopology {
    /// Threads per socket.
    pub fn threads_per_socket(&self) -> usize {
        self.num_threads / self.num_sockets
    }

    /// Socket owning partition `p` out of `num_partitions` (contiguous
    /// blocks, GraphGrind-style binding).
    pub fn socket_of_partition(&self, p: usize, num_partitions: usize) -> usize {
        assert!(p < num_partitions);
        p * self.num_sockets / num_partitions
    }

    /// Socket of thread `t` (threads are grouped by socket).
    pub fn socket_of_thread(&self, t: usize) -> usize {
        assert!(t < self.num_threads);
        t * self.num_sockets / self.num_threads
    }

    /// The partitions statically assigned to thread `t` under
    /// GraphGrind-style contiguous assignment ("Thread t executes
    /// partitions 8t to 8t + 7" in Figure 4's caption, for 384/48).
    pub fn partitions_of_thread(&self, t: usize, num_partitions: usize) -> std::ops::Range<usize> {
        assert!(t < self.num_threads);
        let lo = t * num_partitions / self.num_threads;
        let hi = (t + 1) * num_partitions / self.num_threads;
        lo..hi
    }

    /// Builds the placement plan binding each of `num_tasks` tasks to the
    /// socket that owns its partition's arrays (contiguous blocks, the
    /// Polymer/GraphGrind binding).
    pub fn placement_plan(&self, num_tasks: usize) -> PlacementPlan {
        let sockets = (0..num_tasks)
            .map(|t| self.socket_of_partition(t, num_tasks) as u32)
            .collect();
        PlacementPlan {
            topology: *self,
            sockets,
        }
    }
}

/// A NUMA placement plan: which socket owns each task, and the order in
/// which a socket-bound engine visits tasks.
///
/// Polymer and GraphGrind bind contiguous blocks of partitions to
/// sockets; each socket's thread team then works through its own block
/// while the other sockets work through theirs concurrently. The plan
/// captures both facts: [`PlacementPlan::socket_of`] is the ownership
/// map, and [`PlacementPlan::execution_order`] is the socket-major
/// interleaving that models the four teams advancing in lockstep (task
/// `k` of socket 0, task `k` of socket 1, ... then task `k + 1` of each).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacementPlan {
    topology: NumaTopology,
    /// Socket owning each task (non-decreasing, contiguous blocks).
    sockets: Vec<u32>,
}

impl PlacementPlan {
    /// Number of tasks the plan covers.
    pub fn num_tasks(&self) -> usize {
        self.sockets.len()
    }

    /// Number of sockets in the underlying topology.
    pub fn num_sockets(&self) -> usize {
        self.topology.num_sockets
    }

    /// The topology the plan was derived from.
    pub fn topology(&self) -> &NumaTopology {
        &self.topology
    }

    /// Socket owning task `t`.
    pub fn socket_of(&self, t: usize) -> usize {
        self.sockets[t] as usize
    }

    /// The socket of every task, in task order.
    pub fn sockets(&self) -> &[u32] {
        &self.sockets
    }

    /// Contiguous task range owned by socket `s`.
    pub fn tasks_of_socket(&self, s: usize) -> std::ops::Range<usize> {
        assert!(s < self.topology.num_sockets);
        let lo = self.sockets.partition_point(|&q| (q as usize) < s);
        let hi = self.sockets.partition_point(|&q| (q as usize) <= s);
        lo..hi
    }

    /// Socket-major interleaved visiting order: round `k` visits the
    /// `k`-th task of every socket, modelling the per-socket thread teams
    /// advancing concurrently. Always a permutation of `0..num_tasks`.
    pub fn execution_order(&self) -> Vec<usize> {
        let ranges: Vec<std::ops::Range<usize>> = (0..self.topology.num_sockets)
            .map(|s| self.tasks_of_socket(s))
            .collect();
        let rounds = ranges.iter().map(|r| r.len()).max().unwrap_or(0);
        let mut order = Vec::with_capacity(self.sockets.len());
        for k in 0..rounds {
            for r in &ranges {
                if r.start + k < r.end {
                    order.push(r.start + k);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_machine() {
        let t = NumaTopology::default();
        assert_eq!(t.num_sockets, 4);
        assert_eq!(t.num_threads, 48);
        assert_eq!(t.threads_per_socket(), 12);
    }

    #[test]
    fn figure4_thread_partition_mapping() {
        // "Thread t executes partitions 8t to 8t+7" (384 partitions).
        let t = NumaTopology::default();
        for th in 0..48 {
            assert_eq!(t.partitions_of_thread(th, 384), 8 * th..8 * th + 8);
        }
    }

    #[test]
    fn sockets_get_contiguous_partition_blocks() {
        let t = NumaTopology::default();
        let mut prev = 0;
        for p in 0..384 {
            let s = t.socket_of_partition(p, 384);
            assert!(s >= prev, "socket ids must be non-decreasing");
            prev = s;
        }
        assert_eq!(t.socket_of_partition(0, 384), 0);
        assert_eq!(t.socket_of_partition(383, 384), 3);
        // Equal share per socket.
        let per: Vec<usize> = (0..4)
            .map(|s| {
                (0..384)
                    .filter(|&p| t.socket_of_partition(p, 384) == s)
                    .count()
            })
            .collect();
        assert_eq!(per, vec![96, 96, 96, 96]);
    }

    #[test]
    fn polymer_style_one_partition_per_socket() {
        let t = NumaTopology::default();
        for p in 0..4 {
            assert_eq!(t.socket_of_partition(p, 4), p);
        }
    }

    #[test]
    fn thread_socket_grouping() {
        let t = NumaTopology::default();
        assert_eq!(t.socket_of_thread(0), 0);
        assert_eq!(t.socket_of_thread(11), 0);
        assert_eq!(t.socket_of_thread(12), 1);
        assert_eq!(t.socket_of_thread(47), 3);
    }

    #[test]
    fn placement_plan_matches_socket_of_partition() {
        let t = NumaTopology::default();
        for num_tasks in [1usize, 4, 47, 48, 384] {
            let plan = t.placement_plan(num_tasks);
            assert_eq!(plan.num_tasks(), num_tasks);
            for p in 0..num_tasks {
                assert_eq!(plan.socket_of(p), t.socket_of_partition(p, num_tasks));
            }
            // Socket ranges tile the task space.
            let mut covered = 0;
            for s in 0..plan.num_sockets() {
                let r = plan.tasks_of_socket(s);
                assert_eq!(r.start, covered);
                covered = r.end;
            }
            assert_eq!(covered, num_tasks);
        }
    }

    #[test]
    fn execution_order_is_a_socket_interleaved_permutation() {
        let plan = NumaTopology::default().placement_plan(384);
        let order = plan.execution_order();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..384).collect::<Vec<_>>());
        // Round-robin across the 4 sockets of 96 tasks each.
        assert_eq!(&order[..4], &[0, 96, 192, 288]);
        assert_eq!(&order[4..8], &[1, 97, 193, 289]);
        // Genuinely not the identity order.
        assert_ne!(order, (0..384).collect::<Vec<_>>());
    }

    #[test]
    fn execution_order_handles_uneven_and_tiny_task_counts() {
        let t = NumaTopology::default();
        for n in [0usize, 1, 2, 3, 5, 47] {
            let order = t.placement_plan(n).execution_order();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "n = {n}");
        }
    }

    #[test]
    fn partitions_of_threads_cover_disjointly() {
        let t = NumaTopology::default();
        let mut covered = [false; 100];
        for th in 0..48 {
            for p in t.partitions_of_thread(th, 100) {
                assert!(!covered[p], "partition {p} double-assigned");
                covered[p] = true;
            }
        }
        assert!(covered.iter().all(|&b| b));
    }
}
