//! Partition-to-socket mapping for the simulated NUMA machine.
//!
//! Polymer binds one partition per socket; GraphGrind binds contiguous
//! blocks of partitions to sockets (384 partitions / 4 sockets = 96 each,
//! processed by the socket's 12 threads). The paper's machine is a
//! 4-socket, 48-thread Xeon; we reproduce that topology in the scheduling
//! and cache simulators.

/// A simulated NUMA topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NumaTopology {
    /// Number of sockets (paper: 4).
    pub num_sockets: usize,
    /// Total hardware threads (paper: 48).
    pub num_threads: usize,
}

impl Default for NumaTopology {
    fn default() -> Self {
        NumaTopology {
            num_sockets: 4,
            num_threads: 48,
        }
    }
}

impl NumaTopology {
    /// Threads per socket.
    pub fn threads_per_socket(&self) -> usize {
        self.num_threads / self.num_sockets
    }

    /// Socket owning partition `p` out of `num_partitions` (contiguous
    /// blocks, GraphGrind-style binding).
    pub fn socket_of_partition(&self, p: usize, num_partitions: usize) -> usize {
        assert!(p < num_partitions);
        p * self.num_sockets / num_partitions
    }

    /// Socket of thread `t` (threads are grouped by socket).
    pub fn socket_of_thread(&self, t: usize) -> usize {
        assert!(t < self.num_threads);
        t * self.num_sockets / self.num_threads
    }

    /// The partitions statically assigned to thread `t` under
    /// GraphGrind-style contiguous assignment ("Thread t executes
    /// partitions 8t to 8t + 7" in Figure 4's caption, for 384/48).
    pub fn partitions_of_thread(&self, t: usize, num_partitions: usize) -> std::ops::Range<usize> {
        assert!(t < self.num_threads);
        let lo = t * num_partitions / self.num_threads;
        let hi = (t + 1) * num_partitions / self.num_threads;
        lo..hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_machine() {
        let t = NumaTopology::default();
        assert_eq!(t.num_sockets, 4);
        assert_eq!(t.num_threads, 48);
        assert_eq!(t.threads_per_socket(), 12);
    }

    #[test]
    fn figure4_thread_partition_mapping() {
        // "Thread t executes partitions 8t to 8t+7" (384 partitions).
        let t = NumaTopology::default();
        for th in 0..48 {
            assert_eq!(t.partitions_of_thread(th, 384), 8 * th..8 * th + 8);
        }
    }

    #[test]
    fn sockets_get_contiguous_partition_blocks() {
        let t = NumaTopology::default();
        let mut prev = 0;
        for p in 0..384 {
            let s = t.socket_of_partition(p, 384);
            assert!(s >= prev, "socket ids must be non-decreasing");
            prev = s;
        }
        assert_eq!(t.socket_of_partition(0, 384), 0);
        assert_eq!(t.socket_of_partition(383, 384), 3);
        // Equal share per socket.
        let per: Vec<usize> = (0..4)
            .map(|s| {
                (0..384)
                    .filter(|&p| t.socket_of_partition(p, 384) == s)
                    .count()
            })
            .collect();
        assert_eq!(per, vec![96, 96, 96, 96]);
    }

    #[test]
    fn polymer_style_one_partition_per_socket() {
        let t = NumaTopology::default();
        for p in 0..4 {
            assert_eq!(t.socket_of_partition(p, 4), p);
        }
    }

    #[test]
    fn thread_socket_grouping() {
        let t = NumaTopology::default();
        assert_eq!(t.socket_of_thread(0), 0);
        assert_eq!(t.socket_of_thread(11), 0);
        assert_eq!(t.socket_of_thread(12), 1);
        assert_eq!(t.socket_of_thread(47), 3);
    }

    #[test]
    fn partitions_of_threads_cover_disjointly() {
        let t = NumaTopology::default();
        let mut covered = [false; 100];
        for th in 0..48 {
            for p in t.partitions_of_thread(th, 100) {
                assert!(!covered[p], "partition {p} double-assigned");
                covered[p] = true;
            }
        }
        assert!(covered.iter().all(|&b| b));
    }
}
