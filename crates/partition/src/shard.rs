//! Shard derivation for the sharded serving executor: split the task
//! space (one task per partition) into `S` contiguous shards, each owned
//! by one long-lived worker thread.
//!
//! Shards are unions of whole partitions, so every shard boundary is a
//! partition boundary: the vertex ranges VEBO balanced stay intact, and
//! the per-shard edge/vertex totals are exactly the sums of the
//! partition statistics the paper's Algorithm 1 balances. When a
//! [`PlacementPlan`] is available (statically scheduled profiles), the
//! split additionally respects socket blocks: with `S <= sockets` each
//! shard owns whole sockets; with `S > sockets` sockets are subdivided
//! but never straddled — a shard never spans two sockets' arrays.

use crate::by_destination::PartitionBounds;
use crate::numa::PlacementPlan;
use vebo_graph::Graph;

/// A partition of the task space `0..num_tasks` into `S` contiguous
/// shards (some possibly empty when `S > num_tasks`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Task-index boundaries: shard `s` owns tasks
    /// `task_starts[s]..task_starts[s + 1]`. Length `num_shards + 1`,
    /// monotone, first 0, last `num_tasks`.
    task_starts: Vec<usize>,
}

impl ShardPlan {
    /// Splits `0..num_tasks` into `num_shards` contiguous, task-balanced
    /// shards (the placement-free derivation, used for dynamically
    /// scheduled profiles).
    pub fn contiguous(num_tasks: usize, num_shards: usize) -> ShardPlan {
        assert!(num_shards >= 1, "need at least one shard");
        let task_starts = (0..=num_shards)
            .map(|s| s * num_tasks / num_shards)
            .collect();
        ShardPlan { task_starts }
    }

    /// Splits the plan's tasks into `num_shards` shards that respect the
    /// socket blocks: with `S <= sockets` each shard owns a contiguous
    /// run of whole sockets; with `S > sockets` each socket's block is
    /// subdivided among its own shards, so no shard straddles a socket
    /// boundary.
    pub fn from_placement(plan: &PlacementPlan, num_shards: usize) -> ShardPlan {
        assert!(num_shards >= 1, "need at least one shard");
        let sockets = plan.num_sockets();
        let mut task_starts = Vec::with_capacity(num_shards + 1);
        if num_shards <= sockets {
            // Whole sockets per shard: shard k owns sockets
            // [k * sockets / S, (k + 1) * sockets / S).
            for k in 0..num_shards {
                let first_socket = k * sockets / num_shards;
                task_starts.push(plan.tasks_of_socket(first_socket).start);
            }
        } else {
            // Subdivide each socket's block among its own shards.
            for s in 0..sockets {
                let range = plan.tasks_of_socket(s);
                let local = (s + 1) * num_shards / sockets - s * num_shards / sockets;
                for j in 0..local {
                    task_starts.push(range.start + j * range.len() / local);
                }
            }
        }
        task_starts.push(plan.num_tasks());
        ShardPlan { task_starts }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.task_starts.len() - 1
    }

    /// Number of tasks the plan covers.
    pub fn num_tasks(&self) -> usize {
        *self.task_starts.last().unwrap()
    }

    /// Contiguous task range owned by shard `s`.
    pub fn tasks_of(&self, s: usize) -> std::ops::Range<usize> {
        self.task_starts[s]..self.task_starts[s + 1]
    }

    /// The task-index boundaries (length `num_shards + 1`).
    pub fn task_starts(&self) -> &[usize] {
        &self.task_starts
    }

    /// The shard owning task `t`.
    pub fn shard_of_task(&self, t: usize) -> usize {
        assert!(t < self.num_tasks(), "task {t} out of range");
        self.task_starts.partition_point(|&b| b <= t) - 1
    }

    /// The shard boundaries in *vertex* space under `bounds` (one task
    /// per partition): entry `s` is the first vertex of shard `s`;
    /// length `num_shards + 1`. Because shards are unions of whole
    /// partitions, every returned boundary is a partition boundary.
    pub fn vertex_starts(&self, bounds: &PartitionBounds) -> Vec<usize> {
        assert_eq!(
            bounds.num_partitions(),
            self.num_tasks(),
            "bounds cover a different task count"
        );
        self.task_starts
            .iter()
            .map(|&t| bounds.starts()[t])
            .collect()
    }

    /// Vertex range owned by shard `s` under `bounds`.
    pub fn vertex_range(&self, bounds: &PartitionBounds, s: usize) -> std::ops::Range<usize> {
        let r = self.tasks_of(s);
        bounds.starts()[r.start]..bounds.starts()[r.end]
    }

    /// Destination-edge count per shard under `bounds`: edges whose
    /// destination falls in each shard's vertex range. Partitioning is by
    /// destination, so these sum to `m` exactly.
    pub fn edge_counts(&self, g: &Graph, bounds: &PartitionBounds) -> Vec<u64> {
        let offsets = g.csc().offsets();
        (0..self.num_shards())
            .map(|s| {
                let r = self.vertex_range(bounds, s);
                (offsets[r.end] - offsets[r.start]) as u64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numa::NumaTopology;

    #[test]
    fn contiguous_covers_all_tasks() {
        for (tasks, shards) in [(48, 1), (48, 2), (48, 7), (3, 7), (0, 2), (384, 16)] {
            let plan = ShardPlan::contiguous(tasks, shards);
            assert_eq!(plan.num_shards(), shards);
            assert_eq!(plan.num_tasks(), tasks);
            let mut covered = 0;
            for s in 0..shards {
                let r = plan.tasks_of(s);
                assert_eq!(r.start, covered);
                covered = r.end;
            }
            assert_eq!(covered, tasks);
            for t in 0..tasks {
                let s = plan.shard_of_task(t);
                assert!(plan.tasks_of(s).contains(&t));
            }
        }
    }

    #[test]
    fn placement_split_respects_socket_blocks() {
        let topo = NumaTopology::default();
        let plan = topo.placement_plan(384);
        // S <= sockets: every shard boundary is a socket boundary.
        for shards in [1usize, 2, 3, 4] {
            let sp = ShardPlan::from_placement(&plan, shards);
            assert_eq!(sp.num_tasks(), 384);
            let socket_starts: Vec<usize> = (0..4).map(|s| plan.tasks_of_socket(s).start).collect();
            for &b in &sp.task_starts()[..shards] {
                assert!(
                    socket_starts.contains(&b),
                    "boundary {b} not a socket start"
                );
            }
        }
        // S > sockets: no shard straddles a socket boundary.
        for shards in [5usize, 7, 16] {
            let sp = ShardPlan::from_placement(&plan, shards);
            assert_eq!(sp.num_tasks(), 384);
            for s in 0..shards {
                let r = sp.tasks_of(s);
                if r.is_empty() {
                    continue;
                }
                assert_eq!(
                    plan.socket_of(r.start),
                    plan.socket_of(r.end - 1),
                    "shard {s} spans sockets"
                );
            }
        }
    }

    #[test]
    fn vertex_ranges_tile_the_graph() {
        let g = vebo_graph::Dataset::YahooLike.build(0.05);
        let bounds = PartitionBounds::edge_balanced(&g, 48);
        let m = g.num_edges() as u64;
        for shards in [1usize, 2, 7, 48, 100] {
            let sp = ShardPlan::contiguous(48, shards);
            let vs = sp.vertex_starts(&bounds);
            assert_eq!(vs[0], 0);
            assert_eq!(*vs.last().unwrap(), g.num_vertices());
            for w in vs.windows(2) {
                assert!(w[0] <= w[1]);
            }
            let edges = sp.edge_counts(&g, &bounds);
            assert_eq!(edges.iter().sum::<u64>(), m, "shards = {shards}");
        }
    }
}
