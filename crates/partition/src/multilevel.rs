//! A METIS-style multilevel k-way partitioner, rebuilt from scratch.
//!
//! The paper's §VI names METIS as the quality bar general-purpose
//! partitioners are measured against, and notes that on shared-memory
//! systems "partitioners such as METIS are not immediately applicable and
//! additional vertex relabeling must be applied". This module provides
//! both pieces: the multilevel partitioner itself and, via
//! [`MetisLikeOrder`], the relabeled contiguous ordering a shared-memory
//! framework can consume — which lets the experiment harnesses compare
//! VEBO against the cut-minimizing school of partitioning head on.
//!
//! The scheme is the classic three-phase one (Karypis & Kumar):
//!
//! 1. **Coarsening** — repeated heavy-edge matching until the graph is
//!    small;
//! 2. **Initial partitioning** — recursive bisection by greedy graph
//!    growing on the coarsest graph;
//! 3. **Uncoarsening** — project the partition back level by level,
//!    applying greedy boundary (Kernighan–Lin style) refinement at each
//!    step under a balance constraint.
//!
//! Vertex weights are two-dimensional — `[vertex count, in-edge count]` —
//! so the partitioner also supports the *multi-constraint* formulation of
//! the paper's reference \[28\] (Karypis & Kumar, "Multilevel algorithms
//! for multi-constraint graph partitioning", SC'98): §VI describes the
//! cut-minimizing school as balancing edges or vertices *as a
//! constraint*; [`BalanceMode::VertexAndEdge`] balances both at once,
//! which is the closest that school comes to VEBO's dual-balance
//! objective. The extension studies quantify what that costs in cut
//! quality and time.

use crate::assignment::VertexAssignment;
use vebo_graph::{Graph, Permutation, VertexOrdering};

/// Two-dimensional vertex weight: `[vertex count, in-edge count]`.
type Weight = [u64; 2];

fn wadd(a: Weight, b: Weight) -> Weight {
    [a[0] + b[0], a[1] + b[1]]
}

fn wfits(w: Weight, cap: Weight) -> bool {
    w[0] <= cap[0] && w[1] <= cap[1]
}

/// Which balance constraints [`Multilevel`] enforces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BalanceMode {
    /// Balance vertex counts only (classic METIS with unit weights).
    #[default]
    VertexOnly,
    /// Balance vertex counts *and* in-edge counts (multi-constraint
    /// partitioning, the paper's reference \[28\]) — the cut-minimizing
    /// school's answer to VEBO's joint objective.
    VertexAndEdge,
}

impl BalanceMode {
    /// Number of active weight dimensions.
    fn dims(self) -> usize {
        match self {
            BalanceMode::VertexOnly => 1,
            BalanceMode::VertexAndEdge => 2,
        }
    }
}

/// Tuning knobs for [`Multilevel`]. The defaults mirror common METIS
/// settings at this reproduction's scales.
#[derive(Clone, Copy, Debug)]
pub struct MultilevelConfig {
    /// Allowed imbalance per constrained weight dimension: a part may
    /// hold up to `(1 + imbalance) * total / P` of it.
    pub imbalance: f64,
    /// Stop coarsening once at most `coarsen_target * P` vertices remain.
    pub coarsen_target: usize,
    /// Boundary-refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// Which weight dimensions to balance.
    pub mode: BalanceMode,
}

impl Default for MultilevelConfig {
    fn default() -> MultilevelConfig {
        MultilevelConfig {
            imbalance: 0.05,
            coarsen_target: 30,
            refine_passes: 4,
            mode: BalanceMode::VertexOnly,
        }
    }
}

/// The multilevel k-way partitioner.
#[derive(Clone, Copy, Debug, Default)]
pub struct Multilevel {
    /// Configuration; see [`MultilevelConfig`].
    pub config: MultilevelConfig,
}

/// An undirected, weighted working graph used during coarsening. Stored in
/// CSR form; multi-edges are merged with summed weights, self-loops
/// dropped.
#[derive(Clone, Debug)]
struct WorkGraph {
    xadj: Vec<usize>,
    /// `(neighbor, edge weight)` pairs, sorted by neighbor within each row.
    adj: Vec<(u32, u64)>,
    vwgt: Vec<Weight>,
}

impl WorkGraph {
    fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    fn neighbors(&self, v: u32) -> &[(u32, u64)] {
        &self.adj[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    fn total_weight(&self) -> Weight {
        self.vwgt.iter().fold([0, 0], |acc, &w| wadd(acc, w))
    }

    /// Builds the undirected working graph of `g`: every arc contributes
    /// weight 1 to both directions (so an undirected input, stored as two
    /// arcs, yields weight-2 edges — a harmless uniform scaling). Vertex
    /// weights are `[1, in_degree]`.
    fn from_graph(g: &Graph) -> WorkGraph {
        let n = g.num_vertices();
        let mut deg = vec![0usize; n];
        for u in g.vertices() {
            for &v in g.out_neighbors(u) {
                if u != v {
                    deg[u as usize] += 1;
                    deg[v as usize] += 1;
                }
            }
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + deg[v];
        }
        let mut adj = vec![(0u32, 0u64); xadj[n]];
        let mut fill = xadj.clone();
        for u in g.vertices() {
            for &v in g.out_neighbors(u) {
                if u != v {
                    adj[fill[u as usize]] = (v, 1);
                    fill[u as usize] += 1;
                    adj[fill[v as usize]] = (u, 1);
                    fill[v as usize] += 1;
                }
            }
        }
        let vwgt = (0..n)
            .map(|v| [1u64, g.in_degree(v as u32) as u64])
            .collect();
        let mut w = WorkGraph { xadj, adj, vwgt };
        w.merge_rows();
        w
    }

    /// Sorts each row and merges duplicate neighbors, summing weights.
    fn merge_rows(&mut self) {
        let n = self.num_vertices();
        let mut out: Vec<(u32, u64)> = Vec::with_capacity(self.adj.len());
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            let row = &mut self.adj[self.xadj[v]..self.xadj[v + 1]];
            row.sort_unstable_by_key(|&(u, _)| u);
            let start = out.len();
            for &(u, w) in row.iter() {
                let merge = out.len() > start && out.last().is_some_and(|last| last.0 == u);
                if merge {
                    out.last_mut().unwrap().1 += w;
                } else {
                    out.push((u, w));
                }
            }
            xadj[v + 1] = out.len();
        }
        self.adj = out;
        self.xadj = xadj;
    }

    /// One round of heavy-edge matching; returns the fine→coarse map and
    /// the coarse vertex count. Pairs whose combined weight exceeds
    /// `max_vwgt` in any constrained dimension are not merged — the
    /// standard METIS guard that keeps coarse vertices small enough for
    /// the initial partition to balance.
    fn heavy_edge_matching(&self, max_vwgt: Weight) -> (Vec<u32>, usize) {
        let n = self.num_vertices();
        let mut matched = vec![u32::MAX; n];
        // Visit light vertices first: they have the fewest matching
        // options, which empirically improves match quality.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&v| self.xadj[v as usize + 1] - self.xadj[v as usize]);
        for &v in &order {
            if matched[v as usize] != u32::MAX {
                continue;
            }
            // Pick the unmatched neighbor with the heaviest edge; ties go
            // to the lowest id for determinism.
            let mut best: Option<(u64, u32)> = None;
            for &(u, w) in self.neighbors(v) {
                if matched[u as usize] == u32::MAX
                    && u != v
                    && wfits(wadd(self.vwgt[v as usize], self.vwgt[u as usize]), max_vwgt)
                {
                    let cand = (w, u);
                    best = Some(match best {
                        Some(b) if b.0 > cand.0 || (b.0 == cand.0 && b.1 < cand.1) => b,
                        _ => cand,
                    });
                }
            }
            match best {
                Some((_, u)) => {
                    matched[v as usize] = u;
                    matched[u as usize] = v;
                }
                None => matched[v as usize] = v, // match with itself
            }
        }
        // Assign coarse ids in fine-id order of the lower endpoint.
        let mut map = vec![u32::MAX; n];
        let mut next = 0u32;
        for v in 0..n as u32 {
            if map[v as usize] == u32::MAX {
                map[v as usize] = next;
                let mate = matched[v as usize];
                if mate != v {
                    map[mate as usize] = next;
                }
                next += 1;
            }
        }
        (map, next as usize)
    }

    /// Contracts the graph along `map` (fine id → coarse id).
    fn contract(&self, map: &[u32], coarse_n: usize) -> WorkGraph {
        let mut deg = vec![0usize; coarse_n];
        for v in 0..self.num_vertices() as u32 {
            let cv = map[v as usize];
            for &(u, _) in self.neighbors(v) {
                if map[u as usize] != cv {
                    deg[cv as usize] += 1;
                }
            }
        }
        let mut xadj = vec![0usize; coarse_n + 1];
        for v in 0..coarse_n {
            xadj[v + 1] = xadj[v] + deg[v];
        }
        let mut adj = vec![(0u32, 0u64); xadj[coarse_n]];
        let mut fill = xadj.clone();
        let mut vwgt = vec![[0u64, 0u64]; coarse_n];
        for v in 0..self.num_vertices() as u32 {
            let cv = map[v as usize];
            vwgt[cv as usize] = wadd(vwgt[cv as usize], self.vwgt[v as usize]);
            for &(u, w) in self.neighbors(v) {
                let cu = map[u as usize];
                if cu != cv {
                    adj[fill[cv as usize]] = (cu, w);
                    fill[cv as usize] += 1;
                }
            }
        }
        let mut out = WorkGraph { xadj, adj, vwgt };
        out.merge_rows();
        out
    }
}

impl Multilevel {
    /// A partitioner with default (vertex-balance-only) configuration.
    pub fn new() -> Multilevel {
        Multilevel::default()
    }

    /// A partitioner that balances vertex *and* in-edge counts (the
    /// multi-constraint formulation of reference \[28\]).
    pub fn multi_constraint() -> Multilevel {
        Multilevel {
            config: MultilevelConfig {
                mode: BalanceMode::VertexAndEdge,
                ..Default::default()
            },
        }
    }

    /// Partitions `g` into `p` parts, minimizing edge cut under the
    /// configured balance constraint(s). `O(m log n)`-ish in practice.
    pub fn partition(&self, g: &Graph, p: usize) -> VertexAssignment {
        assert!(p >= 1);
        let n = g.num_vertices();
        if p == 1 || n == 0 {
            return VertexAssignment::new(vec![0; n], p.max(1));
        }
        if p >= n {
            // Each vertex its own part; trailing parts stay empty.
            return VertexAssignment::new((0..n as u32).collect(), p);
        }

        // Phase 1: coarsen.
        let mut levels: Vec<WorkGraph> = vec![WorkGraph::from_graph(g)];
        let mut maps: Vec<Vec<u32>> = Vec::new();
        let target = (self.config.coarsen_target * p).max(64);
        let totals = levels[0].total_weight();
        let max_vwgt = self.coarse_vertex_cap(totals, target);
        loop {
            let cur = levels.last().unwrap();
            if cur.num_vertices() <= target {
                break;
            }
            let (map, coarse_n) = cur.heavy_edge_matching(max_vwgt);
            // Stalled (e.g. edgeless residue): stop coarsening.
            if coarse_n as f64 > cur.num_vertices() as f64 * 0.95 {
                break;
            }
            let next = cur.contract(&map, coarse_n);
            maps.push(map);
            levels.push(next);
        }

        // Phase 2: initial k-way partition of the coarsest level by
        // recursive bisection.
        let coarsest = levels.last().unwrap();
        let mut part = vec![0u32; coarsest.num_vertices()];
        let all: Vec<u32> = (0..coarsest.num_vertices() as u32).collect();
        self.recursive_bisect(coarsest, &all, 0, p, &mut part);

        // Phase 3: uncoarsen with boundary refinement at each level.
        let max_weight = self.max_part_weight(totals, p);
        for lvl in (0..maps.len()).rev() {
            self.refine(&levels[lvl + 1], &mut part, p, max_weight);
            let map = &maps[lvl];
            let mut fine = vec![0u32; levels[lvl].num_vertices()];
            for (v, &cv) in map.iter().enumerate() {
                fine[v] = part[cv as usize];
            }
            part = fine;
        }
        self.refine(&levels[0], &mut part, p, max_weight);
        VertexAssignment::new(part, p)
    }

    /// Cap on a coarse vertex's weight during matching, per dimension
    /// (unconstrained dimensions are uncapped).
    fn coarse_vertex_cap(&self, totals: Weight, coarse_target: usize) -> Weight {
        let cap = |total: u64| ((1.5 * total as f64 / coarse_target as f64).ceil() as u64).max(2);
        match self.config.mode {
            BalanceMode::VertexOnly => [cap(totals[0]), u64::MAX],
            BalanceMode::VertexAndEdge => [cap(totals[0]), cap(totals[1])],
        }
    }

    /// Per-dimension part-weight cap (unconstrained dimensions uncapped).
    fn max_part_weight(&self, totals: Weight, p: usize) -> Weight {
        let cap = |total: u64| {
            (((total as f64 / p as f64) * (1.0 + self.config.imbalance)).ceil() as u64).max(1)
        };
        match self.config.mode {
            BalanceMode::VertexOnly => [cap(totals[0]), u64::MAX],
            BalanceMode::VertexAndEdge => [cap(totals[0]), cap(totals[1])],
        }
    }

    /// Normalized size of `w` relative to `totals`, averaged over the
    /// active dimensions — the growth measure recursive bisection tracks.
    fn normalized(&self, w: Weight, totals: Weight) -> f64 {
        let dims = self.config.mode.dims();
        let mut s = 0.0;
        for d in 0..dims {
            if totals[d] > 0 {
                s += w[d] as f64 / totals[d] as f64;
            }
        }
        s / dims as f64
    }

    /// Splits `vertices` of `wg` into parts `first..first + parts` by
    /// recursive bisection, writing into `part`.
    fn recursive_bisect(
        &self,
        wg: &WorkGraph,
        vertices: &[u32],
        first: usize,
        parts: usize,
        part: &mut [u32],
    ) {
        if parts == 1 {
            for &v in vertices {
                part[v as usize] = first as u32;
            }
            return;
        }
        let left_parts = parts / 2;
        let totals = vertices
            .iter()
            .fold([0, 0], |acc, &v| wadd(acc, wg.vwgt[v as usize]));
        let frac = left_parts as f64 / parts as f64;
        let (left, right) = self.bisect(wg, vertices, frac, totals);
        self.recursive_bisect(wg, &left, first, left_parts, part);
        self.recursive_bisect(wg, &right, first + left_parts, parts - left_parts, part);
    }

    /// Greedy graph growing: BFS from a boundary-ish seed, preferring the
    /// frontier vertex with the best cut gain, until the grown side holds
    /// the `frac` share of `totals` (normalized over the active weight
    /// dimensions). Returns `(grown side, rest)`.
    fn bisect(
        &self,
        wg: &WorkGraph,
        vertices: &[u32],
        frac: f64,
        totals: Weight,
    ) -> (Vec<u32>, Vec<u32>) {
        let mut in_set = vec![false; wg.num_vertices()];
        let mut eligible = vec![false; wg.num_vertices()];
        for &v in vertices {
            eligible[v as usize] = true;
        }
        // Seed: the lowest-degree vertex (a cheap stand-in for a
        // pseudo-peripheral one).
        let seed = *vertices
            .iter()
            .min_by_key(|&&v| (wg.xadj[v as usize + 1] - wg.xadj[v as usize], v))
            .expect("bisect needs at least one vertex");
        let mut grown: Weight = [0, 0];
        let mut left = Vec::new();
        let mut frontier: Vec<u32> = vec![seed];
        let mut in_frontier = vec![false; wg.num_vertices()];
        in_frontier[seed as usize] = true;
        while self.normalized(grown, totals) < frac {
            // Pick the frontier vertex with the highest connection weight
            // into the grown set (classic GGGP gain), ties to lowest id.
            let pick = match frontier
                .iter()
                .enumerate()
                .max_by_key(|&(_, &v)| {
                    let conn: u64 = wg
                        .neighbors(v)
                        .iter()
                        .filter(|&&(u, _)| in_set[u as usize])
                        .map(|&(_, w)| w)
                        .sum();
                    (conn, u32::MAX - v)
                })
                .map(|(i, _)| i)
            {
                Some(i) => i,
                None => break,
            };
            let v = frontier.swap_remove(pick);
            in_set[v as usize] = true;
            grown = wadd(grown, wg.vwgt[v as usize]);
            left.push(v);
            for &(u, _) in wg.neighbors(v) {
                if eligible[u as usize] && !in_set[u as usize] && !in_frontier[u as usize] {
                    in_frontier[u as usize] = true;
                    frontier.push(u);
                }
            }
            // Disconnected remainder: restart from a fresh eligible seed.
            if frontier.is_empty() && self.normalized(grown, totals) < frac {
                if let Some(&s) = vertices
                    .iter()
                    .find(|&&s| !in_set[s as usize] && !in_frontier[s as usize])
                {
                    frontier.push(s);
                    in_frontier[s as usize] = true;
                }
            }
        }
        let right: Vec<u32> = vertices
            .iter()
            .copied()
            .filter(|&v| !in_set[v as usize])
            .collect();
        (left, right)
    }

    /// Greedy boundary refinement: repeatedly move boundary vertices to
    /// the adjacent part with the largest positive cut gain, while keeping
    /// every part under `max_weight` in all constrained dimensions.
    fn refine(&self, wg: &WorkGraph, part: &mut [u32], p: usize, max_weight: Weight) {
        let n = wg.num_vertices();
        let mut wgt = vec![[0u64, 0u64]; p];
        for v in 0..n {
            wgt[part[v] as usize] = wadd(wgt[part[v] as usize], wg.vwgt[v]);
        }
        // Stamped per-partition connection weights, reused across vertices.
        let mut conn = vec![0u64; p];
        let mut stamp = vec![u32::MAX; p];
        for _pass in 0..self.config.refine_passes {
            let mut moves = 0usize;
            for v in 0..n as u32 {
                let home = part[v as usize];
                let nbrs = wg.neighbors(v);
                if nbrs.is_empty() {
                    continue;
                }
                // Gather connection weight per adjacent partition.
                let mut adjacent: Vec<u32> = Vec::with_capacity(4);
                for &(u, w) in nbrs {
                    let pu = part[u as usize];
                    if stamp[pu as usize] != v {
                        stamp[pu as usize] = v;
                        conn[pu as usize] = 0;
                        if pu != home {
                            adjacent.push(pu);
                        }
                    }
                    conn[pu as usize] += w;
                }
                let internal = if stamp[home as usize] == v {
                    conn[home as usize]
                } else {
                    0
                };
                let vw = wg.vwgt[v as usize];
                let mut best: Option<(u64, u32)> = None;
                for &q in &adjacent {
                    if !wfits(wadd(wgt[q as usize], vw), max_weight) {
                        continue;
                    }
                    let cand = (conn[q as usize], u32::MAX - q);
                    if best.is_none_or(|b| cand > b) {
                        best = Some(cand);
                    }
                }
                if let Some((gain_to, enc)) = best {
                    // Move on positive gain, or on any fitting move when
                    // the home part is over a cap (balance restoration —
                    // the initial partition can overshoot on skewed
                    // graphs where coarse vertices are heavy).
                    let overweight = !wfits(wgt[home as usize], max_weight);
                    if gain_to > internal || overweight {
                        let q = u32::MAX - enc;
                        let hw = &mut wgt[home as usize];
                        hw[0] -= vw[0];
                        hw[1] -= vw[1];
                        wgt[q as usize] = wadd(wgt[q as usize], vw);
                        part[v as usize] = q;
                        moves += 1;
                    }
                }
            }
            if moves == 0 {
                break;
            }
        }
    }
}

/// METIS-like multilevel partitioning followed by the contiguous
/// relabeling shared-memory systems require (§VI). The resulting order
/// groups each low-cut part into a consecutive id range.
#[derive(Clone, Copy, Debug)]
pub struct MetisLikeOrder {
    /// Number of parts the underlying partitioner computes.
    pub num_partitions: usize,
    /// Partitioner configuration.
    pub config: MultilevelConfig,
}

impl MetisLikeOrder {
    /// An ordering backed by a `p`-way multilevel partition.
    pub fn new(num_partitions: usize) -> MetisLikeOrder {
        MetisLikeOrder {
            num_partitions,
            config: MultilevelConfig::default(),
        }
    }
}

impl VertexOrdering for MetisLikeOrder {
    fn name(&self) -> &str {
        "METIS-like"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        let ml = Multilevel {
            config: self.config,
        };
        let (perm, _) = ml.partition(g, self.num_partitions).relabeling();
        perm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::{Dataset, VertexId};

    fn grid(w: usize, h: usize) -> Graph {
        let mut edges = Vec::new();
        let id = |x: usize, y: usize| (y * w + x) as VertexId;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        Graph::from_edges(w * h, &edges, false)
    }

    #[test]
    fn covers_all_vertices_within_balance() {
        let g = Dataset::LiveJournalLike.build(0.05);
        let p = 8;
        let a = Multilevel::new().partition(&g, p);
        assert_eq!(a.num_vertices(), g.num_vertices());
        let counts = a.vertex_counts();
        assert_eq!(counts.iter().sum::<usize>(), g.num_vertices());
        let max = *counts.iter().max().unwrap() as f64;
        let avg = g.num_vertices() as f64 / p as f64;
        // Vertex weight == 1 here, so the constraint maps to vertex counts.
        assert!(max <= avg * 1.06 + 1.0, "max {max} avg {avg}");
    }

    #[test]
    fn beats_hash_partitioning_on_mesh_cut() {
        // A 2D grid is the geometry where multilevel shines: the cut
        // should be a small fraction of what random (hash) placement cuts.
        let g = grid(40, 40);
        let p = 8;
        let ml = Multilevel::new().partition(&g, p);
        let hash = VertexAssignment::new(
            g.vertices()
                .map(|v| (vebo_graph::mix64(v as u64) % p as u64) as u32)
                .collect(),
            p,
        );
        let cml = ml.quality(&g).cut_edges;
        let chash = hash.quality(&g).cut_edges;
        assert!(cml * 3 < chash, "multilevel cut {cml}, hash cut {chash}");
    }

    #[test]
    fn bisection_of_two_cliques_finds_the_bridge() {
        // Two K5s joined by a single edge: the optimal bisection cuts 1
        // undirected edge (2 arcs).
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b));
                edges.push((a + 5, b + 5));
            }
        }
        edges.push((0, 5));
        let g = Graph::from_edges(10, &edges, false);
        let a = Multilevel::new().partition(&g, 2);
        let q = a.quality(&g);
        assert_eq!(q.cut_edges, 2, "should cut exactly the bridge");
        assert_eq!(q.vertex_spread, 0);
    }

    #[test]
    fn single_partition_short_circuits() {
        let g = grid(5, 5);
        let a = Multilevel::new().partition(&g, 1);
        assert!(a.as_slice().iter().all(|&p| p == 0));
        assert_eq!(a.quality(&g).cut_edges, 0);
    }

    #[test]
    fn more_parts_than_vertices() {
        let g = grid(2, 2);
        let a = Multilevel::new().partition(&g, 16);
        assert_eq!(a.num_partitions(), 16);
        // Each vertex alone in its part: every edge is cut.
        assert_eq!(a.quality(&g).cut_edges, g.num_edges() as u64);
    }

    #[test]
    fn deterministic() {
        let g = Dataset::YahooLike.build(0.05);
        let a = Multilevel::new().partition(&g, 6);
        let b = Multilevel::new().partition(&g, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn works_on_directed_power_law() {
        let g = Dataset::TwitterLike.build(0.05);
        let a = Multilevel::new().partition(&g, 16);
        let q = a.quality(&g);
        assert!(q.cut_fraction() < 1.0);
        assert_eq!(a.vertex_counts().iter().sum::<usize>(), g.num_vertices());
    }

    #[test]
    fn metis_like_order_groups_parts_contiguously() {
        let g = grid(20, 20);
        let p = 4;
        let order = MetisLikeOrder::new(p);
        let perm = order.compute(&g);
        let ml = Multilevel::new().partition(&g, p);
        // All vertices of one part must map to a contiguous new-id range.
        let mut ranges = vec![(u32::MAX, 0u32); p];
        for v in g.vertices() {
            let part = ml.partition_of(v) as usize;
            let id = perm.new_id(v);
            ranges[part].0 = ranges[part].0.min(id);
            ranges[part].1 = ranges[part].1.max(id);
        }
        let counts = ml.vertex_counts();
        for (part, &(lo, hi)) in ranges.iter().enumerate() {
            assert_eq!(
                (hi - lo + 1) as usize,
                counts[part],
                "part {part} not contiguous"
            );
        }
        assert_eq!(order.name(), "METIS-like");
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::from_edges(0, &[], true);
        let a = Multilevel::new().partition(&g, 4);
        assert_eq!(a.num_vertices(), 0);
    }

    #[test]
    fn refinement_respects_weight_cap() {
        let g = Dataset::OrkutLike.build(0.05);
        let p = 8;
        let cfg = MultilevelConfig {
            imbalance: 0.02,
            ..Default::default()
        };
        let a = Multilevel { config: cfg }.partition(&g, p);
        let max = *a.vertex_counts().iter().max().unwrap() as f64;
        let avg = g.num_vertices() as f64 / p as f64;
        assert!(max <= avg * 1.03 + 2.0, "max {max} avg {avg}");
    }

    #[test]
    fn multi_constraint_balances_both_dimensions() {
        // Reference \[28\]'s formulation must bound vertex AND in-edge
        // imbalance together on a skewed graph, where the vertex-only
        // mode leaves edges unbalanced.
        let g = Dataset::TwitterLike.build(0.2);
        let p = 8;
        let mc = Multilevel::multi_constraint().partition(&g, p);
        let q = mc.quality(&g);
        assert!(
            q.vertex_imbalance <= 1.10,
            "vertex imb {}",
            q.vertex_imbalance
        );
        assert!(q.edge_imbalance <= 1.20, "edge imb {}", q.edge_imbalance);
    }

    #[test]
    fn multi_constraint_tightens_edge_balance_vs_vertex_only() {
        let g = Dataset::TwitterLike.build(0.2);
        let p = 8;
        let vo = Multilevel::new().partition(&g, p).quality(&g);
        let mc = Multilevel::multi_constraint().partition(&g, p).quality(&g);
        assert!(
            mc.edge_imbalance <= vo.edge_imbalance + 1e-9,
            "MC {} vs VO {}",
            mc.edge_imbalance,
            vo.edge_imbalance
        );
    }

    #[test]
    fn multi_constraint_still_cuts_less_than_hash_on_mesh() {
        let g = grid(40, 40);
        let p = 8;
        let mc = Multilevel::multi_constraint().partition(&g, p);
        let hash = VertexAssignment::new(
            g.vertices()
                .map(|v| (vebo_graph::mix64(v as u64) % p as u64) as u32)
                .collect(),
            p,
        );
        assert!(mc.quality(&g).cut_edges * 2 < hash.quality(&g).cut_edges);
    }

    #[test]
    fn multi_constraint_deterministic() {
        let g = Dataset::LiveJournalLike.build(0.05);
        let a = Multilevel::multi_constraint().partition(&g, 8);
        let b = Multilevel::multi_constraint().partition(&g, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn modes_expose_dims() {
        assert_eq!(BalanceMode::VertexOnly.dims(), 1);
        assert_eq!(BalanceMode::VertexAndEdge.dims(), 2);
        assert_eq!(BalanceMode::default(), BalanceMode::VertexOnly);
    }
}
