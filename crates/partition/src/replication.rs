//! Vertex replication and edge-cut metrics — the quantities distributed
//! graph systems optimize (PowerGraph/PowerLyra) and the axis of the
//! paper's stated future work (§VII): does VEBO's load balance come at an
//! acceptable cost in replication when partitions live on different
//! machines?
//!
//! Under partitioning by destination, a source vertex is *replicated* into
//! every partition that holds at least one of its out-edges (its value
//! must be shipped there). The replication factor is the average number of
//! partitions per vertex with out-edges — the communication-volume proxy
//! used by vertex-cut systems.

use crate::by_destination::PartitionBounds;
use vebo_graph::{Graph, VertexId};

/// Communication-cost metrics of a destination-partitioned graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplicationReport {
    /// Average partitions touched per vertex with out-edges
    /// (PowerGraph's replication factor; 1.0 = no replication).
    pub replication_factor: f64,
    /// Total vertex replicas beyond the first (mirror count).
    pub mirrors: u64,
    /// Edges whose source lies in a different partition than their
    /// destination (the classic edge cut).
    pub cut_edges: u64,
    /// Total edges.
    pub total_edges: u64,
}

impl ReplicationReport {
    /// Fraction of edges cut.
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }
}

/// Computes replication and edge-cut metrics for a destination
/// partitioning. `O(n + m)` with a stamp array.
pub fn replication(g: &Graph, bounds: &PartitionBounds) -> ReplicationReport {
    assert_eq!(bounds.num_vertices(), g.num_vertices());
    let n = g.num_vertices();
    let mut stamp: Vec<u32> = vec![u32::MAX; n];
    let mut touched = vec![0u64; n];
    let mut cut_edges = 0u64;
    for (p, range) in bounds.iter() {
        for v in range.clone() {
            for &u in g.in_neighbors(v as VertexId) {
                if stamp[u as usize] != p as u32 {
                    stamp[u as usize] = p as u32;
                    touched[u as usize] += 1;
                }
                if !range.contains(&(u as usize)) {
                    cut_edges += 1;
                }
            }
        }
    }
    let with_out: Vec<u64> = touched.iter().copied().filter(|&t| t > 0).collect();
    let replicas: u64 = with_out.iter().sum();
    let sources = with_out.len().max(1) as u64;
    ReplicationReport {
        replication_factor: replicas as f64 / sources as f64,
        mirrors: replicas - sources.min(replicas),
        cut_edges,
        total_edges: g.num_edges() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::{Dataset, Graph};

    #[test]
    fn single_partition_has_no_replication() {
        let g = Dataset::YahooLike.build(0.03);
        let b = PartitionBounds::from_starts(vec![0, g.num_vertices()]);
        let r = replication(&g, &b);
        assert_eq!(r.replication_factor, 1.0);
        assert_eq!(r.mirrors, 0);
        assert_eq!(r.cut_edges, 0);
    }

    #[test]
    fn known_small_graph() {
        // 0 -> 1 (partition 0), 0 -> 2 (partition 1), 3 -> 2 (partition 1):
        // vertex 0 touches both partitions (2 replicas), vertex 3 one.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (3, 2)], true);
        let b = PartitionBounds::from_starts(vec![0, 2, 4]);
        let r = replication(&g, &b);
        assert!((r.replication_factor - 1.5).abs() < 1e-12); // (2 + 1) / 2
        assert_eq!(r.mirrors, 1);
        // Cut edges: 0->2 (0 in p0, 2 in p1) and 3->2 (3 in p1? no, 3 is
        // in partition 1 and 2 is in partition 1 -> internal); 0->1
        // internal. So exactly one cut edge.
        assert_eq!(r.cut_edges, 1);
        assert!((r.cut_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn replication_grows_with_partition_count() {
        let g = Dataset::LiveJournalLike.build(0.05);
        let r4 = replication(&g, &PartitionBounds::edge_balanced(&g, 4));
        let r64 = replication(&g, &PartitionBounds::edge_balanced(&g, 64));
        assert!(r64.replication_factor > r4.replication_factor);
        assert!(r64.cut_edges >= r4.cut_edges);
    }

    #[test]
    fn replication_bounded_by_partitions_and_degree() {
        let g = Dataset::YahooLike.build(0.05);
        let p = 16;
        let r = replication(&g, &PartitionBounds::edge_balanced(&g, p));
        assert!(r.replication_factor >= 1.0);
        assert!(r.replication_factor <= p as f64);
    }

    #[test]
    fn road_network_cuts_few_edges_in_id_order() {
        // Road meshes with row-major ids have strong locality: chunked
        // partitions cut only boundary rows (§V-B's point about why VEBO
        // hurts there — it destroys exactly this).
        let g = Dataset::UsaRoadLike.build(0.1);
        let r = replication(&g, &PartitionBounds::edge_balanced(&g, 16));
        assert!(r.cut_fraction() < 0.2, "cut {}", r.cut_fraction());
    }
}
