//! Algorithm 1 of the paper: locality-preserving edge-balanced
//! partitioning *by destination*.
//!
//! Each partition is a chunk of consecutively numbered vertices; an edge
//! belongs to the partition holding its destination. The partitioner walks
//! vertices in id order and closes a partition once it has reached the
//! average edge count. On a VEBO-reordered graph this produces the optimal
//! balance; on other orders it produces the edge-balanced-but-vertex-
//! imbalanced partitions the paper's §II criticizes.

use vebo_graph::{Graph, VertexId};

/// Why a boundary array cannot form a [`PartitionBounds`].
///
/// Returned by [`PartitionBounds::try_from_starts`] so that malformed
/// VEBO phase-3 output surfaces as a typed error at the API boundary
/// instead of a panic deep inside a layout build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundsError {
    /// Fewer than two boundaries: not even one partition.
    TooFewBoundaries {
        /// Length of the offending array.
        len: usize,
    },
    /// The first boundary must be 0.
    FirstNotZero {
        /// The offending first element.
        first: usize,
    },
    /// Boundaries must be non-decreasing.
    NotMonotonic {
        /// Index of the first boundary smaller than its predecessor.
        index: usize,
        /// The predecessor's value.
        prev: usize,
        /// The offending value.
        next: usize,
    },
    /// The last boundary must equal the graph's vertex count (checked by
    /// consumers that know the graph, e.g. the `PreparedGraph` builder).
    VertexCountMismatch {
        /// Vertices the graph has.
        expected: usize,
        /// Vertices the boundaries cover.
        found: usize,
    },
}

impl std::fmt::Display for BoundsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundsError::TooFewBoundaries { len } => {
                write!(f, "need at least 2 boundaries for one partition, got {len}")
            }
            BoundsError::FirstNotZero { first } => {
                write!(f, "first boundary must be 0, got {first}")
            }
            BoundsError::NotMonotonic { index, prev, next } => write!(
                f,
                "boundaries must be sorted: starts[{index}] = {next} < starts[{}] = {prev}",
                index - 1
            ),
            BoundsError::VertexCountMismatch { expected, found } => write!(
                f,
                "boundaries cover {found} vertices but the graph has {expected}"
            ),
        }
    }
}

impl std::error::Error for BoundsError {}

/// Contiguous vertex ranges: partition `p` owns destinations
/// `starts[p]..starts[p + 1]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionBounds {
    starts: Vec<usize>,
}

impl PartitionBounds {
    /// Runs Algorithm 1: chunks the destination set so that each partition
    /// accumulates roughly `|E| / P` in-edges.
    ///
    /// The boundary test uses *cumulative* targets (`close partition k at
    /// the first vertex where the running edge count reaches
    /// `(k + 1) |E| / P`) rather than the paper's literal per-partition
    /// reset. The two are equivalent when the average dwarfs the maximum
    /// degree (the paper's billion-edge setting), but the literal reset
    /// compounds hub overshoot at reduced scale and starves the trailing
    /// partitions; the cumulative form is drift-free.
    pub fn edge_balanced(g: &Graph, num_partitions: usize) -> PartitionBounds {
        assert!(num_partitions >= 1);
        let n = g.num_vertices();
        let m = g.num_edges();
        let mut starts = Vec::with_capacity(num_partitions + 1);
        starts.push(0usize);
        let mut cum = 0u64;
        for v in 0..n as VertexId {
            let target = starts.len() as f64 * m as f64 / num_partitions as f64;
            if cum as f64 >= target && starts.len() < num_partitions {
                starts.push(v as usize);
            }
            cum += g.in_degree(v) as u64;
        }
        while starts.len() < num_partitions {
            starts.push(n);
        }
        starts.push(n);
        PartitionBounds { starts }
    }

    /// Chunks the vertex set into equal-vertex-count partitions (the
    /// vertex-balanced alternative GraphGrind's predecessor selected for
    /// vertex-oriented algorithms).
    pub fn vertex_balanced(num_vertices: usize, num_partitions: usize) -> PartitionBounds {
        assert!(num_partitions >= 1);
        let mut starts = Vec::with_capacity(num_partitions + 1);
        for p in 0..=num_partitions {
            starts.push(p * num_vertices / num_partitions);
        }
        PartitionBounds { starts }
    }

    /// Uses explicit boundaries (e.g. the exact per-partition vertex
    /// counts VEBO computed in its phase 3).
    ///
    /// # Panics
    ///
    /// On malformed boundaries; use [`PartitionBounds::try_from_starts`]
    /// to validate untrusted input without panicking.
    pub fn from_starts(starts: Vec<usize>) -> PartitionBounds {
        match Self::try_from_starts(starts) {
            Ok(b) => b,
            // Keep "sorted" in the monotonicity message: callers match it.
            Err(e) => panic!("invalid partition boundaries: {e}"),
        }
    }

    /// As [`PartitionBounds::from_starts`] but validating: boundaries must
    /// be at least two, start at 0, and be non-decreasing. The final
    /// boundary's agreement with a graph's vertex count is checked by
    /// graph-aware consumers (see `vebo_engine::PreparedGraph::builder`),
    /// which reuse [`BoundsError::VertexCountMismatch`].
    pub fn try_from_starts(starts: Vec<usize>) -> Result<PartitionBounds, BoundsError> {
        if starts.len() < 2 {
            return Err(BoundsError::TooFewBoundaries { len: starts.len() });
        }
        if starts[0] != 0 {
            return Err(BoundsError::FirstNotZero { first: starts[0] });
        }
        if let Some(i) = (1..starts.len()).find(|&i| starts[i] < starts[i - 1]) {
            return Err(BoundsError::NotMonotonic {
                index: i,
                prev: starts[i - 1],
                next: starts[i],
            });
        }
        Ok(PartitionBounds { starts })
    }

    /// Number of partitions.
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.starts.len() - 1
    }

    /// Number of vertices covered.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        *self.starts.last().unwrap()
    }

    /// Vertex range of partition `p`.
    #[inline]
    pub fn range(&self, p: usize) -> std::ops::Range<usize> {
        self.starts[p]..self.starts[p + 1]
    }

    /// Partition owning destination vertex `v` (binary search).
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> usize {
        debug_assert!((v as usize) < self.num_vertices());
        self.starts.partition_point(|&s| s <= v as usize) - 1
    }

    /// The raw boundary array (length `P + 1`).
    #[inline]
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// Iterates `(partition, range)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, std::ops::Range<usize>)> + '_ {
        (0..self.num_partitions()).map(move |p| (p, self.range(p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_core::Vebo;
    use vebo_graph::Dataset;

    fn line_graph(n: usize) -> Graph {
        let edges: Vec<(VertexId, VertexId)> = (0..n - 1)
            .map(|v| (v as VertexId, v as VertexId + 1))
            .collect();
        Graph::from_edges(n, &edges, true)
    }

    #[test]
    fn edge_balanced_splits_uniform_graph_evenly() {
        let g = line_graph(100); // every vertex except 0 has in-degree 1
        let b = PartitionBounds::edge_balanced(&g, 4);
        assert_eq!(b.num_partitions(), 4);
        assert_eq!(b.num_vertices(), 100);
        for (_, r) in b.iter() {
            let edges: usize = r.clone().map(|v| g.in_degree(v as VertexId)).sum();
            assert!((24..=26).contains(&edges), "partition edges {edges}");
        }
    }

    #[test]
    fn partitions_cover_all_vertices_disjointly() {
        let g = Dataset::TwitterLike.build(0.05);
        let b = PartitionBounds::edge_balanced(&g, 48);
        let mut covered = 0usize;
        for (_, r) in b.iter() {
            covered += r.len();
        }
        assert_eq!(covered, g.num_vertices());
    }

    #[test]
    fn partition_of_matches_ranges() {
        let g = Dataset::YahooLike.build(0.05);
        let b = PartitionBounds::edge_balanced(&g, 16);
        for (p, r) in b.iter() {
            for v in r {
                assert_eq!(b.partition_of(v as VertexId), p);
            }
        }
    }

    #[test]
    fn high_degree_boundary_vertices_create_imbalance() {
        // §II: a high-degree vertex at a chunk boundary overloads one side.
        // A star graph (one hub) cannot be split evenly by any chunking.
        let mut edges: Vec<(VertexId, VertexId)> = (1..100).map(|u| (u, 0)).collect();
        edges.push((0, 1));
        let g = Graph::from_edges(100, &edges, true);
        let b = PartitionBounds::edge_balanced(&g, 4);
        let per: Vec<usize> = b
            .iter()
            .map(|(_, r)| r.map(|v| g.in_degree(v as VertexId)).sum())
            .collect();
        let max = per.iter().max().unwrap();
        let min = per.iter().min().unwrap();
        assert!(max - min > 10, "expected imbalance, got {per:?}");
    }

    #[test]
    fn vebo_starts_feed_algorithm1_exactly() {
        // On a VEBO-reordered graph, Algorithm 1's own boundaries land on
        // (or extremely near) VEBO's intended boundaries; using
        // from_starts with VEBO's phase-3 output is exact.
        let g = Dataset::TwitterLike.build(0.1);
        let r = Vebo::new(32).compute_full(&g);
        let h = r.permutation.apply_graph(&g);
        let b = PartitionBounds::from_starts(r.starts.clone());
        let per: Vec<u64> = b
            .iter()
            .map(|(_, range)| range.map(|v| h.in_degree(v as VertexId) as u64).sum())
            .collect();
        assert_eq!(
            per, r.edge_counts,
            "in-edge counts must match VEBO's bookkeeping"
        );
    }

    #[test]
    fn vertex_balanced_ranges_differ_by_at_most_one() {
        let b = PartitionBounds::vertex_balanced(103, 10);
        let sizes: Vec<usize> = b.iter().map(|(_, r)| r.len()).collect();
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 1);
        assert_eq!(sizes.iter().sum::<usize>(), 103);
    }

    #[test]
    fn more_partitions_than_vertices_yields_empty_tails() {
        let g = line_graph(3);
        let b = PartitionBounds::edge_balanced(&g, 8);
        assert_eq!(b.num_partitions(), 8);
        assert_eq!(b.num_vertices(), 3);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn from_starts_rejects_unsorted() {
        PartitionBounds::from_starts(vec![0, 5, 3, 10]);
    }

    #[test]
    fn try_from_starts_accepts_valid_boundaries() {
        let b = PartitionBounds::try_from_starts(vec![0, 3, 3, 10]).unwrap();
        assert_eq!(b.num_partitions(), 3);
        assert_eq!(b.num_vertices(), 10);
        assert_eq!(b.range(1), 3..3);
    }

    #[test]
    fn try_from_starts_reports_typed_errors() {
        assert_eq!(
            PartitionBounds::try_from_starts(vec![]),
            Err(BoundsError::TooFewBoundaries { len: 0 })
        );
        assert_eq!(
            PartitionBounds::try_from_starts(vec![0]),
            Err(BoundsError::TooFewBoundaries { len: 1 })
        );
        assert_eq!(
            PartitionBounds::try_from_starts(vec![1, 5]),
            Err(BoundsError::FirstNotZero { first: 1 })
        );
        assert_eq!(
            PartitionBounds::try_from_starts(vec![0, 5, 3, 10]),
            Err(BoundsError::NotMonotonic {
                index: 2,
                prev: 5,
                next: 3
            })
        );
        // Errors render as readable messages.
        let msg = PartitionBounds::try_from_starts(vec![0, 5, 3])
            .unwrap_err()
            .to_string();
        assert!(msg.contains("sorted"), "{msg}");
    }
}
