//! Property-based tests for partitioning invariants.

use proptest::prelude::*;
use vebo_graph::graph::mix64;
use vebo_graph::{Graph, VertexId};
use vebo_partition::hilbert::{d_to_xy, xy_to_d};
use vebo_partition::partitioned::{PartitionedCoo, PartitionedSubCsr};
use vebo_partition::{EdgeOrder, PartitionBounds};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..80, 0usize..400, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut x = seed;
        let mut next = || {
            x = mix64(x);
            x
        };
        let edges: Vec<(VertexId, VertexId)> = (0..m)
            .map(|_| {
                (
                    (next() % n as u64) as VertexId,
                    (next() % n as u64) as VertexId,
                )
            })
            .collect();
        Graph::from_edges(n, &edges, true)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hilbert curve index mapping is a bijection (roundtrip form).
    #[test]
    fn hilbert_roundtrip(order in 1u32..12, x in 0u64..4096, y in 0u64..4096) {
        let side = 1u64 << order;
        let (x, y) = (x % side, y % side);
        let d = xy_to_d(order, x, y);
        prop_assert!(d < side * side);
        prop_assert_eq!(d_to_xy(order, d), (x, y));
    }

    /// Algorithm 1 partitions cover all vertices disjointly and conserve
    /// edges, for any graph and partition count.
    #[test]
    fn algorithm1_covers((g, p) in arb_graph().prop_flat_map(|g| (Just(g), 1usize..40))) {
        let b = PartitionBounds::edge_balanced(&g, p);
        prop_assert_eq!(b.num_partitions(), p);
        prop_assert_eq!(b.num_vertices(), g.num_vertices());
        let mut covered = 0usize;
        let mut edges = 0u64;
        for (_, r) in b.iter() {
            covered += r.len();
            edges += r.map(|v| g.in_degree(v as VertexId) as u64).sum::<u64>();
        }
        prop_assert_eq!(covered, g.num_vertices());
        prop_assert_eq!(edges, g.num_edges() as u64);
    }

    /// `partition_of` agrees with the ranges.
    #[test]
    fn partition_of_consistent((g, p) in arb_graph().prop_flat_map(|g| (Just(g), 1usize..20))) {
        let b = PartitionBounds::edge_balanced(&g, p);
        for (q, r) in b.iter() {
            for v in r {
                prop_assert_eq!(b.partition_of(v as VertexId), q);
            }
        }
    }

    /// The partitioned COO covers every edge exactly once, destinations
    /// stay in their partition, in both edge orders.
    #[test]
    fn coo_conserves_edges((g, p) in arb_graph().prop_flat_map(|g| (Just(g), 1usize..20))) {
        for order in [EdgeOrder::Csr, EdgeOrder::Hilbert] {
            let b = PartitionBounds::edge_balanced(&g, p);
            let coo = PartitionedCoo::build(&g, &b, order);
            prop_assert_eq!(coo.num_edges(), g.num_edges());
            let mut collected: Vec<(VertexId, VertexId)> = Vec::new();
            for q in 0..coo.num_partitions() {
                let (src, dst) = coo.partition_edges(q);
                for (&s, &d) in src.iter().zip(dst) {
                    prop_assert!(b.range(q).contains(&(d as usize)));
                    collected.push((s, d));
                }
            }
            collected.sort_unstable();
            let mut expected: Vec<(VertexId, VertexId)> = g
                .vertices()
                .flat_map(|u| g.out_neighbors(u).iter().map(move |&v| (u, v)))
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(collected, expected);
        }
    }

    /// The per-partition sub-CSRs conserve the edge multiset.
    #[test]
    fn subcsr_conserves_edges((g, p) in arb_graph().prop_flat_map(|g| (Just(g), 1usize..20))) {
        let b = PartitionBounds::edge_balanced(&g, p);
        let sub = PartitionedSubCsr::build(&g, &b);
        prop_assert_eq!(sub.num_edges(), g.num_edges());
        let mut collected: Vec<(VertexId, VertexId)> = Vec::new();
        for q in 0..sub.num_partitions() {
            for (u, dsts) in sub.partition(q).iter() {
                for &v in dsts {
                    prop_assert!(b.range(q).contains(&(v as usize)));
                    collected.push((u, v));
                }
            }
        }
        collected.sort_unstable();
        let mut expected: Vec<(VertexId, VertexId)> = g
            .vertices()
            .flat_map(|u| g.out_neighbors(u).iter().map(move |&v| (u, v)))
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(collected, expected);
    }

    /// Vertex-balanced bounds differ by at most one vertex.
    #[test]
    fn vertex_balanced_tight(n in 1usize..1000, p in 1usize..64) {
        let b = PartitionBounds::vertex_balanced(n, p);
        let sizes: Vec<usize> = b.iter().map(|(_, r)| r.len()).collect();
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1);
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
    }
}
