//! Property tests for [`vebo_partition::ShardPlan`]: shard derivation is
//! a *partition* of the graph — every task in exactly one shard, every
//! vertex in exactly one shard, shard boundaries always partition
//! boundaries (socket boundaries too, where a placement plan is given),
//! and per-shard edge counts summing to exactly `m`.

use proptest::prelude::*;
use vebo_graph::graph::mix64;
use vebo_graph::{Graph, VertexId};
use vebo_partition::numa::NumaTopology;
use vebo_partition::{PartitionBounds, ShardPlan};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..80, 0usize..400, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut x = seed;
        let mut next = || {
            x = mix64(x);
            x
        };
        let edges: Vec<(VertexId, VertexId)> = (0..m)
            .map(|_| {
                (
                    (next() % n as u64) as VertexId,
                    (next() % n as u64) as VertexId,
                )
            })
            .collect();
        Graph::from_edges(n, &edges, true)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Contiguous derivation: shards tile the task space and every task
    /// lands in exactly the shard that claims it.
    #[test]
    fn shards_partition_the_task_space(tasks in 0usize..600, shards in 1usize..20) {
        let plan = ShardPlan::contiguous(tasks, shards);
        prop_assert_eq!(plan.num_shards(), shards);
        prop_assert_eq!(plan.num_tasks(), tasks);
        let mut covered = 0usize;
        for s in 0..shards {
            let r = plan.tasks_of(s);
            prop_assert_eq!(r.start, covered);
            covered = r.end;
        }
        prop_assert_eq!(covered, tasks);
        for t in 0..tasks {
            prop_assert!(plan.tasks_of(plan.shard_of_task(t)).contains(&t));
        }
    }

    /// Vertex-space partition property over edge-balanced bounds: every
    /// vertex in exactly one shard, every shard boundary a partition
    /// boundary, per-shard destination-edge counts summing to m.
    #[test]
    fn shards_partition_vertices_and_edges(
        g in arb_graph(),
        partitions in 1usize..40,
        shards in 1usize..12,
    ) {
        let bounds = PartitionBounds::edge_balanced(&g, partitions);
        let plan = ShardPlan::contiguous(bounds.num_partitions(), shards);
        let vs = plan.vertex_starts(&bounds);

        // Tiling: [0, ..., n], monotone — every vertex in exactly one shard.
        prop_assert_eq!(vs[0], 0);
        prop_assert_eq!(*vs.last().unwrap(), g.num_vertices());
        for w in vs.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        for v in 0..g.num_vertices() {
            let owners = (0..plan.num_shards())
                .filter(|&s| plan.vertex_range(&bounds, s).contains(&v))
                .count();
            prop_assert_eq!(owners, 1, "vertex {} owned by {} shards", v, owners);
        }

        // Boundaries respect PartitionBounds.
        for &b in &vs {
            prop_assert!(bounds.starts().contains(&b), "{} not a partition boundary", b);
        }

        // Edge conservation.
        let per_shard = plan.edge_counts(&g, &bounds);
        prop_assert_eq!(per_shard.iter().sum::<u64>(), g.num_edges() as u64);
    }

    /// Placement-aligned derivation: still a partition of the task
    /// space, and socket-block aligned — with `S <= sockets` every shard
    /// boundary is a socket boundary; with `S > sockets` no nonempty
    /// shard straddles a socket boundary.
    #[test]
    fn placement_shards_respect_socket_blocks(
        tasks in 1usize..600,
        shards in 1usize..20,
        sockets in 1usize..8,
    ) {
        let topo = NumaTopology { num_sockets: sockets, num_threads: sockets * 12 };
        let placement = topo.placement_plan(tasks);
        let plan = ShardPlan::from_placement(&placement, shards);
        prop_assert_eq!(plan.num_shards(), shards);
        prop_assert_eq!(plan.num_tasks(), tasks);
        let mut covered = 0usize;
        for s in 0..shards {
            let r = plan.tasks_of(s);
            prop_assert_eq!(r.start, covered);
            covered = r.end;
        }
        prop_assert_eq!(covered, tasks);
        if shards <= sockets {
            let socket_starts: Vec<usize> =
                (0..sockets).map(|s| placement.tasks_of_socket(s).start).collect();
            for &b in &plan.task_starts()[..shards] {
                prop_assert!(socket_starts.contains(&b), "boundary {} not a socket start", b);
            }
        } else {
            for s in 0..shards {
                let r = plan.tasks_of(s);
                if !r.is_empty() {
                    prop_assert_eq!(
                        placement.socket_of(r.start),
                        placement.socket_of(r.end - 1),
                        "shard {} spans sockets", s
                    );
                }
            }
        }
    }
}
