//! Fennel streaming partitioning — Tsourakakis, Gkantsidis, Radunovic &
//! Vojnovic, WSDM 2014 (§VI: "computes approximations to the optimal
//! partition of similar quality to METIS in a fraction of the time").
//!
//! Fennel interpolates between cut minimization and balance with a single
//! objective: place vertex `v` on the partition maximizing
//!
//! ```text
//! |N(v) ∩ P_i|  −  α γ |P_i|^(γ−1)
//! ```
//!
//! The first term is the greedy cut saving, the second the marginal
//! *cost* of growing partition `i` under the power-law balance penalty
//! `c(x) = α x^γ`. The paper's recommended parameters are `γ = 1.5` and
//! `α = √p · m / n^1.5`, with a hard capacity `ν · n / p`.

use vebo_graph::{Graph, VertexId};
use vebo_partition::VertexAssignment;

/// The Fennel streaming partitioner.
#[derive(Clone, Copy, Debug)]
pub struct Fennel {
    /// Balance-penalty exponent (`γ` in the paper, default 1.5).
    pub gamma: f64,
    /// Hard capacity multiplier (`ν` in the paper, default 1.1): no
    /// partition may exceed `ν n / p` vertices.
    pub nu: f64,
}

impl Default for Fennel {
    fn default() -> Fennel {
        Fennel {
            gamma: 1.5,
            nu: 1.1,
        }
    }
}

impl Fennel {
    /// Fennel with explicit parameters.
    pub fn new(gamma: f64, nu: f64) -> Fennel {
        assert!(gamma > 1.0, "gamma must exceed 1");
        assert!(nu >= 1.0, "nu must be at least 1");
        Fennel { gamma, nu }
    }

    /// Streams vertices in id order.
    pub fn partition(&self, g: &Graph, p: usize) -> VertexAssignment {
        let order: Vec<VertexId> = g.vertices().collect();
        self.partition_with_order(g, p, &order)
    }

    /// Streams vertices in the given order.
    pub fn partition_with_order(
        &self,
        g: &Graph,
        p: usize,
        order: &[VertexId],
    ) -> VertexAssignment {
        assert!(p >= 1);
        assert_eq!(order.len(), g.num_vertices());
        let n = g.num_vertices();
        let m = g.num_edges();
        // α = √p · m / n^γ — the WSDM paper's default for γ = 1.5.
        let alpha = if n == 0 {
            0.0
        } else {
            (p as f64).sqrt() * m as f64 / (n as f64).powf(self.gamma)
        };
        let capacity = (self.nu * n as f64 / p as f64).ceil().max(1.0);
        let mut part = vec![u32::MAX; n];
        let mut sizes = vec![0usize; p];
        let mut score = vec![0u64; p];
        let mut stamp = vec![VertexId::MAX; p];
        for &v in order {
            let mut count = |u: VertexId| {
                let q = part[u as usize];
                if q != u32::MAX {
                    if stamp[q as usize] != v {
                        stamp[q as usize] = v;
                        score[q as usize] = 0;
                    }
                    score[q as usize] += 1;
                }
            };
            for &u in g.out_neighbors(v) {
                count(u);
            }
            if g.is_directed() {
                for &u in g.in_neighbors(v) {
                    count(u);
                }
            }
            let mut best: Option<(usize, f64)> = None;
            for q in 0..p {
                if sizes[q] as f64 >= capacity {
                    continue;
                }
                let nbrs = if stamp[q] == v { score[q] as f64 } else { 0.0 };
                let s = nbrs - alpha * self.gamma * (sizes[q] as f64).powf(self.gamma - 1.0);
                let better = match best {
                    None => true,
                    Some((bq, bs)) => s > bs || (s == bs && (sizes[q], q) < (sizes[bq], bq)),
                };
                if better {
                    best = Some((q, s));
                }
            }
            let q = best
                .map(|(q, _)| q)
                .unwrap_or_else(|| (0..p).min_by_key(|&q| sizes[q]).unwrap());
            part[v as usize] = q as u32;
            sizes[q] += 1;
        }
        VertexAssignment::new(part, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::{Dataset, Graph};

    #[test]
    fn covers_all_vertices_within_capacity() {
        let g = Dataset::TwitterLike.build(0.05);
        let p = 16;
        let f = Fennel::default();
        let a = f.partition(&g, p);
        let counts = a.vertex_counts();
        assert_eq!(counts.iter().sum::<usize>(), g.num_vertices());
        let cap = (f.nu * g.num_vertices() as f64 / p as f64).ceil();
        for &c in &counts {
            assert!((c as f64) <= cap, "size {c} over capacity {cap}");
        }
    }

    #[test]
    fn beats_hash_on_cut_for_mesh() {
        let g = Dataset::UsaRoadLike.build(0.1);
        let p = 8;
        let a = Fennel::default().partition(&g, p);
        let h = crate::hash::hash_partition(g.num_vertices(), p);
        let ca = a.quality(&g).cut_edges;
        let ch = h.quality(&g).cut_edges;
        assert!(ca * 2 < ch, "Fennel cut {ca}, hash cut {ch}");
    }

    #[test]
    fn balance_penalty_spreads_a_clique() {
        // One big clique exceeds any single partition's capacity: Fennel
        // must split it rather than overflow.
        let mut edges = Vec::new();
        for a in 0..30u32 {
            for b in (a + 1)..30 {
                edges.push((a, b));
            }
        }
        let g = Graph::from_edges(30, &edges, false);
        let p = 3;
        let a = Fennel::default().partition(&g, p);
        let counts = a.vertex_counts();
        let cap = (1.1f64 * 30.0 / 3.0).ceil() as usize;
        assert!(counts.iter().all(|&c| c <= cap), "{counts:?}");
        assert!(counts.iter().filter(|&&c| c > 0).count() >= 2);
    }

    #[test]
    fn deterministic() {
        let g = Dataset::OrkutLike.build(0.05);
        let a = Fennel::default().partition(&g, 8);
        let b = Fennel::default().partition(&g, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn single_partition_takes_everything() {
        let g = Dataset::YahooLike.build(0.03);
        let a = Fennel::default().partition(&g, 1);
        assert!(a.as_slice().iter().all(|&q| q == 0));
    }

    #[test]
    fn stream_order_matters() {
        let g = Dataset::LiveJournalLike.build(0.05);
        let fwd: Vec<VertexId> = g.vertices().collect();
        let rev: Vec<VertexId> = (0..g.num_vertices() as VertexId).rev().collect();
        let a = Fennel::default().partition_with_order(&g, 8, &fwd);
        let b = Fennel::default().partition_with_order(&g, 8, &rev);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[], true);
        let a = Fennel::default().partition(&g, 4);
        assert_eq!(a.num_vertices(), 0);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn gamma_of_one_rejected() {
        Fennel::new(1.0, 1.1);
    }

    #[test]
    #[should_panic(expected = "nu")]
    fn undersized_capacity_rejected() {
        Fennel::new(1.5, 0.9);
    }
}
