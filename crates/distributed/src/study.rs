//! The §VII future-work study: *does a distributed, statically scheduled
//! system benefit from VEBO's load balance even at the cost of a small
//! replication increase?*
//!
//! Each [`Strategy`] produces a vertex assignment (possibly after
//! reordering the graph — reordering and assignment are evaluated
//! together, as in the paper's pipeline of Figure 2). The study then
//! reports the static partition-quality metrics and the simulated BSP
//! times for PageRank (edge-oriented, dense) and BFS (vertex-oriented,
//! sparse frontiers) — the two poles of the paper's Table II workload
//! classification.

use crate::bsp::{run_bfs, run_pagerank, ClusterConfig};
use crate::error::DistributedError;
use crate::fennel::Fennel;
use crate::hash::hash_partition;
use crate::ldg::Ldg;
use vebo_core::Vebo;
use vebo_graph::{Graph, VertexId};
use vebo_partition::{Multilevel, PartitionBounds, VertexAssignment};

/// A distributed placement strategy under study.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Algorithm 1 chunking on the original vertex order — the paper's
    /// shared-memory baseline lifted to the cluster.
    ChunkOriginal,
    /// VEBO reordering, then Algorithm 1 chunking on VEBO's exact
    /// boundaries — the paper's proposal, lifted to the cluster.
    ChunkVebo,
    /// Random vertex placement (Pregel default).
    Hash,
    /// Linear Deterministic Greedy streaming (Stanton & Kliot).
    Ldg,
    /// Fennel streaming (Tsourakakis et al.).
    Fennel,
    /// METIS-like multilevel k-way (cut-optimized offline partitioner).
    Multilevel,
    /// Multi-constraint multilevel (reference \[28\]): balances vertex AND
    /// in-edge counts while minimizing cut — the cut-first school's
    /// closest analogue of VEBO's joint objective.
    MultilevelMc,
}

impl Strategy {
    /// All strategies, in presentation order.
    pub const ALL: [Strategy; 7] = [
        Strategy::ChunkOriginal,
        Strategy::ChunkVebo,
        Strategy::Hash,
        Strategy::Ldg,
        Strategy::Fennel,
        Strategy::Multilevel,
        Strategy::MultilevelMc,
    ];

    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::ChunkOriginal => "Chunk(Original)",
            Strategy::ChunkVebo => "Chunk(VEBO)",
            Strategy::Hash => "Hash",
            Strategy::Ldg => "LDG",
            Strategy::Fennel => "Fennel",
            Strategy::Multilevel => "Multilevel",
            Strategy::MultilevelMc => "Multilevel-MC",
        }
    }

    /// Materializes the strategy on `g` for `workers` partitions. Returns
    /// the (possibly reordered) graph and the matching assignment; all
    /// strategies are evaluated on isomorphic graphs, so metrics are
    /// directly comparable.
    pub fn realize(self, g: &Graph, workers: usize) -> (Graph, VertexAssignment) {
        match self {
            Strategy::ChunkOriginal => {
                let b = PartitionBounds::edge_balanced(g, workers);
                (g.clone(), VertexAssignment::from_bounds(&b))
            }
            Strategy::ChunkVebo => {
                let r = Vebo::new(workers).compute_full(g);
                let h = r.permutation.apply_graph(g);
                let b = PartitionBounds::from_starts(r.starts.clone());
                (h, VertexAssignment::from_bounds(&b))
            }
            Strategy::Hash => (g.clone(), hash_partition(g.num_vertices(), workers)),
            Strategy::Ldg => (g.clone(), Ldg::default().partition(g, workers)),
            Strategy::Fennel => (g.clone(), Fennel::default().partition(g, workers)),
            Strategy::Multilevel => (g.clone(), Multilevel::new().partition(g, workers)),
            Strategy::MultilevelMc => (
                g.clone(),
                Multilevel::multi_constraint().partition(g, workers),
            ),
        }
    }
}

/// One row of the §VII study table.
#[derive(Clone, Debug)]
pub struct StudyRow {
    /// Strategy label.
    pub strategy: &'static str,
    /// PowerGraph-style replication factor of the assignment.
    pub replication_factor: f64,
    /// Fraction of arcs crossing workers.
    pub cut_fraction: f64,
    /// max/avg in-edges per worker.
    pub edge_imbalance: f64,
    /// max/avg vertices per worker.
    pub vertex_imbalance: f64,
    /// Simulated PageRank totals.
    pub pr_compute: f64,
    /// PageRank communication time.
    pub pr_comm: f64,
    /// PageRank total (compute + comm + barriers).
    pub pr_total: f64,
    /// Simulated BFS total.
    pub bfs_total: f64,
    /// BFS supersteps (graph-distance diameter from the source).
    pub bfs_supersteps: usize,
}

/// Runs the full study for one strategy.
pub fn evaluate(
    strategy: Strategy,
    g: &Graph,
    cfg: &ClusterConfig,
    pr_iters: usize,
    bfs_source: VertexId,
) -> Result<StudyRow, DistributedError> {
    cfg.validate()?;
    let (h, asg) = strategy.realize(g, cfg.workers);
    let q = asg.quality(&h);
    let pr = run_pagerank(&h, &asg, cfg, pr_iters)?;
    // The strategy may have relabeled vertices; follow the source through
    // the reordering so every strategy starts BFS at the same vertex.
    let src = match strategy {
        Strategy::ChunkVebo => {
            let r = Vebo::new(cfg.workers).compute_full(g);
            r.permutation.new_id(bfs_source)
        }
        _ => bfs_source,
    };
    let bfs = run_bfs(&h, &asg, cfg, src)?;
    Ok(StudyRow {
        strategy: strategy.name(),
        replication_factor: q.replication_factor,
        cut_fraction: q.cut_fraction(),
        edge_imbalance: q.edge_imbalance,
        vertex_imbalance: q.vertex_imbalance,
        pr_compute: pr.compute_time,
        pr_comm: pr.comm_time,
        pr_total: pr.total_time,
        bfs_total: bfs.total_time,
        bfs_supersteps: bfs.supersteps.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_algorithms_shim::default_source;
    use vebo_graph::Dataset;

    // The algorithms crate picks max-out-degree sources; replicate that
    // cheaply here to avoid a dependency cycle.
    mod vebo_algorithms_shim {
        use vebo_graph::{Graph, VertexId};
        pub fn default_source(g: &Graph) -> VertexId {
            g.vertices().max_by_key(|&v| g.out_degree(v)).unwrap_or(0)
        }
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig {
            workers: 16,
            ..Default::default()
        }
    }

    #[test]
    fn all_strategies_produce_valid_rows() {
        let g = Dataset::LiveJournalLike.build(0.05);
        let src = default_source(&g);
        for s in Strategy::ALL {
            let row = evaluate(s, &g, &cluster(), 2, src).unwrap();
            assert!(row.replication_factor >= 1.0, "{}", row.strategy);
            assert!(row.cut_fraction >= 0.0 && row.cut_fraction <= 1.0);
            assert!(row.pr_total > 0.0);
            assert!(row.bfs_supersteps > 0);
        }
    }

    #[test]
    fn vebo_chunking_balances_edges_on_power_law() {
        // The §VII headline: VEBO's edge imbalance is ~1.0 where the
        // original chunking (hub-boundary overshoot) is visibly worse,
        // and cut-optimizing partitioners are worse still.
        let g = Dataset::TwitterLike.build(0.1);
        let cfg = cluster();
        let src = default_source(&g);
        let vebo = evaluate(Strategy::ChunkVebo, &g, &cfg, 1, src).unwrap();
        assert!(
            vebo.edge_imbalance < 1.01,
            "VEBO edge imbalance {}",
            vebo.edge_imbalance
        );
        assert!(
            vebo.vertex_imbalance < 1.01,
            "VEBO vertex imbalance {}",
            vebo.vertex_imbalance
        );
    }

    #[test]
    fn vebo_compute_makespan_beats_original_chunking() {
        let g = Dataset::TwitterLike.build(0.1);
        let cfg = cluster();
        let src = default_source(&g);
        let orig = evaluate(Strategy::ChunkOriginal, &g, &cfg, 1, src).unwrap();
        let vebo = evaluate(Strategy::ChunkVebo, &g, &cfg, 1, src).unwrap();
        assert!(
            vebo.pr_compute <= orig.pr_compute,
            "VEBO {} vs original {}",
            vebo.pr_compute,
            orig.pr_compute
        );
    }

    #[test]
    fn multilevel_cuts_less_than_hash() {
        let g = Dataset::UsaRoadLike.build(0.1);
        let cfg = cluster();
        let src = default_source(&g);
        let ml = evaluate(Strategy::Multilevel, &g, &cfg, 1, src).unwrap();
        let hash = evaluate(Strategy::Hash, &g, &cfg, 1, src).unwrap();
        assert!(ml.cut_fraction < hash.cut_fraction);
        assert!(ml.pr_comm < hash.pr_comm);
    }

    #[test]
    fn strategies_agree_on_total_edge_work() {
        // All strategies process the same graph: total compute (sum over
        // workers) must be identical — only its distribution differs.
        let g = Dataset::OrkutLike.build(0.05);
        let cfg = cluster();
        let mut totals = Vec::new();
        for s in Strategy::ALL {
            let (h, asg) = s.realize(&g, cfg.workers);
            let step =
                crate::bsp::superstep(&h, &asg, &cfg, &h.vertices().collect::<Vec<_>>()).unwrap();
            totals.push(step.compute.iter().sum::<f64>());
        }
        for w in totals.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6, "{totals:?}");
        }
    }
}
