//! The coordinator: join-phase roster assembly and the epoll-driven
//! superstep barrier.
//!
//! The coordinator owns no graph data. It accepts one control
//! connection per worker, assigns worker ids in join order, broadcasts
//! the mesh roster, and from then on runs the BSP clock: every
//! superstep it collects one [`Msg::StepDone`] from each worker —
//! multiplexed over the shared [`vebo_net::epoll`] wrapper, the same
//! event loop the serving frontend uses — sums the workers' activity
//! counters, decides continue-or-halt
//! ([`crate::runtime::decide_continue`]), and releases the barrier with
//! [`Msg::Continue`]. After halt it collects each worker's
//! master-owned values and assembles the full value vector, whose
//! digest is the cluster's conformance artifact.
//!
//! Only the *readiness wait* is nonblocking: once epoll reports a
//! control connection readable, the coordinator does blocking framed
//! reads on it. That cannot deadlock — a worker writes each control
//! message as one `write_all` before waiting on the barrier, so any
//! partial frame the coordinator sees is already fully in flight.

#![cfg(target_os = "linux")]

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;

use crate::runtime::{decide_continue, ClusterAlgo, RunOutput};
use crate::transport::{FramedConn, Msg};
use vebo_graph::digest_u64s;
use vebo_net::epoll::{Epoll, EpollEvent, EPOLLIN};

/// Aggregate outcome of one superstep barrier.
#[derive(Clone, Copy, Debug)]
pub struct BarrierOutcome {
    /// Sum of the workers' newly-activated vertex counts.
    pub active: u64,
    /// Sum of the value pairs workers shipped to remote peers.
    pub sent: u64,
}

/// The cluster's control-plane endpoint: one framed connection per
/// worker, indexed by the worker id it assigned.
pub struct Coordinator {
    conns: Vec<FramedConn>,
    roster: Vec<SocketAddr>,
    ep: Epoll,
}

impl Coordinator {
    /// Accepts exactly `workers` control connections on `listener`,
    /// reads each one's [`Msg::Join`], assigns ids in join order, and
    /// broadcasts [`Msg::Start`] with the assembled mesh roster (peer
    /// IP from the control connection + the advertised mesh port).
    pub fn accept(listener: &TcpListener, workers: usize) -> io::Result<Coordinator> {
        let mut conns = Vec::with_capacity(workers);
        let mut roster = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (stream, peer) = listener.accept()?;
            let mut conn = FramedConn::new(stream)?;
            match conn.recv()? {
                Msg::Join { mesh_port } => roster.push(SocketAddr::new(peer.ip(), mesh_port)),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("expected join, got {other:?}"),
                    ))
                }
            }
            conns.push(conn);
        }
        for (id, conn) in conns.iter_mut().enumerate() {
            conn.send(&Msg::Start {
                worker_id: id as u32,
                roster: roster.clone(),
            })?;
        }
        let ep = Epoll::new()?;
        for (id, conn) in conns.iter().enumerate() {
            ep.add(conn.stream().as_raw_fd(), EPOLLIN, id as u64)?;
        }
        Ok(Coordinator { conns, roster, ep })
    }

    /// The mesh roster assembled during the join phase.
    pub fn roster(&self) -> &[SocketAddr] {
        &self.roster
    }

    /// Sends `msg` to every worker.
    pub fn broadcast(&mut self, msg: &Msg) -> io::Result<()> {
        for conn in &mut self.conns {
            conn.send(msg)?;
        }
        Ok(())
    }

    /// Collects one message per worker, epoll-multiplexed; `f` receives
    /// `(worker_id, msg)` for each. Returns once every worker has
    /// delivered exactly one message.
    fn collect_each(&mut self, mut f: impl FnMut(usize, Msg) -> io::Result<()>) -> io::Result<()> {
        let w = self.conns.len();
        let mut done = vec![false; w];
        let mut remaining = w;
        // Frames may already be buffered from a previous blocking read
        // of the same connection — those produce no readiness events.
        for (id, conn) in self.conns.iter_mut().enumerate() {
            if let Some(msg) = conn.try_buffered()? {
                f(id, msg)?;
                done[id] = true;
                remaining -= 1;
            }
        }
        let mut events = [EpollEvent { events: 0, data: 0 }; 16];
        while remaining > 0 {
            let n = self.ep.wait(&mut events, -1)?;
            for ev in &events[..n] {
                let id = ev.token() as usize;
                if done[id] {
                    continue;
                }
                let msg = self.conns[id].recv()?;
                f(id, msg)?;
                done[id] = true;
                remaining -= 1;
            }
        }
        Ok(())
    }

    /// One superstep barrier: waits for every worker's
    /// [`Msg::StepDone`] for `step` and sums their counters. Does not
    /// release the barrier — the caller decides and broadcasts
    /// [`Msg::Continue`].
    pub fn barrier(&mut self, step: u32) -> io::Result<BarrierOutcome> {
        let mut outcome = BarrierOutcome { active: 0, sent: 0 };
        self.collect_each(|id, msg| match msg {
            Msg::StepDone {
                step: s,
                active,
                sent,
            } if s == step => {
                outcome.active += active;
                outcome.sent += sent;
                Ok(())
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("worker {id}: expected step-done {step}, got {other:?}"),
            )),
        })?;
        Ok(outcome)
    }

    /// Collects every worker's [`Msg::Values`] and assembles the full
    /// `n`-vertex value vector. Every vertex must be claimed by exactly
    /// one worker (the ownership map is total and disjoint by
    /// construction).
    pub fn collect_values(&mut self, n: usize) -> io::Result<Vec<u64>> {
        let mut values = vec![0u64; n];
        let mut claimed = vec![false; n];
        self.collect_each(|id, msg| match msg {
            Msg::Values { pairs } => {
                for (v, bits) in pairs {
                    let v = v as usize;
                    if v >= n || claimed[v] {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("worker {id}: bad or duplicate value claim for vertex {v}"),
                        ));
                    }
                    claimed[v] = true;
                    values[v] = bits;
                }
                Ok(())
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("worker {id}: expected values, got {other:?}"),
            )),
        })?;
        if let Some(v) = claimed.iter().position(|&c| !c) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("no worker claimed vertex {v}"),
            ));
        }
        Ok(values)
    }

    /// Runs `algos` to completion over the joined workers and shuts the
    /// cluster down: per algorithm, broadcast [`Msg::Begin`], clock the
    /// superstep barrier until [`decide_continue`] says halt, then
    /// assemble and digest the final values. `n` is the (global) vertex
    /// count, which every worker shares by construction.
    pub fn run(&mut self, n: usize, algos: &[ClusterAlgo]) -> io::Result<Vec<RunOutput>> {
        let mut outputs = Vec::with_capacity(algos.len());
        for &algo in algos {
            self.broadcast(&Msg::Begin { algo })?;
            let mut step = 0u32;
            let mut values_sent = 0u64;
            loop {
                let outcome = self.barrier(step)?;
                values_sent += outcome.sent;
                let go = decide_continue(algo, step + 1, outcome.active);
                self.broadcast(&Msg::Continue { step, go })?;
                step += 1;
                if !go {
                    break;
                }
            }
            let values = self.collect_values(n)?;
            outputs.push(RunOutput {
                algo,
                digest: digest_u64s(values.iter().copied()),
                values,
                supersteps: step,
                values_sent,
            });
        }
        self.broadcast(&Msg::Shutdown)?;
        Ok(outputs)
    }
}
