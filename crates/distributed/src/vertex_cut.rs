//! Greedy vertex-cut edge placement — PowerGraph (Gonzalez et al., OSDI
//! 2012). §VI: "Gonzalez et al proposed vertex cut, a parallel streaming
//! partitioning algorithm that minimizes vertex replication."
//!
//! Vertex-cut systems place *edges* on machines and replicate vertices
//! wherever their edges land; the cost metric is the replication factor
//! (average machines per vertex). The greedy heuristic streams edges and
//! keeps endpoints co-located whenever load permits:
//!
//! 1. replica sets intersect → least-loaded machine in the intersection;
//! 2. both non-empty but disjoint → the endpoint with more unplaced edges
//!    picks the least-loaded machine among its replicas;
//! 3. one non-empty → least-loaded machine among its replicas;
//! 4. both empty → least-loaded machine overall.
//!
//! The paper's §VII conjecture that "it is easier to minimize the edge
//! cut when the high-degree vertices are processed first" is directly
//! testable here: [`GreedyVertexCut::place_with_source_order`] streams
//! sources in any order, so the harness compares the natural stream
//! against a degree-descending (VEBO phase-1) stream.

use crate::error::{check_machines, DistributedError};
use vebo_graph::{Graph, VertexId};

/// Machine assignment for every arc, plus the vertex replica sets it
/// induces. Machine count is capped at 64 so replica sets are bitmasks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgePlacement {
    /// Machine of the k-th arc in source-major (CSR) enumeration order.
    edge_machine: Vec<u32>,
    /// Bitmask of machines holding a replica of each vertex.
    replicas: Vec<u64>,
    /// Arcs per machine.
    loads: Vec<u64>,
}

impl EdgePlacement {
    /// Assembles a placement from raw parts (used by the other edge
    /// placement strategies in this crate).
    pub(crate) fn from_parts(
        edge_machine: Vec<u32>,
        replicas: Vec<u64>,
        loads: Vec<u64>,
    ) -> EdgePlacement {
        EdgePlacement {
            edge_machine,
            replicas,
            loads,
        }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.loads.len()
    }

    /// Machine of the arc with CSR index `idx`.
    pub fn machine_of_arc(&self, idx: usize) -> u32 {
        self.edge_machine[idx]
    }

    /// Replica bitmask of vertex `v`.
    pub fn replicas_of(&self, v: VertexId) -> u64 {
        self.replicas[v as usize]
    }

    /// Arcs per machine.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Average machines per vertex with at least one replica (PowerGraph's
    /// replication factor).
    pub fn replication_factor(&self) -> f64 {
        let mut total = 0u64;
        let mut verts = 0u64;
        for &mask in &self.replicas {
            if mask != 0 {
                total += mask.count_ones() as u64;
                verts += 1;
            }
        }
        if verts == 0 {
            1.0
        } else {
            total as f64 / verts as f64
        }
    }

    /// max/avg arcs per machine (1.0 = perfectly edge balanced).
    pub fn load_imbalance(&self) -> f64 {
        let max = self.loads.iter().copied().max().unwrap_or(0);
        let total: u64 = self.loads.iter().sum();
        let avg = total as f64 / self.loads.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            max as f64 / avg
        }
    }
}

/// The PowerGraph greedy streaming vertex-cut.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyVertexCut;

impl GreedyVertexCut {
    /// Streams arcs in source-major id order. Rejects machine counts
    /// outside `1..=64` (replica sets are `u64` bitmasks).
    pub fn place(&self, g: &Graph, machines: usize) -> Result<EdgePlacement, DistributedError> {
        let order: Vec<VertexId> = g.vertices().collect();
        self.place_with_source_order(g, machines, &order)
    }

    /// Streams the out-edges of sources in the given order (all arcs of
    /// one source are consecutive, as in a partitioned edge file).
    pub fn place_with_source_order(
        &self,
        g: &Graph,
        machines: usize,
        order: &[VertexId],
    ) -> Result<EdgePlacement, DistributedError> {
        check_machines(machines)?;
        assert_eq!(order.len(), g.num_vertices());
        let n = g.num_vertices();
        // Global arc index = csr_offset[source] + position, independent of
        // the streaming order.
        let mut offset = vec![0usize; n + 1];
        for v in 0..n {
            offset[v + 1] = offset[v] + g.out_degree(v as VertexId);
        }
        let mut edge_machine = vec![0u32; g.num_edges()];
        let mut replicas = vec![0u64; n];
        let mut loads = vec![0u64; machines];
        // Unplaced incident arcs per vertex (out + in), for rule 2.
        let mut rem: Vec<u64> = (0..n)
            .map(|v| (g.out_degree(v as VertexId) + g.in_degree(v as VertexId)) as u64)
            .collect();

        let least_loaded_in = |mask: u64, loads: &[u64]| -> u32 {
            let mut best = u32::MAX;
            let mut best_load = u64::MAX;
            for m in 0..machines as u32 {
                if mask & (1u64 << m) != 0 && loads[m as usize] < best_load {
                    best_load = loads[m as usize];
                    best = m;
                }
            }
            best
        };

        for &u in order {
            for (k, &v) in g.out_neighbors(u).iter().enumerate() {
                let au = replicas[u as usize];
                let av = replicas[v as usize];
                let both = au & av;
                let m = if both != 0 {
                    least_loaded_in(both, &loads)
                } else if au != 0 && av != 0 {
                    // Disjoint: the endpoint with more unplaced work picks.
                    let pick = if rem[u as usize] >= rem[v as usize] {
                        au
                    } else {
                        av
                    };
                    least_loaded_in(pick, &loads)
                } else if au != 0 || av != 0 {
                    least_loaded_in(au | av, &loads)
                } else {
                    least_loaded_in(u64::MAX >> (64 - machines), &loads)
                };
                edge_machine[offset[u as usize] + k] = m;
                replicas[u as usize] |= 1u64 << m;
                replicas[v as usize] |= 1u64 << m;
                loads[m as usize] += 1;
                rem[u as usize] = rem[u as usize].saturating_sub(1);
                rem[v as usize] = rem[v as usize].saturating_sub(1);
            }
        }
        Ok(EdgePlacement {
            edge_machine,
            replicas,
            loads,
        })
    }
}

/// Random (hash) edge placement — the baseline PowerGraph compares greedy
/// against. Rejects machine counts outside `1..=64`.
pub fn random_edge_placement(
    g: &Graph,
    machines: usize,
) -> Result<EdgePlacement, DistributedError> {
    check_machines(machines)?;
    let n = g.num_vertices();
    let mut edge_machine = vec![0u32; g.num_edges()];
    let mut replicas = vec![0u64; n];
    let mut loads = vec![0u64; machines];
    let mut idx = 0usize;
    for u in g.vertices() {
        for &v in g.out_neighbors(u) {
            let m = (vebo_graph::mix64(idx as u64) % machines as u64) as u32;
            edge_machine[idx] = m;
            replicas[u as usize] |= 1u64 << m;
            replicas[v as usize] |= 1u64 << m;
            loads[m as usize] += 1;
            idx += 1;
        }
    }
    Ok(EdgePlacement {
        edge_machine,
        replicas,
        loads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::{Dataset, Graph};

    #[test]
    fn every_arc_is_placed_and_loads_sum() {
        let g = Dataset::LiveJournalLike.build(0.05);
        let p = GreedyVertexCut.place(&g, 16).unwrap();
        assert_eq!(p.loads().iter().sum::<u64>(), g.num_edges() as u64);
        assert_eq!(p.num_machines(), 16);
    }

    #[test]
    fn replication_factor_bounds() {
        let g = Dataset::TwitterLike.build(0.05);
        let p = GreedyVertexCut.place(&g, 16).unwrap();
        let rf = p.replication_factor();
        assert!((1.0..=16.0).contains(&rf), "rf {rf}");
    }

    #[test]
    fn greedy_beats_random_on_replication() {
        // PowerGraph's headline result.
        let g = Dataset::TwitterLike.build(0.05);
        let greedy = GreedyVertexCut.place(&g, 16).unwrap().replication_factor();
        let random = random_edge_placement(&g, 16).unwrap().replication_factor();
        assert!(greedy < random, "greedy {greedy} random {random}");
    }

    #[test]
    fn triangle_on_many_machines_stays_together() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)], true);
        let p = GreedyVertexCut.place(&g, 8).unwrap();
        // Rule 1/3 keep all three arcs on one machine: rf = 1.
        assert!((p.replication_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_collapses_onto_one_machine() {
        // The known pathology of pure greedy (rule 3): once the hub has a
        // replica somewhere, every later arc touching it lands on that
        // same machine. Replication stays minimal — the cost is load
        // concentration, which is exactly the balance blind spot VEBO
        // addresses from the other direction.
        let edges: Vec<(VertexId, VertexId)> = (1..33).map(|u| (u, 0)).collect();
        let g = Graph::from_edges(33, &edges, true);
        let p = GreedyVertexCut.place(&g, 4).unwrap();
        for leaf in 1..33u32 {
            assert_eq!(p.replicas_of(leaf).count_ones(), 1);
        }
        assert!((p.replication_factor() - 1.0).abs() < 1e-12);
        assert!(
            (p.load_imbalance() - 4.0).abs() < 1e-12,
            "imbalance {}",
            p.load_imbalance()
        );
    }

    #[test]
    fn deterministic() {
        let g = Dataset::OrkutLike.build(0.05);
        let a = GreedyVertexCut.place(&g, 8).unwrap();
        let b = GreedyVertexCut.place(&g, 8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn one_machine_never_replicates() {
        let g = Dataset::YahooLike.build(0.05);
        let p = GreedyVertexCut.place(&g, 1).unwrap();
        assert!((p.replication_factor() - 1.0).abs() < 1e-12);
        assert!((p.load_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn source_order_changes_placement() {
        let g = Dataset::LiveJournalLike.build(0.05);
        let fwd: Vec<VertexId> = g.vertices().collect();
        let rev: Vec<VertexId> = (0..g.num_vertices() as VertexId).rev().collect();
        let a = GreedyVertexCut
            .place_with_source_order(&g, 8, &fwd)
            .unwrap();
        let b = GreedyVertexCut
            .place_with_source_order(&g, 8, &rev)
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn bad_machine_counts_are_typed_errors() {
        let g = Graph::from_edges(2, &[(0, 1)], true);
        for machines in [0, 65, 1000] {
            let want = Err(DistributedError::MachineCount { machines });
            assert_eq!(GreedyVertexCut.place(&g, machines), want);
            assert_eq!(random_edge_placement(&g, machines), want);
        }
        assert!(GreedyVertexCut.place(&g, 64).is_ok());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[], true);
        let p = GreedyVertexCut.place(&g, 4).unwrap();
        assert!((p.replication_factor() - 1.0).abs() < 1e-12);
    }
}
