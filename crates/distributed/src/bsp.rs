//! A deterministic Bulk-Synchronous Parallel (BSP) cluster simulator.
//!
//! Distributed graph engines in the Pregel/PowerGraph family run in
//! supersteps: every worker processes its share of active vertices and
//! edges, exchanges vertex values over the network, and waits at a
//! barrier. Workers are statically bound to their partition — the regime
//! the paper's §VII asks about ("distributed graph processing systems,
//! which typically use static scheduling").
//!
//! The model charges, per superstep:
//!
//! * **compute** — the paper's §II work model: `per_edge_cost` for every
//!   active in-edge, charged to the *destination's* worker (partitioning
//!   by destination keeps updates race-free, §II), plus `per_vertex_cost`
//!   for every active source, charged to its home worker;
//! * **communication** — one value of `per_value_cost` for each (active
//!   source, remote worker holding ≥1 of its out-neighbours) pair — i.e.
//!   sender-side combining, as all Pregel descendants implement;
//! * **barrier** — `superstep_latency` per superstep.
//!
//! The superstep finishes when the slowest worker finishes compute and the
//! most loaded network endpoint finishes transferring:
//! `max_w compute(w) + max_w (sent(w) + received(w)) · per_value_cost +
//! latency`. Load imbalance therefore hurts exactly as in the paper's
//! shared-memory systems, while replication adds the communication term
//! that §VII conjectures VEBO slightly inflates.

use crate::error::DistributedError;
use vebo_graph::{Graph, VertexId};
use vebo_partition::VertexAssignment;

/// Cost model of the simulated cluster.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of workers (machines).
    pub workers: usize,
    /// Time units per active in-edge processed.
    pub per_edge_cost: f64,
    /// Time units per active vertex processed.
    pub per_vertex_cost: f64,
    /// Time units per vertex value crossing the network (a remote value
    /// costs several edge traversals; 4x is a conservative
    /// memory-vs-network gap for the small values graph analytics ship).
    pub per_value_cost: f64,
    /// Fixed barrier/synchronization cost per superstep.
    pub superstep_latency: f64,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            workers: 16,
            per_edge_cost: 1.0,
            per_vertex_cost: 1.0,
            per_value_cost: 4.0,
            superstep_latency: 1_000.0,
        }
    }
}

impl ClusterConfig {
    /// Rejects a zero-worker cluster: every per-worker maximum and
    /// average in the model (and the real runtime's shard division)
    /// is undefined over an empty cluster.
    pub fn validate(&self) -> Result<(), DistributedError> {
        if self.workers == 0 {
            return Err(DistributedError::ZeroWorkers);
        }
        Ok(())
    }
}

/// Per-superstep accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct SuperstepReport {
    /// Compute time per worker.
    pub compute: Vec<f64>,
    /// Values sent per worker (after sender-side combining).
    pub sent: Vec<u64>,
    /// Values received per worker.
    pub received: Vec<u64>,
    /// max compute across workers.
    pub compute_time: f64,
    /// max (sent + received) × per-value cost across workers.
    pub comm_time: f64,
    /// compute + comm + barrier latency.
    pub total_time: f64,
}

impl SuperstepReport {
    /// max/avg compute across workers (1.0 = perfectly balanced).
    pub fn compute_imbalance(&self) -> f64 {
        let total: f64 = self.compute.iter().sum();
        let avg = total / self.compute.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            self.compute_time / avg
        }
    }

    /// Total values crossing the network this superstep.
    pub fn messages(&self) -> u64 {
        self.sent.iter().sum()
    }
}

/// A full simulated run.
#[derive(Clone, Debug)]
pub struct BspRun {
    /// One report per superstep.
    pub supersteps: Vec<SuperstepReport>,
    /// Sum of superstep total times.
    pub total_time: f64,
    /// Sum of superstep compute times (the makespan component).
    pub compute_time: f64,
    /// Sum of superstep communication times.
    pub comm_time: f64,
}

impl BspRun {
    /// Total values shipped over the whole run.
    pub fn total_messages(&self) -> u64 {
        self.supersteps.iter().map(|s| s.messages()).sum()
    }

    /// Work-weighted compute imbalance across the run: total of per-step
    /// makespans over total of per-step ideal times.
    pub fn compute_imbalance(&self) -> f64 {
        let makespan: f64 = self.supersteps.iter().map(|s| s.compute_time).sum();
        let ideal: f64 = self
            .supersteps
            .iter()
            .map(|s| s.compute.iter().sum::<f64>() / s.compute.len() as f64)
            .sum();
        if ideal == 0.0 {
            1.0
        } else {
            makespan / ideal
        }
    }
}

/// Simulates one superstep in which `active` sources push along their
/// out-edges (deduplicated per vertex; callers pass each vertex once).
pub fn superstep(
    g: &Graph,
    asg: &VertexAssignment,
    cfg: &ClusterConfig,
    active: &[VertexId],
) -> Result<SuperstepReport, DistributedError> {
    cfg.validate()?;
    assert_eq!(asg.num_vertices(), g.num_vertices());
    assert_eq!(asg.num_partitions(), cfg.workers);
    let w = cfg.workers;
    let mut edge_work = vec![0u64; w];
    let mut vertex_work = vec![0u64; w];
    let mut sent = vec![0u64; w];
    let mut received = vec![0u64; w];
    let mut stamp = vec![VertexId::MAX; w];
    for &u in active {
        let home = asg.partition_of(u) as usize;
        vertex_work[home] += 1;
        for &v in g.out_neighbors(u) {
            let dst = asg.partition_of(v) as usize;
            edge_work[dst] += 1;
            if dst != home && stamp[dst] != u {
                stamp[dst] = u;
                sent[home] += 1;
                received[dst] += 1;
            }
        }
    }
    let compute: Vec<f64> = (0..w)
        .map(|i| {
            edge_work[i] as f64 * cfg.per_edge_cost + vertex_work[i] as f64 * cfg.per_vertex_cost
        })
        .collect();
    let compute_time = compute.iter().copied().fold(0.0, f64::max);
    let comm_time = (0..w)
        .map(|i| (sent[i] + received[i]) as f64 * cfg.per_value_cost)
        .fold(0.0, f64::max);
    Ok(SuperstepReport {
        compute,
        sent,
        received,
        compute_time,
        comm_time,
        total_time: compute_time + comm_time + cfg.superstep_latency,
    })
}

/// Simulates `iters` PageRank-style supersteps: every vertex is active in
/// every superstep, so one superstep is computed and replicated.
pub fn run_pagerank(
    g: &Graph,
    asg: &VertexAssignment,
    cfg: &ClusterConfig,
    iters: usize,
) -> Result<BspRun, DistributedError> {
    let active: Vec<VertexId> = g.vertices().collect();
    let step = superstep(g, asg, cfg, &active)?;
    let supersteps = vec![step; iters];
    Ok(aggregate(supersteps))
}

/// Simulates a BFS from `source`: superstep `i` activates frontier `i`
/// (computed exactly on the graph), until the frontier empties.
pub fn run_bfs(
    g: &Graph,
    asg: &VertexAssignment,
    cfg: &ClusterConfig,
    source: VertexId,
) -> Result<BspRun, DistributedError> {
    cfg.validate()?;
    let n = g.num_vertices();
    assert!((source as usize) < n, "BFS source out of range");
    let mut visited = vec![false; n];
    visited[source as usize] = true;
    let mut frontier = vec![source];
    let mut supersteps = Vec::new();
    while !frontier.is_empty() {
        supersteps.push(superstep(g, asg, cfg, &frontier)?);
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.out_neighbors(u) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    Ok(aggregate(supersteps))
}

fn aggregate(supersteps: Vec<SuperstepReport>) -> BspRun {
    let total_time = supersteps.iter().map(|s| s.total_time).sum();
    let compute_time = supersteps.iter().map(|s| s.compute_time).sum();
    let comm_time = supersteps.iter().map(|s| s.comm_time).sum();
    BspRun {
        supersteps,
        total_time,
        compute_time,
        comm_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_partition;
    use vebo_graph::{Dataset, Graph, VertexId};
    use vebo_partition::PartitionBounds;

    fn cfg(workers: usize) -> ClusterConfig {
        ClusterConfig {
            workers,
            ..Default::default()
        }
    }

    #[test]
    fn single_worker_has_no_communication() {
        let g = Dataset::LiveJournalLike.build(0.05);
        let asg = VertexAssignment::new(vec![0; g.num_vertices()], 1);
        let run = run_pagerank(&g, &asg, &cfg(1), 3).unwrap();
        assert_eq!(run.total_messages(), 0);
        assert_eq!(run.comm_time, 0.0);
        // All m edges + n vertices per superstep on the single worker.
        let expected = (g.num_edges() + g.num_vertices()) as f64;
        assert!((run.supersteps[0].compute_time - expected).abs() < 1e-9);
    }

    #[test]
    fn compute_conserves_work_across_workers() {
        let g = Dataset::TwitterLike.build(0.05);
        let asg = hash_partition(g.num_vertices(), 16);
        let step = superstep(&g, &asg, &cfg(16), &g.vertices().collect::<Vec<_>>()).unwrap();
        let total: f64 = step.compute.iter().sum();
        let expected = (g.num_edges() + g.num_vertices()) as f64;
        assert!((total - expected).abs() < 1e-9);
    }

    #[test]
    fn sent_equals_received_globally() {
        let g = Dataset::OrkutLike.build(0.05);
        let asg = hash_partition(g.num_vertices(), 8);
        let step = superstep(&g, &asg, &cfg(8), &g.vertices().collect::<Vec<_>>()).unwrap();
        assert_eq!(
            step.sent.iter().sum::<u64>(),
            step.received.iter().sum::<u64>()
        );
    }

    #[test]
    fn messages_match_comm_volume_metric() {
        // For the all-active superstep, sender-side-combined messages are
        // exactly the assignment's comm_volume.
        let g = Dataset::LiveJournalLike.build(0.05);
        let asg = hash_partition(g.num_vertices(), 8);
        let step = superstep(&g, &asg, &cfg(8), &g.vertices().collect::<Vec<_>>()).unwrap();
        assert_eq!(step.messages(), asg.quality(&g).comm_volume);
    }

    #[test]
    fn bfs_reaches_every_reachable_vertex_in_level_steps() {
        // A path graph: n-1 supersteps, each shipping at most one value.
        let edges: Vec<(VertexId, VertexId)> = (0..9).map(|v| (v, v + 1)).collect();
        let g = Graph::from_edges(10, &edges, true);
        let asg = VertexAssignment::new((0..10).map(|v| v % 2).collect(), 2);
        let run = run_bfs(&g, &asg, &cfg(2), 0).unwrap();
        assert_eq!(run.supersteps.len(), 10); // 10 frontiers (last empty-successor)
                                              // Alternating assignment: every edge crosses workers.
        assert_eq!(run.total_messages(), 9);
    }

    #[test]
    fn balanced_chunks_beat_imbalanced_on_compute_time() {
        // Edge-balanced chunks vs all-heavy-on-one-worker: compute
        // makespan must improve.
        let g = Dataset::TwitterLike.build(0.05);
        let w = 8;
        let bal = VertexAssignment::from_bounds(&PartitionBounds::edge_balanced(&g, w));
        let skew =
            VertexAssignment::from_bounds(&PartitionBounds::vertex_balanced(g.num_vertices(), w));
        let rb = run_pagerank(&g, &bal, &cfg(w), 1).unwrap();
        let rs = run_pagerank(&g, &skew, &cfg(w), 1).unwrap();
        assert!(
            rb.compute_time < rs.compute_time,
            "bal {} skew {}",
            rb.compute_time,
            rs.compute_time
        );
    }

    #[test]
    fn latency_accumulates_per_superstep() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], true);
        let asg = VertexAssignment::new(vec![0, 0, 1, 1], 2);
        let c = ClusterConfig {
            workers: 2,
            superstep_latency: 7.0,
            ..Default::default()
        };
        let run = run_pagerank(&g, &asg, &c, 5).unwrap();
        let lat: f64 = 5.0 * 7.0;
        assert!(run.total_time >= lat);
        let raw: f64 = run.compute_time + run.comm_time;
        assert!((run.total_time - raw - lat).abs() < 1e-9);
    }

    #[test]
    fn imbalance_of_uniform_assignment_is_small() {
        let g = Dataset::UsaRoadLike.build(0.1);
        let asg = hash_partition(g.num_vertices(), 8);
        let run = run_pagerank(&g, &asg, &cfg(8), 1).unwrap();
        assert!(run.compute_imbalance() < 1.1, "{}", run.compute_imbalance());
    }

    #[test]
    fn zero_workers_is_a_typed_error() {
        let g = Graph::from_edges(2, &[(0, 1)], true);
        let asg = VertexAssignment::new(vec![0, 0], 1);
        let bad = cfg(0);
        assert_eq!(bad.validate(), Err(DistributedError::ZeroWorkers));
        assert_eq!(
            superstep(&g, &asg, &bad, &[0]).unwrap_err(),
            DistributedError::ZeroWorkers
        );
        assert_eq!(
            run_pagerank(&g, &asg, &bad, 1).unwrap_err(),
            DistributedError::ZeroWorkers
        );
        assert_eq!(
            run_bfs(&g, &asg, &bad, 0).unwrap_err(),
            DistributedError::ZeroWorkers
        );
    }

    #[test]
    fn empty_frontier_run() {
        let g = Graph::from_edges(3, &[(0, 1)], true);
        let asg = VertexAssignment::new(vec![0, 1, 0], 2);
        // Source 2 has no out-edges: one superstep, no messages.
        let run = run_bfs(&g, &asg, &cfg(2), 2).unwrap();
        assert_eq!(run.supersteps.len(), 1);
        assert_eq!(run.total_messages(), 0);
    }
}
