//! Wire protocol and peer mesh of the multi-process cluster runtime.
//!
//! Everything on a cluster socket is a length-prefixed binary frame —
//! the same `u32`-little-endian framing the serving frontend speaks
//! ([`vebo_net::frame`]), so the decoder and its oversize poisoning are
//! shared code. Inside each frame sits one [`Msg`], a fixed-tag binary
//! encoding (no text, no allocation tricks): value batches are flat
//! `(u32 vertex, u64 bits)` pairs, which covers `f64` PageRank values
//! (`to_bits`) and `u32` BFS levels / CC labels alike.
//!
//! Two kinds of connections exist:
//!
//! * **control** — each worker dials the coordinator once
//!   ([`Msg::Join`]), receives its identity and the roster
//!   ([`Msg::Start`]), then alternates [`Msg::StepDone`] /
//!   [`Msg::Continue`] with the coordinator's superstep barrier;
//! * **mesh** — every ordered worker pair exchanges exactly one
//!   [`Msg::Gather`] and one [`Msg::Scatter`] per superstep (possibly
//!   with an empty pair list), so message *counts* are static and the
//!   runtime never needs speculative polling: a phase completes when one
//!   frame per peer has arrived.
//!
//! [`Mesh::connect`] builds the full worker-to-worker clique: worker `i`
//! dials every lower-numbered peer (identifying itself with
//! [`Msg::Hello`]) and accepts every higher-numbered one. One reader
//! thread per peer decodes frames into a shared channel; [`Mesh::recv_phase`]
//! reassembles per-phase batches, stashing any frame that arrives early.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;

use crate::runtime::ClusterAlgo;
use vebo_net::{encode_frame, FrameDecoder};

/// Frame cap on cluster sockets: a full value exchange for a shard can
/// be megabytes, but a frame claiming more than this is a corrupt or
/// hostile peer, not a big batch.
pub const CLUSTER_MAX_FRAME: usize = 64 << 20;

/// A `(vertex, bits)` value pair — the unit every gather/scatter/values
/// batch is made of. `bits` is `f64::to_bits` for PageRank and a
/// zero-extended `u32` for BFS levels / CC labels.
pub type ValuePair = (u32, u64);

/// One cluster protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Worker → coordinator, first frame on a control connection: "I
    /// exist, my mesh listener is on this port" (the IP is taken from
    /// the connection's peer address).
    Join {
        /// Port of the worker's mesh listener.
        mesh_port: u16,
    },
    /// Coordinator → worker: identity assignment and the full mesh
    /// roster, indexed by worker id. Closes the join phase.
    Start {
        /// The receiving worker's id (index into `roster`).
        worker_id: u32,
        /// Mesh address of every worker, indexed by id.
        roster: Vec<SocketAddr>,
    },
    /// Worker → worker, first frame on a mesh connection: the dialing
    /// side identifies itself.
    Hello {
        /// Id of the dialing worker.
        worker_id: u32,
    },
    /// Coordinator → workers: run this algorithm next.
    Begin {
        /// The algorithm to execute in BSP supersteps.
        algo: ClusterAlgo,
    },
    /// Mirror → master accumulation batch for one superstep.
    Gather {
        /// Superstep index the batch belongs to.
        step: u32,
        /// Per-vertex partial values, ascending by vertex id.
        pairs: Vec<ValuePair>,
    },
    /// Master → mirror broadcast batch for one superstep.
    Scatter {
        /// Superstep index the batch belongs to.
        step: u32,
        /// Per-vertex authoritative values, ascending by vertex id.
        pairs: Vec<ValuePair>,
    },
    /// Worker → coordinator: superstep barrier arrival.
    StepDone {
        /// The completed superstep.
        step: u32,
        /// Vertices this worker activated this superstep (drives BFS/CC
        /// termination).
        active: u64,
        /// Value pairs this worker shipped to remote peers this
        /// superstep (gather + scatter).
        sent: u64,
    },
    /// Coordinator → workers: barrier release with the continue/halt
    /// decision.
    Continue {
        /// The superstep being released.
        step: u32,
        /// Whether another superstep follows.
        go: bool,
    },
    /// Worker → coordinator, after halt: final values of every vertex
    /// this worker masters.
    Values {
        /// `(vertex, bits)` for each owned vertex, ascending.
        pairs: Vec<ValuePair>,
    },
    /// Coordinator → workers: tear down and exit.
    Shutdown,
}

const TAG_JOIN: u8 = 1;
const TAG_START: u8 = 2;
const TAG_HELLO: u8 = 3;
const TAG_BEGIN: u8 = 4;
const TAG_GATHER: u8 = 5;
const TAG_SCATTER: u8 = 6;
const TAG_STEP_DONE: u8 = 7;
const TAG_CONTINUE: u8 = 8;
const TAG_VALUES: u8 = 9;
const TAG_SHUTDOWN: u8 = 10;

const ALGO_PAGERANK: u8 = 0;
const ALGO_BFS: u8 = 1;
const ALGO_CC: u8 = 2;

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("cluster wire: {what}"))
}

fn put_pairs(out: &mut Vec<u8>, pairs: &[ValuePair]) {
    out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for &(v, bits) in pairs {
        out.extend_from_slice(&v.to_le_bytes());
        out.extend_from_slice(&bits.to_le_bytes());
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated message"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn pairs(&mut self) -> io::Result<Vec<ValuePair>> {
        let count = self.u32()? as usize;
        // 12 bytes per pair must fit in what remains — reject the count
        // before allocating.
        if count > (self.buf.len() - self.pos) / 12 {
            return Err(bad("pair count exceeds frame"));
        }
        let mut pairs = Vec::with_capacity(count);
        for _ in 0..count {
            let v = self.u32()?;
            let bits = self.u64()?;
            pairs.push((v, bits));
        }
        Ok(pairs)
    }

    fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes after message"))
        }
    }
}

impl Msg {
    /// Serializes the message body (the frame payload, without the
    /// length header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Msg::Join { mesh_port } => {
                out.push(TAG_JOIN);
                out.extend_from_slice(&mesh_port.to_le_bytes());
            }
            Msg::Start { worker_id, roster } => {
                out.push(TAG_START);
                out.extend_from_slice(&worker_id.to_le_bytes());
                out.extend_from_slice(&(roster.len() as u32).to_le_bytes());
                for addr in roster {
                    let s = addr.to_string();
                    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            }
            Msg::Hello { worker_id } => {
                out.push(TAG_HELLO);
                out.extend_from_slice(&worker_id.to_le_bytes());
            }
            Msg::Begin { algo } => {
                out.push(TAG_BEGIN);
                let (tag, a) = match *algo {
                    ClusterAlgo::PageRank { iters } => (ALGO_PAGERANK, iters as u64),
                    ClusterAlgo::Bfs { source } => (ALGO_BFS, source as u64),
                    ClusterAlgo::Cc => (ALGO_CC, 0),
                };
                out.push(tag);
                out.extend_from_slice(&a.to_le_bytes());
            }
            Msg::Gather { step, pairs } => {
                out.push(TAG_GATHER);
                out.extend_from_slice(&step.to_le_bytes());
                put_pairs(&mut out, pairs);
            }
            Msg::Scatter { step, pairs } => {
                out.push(TAG_SCATTER);
                out.extend_from_slice(&step.to_le_bytes());
                put_pairs(&mut out, pairs);
            }
            Msg::StepDone { step, active, sent } => {
                out.push(TAG_STEP_DONE);
                out.extend_from_slice(&step.to_le_bytes());
                out.extend_from_slice(&active.to_le_bytes());
                out.extend_from_slice(&sent.to_le_bytes());
            }
            Msg::Continue { step, go } => {
                out.push(TAG_CONTINUE);
                out.extend_from_slice(&step.to_le_bytes());
                out.push(u8::from(*go));
            }
            Msg::Values { pairs } => {
                out.push(TAG_VALUES);
                put_pairs(&mut out, pairs);
            }
            Msg::Shutdown => out.push(TAG_SHUTDOWN),
        }
        out
    }

    /// Parses one frame payload. Truncated, oversized-count, trailing
    /// or unknown-tag payloads are `InvalidData` errors.
    pub fn decode(payload: &[u8]) -> io::Result<Msg> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        let msg = match c.u8()? {
            TAG_JOIN => Msg::Join {
                mesh_port: c.u16()?,
            },
            TAG_START => {
                let worker_id = c.u32()?;
                let count = c.u32()? as usize;
                if count > 64 {
                    return Err(bad("roster larger than the 64-machine cap"));
                }
                let mut roster = Vec::with_capacity(count);
                for _ in 0..count {
                    let len = c.u16()? as usize;
                    let s =
                        std::str::from_utf8(c.take(len)?).map_err(|_| bad("roster not utf-8"))?;
                    roster.push(s.parse().map_err(|_| bad("roster addr unparseable"))?);
                }
                Msg::Start { worker_id, roster }
            }
            TAG_HELLO => Msg::Hello {
                worker_id: c.u32()?,
            },
            TAG_BEGIN => {
                let tag = c.u8()?;
                let a = c.u64()?;
                let algo = match tag {
                    ALGO_PAGERANK => ClusterAlgo::PageRank { iters: a as u32 },
                    ALGO_BFS => ClusterAlgo::Bfs { source: a as u32 },
                    ALGO_CC => {
                        Msg::require(a == 0, "cc carries no argument").map(|()| ClusterAlgo::Cc)?
                    }
                    _ => return Err(bad("unknown algorithm tag")),
                };
                Msg::Begin { algo }
            }
            TAG_GATHER => Msg::Gather {
                step: c.u32()?,
                pairs: c.pairs()?,
            },
            TAG_SCATTER => Msg::Scatter {
                step: c.u32()?,
                pairs: c.pairs()?,
            },
            TAG_STEP_DONE => Msg::StepDone {
                step: c.u32()?,
                active: c.u64()?,
                sent: c.u64()?,
            },
            TAG_CONTINUE => Msg::Continue {
                step: c.u32()?,
                go: match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(bad("continue flag out of range")),
                },
            },
            TAG_VALUES => Msg::Values { pairs: c.pairs()? },
            TAG_SHUTDOWN => Msg::Shutdown,
            _ => return Err(bad("unknown message tag")),
        };
        c.done()?;
        Ok(msg)
    }

    fn require(ok: bool, what: &'static str) -> io::Result<()> {
        if ok {
            Ok(())
        } else {
            Err(bad(what))
        }
    }
}

/// A blocking, framed, `TCP_NODELAY` message connection — the control
/// channel between a worker and the coordinator, and the join-phase leg
/// of mesh connections.
pub struct FramedConn {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl FramedConn {
    /// Wraps a connected stream; disables Nagle so barrier messages
    /// (tens of bytes) don't sit in the send buffer.
    pub fn new(stream: TcpStream) -> io::Result<FramedConn> {
        stream.set_nodelay(true)?;
        Ok(FramedConn {
            stream,
            decoder: FrameDecoder::with_max_frame(CLUSTER_MAX_FRAME),
        })
    }

    /// The underlying stream (for epoll registration and address
    /// introspection).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Encodes and writes one message as a single frame.
    pub fn send(&mut self, msg: &Msg) -> io::Result<()> {
        let mut out = Vec::new();
        encode_frame(&msg.encode(), &mut out);
        self.stream.write_all(&out)
    }

    /// Blocks until one full message arrives. A clean peer close with
    /// no buffered frame is `UnexpectedEof`.
    pub fn recv(&mut self) -> io::Result<Msg> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some(payload) = self.decoder.next_frame().map_err(oversized)? {
                return Msg::decode(&payload);
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-protocol",
                ));
            }
            self.decoder.push(&chunk[..n]);
        }
    }

    /// Pops a message already sitting in the decode buffer, without
    /// touching the socket. Epoll-driven loops must drain this before
    /// waiting: buffered bytes generate no further readiness events.
    pub fn try_buffered(&mut self) -> io::Result<Option<Msg>> {
        match self.decoder.next_frame().map_err(oversized)? {
            Some(payload) => Msg::decode(&payload).map(Some),
            None => Ok(None),
        }
    }

    /// Reads whatever the socket currently holds into the decode buffer
    /// (one `read` call), returning the first complete message if any.
    pub fn read_some(&mut self) -> io::Result<Option<Msg>> {
        if let Some(msg) = self.try_buffered()? {
            return Ok(Some(msg));
        }
        let mut chunk = [0u8; 64 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed mid-protocol",
            ));
        }
        self.decoder.push(&chunk[..n]);
        self.try_buffered()
    }
}

fn oversized(e: vebo_net::Oversized) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Which mesh exchange a [`Mesh::recv_phase`] call is collecting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Mirror → master accumulation ([`Msg::Gather`]).
    Gather,
    /// Master → mirror broadcast ([`Msg::Scatter`]).
    Scatter,
}

/// The fully-connected worker mesh: one duplex TCP connection per peer,
/// one reader thread per connection, and an early-arrival stash so
/// phases can be collected strictly in protocol order.
pub struct Mesh {
    me: u32,
    writers: BTreeMap<u32, TcpStream>,
    rx: mpsc::Receiver<(u32, io::Result<Msg>)>,
    stash: VecDeque<(u32, Msg)>,
}

impl Mesh {
    /// Builds the clique for worker `me` given the coordinator's
    /// roster: dials every lower id (sending [`Msg::Hello`]), accepts
    /// every higher id (reading theirs). `listener` is the mesh
    /// listener whose port was advertised in [`Msg::Join`].
    pub fn connect(me: u32, listener: &TcpListener, roster: &[SocketAddr]) -> io::Result<Mesh> {
        let w = roster.len();
        let (tx, rx) = mpsc::channel();
        let mut writers = BTreeMap::new();
        for peer in 0..me {
            let stream = TcpStream::connect(roster[peer as usize])?;
            let mut conn = FramedConn::new(stream.try_clone()?)?;
            conn.send(&Msg::Hello { worker_id: me })?;
            let tx = tx.clone();
            thread::spawn(move || read_loop(peer, conn, tx));
            writers.insert(peer, stream);
        }
        for _ in (me as usize + 1)..w {
            let (stream, _) = listener.accept()?;
            // The reader keeps the decoder that consumed the hello:
            // frames an eager peer pipelined right behind it are
            // already buffered there and must not be dropped.
            let mut reader = FramedConn::new(stream.try_clone()?)?;
            let peer = match reader.recv()? {
                Msg::Hello { worker_id } if (worker_id as usize) < w && worker_id > me => worker_id,
                other => return Err(bad(&format!("expected mesh hello, got {other:?}"))),
            };
            if writers.contains_key(&peer) {
                return Err(bad("duplicate mesh hello"));
            }
            let tx = tx.clone();
            thread::spawn(move || read_loop(peer, reader, tx));
            writers.insert(peer, stream);
        }
        Ok(Mesh {
            me,
            writers,
            rx,
            stash: VecDeque::new(),
        })
    }

    /// This worker's id.
    pub fn me(&self) -> u32 {
        self.me
    }

    /// Ids of all peers (every worker but this one), ascending.
    pub fn peers(&self) -> impl Iterator<Item = u32> + '_ {
        self.writers.keys().copied()
    }

    /// Sends one message to `peer`.
    pub fn send_to(&mut self, peer: u32, msg: &Msg) -> io::Result<()> {
        let stream = self
            .writers
            .get_mut(&peer)
            .ok_or_else(|| bad("send to unknown peer"))?;
        let mut out = Vec::new();
        encode_frame(&msg.encode(), &mut out);
        stream.write_all(&out)
    }

    /// Collects exactly one `phase` batch of superstep `step` from
    /// every peer, returning `(peer, pairs)` ascending by peer id.
    /// Frames for later phases that race ahead are stashed, not lost.
    pub fn recv_phase(
        &mut self,
        phase: Phase,
        step: u32,
    ) -> io::Result<Vec<(u32, Vec<ValuePair>)>> {
        let mut got: BTreeMap<u32, Vec<ValuePair>> = BTreeMap::new();
        let want = self.writers.len();
        let matches = |msg: &Msg| -> bool {
            match (phase, msg) {
                (Phase::Gather, Msg::Gather { step: s, .. }) => *s == step,
                (Phase::Scatter, Msg::Scatter { step: s, .. }) => *s == step,
                _ => false,
            }
        };
        let mut i = 0;
        while i < self.stash.len() {
            if matches(&self.stash[i].1) {
                let (peer, msg) = self.stash.remove(i).expect("index in bounds");
                got.insert(peer, pairs_of(msg));
            } else {
                i += 1;
            }
        }
        while got.len() < want {
            let (peer, msg) = self.rx.recv().map_err(|_| bad("all mesh readers exited"))?;
            let msg = msg?;
            if matches(&msg) {
                if got.insert(peer, pairs_of(msg)).is_some() {
                    return Err(bad("duplicate phase batch from peer"));
                }
            } else {
                self.stash.push_back((peer, msg));
            }
        }
        Ok(got.into_iter().collect())
    }
}

fn pairs_of(msg: Msg) -> Vec<ValuePair> {
    match msg {
        Msg::Gather { pairs, .. } | Msg::Scatter { pairs, .. } => pairs,
        _ => unreachable!("recv_phase only matches gather/scatter"),
    }
}

fn read_loop(peer: u32, mut conn: FramedConn, tx: mpsc::Sender<(u32, io::Result<Msg>)>) {
    loop {
        match conn.recv() {
            Ok(msg) => {
                if tx.send((peer, Ok(msg))).is_err() {
                    return; // mesh dropped; nobody is listening
                }
            }
            Err(e) => {
                let _ = tx.send((peer, Err(e)));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Msg) {
        let bytes = msg.encode();
        assert_eq!(Msg::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(Msg::Join { mesh_port: 40321 });
        round_trip(Msg::Start {
            worker_id: 2,
            roster: vec![
                "127.0.0.1:4000".parse().unwrap(),
                "127.0.0.1:4001".parse().unwrap(),
                "[::1]:4002".parse().unwrap(),
            ],
        });
        round_trip(Msg::Hello { worker_id: 7 });
        round_trip(Msg::Begin {
            algo: ClusterAlgo::PageRank { iters: 20 },
        });
        round_trip(Msg::Begin {
            algo: ClusterAlgo::Bfs { source: 12345 },
        });
        round_trip(Msg::Begin {
            algo: ClusterAlgo::Cc,
        });
        round_trip(Msg::Gather {
            step: 3,
            pairs: vec![(0, u64::MAX), (9, 1.25f64.to_bits())],
        });
        round_trip(Msg::Scatter {
            step: 4,
            pairs: Vec::new(),
        });
        round_trip(Msg::StepDone {
            step: 5,
            active: 42,
            sent: 99,
        });
        round_trip(Msg::Continue { step: 5, go: true });
        round_trip(Msg::Continue { step: 6, go: false });
        round_trip(Msg::Values {
            pairs: vec![(1, 2), (3, 4)],
        });
        round_trip(Msg::Shutdown);
    }

    #[test]
    fn malformed_payloads_are_invalid_data() {
        for payload in [
            &[][..],                            // empty
            &[99][..],                          // unknown tag
            &[TAG_JOIN, 1][..],                 // truncated port
            &[TAG_CONTINUE, 0, 0, 0, 0, 7][..], // bad bool
            &[TAG_SHUTDOWN, 0][..],             // trailing byte
            // Gather claiming 1000 pairs with no bytes behind the claim.
            &[TAG_GATHER, 0, 0, 0, 0, 0xe8, 0x03, 0, 0][..],
        ] {
            let err = Msg::decode(payload).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{payload:?}");
        }
    }

    #[test]
    fn framed_conn_round_trips_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = thread::spawn(move || {
            let mut conn = FramedConn::new(TcpStream::connect(addr).unwrap()).unwrap();
            conn.send(&Msg::StepDone {
                step: 1,
                active: 2,
                sent: 3,
            })
            .unwrap();
            conn.send(&Msg::Shutdown).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = FramedConn::new(stream).unwrap();
        assert_eq!(
            conn.recv().unwrap(),
            Msg::StepDone {
                step: 1,
                active: 2,
                sent: 3
            }
        );
        assert_eq!(conn.recv().unwrap(), Msg::Shutdown);
        sender.join().unwrap();
        // Peer gone: the next recv is a clean EOF error, not a hang.
        assert_eq!(
            conn.recv().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn mesh_exchanges_phases_with_stashing() {
        // Three workers on loopback; worker 1 sends its step-0 scatter
        // *before* anyone collects gathers, exercising the stash.
        let listeners: Vec<TcpListener> = (0..3)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        let roster: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(id, listener)| {
                let roster = roster.clone();
                thread::spawn(move || {
                    let me = id as u32;
                    let mut mesh = Mesh::connect(me, &listener, &roster).unwrap();
                    for peer in [0u32, 1, 2] {
                        if peer == me {
                            continue;
                        }
                        mesh.send_to(
                            peer,
                            &Msg::Gather {
                                step: 0,
                                pairs: vec![(me, 100 + u64::from(me))],
                            },
                        )
                        .unwrap();
                        if me == 1 {
                            // Race a scatter ahead of the gather collection.
                            mesh.send_to(
                                peer,
                                &Msg::Scatter {
                                    step: 0,
                                    pairs: vec![(me, 200 + u64::from(me))],
                                },
                            )
                            .unwrap();
                        }
                    }
                    let gathers = mesh.recv_phase(Phase::Gather, 0).unwrap();
                    let expect: Vec<(u32, Vec<ValuePair>)> = (0..3u32)
                        .filter(|&p| p != me)
                        .map(|p| (p, vec![(p, 100 + u64::from(p))]))
                        .collect();
                    assert_eq!(gathers, expect);
                    if me != 1 {
                        for peer in [0u32, 1, 2] {
                            if peer != me {
                                mesh.send_to(
                                    peer,
                                    &Msg::Scatter {
                                        step: 0,
                                        pairs: vec![(me, 200 + u64::from(me))],
                                    },
                                )
                                .unwrap();
                            }
                        }
                    }
                    let scatters = mesh.recv_phase(Phase::Scatter, 0).unwrap();
                    let expect: Vec<(u32, Vec<ValuePair>)> = (0..3u32)
                        .filter(|&p| p != me)
                        .map(|p| (p, vec![(p, 200 + u64::from(p))]))
                        .collect();
                    assert_eq!(scatters, expect);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
