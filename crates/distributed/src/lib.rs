//! # vebo-distributed
//!
//! The paper closes (§VII) with an open question: *"we will investigate
//! whether distributed graph processing systems, which typically use
//! static scheduling, also benefit from increased load balance even if
//! this comes at the expense of a small increase in vertex replication,
//! and thus an increase in the volume of data communication."* This crate
//! builds the machinery to answer it:
//!
//! * the distributed partitioners the paper's §VI surveys, rebuilt from
//!   scratch —
//!   [`hash`] (the random baseline every system defaults to),
//!   [`ldg`] (Linear Deterministic Greedy streaming, Stanton & Kliot,
//!   KDD 2012),
//!   [`fennel`] (Tsourakakis et al., WSDM 2014),
//!   [`vertex_cut`] (PowerGraph's greedy vertex-cut edge placement,
//!   Gonzalez et al., OSDI 2012), and
//!   [`hybrid_cut`] (PowerLyra's degree-differentiated placement, Chen et
//!   al., EuroSys 2015);
//! * a deterministic **BSP cluster simulator** ([`bsp`]) that charges each
//!   worker per-edge and per-vertex compute (the paper's §II work model)
//!   plus per-value communication for every vertex whose value must reach
//!   a remote worker, with a barrier per superstep — the static-scheduling
//!   regime §VII asks about;
//! * the §VII **study harness** ([`study`]) that runs PageRank and BFS
//!   supersteps over every strategy and reports replication factor,
//!   cut fraction, balance, compute makespan and total simulated time;
//! * a real **multi-process cluster runtime** — [`runtime`] (shard
//!   plans, worker superstep loop, the in-process [`run_local`]
//!   reference), [`transport`] (length-prefixed message framing and the
//!   worker↔worker mesh), and [`sync`] (the coordinator: join/roster
//!   handshake, epoll-multiplexed superstep barrier, final value
//!   collection). PageRank, BFS and CC run mirror→master gather /
//!   master→mirror scatter supersteps over vertex-cut, hash, or hybrid
//!   edge shards, and the socket cluster is proven digest-identical to
//!   [`run_local`] by the loopback conformance suite. The `vebo-cluster`
//!   bin (in `vebo-bench`) drives it across process boundaries.
//!
//! Vertex *assignments* (who owns a vertex) use
//! [`vebo_partition::VertexAssignment`]; the edge-placement partitioners
//! (vertex cuts) use this crate's [`vertex_cut::EdgePlacement`], since
//! their unit of placement is the edge and their headline metric is the
//! replication factor.

#![warn(missing_docs)]

pub mod bsp;
pub mod error;
pub mod fennel;
pub mod hash;
pub mod hybrid_cut;
pub mod ldg;
pub mod runtime;
pub mod study;
#[cfg(target_os = "linux")]
pub mod sync;
pub mod transport;
pub mod vertex_cut;

pub use bsp::{run_bfs, run_pagerank, BspRun, ClusterConfig, SuperstepReport};
pub use error::DistributedError;
pub use fennel::Fennel;
pub use hash::hash_partition;
pub use hybrid_cut::HybridCut;
pub use ldg::Ldg;
pub use runtime::{
    run_local, run_worker, ClusterAlgo, ClusterPlan, Partitioner, RunOutput, WorkerState,
};
pub use study::{evaluate, Strategy, StudyRow};
#[cfg(target_os = "linux")]
pub use sync::Coordinator;
pub use transport::{FramedConn, Mesh, Msg, CLUSTER_MAX_FRAME};
pub use vertex_cut::{EdgePlacement, GreedyVertexCut};
