//! The multi-process cluster runtime: vertex-cut shards executing real
//! BSP supersteps.
//!
//! Where [`crate::bsp`] *simulates* a cluster (it charges work and
//! communication against a cost model), this module *is* one: each
//! worker owns the arcs an edge placement assigned to it, runs local
//! `edge_map`s over that shard through the ordinary
//! [`vebo_engine::Executor`], and synchronizes vertex values with its
//! peers in the PowerGraph gather/scatter shape —
//!
//! 1. **compute**: a local edge map produces per-vertex partial values
//!    (PageRank partial sums, BFS/CC candidates);
//! 2. **gather**: each partial is sent to the vertex's *master* (the
//!    lowest-numbered machine in its replica set), which combines them
//!    in machine order;
//! 3. **scatter**: the master broadcasts the authoritative value back
//!    to every replica;
//! 4. **barrier**: workers report activity to the coordinator, which
//!    decides continue-or-halt.
//!
//! Every step of that loop is deterministic: shards are rebuilt
//! identically from the same placement, local edge maps run
//! [`ExecMode::Sequential`] with a forced direction, masters combine
//! partials in ascending machine order, and batches list vertices in
//! ascending id order. [`run_local`] steps the same `WorkerState` code
//! in-process with no sockets at all — the conformance suites prove the
//! socket cluster bit-identical to it, and (for the integer-valued
//! fixpoints BFS and CC) to the single-process engine algorithms.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::error::DistributedError;
use crate::hybrid_cut::HybridCut;
use crate::transport::{FramedConn, Mesh, Msg, Phase, ValuePair};
use crate::vertex_cut::{random_edge_placement, EdgePlacement, GreedyVertexCut};
use vebo_engine::shared::{atomic_f64_vec, AtomicBitset, AtomicF64};
use vebo_engine::{
    Direction, EdgeOp, ExecMode, Executor, Frontier, PreparedGraph, ShardMetricsSink, SystemProfile,
};
use vebo_graph::{digest_u64s, Graph, VertexId};

/// PageRank damping factor (the constant the rest of the repo uses).
const DAMPING: f64 = 0.85;

/// BFS "not reached" level, matching the engine's convention.
const UNVISITED: u32 = u32::MAX;

/// Edge-placement strategy selector for the cluster runtime — the
/// partitioners a shard can be cut with, as a CLI-friendly enum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partitioner {
    /// PowerGraph greedy vertex cut ([`GreedyVertexCut`]).
    VertexCut,
    /// Random (hash) edge placement ([`random_edge_placement`]).
    Hash,
    /// PowerLyra hybrid cut with the default threshold ([`HybridCut`]).
    Hybrid,
}

impl Partitioner {
    /// Every strategy, in display order.
    pub const ALL: [Partitioner; 3] = [
        Partitioner::VertexCut,
        Partitioner::Hash,
        Partitioner::Hybrid,
    ];

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Partitioner::VertexCut => "vertex-cut",
            Partitioner::Hash => "hash",
            Partitioner::Hybrid => "hybrid",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Partitioner> {
        Partitioner::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Places every arc of `g` on one of `machines` machines. All three
    /// strategies are deterministic, so every worker computes the same
    /// placement from the same graph.
    pub fn place(self, g: &Graph, machines: usize) -> Result<EdgePlacement, DistributedError> {
        match self {
            Partitioner::VertexCut => GreedyVertexCut.place(g, machines),
            Partitioner::Hash => random_edge_placement(g, machines),
            Partitioner::Hybrid => HybridCut::default().place(g, machines),
        }
    }
}

/// The algorithm a cluster run executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterAlgo {
    /// Fixed-iteration PageRank; final values are `f64::to_bits`.
    PageRank {
        /// Superstep (iteration) count.
        iters: u32,
    },
    /// Level-synchronous BFS; final values are levels (`u32::MAX` =
    /// unreached), zero-extended.
    Bfs {
        /// Root vertex.
        source: u32,
    },
    /// Min-label propagation along stored arcs, the same fixpoint the
    /// engine's `cc` computes; final values are labels, zero-extended.
    Cc,
}

impl ClusterAlgo {
    /// Short display name, used by the `vebo-cluster` bin's output lines.
    pub fn name(self) -> &'static str {
        match self {
            ClusterAlgo::PageRank { .. } => "pagerank",
            ClusterAlgo::Bfs { .. } => "bfs",
            ClusterAlgo::Cc => "cc",
        }
    }
}

/// Whether another superstep follows `next_step` given the activity sum
/// of the step just finished — the coordinator's (and [`run_local`]'s)
/// halt rule.
pub fn decide_continue(algo: ClusterAlgo, next_step: u32, total_active: u64) -> bool {
    match algo {
        ClusterAlgo::PageRank { iters } => next_step < iters,
        ClusterAlgo::Bfs { .. } | ClusterAlgo::Cc => total_active > 0,
    }
}

/// The master machine of vertex `v`: lowest-numbered machine in its
/// replica set, or `v % w` for vertices no arc ever touched (so
/// ownership stays total and every machine agrees on it).
pub fn master_of(replica_mask: u64, v: VertexId, machines: usize) -> u32 {
    if replica_mask == 0 {
        v % machines as u32
    } else {
        replica_mask.trailing_zeros()
    }
}

/// One worker's immutable view of the cluster: its shard graph
/// (prepared for the engine), the ownership map, and global degrees.
pub struct ClusterPlan {
    n: usize,
    machines: usize,
    me: u32,
    pg: PreparedGraph,
    exec: Executor,
    /// Global out-degree of every vertex (PageRank divides by this, not
    /// by the local shard degree).
    global_out_degree: Vec<u32>,
    /// Replica bitmask per vertex, copied from the placement.
    replicas: Vec<u64>,
    /// Master machine per vertex.
    master: Vec<u32>,
    /// Vertices this machine masters, ascending.
    owned: Vec<VertexId>,
    metrics: Arc<ShardMetricsSink>,
}

impl ClusterPlan {
    /// Builds machine `me`'s plan: the shard graph holds exactly the
    /// arcs `placement` assigned to `me` (over the full global vertex
    /// id space, so no id translation ever happens), prepared with the
    /// deterministic sequential profile.
    pub fn build(g: &Graph, placement: &EdgePlacement, me: u32) -> ClusterPlan {
        let n = g.num_vertices();
        let machines = placement.num_machines();
        assert!((me as usize) < machines, "worker id out of range");
        let mut local_edges = Vec::new();
        let mut idx = 0usize;
        for u in g.vertices() {
            for &v in g.out_neighbors(u) {
                if placement.machine_of_arc(idx) == me {
                    local_edges.push((u, v));
                }
                idx += 1;
            }
        }
        let shard = Graph::from_edges(n, &local_edges, true);
        let pg = PreparedGraph::builder(shard)
            .profile(SystemProfile::ligra_like())
            .build()
            .expect("shard graph prepares");
        let metrics = Arc::new(ShardMetricsSink::new());
        let exec = Executor::new(SystemProfile::ligra_like())
            .with_mode(ExecMode::Sequential)
            .with_sink(metrics.clone());
        let global_out_degree = (0..n).map(|v| g.out_degree(v as VertexId) as u32).collect();
        let replicas: Vec<u64> = (0..n)
            .map(|v| placement.replicas_of(v as VertexId))
            .collect();
        let master: Vec<u32> = (0..n)
            .map(|v| master_of(replicas[v], v as VertexId, machines))
            .collect();
        let owned: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| master[v as usize] == me)
            .collect();
        ClusterPlan {
            n,
            machines,
            me,
            pg,
            exec,
            global_out_degree,
            replicas,
            master,
            owned,
            metrics,
        }
    }

    /// Global vertex count.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Cluster width.
    pub fn num_machines(&self) -> usize {
        self.machines
    }

    /// This machine's id.
    pub fn machine(&self) -> u32 {
        self.me
    }

    /// Arcs in this machine's shard.
    pub fn shard_edges(&self) -> usize {
        self.pg.graph().num_edges()
    }

    /// Vertices this machine masters.
    pub fn num_owned(&self) -> usize {
        self.owned.len()
    }

    /// The metrics sink the shard executor and superstep loop feed.
    pub fn metrics(&self) -> &Arc<ShardMetricsSink> {
        &self.metrics
    }
}

/// Per-machine outgoing batches, indexed by machine id (the slot for
/// this machine itself carries the loopback batch).
type Batches = Vec<Vec<ValuePair>>;

fn empty_batches(machines: usize) -> Batches {
    vec![Vec::new(); machines]
}

/// PageRank gather operator: pull-accumulate `contrib[src]` into
/// `acc[dst]` over the shard's arcs. Sequential + forced-dense, so the
/// floating-point sum order is the shard CSC order — identical for the
/// in-process and socket runners.
struct PrGather<'a> {
    contrib: &'a [f64],
    acc: &'a [AtomicF64],
}

impl EdgeOp for PrGather<'_> {
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.acc[dst as usize].fetch_add(self.contrib[src as usize]);
        false
    }

    fn update_atomic(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        self.update(src, dst, w)
    }
}

/// BFS gather operator: mark unvisited destinations reachable from the
/// frontier as candidates (push-sparse, CAS-deduplicated).
struct BfsGather<'a> {
    levels: &'a [u32],
    candidates: &'a AtomicBitset,
}

impl EdgeOp for BfsGather<'_> {
    fn update(&self, _src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.levels[dst as usize] == UNVISITED && self.candidates.set(dst as usize)
    }

    fn update_atomic(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        self.update(src, dst, w)
    }

    fn cond(&self, dst: VertexId) -> bool {
        self.levels[dst as usize] == UNVISITED
    }
}

/// CC gather operator: lower `next[dst]` toward `labels[src]` (the
/// frozen pre-superstep label) and mark lowered destinations.
struct CcGather<'a> {
    labels: &'a [u32],
    next: &'a [AtomicU32],
    changed: &'a AtomicBitset,
}

impl EdgeOp for CcGather<'_> {
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        let cand = self.labels[src as usize];
        let slot = &self.next[dst as usize];
        let mut cur = slot.load(Ordering::Relaxed);
        while cand < cur {
            match slot.compare_exchange(cur, cand, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    self.changed.set(dst as usize);
                    return false;
                }
                Err(now) => cur = now,
            }
        }
        false
    }

    fn update_atomic(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        self.update(src, dst, w)
    }
}

/// Algorithm-specific mutable state of one worker.
enum AlgoState {
    Pr {
        x: Vec<f64>,
    },
    Bfs {
        levels: Vec<u32>,
        frontier: Vec<VertexId>,
    },
    Cc {
        labels: Vec<u32>,
        frontier: Vec<VertexId>,
    },
}

/// One worker's superstep engine. All numeric work happens here;
/// [`run_local`] and the socket runtime differ only in how batches
/// travel between `WorkerState`s.
pub struct WorkerState {
    algo: ClusterAlgo,
    state: AlgoState,
}

impl WorkerState {
    /// Initial state for `algo` on this worker's shard.
    pub fn new(plan: &ClusterPlan, algo: ClusterAlgo) -> WorkerState {
        let n = plan.n;
        let state = match algo {
            ClusterAlgo::PageRank { .. } => AlgoState::Pr {
                x: vec![1.0 / n.max(1) as f64; n],
            },
            ClusterAlgo::Bfs { source } => {
                let source = if n == 0 { 0 } else { source % n as u32 };
                let mut levels = vec![UNVISITED; n];
                if n > 0 {
                    levels[source as usize] = 0;
                }
                AlgoState::Bfs {
                    levels,
                    frontier: if n > 0 { vec![source] } else { Vec::new() },
                }
            }
            ClusterAlgo::Cc => AlgoState::Cc {
                labels: (0..n as u32).collect(),
                frontier: (0..n as VertexId).collect(),
            },
        };
        WorkerState { algo, state }
    }

    /// Phase 1 — local compute: one edge map over the shard, producing
    /// the per-master gather batches (ascending vertex ids; the slot
    /// for `plan.machine()` is the loopback batch).
    pub fn compute_gather(&mut self, plan: &ClusterPlan) -> Batches {
        let n = plan.n;
        let mut out = empty_batches(plan.machines);
        match &mut self.state {
            AlgoState::Pr { x } => {
                let contrib: Vec<f64> = (0..n)
                    .map(|v| {
                        let d = plan.global_out_degree[v];
                        if d > 0 {
                            x[v] / d as f64
                        } else {
                            0.0
                        }
                    })
                    .collect();
                let acc = atomic_f64_vec(n, 0.0);
                let op = PrGather {
                    contrib: &contrib,
                    acc: &acc,
                };
                let frontier = Frontier::all(n);
                plan.exec
                    .edge_map_in(&plan.pg, &frontier, &op, Direction::Dense);
                for (v, slot) in acc.iter().enumerate() {
                    let partial = slot.load();
                    if partial != 0.0 {
                        out[plan.master[v] as usize].push((v as u32, partial.to_bits()));
                    }
                }
            }
            AlgoState::Bfs { levels, frontier } => {
                if !frontier.is_empty() {
                    let candidates = AtomicBitset::new(n);
                    let op = BfsGather {
                        levels,
                        candidates: &candidates,
                    };
                    let f = Frontier::from_sorted_vertices(n, frontier.clone());
                    plan.exec.edge_map_in(&plan.pg, &f, &op, Direction::Sparse);
                    for v in bits_ascending(&candidates) {
                        out[plan.master[v as usize] as usize].push((v, 0));
                    }
                }
                frontier.clear();
            }
            AlgoState::Cc { labels, frontier } => {
                if !frontier.is_empty() {
                    let next: Vec<AtomicU32> = labels.iter().map(|&l| AtomicU32::new(l)).collect();
                    let changed = AtomicBitset::new(n);
                    let op = CcGather {
                        labels,
                        next: &next,
                        changed: &changed,
                    };
                    let f = Frontier::from_sorted_vertices(n, frontier.clone());
                    plan.exec.edge_map_in(&plan.pg, &f, &op, Direction::Sparse);
                    for v in bits_ascending(&changed) {
                        let cand = next[v as usize].load(Ordering::Relaxed);
                        out[plan.master[v as usize] as usize].push((v, cand as u64));
                    }
                }
                frontier.clear();
            }
        }
        out
    }

    /// Phase 2 — master combine: merges the gather batches addressed to
    /// this machine (`incoming[q]` from machine `q`, ascending machine
    /// order, so floating-point combination order is fixed), updates
    /// owned vertices, and produces the scatter batches for their
    /// replicas. Returns `(scatter_batches, newly_active)`.
    pub fn apply_gather(
        &mut self,
        plan: &ClusterPlan,
        step: u32,
        incoming: &[Vec<ValuePair>],
    ) -> (Batches, u64) {
        assert_eq!(incoming.len(), plan.machines);
        let mut out = empty_batches(plan.machines);
        let me = plan.me;
        let active;
        match &mut self.state {
            AlgoState::Pr { x } => {
                let mut total = vec![0.0f64; plan.n];
                for batch in incoming {
                    for &(v, bits) in batch {
                        total[v as usize] += f64::from_bits(bits);
                    }
                }
                let base = (1.0 - DAMPING) / plan.n.max(1) as f64;
                for &v in &plan.owned {
                    let nx = base + DAMPING * total[v as usize];
                    x[v as usize] = nx;
                    push_to_replicas(&mut out, plan.replicas[v as usize], me, v, nx.to_bits());
                }
                active = plan.owned.len() as u64;
            }
            AlgoState::Bfs { levels, frontier } => {
                let mut newly = Vec::new();
                for batch in incoming {
                    for &(v, _) in batch {
                        debug_assert_eq!(plan.master[v as usize], me);
                        if levels[v as usize] == UNVISITED {
                            levels[v as usize] = step + 1;
                            newly.push(v);
                        }
                    }
                }
                newly.sort_unstable();
                active = newly.len() as u64;
                for &v in &newly {
                    push_to_replicas(
                        &mut out,
                        plan.replicas[v as usize],
                        me,
                        v,
                        u64::from(step + 1),
                    );
                }
                frontier.extend_from_slice(&newly);
            }
            AlgoState::Cc { labels, frontier } => {
                let mut newly = Vec::new();
                for batch in incoming {
                    for &(v, bits) in batch {
                        debug_assert_eq!(plan.master[v as usize], me);
                        let cand = bits as u32;
                        if cand < labels[v as usize] {
                            labels[v as usize] = cand;
                            newly.push(v);
                        }
                    }
                }
                newly.sort_unstable();
                newly.dedup();
                active = newly.len() as u64;
                for &v in &newly {
                    push_to_replicas(
                        &mut out,
                        plan.replicas[v as usize],
                        me,
                        v,
                        u64::from(labels[v as usize]),
                    );
                }
                frontier.extend_from_slice(&newly);
            }
        }
        (out, active)
    }

    /// Phase 3 — mirror update: applies the masters' scatter batches to
    /// local mirrors and finalizes the next frontier.
    pub fn apply_scatter(&mut self, plan: &ClusterPlan, incoming: &[Vec<ValuePair>]) {
        assert_eq!(incoming.len(), plan.machines);
        match &mut self.state {
            AlgoState::Pr { x } => {
                for batch in incoming {
                    for &(v, bits) in batch {
                        x[v as usize] = f64::from_bits(bits);
                    }
                }
            }
            AlgoState::Bfs { levels, frontier } => {
                for batch in incoming {
                    for &(v, bits) in batch {
                        levels[v as usize] = bits as u32;
                        frontier.push(v);
                    }
                }
                frontier.sort_unstable();
                frontier.dedup();
            }
            AlgoState::Cc { labels, frontier } => {
                for batch in incoming {
                    for &(v, bits) in batch {
                        labels[v as usize] = bits as u32;
                        frontier.push(v);
                    }
                }
                frontier.sort_unstable();
                frontier.dedup();
            }
        }
    }

    /// Final values of the vertices this machine masters, ascending —
    /// the worker's contribution to the cluster's value vector.
    pub fn values(&self, plan: &ClusterPlan) -> Vec<ValuePair> {
        plan.owned
            .iter()
            .map(|&v| {
                let bits = match &self.state {
                    AlgoState::Pr { x } => x[v as usize].to_bits(),
                    AlgoState::Bfs { levels, .. } => u64::from(levels[v as usize]),
                    AlgoState::Cc { labels, .. } => u64::from(labels[v as usize]),
                };
                (v, bits)
            })
            .collect()
    }

    /// The algorithm this state is running.
    pub fn algo(&self) -> ClusterAlgo {
        self.algo
    }
}

/// Appends `(v, bits)` to the batch of every replica machine except
/// `me` — plus nothing for `me` itself, whose state was just updated in
/// place.
fn push_to_replicas(out: &mut Batches, mask: u64, me: u32, v: u32, bits: u64) {
    let mut m = mask;
    while m != 0 {
        let q = m.trailing_zeros();
        if q != me {
            out[q as usize].push((v, bits));
        }
        m &= m - 1;
    }
}

/// Set bit indices of an [`AtomicBitset`], ascending.
fn bits_ascending(bits: &AtomicBitset) -> Vec<u32> {
    (0..bits.len() as u32)
        .filter(|&v| bits.get(v as usize))
        .collect()
}

/// Everything a finished cluster run reports.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// The algorithm that ran.
    pub algo: ClusterAlgo,
    /// Final per-vertex values as raw bits, indexed by vertex id.
    pub values: Vec<u64>,
    /// Order-sensitive FNV-1a digest of `values` — the conformance
    /// artifact compared across runners and worker counts.
    pub digest: u64,
    /// Supersteps executed.
    pub supersteps: u32,
    /// Value pairs shipped between distinct machines (gather + scatter;
    /// loopback batches don't count).
    pub values_sent: u64,
}

/// Runs `algo` over prebuilt per-machine plans entirely in-process,
/// stepping every worker in lockstep — the single-process reference the
/// socket cluster must match bit for bit.
pub fn run_local_on(plans: &[ClusterPlan], algo: ClusterAlgo) -> RunOutput {
    let w = plans.len();
    assert!(w > 0, "at least one plan");
    let n = plans[0].n;
    let mut states: Vec<WorkerState> = plans.iter().map(|p| WorkerState::new(p, algo)).collect();
    let mut step = 0u32;
    let mut values_sent = 0u64;
    loop {
        let t0 = std::time::Instant::now();
        let gathers: Vec<Batches> = states
            .iter_mut()
            .zip(plans)
            .map(|(s, p)| s.compute_gather(p))
            .collect();
        let mut total_active = 0u64;
        let mut scatters: Vec<Batches> = Vec::with_capacity(w);
        for (q, (state, plan)) in states.iter_mut().zip(plans).enumerate() {
            let incoming: Vec<Vec<ValuePair>> = (0..w).map(|p| gathers[p][q].clone()).collect();
            values_sent += count_remote(&gathers, q);
            let (sc, active) = state.apply_gather(plan, step, &incoming);
            total_active += active;
            scatters.push(sc);
        }
        for (q, (state, plan)) in states.iter_mut().zip(plans).enumerate() {
            let incoming: Vec<Vec<ValuePair>> = (0..w).map(|p| scatters[p][q].clone()).collect();
            values_sent += count_remote(&scatters, q);
            state.apply_scatter(plan, &incoming);
        }
        let nanos = t0.elapsed().as_nanos() as u64;
        for plan in plans {
            plan.metrics.record_superstep(0, 0, nanos);
        }
        step += 1;
        if !decide_continue(algo, step, total_active) {
            break;
        }
    }
    let mut values = vec![0u64; n];
    for (state, plan) in states.iter().zip(plans) {
        for (v, bits) in state.values(plan) {
            values[v as usize] = bits;
        }
    }
    RunOutput {
        algo,
        digest: digest_u64s(values.iter().copied()),
        values,
        supersteps: step,
        values_sent,
    }
}

/// Pairs addressed to machine `q` from machines other than `q`.
fn count_remote(all: &[Batches], q: usize) -> u64 {
    all.iter()
        .enumerate()
        .filter(|&(p, _)| p != q)
        .map(|(_, b)| b[q].len() as u64)
        .sum()
}

/// Partitions `g` with `partitioner` for `machines` machines and runs
/// `algo` in-process over the resulting shards.
pub fn run_local(
    g: &Graph,
    partitioner: Partitioner,
    machines: usize,
    algo: ClusterAlgo,
) -> Result<RunOutput, DistributedError> {
    let placement = partitioner.place(g, machines)?;
    let plans: Vec<ClusterPlan> = (0..machines)
        .map(|m| ClusterPlan::build(g, &placement, m as u32))
        .collect();
    Ok(run_local_on(&plans, algo))
}

/// One worker process's whole life: dial the coordinator, learn the
/// roster, rebuild the shard deterministically, mesh up with the peers,
/// and execute supersteps until [`Msg::Shutdown`]. The graph and
/// partitioner are *local* inputs — every worker derives the identical
/// placement from them, so only vertex values ever cross the network.
pub fn run_worker(coordinator: SocketAddr, g: &Graph, partitioner: Partitioner) -> io::Result<()> {
    let mesh_listener = TcpListener::bind((loopback_ip(coordinator), 0))?;
    let mesh_port = mesh_listener.local_addr()?.port();
    let mut control = FramedConn::new(TcpStream::connect(coordinator)?)?;
    control.send(&Msg::Join { mesh_port })?;
    let (me, roster) = match control.recv()? {
        Msg::Start { worker_id, roster } => (worker_id, roster),
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected start, got {other:?}"),
            ))
        }
    };
    let placement = partitioner
        .place(g, roster.len())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let plan = ClusterPlan::build(g, &placement, me);
    let mut mesh = Mesh::connect(me, &mesh_listener, &roster)?;
    loop {
        match control.recv()? {
            Msg::Begin { algo } => run_worker_algo(&plan, &mut mesh, &mut control, algo)?,
            Msg::Shutdown => return Ok(()),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected begin/shutdown, got {other:?}"),
                ))
            }
        }
    }
}

fn loopback_ip(addr: SocketAddr) -> std::net::IpAddr {
    if addr.ip().is_loopback() {
        addr.ip()
    } else {
        match addr {
            SocketAddr::V4(_) => std::net::Ipv4Addr::UNSPECIFIED.into(),
            SocketAddr::V6(_) => std::net::Ipv6Addr::UNSPECIFIED.into(),
        }
    }
}

/// One algorithm's superstep loop on the socket runtime. Mirrors
/// [`run_local_on`] exactly — the only difference is that batches ride
/// [`Msg::Gather`]/[`Msg::Scatter`] frames instead of a `Vec` swap.
fn run_worker_algo(
    plan: &ClusterPlan,
    mesh: &mut Mesh,
    control: &mut FramedConn,
    algo: ClusterAlgo,
) -> io::Result<()> {
    let me = plan.me;
    let w = plan.machines;
    let mut state = WorkerState::new(plan, algo);
    let mut step = 0u32;
    loop {
        let t0 = std::time::Instant::now();
        let mut sent = 0u64;
        let mut received = 0u64;
        let gathers = state.compute_gather(plan);
        let mut incoming: Vec<Vec<ValuePair>> = vec![Vec::new(); w];
        for q in 0..w as u32 {
            if q == me {
                continue;
            }
            sent += gathers[q as usize].len() as u64;
            mesh.send_to(
                q,
                &Msg::Gather {
                    step,
                    pairs: gathers[q as usize].clone(),
                },
            )?;
        }
        incoming[me as usize] = gathers[me as usize].clone();
        for (peer, pairs) in mesh.recv_phase(Phase::Gather, step)? {
            received += pairs.len() as u64;
            incoming[peer as usize] = pairs;
        }
        let (scatters, active) = state.apply_gather(plan, step, &incoming);
        let mut incoming: Vec<Vec<ValuePair>> = vec![Vec::new(); w];
        for q in 0..w as u32 {
            if q == me {
                continue;
            }
            sent += scatters[q as usize].len() as u64;
            mesh.send_to(
                q,
                &Msg::Scatter {
                    step,
                    pairs: scatters[q as usize].clone(),
                },
            )?;
        }
        incoming[me as usize] = scatters[me as usize].clone();
        for (peer, pairs) in mesh.recv_phase(Phase::Scatter, step)? {
            received += pairs.len() as u64;
            incoming[peer as usize] = pairs;
        }
        state.apply_scatter(plan, &incoming);
        plan.metrics
            .record_superstep(sent, received, t0.elapsed().as_nanos() as u64);
        control.send(&Msg::StepDone { step, active, sent })?;
        let go = match control.recv()? {
            Msg::Continue { step: s, go } if s == step => go,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected continue {step}, got {other:?}"),
                ))
            }
        };
        step += 1;
        if !go {
            break;
        }
    }
    control.send(&Msg::Values {
        pairs: state.values(plan),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::Dataset;

    fn ring_with_tail() -> Graph {
        // A 6-cycle, a tail hanging off it, and an isolated vertex —
        // exercises masters, mirrors, and the mask==0 ownership
        // fallback.
        let edges = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 0),
            (2, 6),
            (6, 7),
        ];
        Graph::from_edges(9, &edges, true)
    }

    #[test]
    fn masters_partition_the_vertex_set() {
        let g = Dataset::TwitterLike.build(0.05);
        let placement = GreedyVertexCut.place(&g, 5).unwrap();
        let plans: Vec<ClusterPlan> = (0..5)
            .map(|m| ClusterPlan::build(&g, &placement, m))
            .collect();
        let mut owners = vec![0usize; g.num_vertices()];
        for p in &plans {
            for &v in &p.owned {
                owners[v as usize] += 1;
            }
        }
        assert!(
            owners.iter().all(|&c| c == 1),
            "ownership total and disjoint"
        );
        let shard_arcs: usize = plans.iter().map(|p| p.shard_edges()).sum();
        assert_eq!(shard_arcs, g.num_edges());
    }

    #[test]
    fn local_bfs_and_cc_match_engine_fixpoints() {
        let g = ring_with_tail();
        let n = g.num_vertices();
        for partitioner in Partitioner::ALL {
            for w in [1usize, 2, 3] {
                let bfs = run_local(&g, partitioner, w, ClusterAlgo::Bfs { source: 0 }).unwrap();
                // Hand-checked levels on the ring+tail.
                let want = [0u64, 1, 2, 3, 4, 5, 3, 4, u64::from(UNVISITED)];
                assert_eq!(bfs.values, want, "{partitioner:?} w={w}");
                let cc = run_local(&g, partitioner, w, ClusterAlgo::Cc).unwrap();
                // Min label over directed ancestors ∪ self: the cycle
                // all collapses to 0; the tail inherits 0; vertex 8 is
                // alone.
                let want = [0u64, 0, 0, 0, 0, 0, 0, 0, 8];
                assert_eq!(cc.values, want, "{partitioner:?} w={w}");
                assert_eq!(n, cc.values.len());
            }
        }
    }

    #[test]
    fn local_pagerank_mass_is_conserved_modulo_dangling() {
        let g = Dataset::TwitterLike.build(0.03);
        let out = run_local(
            &g,
            Partitioner::VertexCut,
            3,
            ClusterAlgo::PageRank { iters: 5 },
        )
        .unwrap();
        assert_eq!(out.supersteps, 5);
        let total: f64 = out.values.iter().map(|&b| f64::from_bits(b)).sum();
        // Dangling vertices leak mass, so total <= 1 but stays well
        // above the teleport floor.
        assert!(total > 0.14 && total <= 1.0 + 1e-9, "total {total}");
    }

    #[test]
    fn local_runs_are_deterministic_per_worker_count() {
        let g = Dataset::OrkutLike.build(0.04);
        for algo in [
            ClusterAlgo::PageRank { iters: 4 },
            ClusterAlgo::Bfs { source: 1 },
            ClusterAlgo::Cc,
        ] {
            let a = run_local(&g, Partitioner::VertexCut, 3, algo).unwrap();
            let b = run_local(&g, Partitioner::VertexCut, 3, algo).unwrap();
            assert_eq!(a.digest, b.digest, "{algo:?}");
        }
    }

    #[test]
    fn zero_machines_is_a_typed_error() {
        let g = ring_with_tail();
        assert_eq!(
            run_local(&g, Partitioner::Hash, 0, ClusterAlgo::Cc).unwrap_err(),
            DistributedError::MachineCount { machines: 0 }
        );
    }

    #[test]
    fn partitioner_names_round_trip() {
        for p in Partitioner::ALL {
            assert_eq!(Partitioner::parse(p.name()), Some(p));
        }
        assert_eq!(Partitioner::parse("metis"), None);
    }
}
