//! Typed configuration errors for the distributed layer.
//!
//! Replica sets are `u64` bitmasks, so every edge-placement strategy has
//! a hard 64-machine ceiling — and a zero-machine cluster has no valid
//! placement at all. Both used to be `assert!`s (or worse, reachable
//! divide-by-zero paths in the BSP model); they are ordinary input
//! validation, so they surface as values.

/// A malformed cluster/placement configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistributedError {
    /// The machine count is outside `1..=64` (replica sets are `u64`
    /// bitmasks, so more than 64 machines cannot be represented; zero
    /// machines cannot place anything).
    MachineCount {
        /// The rejected machine count.
        machines: usize,
    },
    /// A [`crate::ClusterConfig`] with zero workers: the BSP model's
    /// per-worker maxima and averages are undefined over an empty
    /// cluster.
    ZeroWorkers,
}

impl std::fmt::Display for DistributedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistributedError::MachineCount { machines } => write!(
                f,
                "machine count must be in 1..=64 (replica sets are u64 bitmasks), got {machines}"
            ),
            DistributedError::ZeroWorkers => {
                write!(f, "cluster config needs at least one worker")
            }
        }
    }
}

impl std::error::Error for DistributedError {}

/// Validates an edge-placement machine count against the `u64` replica
/// bitmask representation.
pub(crate) fn check_machines(machines: usize) -> Result<(), DistributedError> {
    if (1..=64).contains(&machines) {
        Ok(())
    } else {
        Err(DistributedError::MachineCount { machines })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_bound() {
        let e = DistributedError::MachineCount { machines: 65 };
        assert!(e.to_string().contains("1..=64"));
        assert!(e.to_string().contains("65"));
        assert!(DistributedError::ZeroWorkers.to_string().contains("worker"));
    }

    #[test]
    fn check_machines_bounds() {
        assert!(check_machines(0).is_err());
        assert!(check_machines(1).is_ok());
        assert!(check_machines(64).is_ok());
        assert!(check_machines(65).is_err());
    }
}
