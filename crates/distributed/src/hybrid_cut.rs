//! Hybrid-cut edge placement — PowerLyra (Chen et al., EuroSys 2015).
//! §VI: "PowerLyra differentiates 'high-degree' vertices from 'low-degree'
//! vertices and applies different partitioning methods. It aims to
//! minimize the replication factor."
//!
//! The placement rule, for an arc `(u, v)` keyed by the *destination's*
//! in-degree:
//!
//! * `in_degree(v) <= threshold` (low-degree): the arc goes to
//!   `hash(v)` — all in-edges of a low-degree vertex are grouped on its
//!   home machine (edge-cut style, one replica for `v`);
//! * `in_degree(v) > threshold` (high-degree): the arc goes to
//!   `hash(u)` — the hub's in-edges follow their *sources* (vertex-cut
//!   style), so the many low-degree sources stay home and only the hub is
//!   replicated.
//!
//! On power-law graphs this caps replication at the few hubs, which is
//! precisely the skew VEBO also exploits (its phase 1 places hubs first).

use crate::error::{check_machines, DistributedError};
use crate::vertex_cut::EdgePlacement;
use vebo_graph::{mix64, Graph};

/// The PowerLyra hybrid-cut placement.
#[derive(Clone, Copy, Debug)]
pub struct HybridCut {
    /// In-degree above which a destination counts as high-degree
    /// (PowerLyra's θ, default 100).
    pub threshold: usize,
}

impl Default for HybridCut {
    fn default() -> HybridCut {
        HybridCut { threshold: 100 }
    }
}

impl HybridCut {
    /// Hybrid-cut with an explicit degree threshold.
    pub fn new(threshold: usize) -> HybridCut {
        HybridCut { threshold }
    }

    /// Places every arc on one of `machines` machines. Rejects machine
    /// counts outside `1..=64` (replica sets are `u64` bitmasks).
    pub fn place(&self, g: &Graph, machines: usize) -> Result<EdgePlacement, DistributedError> {
        check_machines(machines)?;
        let n = g.num_vertices();
        let mut edge_machine = vec![0u32; g.num_edges()];
        let mut replicas = vec![0u64; n];
        let mut loads = vec![0u64; machines];
        let mut idx = 0usize;
        for u in g.vertices() {
            for &v in g.out_neighbors(u) {
                let key = if g.in_degree(v) <= self.threshold {
                    v
                } else {
                    u
                };
                let m = (mix64(key as u64) % machines as u64) as u32;
                edge_machine[idx] = m;
                replicas[u as usize] |= 1u64 << m;
                replicas[v as usize] |= 1u64 << m;
                loads[m as usize] += 1;
                idx += 1;
            }
        }
        Ok(EdgePlacement::from_parts(edge_machine, replicas, loads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::{Dataset, Graph, VertexId};

    #[test]
    fn loads_sum_to_edge_count() {
        let g = Dataset::TwitterLike.build(0.05);
        let p = HybridCut::default().place(&g, 16).unwrap();
        assert_eq!(p.loads().iter().sum::<u64>(), g.num_edges() as u64);
    }

    #[test]
    fn low_degree_vertices_keep_one_replica_of_in_edges() {
        // With an infinite threshold every arc lands on hash(dst): each
        // destination's in-edges are on exactly one machine.
        let g = Dataset::LiveJournalLike.build(0.05);
        let p = HybridCut::new(usize::MAX).place(&g, 8).unwrap();
        for v in g.vertices() {
            if g.in_degree(v) > 0 && g.out_degree(v) == 0 {
                assert_eq!(p.replicas_of(v).count_ones(), 1, "vertex {v}");
            }
        }
    }

    #[test]
    fn hub_in_edges_follow_sources_above_threshold() {
        // Star: hub 0 with 40 in-edges, threshold 10 → arcs go to
        // hash(source); the sources stay single-replica.
        let edges: Vec<(VertexId, VertexId)> = (1..41).map(|u| (u, 0)).collect();
        let g = Graph::from_edges(41, &edges, true);
        let p = HybridCut::new(10).place(&g, 8).unwrap();
        for u in 1..41u32 {
            assert_eq!(p.replicas_of(u).count_ones(), 1, "source {u}");
        }
        // The hub is replicated on several machines.
        assert!(p.replicas_of(0).count_ones() > 1);
    }

    #[test]
    fn differentiation_beats_pure_destination_hash_on_skewed_graph() {
        // PowerLyra's claim: on power-law graphs, treating hubs
        // differently lowers the replication factor versus the uniform
        // edge-cut-style placement (θ = ∞). The threshold is set to the
        // average in-degree so the scaled-down analogue actually has
        // vertices on both sides of it.
        let g = Dataset::TwitterLike.build(0.2);
        let theta = (g.num_edges() / g.num_vertices()).max(1);
        let hybrid = HybridCut::new(theta)
            .place(&g, 16)
            .unwrap()
            .replication_factor();
        let uniform = HybridCut::new(usize::MAX)
            .place(&g, 16)
            .unwrap()
            .replication_factor();
        assert!(hybrid < uniform, "hybrid {hybrid} uniform {uniform}");
    }

    #[test]
    fn deterministic() {
        let g = Dataset::OrkutLike.build(0.05);
        assert_eq!(
            HybridCut::default().place(&g, 8),
            HybridCut::default().place(&g, 8)
        );
    }

    #[test]
    fn bad_machine_counts_are_typed_errors() {
        let g = Graph::from_edges(2, &[(0, 1)], true);
        for machines in [0, 65] {
            assert_eq!(
                HybridCut::default().place(&g, machines),
                Err(DistributedError::MachineCount { machines })
            );
        }
    }

    #[test]
    fn single_machine() {
        let g = Dataset::YahooLike.build(0.03);
        let p = HybridCut::default().place(&g, 1).unwrap();
        assert!((p.replication_factor() - 1.0).abs() < 1e-12);
    }
}
