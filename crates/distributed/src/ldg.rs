//! Linear Deterministic Greedy (LDG) streaming partitioning — Stanton &
//! Kliot, KDD 2012, the §VI-cited "heuristic streaming partitioner for
//! large distributed graphs".
//!
//! Vertices arrive one at a time; each is placed on the partition holding
//! the most of its already-placed neighbours, damped by a fullness penalty
//! `1 - |P_i| / C` so that partitions fill evenly (`C` is the per-partition
//! capacity). One pass, `O(m)` — the same complexity class as VEBO, but
//! optimizing cut rather than balance, which is exactly the trade-off the
//! §VII study quantifies.

use vebo_graph::{Graph, VertexId};
use vebo_partition::VertexAssignment;

/// The LDG streaming partitioner.
#[derive(Clone, Copy, Debug)]
pub struct Ldg {
    /// Capacity slack: per-partition capacity is
    /// `ceil(n / p) * (1 + slack)`. The original paper uses a hard
    /// `n / p`; a small slack avoids pathological last-vertex rejections.
    pub slack: f64,
}

impl Default for Ldg {
    fn default() -> Ldg {
        Ldg { slack: 0.04 }
    }
}

impl Ldg {
    /// LDG with explicit capacity slack.
    pub fn new(slack: f64) -> Ldg {
        assert!(slack >= 0.0, "slack must be non-negative");
        Ldg { slack }
    }

    /// Streams vertices in id order.
    pub fn partition(&self, g: &Graph, p: usize) -> VertexAssignment {
        let order: Vec<VertexId> = g.vertices().collect();
        self.partition_with_order(g, p, &order)
    }

    /// Streams vertices in the given order — the §VII experiments stream
    /// in VEBO order to test whether degree-descending arrival helps the
    /// greedy choices (the paper's PowerLyra conjecture).
    pub fn partition_with_order(
        &self,
        g: &Graph,
        p: usize,
        order: &[VertexId],
    ) -> VertexAssignment {
        assert!(p >= 1);
        assert_eq!(order.len(), g.num_vertices());
        let n = g.num_vertices();
        let capacity = ((n as f64 / p as f64).ceil() * (1.0 + self.slack))
            .ceil()
            .max(1.0);
        let mut part = vec![u32::MAX; n];
        let mut sizes = vec![0usize; p];
        // Stamped per-partition neighbour counts, reused across vertices.
        let mut score = vec![0u64; p];
        let mut stamp = vec![VertexId::MAX; p];
        for &v in order {
            let mut count = |u: VertexId| {
                let q = part[u as usize];
                if q != u32::MAX {
                    if stamp[q as usize] != v {
                        stamp[q as usize] = v;
                        score[q as usize] = 0;
                    }
                    score[q as usize] += 1;
                }
            };
            for &u in g.out_neighbors(v) {
                count(u);
            }
            if g.is_directed() {
                for &u in g.in_neighbors(v) {
                    count(u);
                }
            }
            // argmax of neighbours * (1 - size/C); ties to the smaller,
            // then lower-indexed partition. Full partitions are skipped.
            let mut best: Option<(usize, f64)> = None;
            for q in 0..p {
                if sizes[q] as f64 >= capacity {
                    continue;
                }
                let nbrs = if stamp[q] == v { score[q] as f64 } else { 0.0 };
                let s = nbrs * (1.0 - sizes[q] as f64 / capacity);
                let better = match best {
                    None => true,
                    Some((bq, bs)) => s > bs || (s == bs && (sizes[q], q) < (sizes[bq], bq)),
                };
                if better {
                    best = Some((q, s));
                }
            }
            // Every partition at capacity (possible with zero slack and
            // adversarial rounding): fall back to the least loaded.
            let q = best
                .map(|(q, _)| q)
                .unwrap_or_else(|| (0..p).min_by_key(|&q| sizes[q]).unwrap());
            part[v as usize] = q as u32;
            sizes[q] += 1;
        }
        VertexAssignment::new(part, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::{Dataset, Graph};

    #[test]
    fn covers_all_vertices() {
        let g = Dataset::LiveJournalLike.build(0.05);
        let a = Ldg::default().partition(&g, 16);
        assert_eq!(a.vertex_counts().iter().sum::<usize>(), g.num_vertices());
    }

    #[test]
    fn respects_capacity() {
        let g = Dataset::TwitterLike.build(0.05);
        let p = 8;
        let ldg = Ldg::new(0.04);
        let a = ldg.partition(&g, p);
        let cap = ((g.num_vertices() as f64 / p as f64).ceil() * 1.04).ceil();
        for &c in &a.vertex_counts() {
            assert!(
                (c as f64) <= cap,
                "partition size {c} exceeds capacity {cap}"
            );
        }
    }

    #[test]
    fn beats_hash_on_cut() {
        // On a mesh, following placed neighbours must beat random
        // placement by a wide margin.
        let g = Dataset::UsaRoadLike.build(0.1);
        let p = 8;
        let a = Ldg::default().partition(&g, p);
        let h = crate::hash::hash_partition(g.num_vertices(), p);
        let ca = a.quality(&g).cut_edges;
        let ch = h.quality(&g).cut_edges;
        assert!(ca * 2 < ch, "LDG cut {ca}, hash cut {ch}");
    }

    #[test]
    fn keeps_triangle_together() {
        // A triangle plus isolated vertices: the triangle should land in
        // one partition when capacity allows.
        let g = Graph::from_edges(9, &[(0, 1), (1, 2), (2, 0)], false);
        let a = Ldg::new(0.5).partition(&g, 3);
        assert_eq!(a.partition_of(0), a.partition_of(1));
        assert_eq!(a.partition_of(1), a.partition_of(2));
    }

    #[test]
    fn custom_order_changes_stream() {
        let g = Dataset::OrkutLike.build(0.05);
        let fwd: Vec<VertexId> = g.vertices().collect();
        let rev: Vec<VertexId> = (0..g.num_vertices() as VertexId).rev().collect();
        let a = Ldg::default().partition_with_order(&g, 8, &fwd);
        let b = Ldg::default().partition_with_order(&g, 8, &rev);
        // Different streams give different (but both valid) partitions.
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn deterministic() {
        let g = Dataset::YahooLike.build(0.05);
        let a = Ldg::default().partition(&g, 5);
        let b = Ldg::default().partition(&g, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn single_partition() {
        let g = Dataset::YahooLike.build(0.03);
        let a = Ldg::default().partition(&g, 1);
        assert!(a.as_slice().iter().all(|&q| q == 0));
    }

    #[test]
    #[should_panic(expected = "slack")]
    fn negative_slack_rejected() {
        Ldg::new(-0.1);
    }
}
