//! Hash partitioning — the default placement of Pregel-style systems and
//! the baseline every streaming partitioner in §VI measures itself
//! against. Deterministic (SplitMix64 on the vertex id), embarrassingly
//! balanced in vertices, oblivious to edges: it cuts almost the entire
//! edge set of any graph with more than a few partitions.

use vebo_graph::{mix64, VertexId};
use vebo_partition::VertexAssignment;

/// Assigns vertex `v` to partition `mix64(v) % p`.
pub fn hash_partition(num_vertices: usize, num_partitions: usize) -> VertexAssignment {
    assert!(num_partitions >= 1);
    let part = (0..num_vertices as VertexId)
        .map(|v| (mix64(v as u64) % num_partitions as u64) as u32)
        .collect();
    VertexAssignment::new(part, num_partitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vebo_graph::Dataset;

    #[test]
    fn is_deterministic() {
        assert_eq!(hash_partition(1000, 8), hash_partition(1000, 8));
    }

    #[test]
    fn vertex_counts_are_near_uniform() {
        let a = hash_partition(100_000, 16);
        let counts = a.vertex_counts();
        let avg = 100_000.0 / 16.0;
        for &c in &counts {
            assert!(
                (c as f64 - avg).abs() < avg * 0.05,
                "count {c} vs avg {avg}"
            );
        }
    }

    #[test]
    fn cuts_nearly_everything_on_power_law() {
        // With p partitions a random placement cuts ~ (1 - 1/p) of edges.
        let g = Dataset::LiveJournalLike.build(0.05);
        let a = hash_partition(g.num_vertices(), 16);
        let q = a.quality(&g);
        assert!(q.cut_fraction() > 0.85, "cut {}", q.cut_fraction());
    }

    #[test]
    fn single_partition_cuts_nothing() {
        let g = Dataset::YahooLike.build(0.05);
        let a = hash_partition(g.num_vertices(), 1);
        assert_eq!(a.quality(&g).cut_edges, 0);
    }

    #[test]
    fn empty_vertex_set() {
        let a = hash_partition(0, 4);
        assert_eq!(a.num_vertices(), 0);
        assert_eq!(a.num_partitions(), 4);
    }
}
