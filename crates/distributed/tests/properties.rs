//! Property-based tests for the distributed partitioners and the BSP
//! simulator: conservation laws and capacity bounds that must hold on
//! arbitrary graphs.

use proptest::prelude::*;
use vebo_distributed::bsp::{superstep, ClusterConfig};
use vebo_distributed::vertex_cut::random_edge_placement;
use vebo_distributed::{hash_partition, DistributedError, Fennel, GreedyVertexCut, HybridCut, Ldg};
use vebo_graph::{mix64, Graph, VertexId};
use vebo_partition::{Multilevel, VertexAssignment};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..80, 0usize..400, any::<u64>(), any::<bool>()).prop_map(|(n, m, seed, directed)| {
        let mut x = seed;
        let mut next = || {
            x = mix64(x);
            x
        };
        let edges: Vec<(VertexId, VertexId)> = (0..m)
            .map(|_| {
                (
                    (next() % n as u64) as VertexId,
                    (next() % n as u64) as VertexId,
                )
            })
            .collect();
        Graph::from_edges(n, &edges, directed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every vertex partitioner covers all vertices with valid partition
    /// ids, and the streaming ones respect their capacity bounds.
    #[test]
    fn partitioners_cover_and_respect_capacity(g in arb_graph(), p in 1usize..12) {
        let n = g.num_vertices();
        let ldg = Ldg::default();
        let fennel = Fennel::default();
        let assignments: Vec<(&str, VertexAssignment)> = vec![
            ("hash", hash_partition(n, p)),
            ("ldg", ldg.partition(&g, p)),
            ("fennel", fennel.partition(&g, p)),
            ("multilevel", Multilevel::new().partition(&g, p)),
        ];
        for (name, a) in &assignments {
            prop_assert_eq!(a.num_vertices(), n, "{} vertex coverage", name);
            prop_assert_eq!(
                a.vertex_counts().iter().sum::<usize>(), n,
                "{} counts", name
            );
        }
        let ldg_cap = ((n as f64 / p as f64).ceil() * (1.0 + ldg.slack)).ceil();
        for &c in &assignments[1].1.vertex_counts() {
            prop_assert!(c as f64 <= ldg_cap, "LDG capacity");
        }
        let fennel_cap = (fennel.nu * n as f64 / p as f64).ceil().max(1.0);
        for &c in &assignments[2].1.vertex_counts() {
            prop_assert!(c as f64 <= fennel_cap, "Fennel capacity");
        }
    }

    /// Quality metrics are invariant under the contiguous relabeling (the
    /// relabeled graph with contiguous bounds is isomorphic).
    #[test]
    fn quality_invariant_under_relabeling(g in arb_graph(), p in 1usize..8, seed in any::<u64>()) {
        let n = g.num_vertices();
        let part: Vec<u32> = (0..n).map(|v| (mix64(seed ^ v as u64) % p as u64) as u32).collect();
        let a = VertexAssignment::new(part, p);
        let q = a.quality(&g);
        let (perm, bounds) = a.relabeling();
        let h = perm.apply_graph(&g);
        let qb = VertexAssignment::from_bounds(&bounds).quality(&h);
        prop_assert_eq!(q.cut_edges, qb.cut_edges);
        prop_assert_eq!(q.comm_volume, qb.comm_volume);
        prop_assert!((q.replication_factor - qb.replication_factor).abs() < 1e-12);
        prop_assert_eq!(q.vertex_spread, qb.vertex_spread);
    }

    /// BSP superstep conservation: total compute equals the work model
    /// applied to the active set; sends equal receives; messages equal
    /// the assignment's comm volume when everything is active.
    #[test]
    fn superstep_conservation(g in arb_graph(), p in 1usize..10, seed in any::<u64>()) {
        let n = g.num_vertices();
        let part: Vec<u32> = (0..n).map(|v| (mix64(seed ^ v as u64) % p as u64) as u32).collect();
        let a = VertexAssignment::new(part, p);
        let cfg = ClusterConfig { workers: p, ..Default::default() };
        let active: Vec<VertexId> = g.vertices().collect();
        let step = superstep(&g, &a, &cfg, &active).unwrap();
        let total: f64 = step.compute.iter().sum();
        let expected = g.num_edges() as f64 * cfg.per_edge_cost
            + n as f64 * cfg.per_vertex_cost;
        prop_assert!((total - expected).abs() < 1e-6);
        prop_assert_eq!(step.sent.iter().sum::<u64>(), step.received.iter().sum::<u64>());
        prop_assert_eq!(step.messages(), a.quality(&g).comm_volume);
    }

    /// Edge placements, for every strategy: each arc lands on exactly one
    /// in-range machine, per-machine loads are exactly the recomputed arc
    /// counts (so they sum to `m`), and replica masks cover exactly the
    /// machines holding an incident arc — no phantom replicas, no missing
    /// ones.
    #[test]
    fn edge_placements_are_consistent(g in arb_graph(), machines in 1usize..16) {
        let placements = [
            ("greedy", GreedyVertexCut.place(&g, machines).unwrap()),
            ("random", random_edge_placement(&g, machines).unwrap()),
            ("hybrid", HybridCut::default().place(&g, machines).unwrap()),
            ("hybrid-theta0", HybridCut::new(0).place(&g, machines).unwrap()),
        ];
        for (name, placement) in &placements {
            prop_assert_eq!(placement.num_machines(), machines, "{}", name);
            // Recompute loads and replica masks from the per-arc machine
            // assignment and compare exactly.
            let mut loads = vec![0u64; machines];
            let mut expect = vec![0u64; g.num_vertices()];
            let mut idx = 0usize;
            for u in g.vertices() {
                for &v in g.out_neighbors(u) {
                    let m = placement.machine_of_arc(idx);
                    prop_assert!((m as usize) < machines, "{}: arc {} machine {}", name, idx, m);
                    loads[m as usize] += 1;
                    expect[u as usize] |= 1 << m;
                    expect[v as usize] |= 1 << m;
                    idx += 1;
                }
            }
            prop_assert_eq!(idx, g.num_edges(), "{}: every arc placed exactly once", name);
            prop_assert_eq!(placement.loads(), &loads[..], "{}: loads", name);
            prop_assert_eq!(loads.iter().sum::<u64>(), g.num_edges() as u64, "{}", name);
            for v in g.vertices() {
                prop_assert_eq!(
                    placement.replicas_of(v), expect[v as usize],
                    "{}: vertex {}", name, v
                );
            }
            let rf = placement.replication_factor();
            prop_assert!((1.0..=machines as f64).contains(&rf) || g.num_edges() == 0);
        }
    }

    /// Every strategy is deterministic — two placements of the same graph
    /// are identical, including greedy under an explicit source order.
    #[test]
    fn edge_placements_are_deterministic(g in arb_graph(), machines in 1usize..16) {
        prop_assert_eq!(
            GreedyVertexCut.place(&g, machines).unwrap(),
            GreedyVertexCut.place(&g, machines).unwrap()
        );
        prop_assert_eq!(
            random_edge_placement(&g, machines).unwrap(),
            random_edge_placement(&g, machines).unwrap()
        );
        prop_assert_eq!(
            HybridCut::default().place(&g, machines).unwrap(),
            HybridCut::default().place(&g, machines).unwrap()
        );
        let rev: Vec<VertexId> = (0..g.num_vertices() as VertexId).rev().collect();
        prop_assert_eq!(
            GreedyVertexCut.place_with_source_order(&g, machines, &rev).unwrap(),
            GreedyVertexCut.place_with_source_order(&g, machines, &rev).unwrap()
        );
    }

    /// Out-of-range machine counts are typed errors for every strategy,
    /// never panics.
    #[test]
    fn edge_placement_machine_bounds(g in arb_graph(), over in 65usize..200) {
        for machines in [0, over] {
            let want = DistributedError::MachineCount { machines };
            prop_assert_eq!(GreedyVertexCut.place(&g, machines).unwrap_err(), want);
            prop_assert_eq!(random_edge_placement(&g, machines).unwrap_err(), want);
            prop_assert_eq!(HybridCut::default().place(&g, machines).unwrap_err(), want);
        }
    }

    /// Multilevel respects its vertex-balance tolerance on unit weights.
    #[test]
    fn multilevel_balance_tolerance(g in arb_graph(), p in 2usize..8) {
        let a = Multilevel::new().partition(&g, p);
        let max = *a.vertex_counts().iter().max().unwrap();
        let cap = (g.num_vertices() as f64 / p as f64) * 1.05 + 2.0;
        prop_assert!(max as f64 <= cap.ceil() + 1.0, "max {} cap {}", max, cap);
    }
}
