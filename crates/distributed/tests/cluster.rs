//! Loopback cluster conformance: the socket runtime (coordinator + N
//! worker threads over real TCP connections on 127.0.0.1) must produce
//! value vectors bit-identical to [`vebo_distributed::run_local`], for
//! every partitioner and several worker counts — the multi-process
//! analogue of the engine's sequential/parallel/sharded conformance
//! suites. BFS and CC are integer fixpoints, so they are additionally
//! worker-count-invariant; PageRank's float sums are grouped per shard,
//! so its digest is compared at fixed worker count only.

#![cfg(target_os = "linux")]

use std::net::TcpListener;
use std::thread;

use vebo_distributed::sync::Coordinator;
use vebo_distributed::{run_local, run_worker, ClusterAlgo, Partitioner, RunOutput};
use vebo_graph::{Dataset, Graph};

/// Runs `algos` on a real loopback cluster of `workers` processes-worth
/// of worker threads (real sockets, real frames — only the process
/// boundary is elided; the `vebo-cluster` bin covers that).
fn run_cluster(
    g: &Graph,
    partitioner: Partitioner,
    workers: usize,
    algos: &[ClusterAlgo],
) -> Vec<RunOutput> {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let g = g.clone();
            thread::spawn(move || run_worker(addr, &g, partitioner).unwrap())
        })
        .collect();
    let mut coordinator = Coordinator::accept(&listener, workers).unwrap();
    let outputs = coordinator.run(g.num_vertices(), algos).unwrap();
    for h in handles {
        h.join().unwrap();
    }
    outputs
}

fn scaled_twitter() -> Graph {
    Dataset::TwitterLike.build(0.04)
}

const ALGOS: [ClusterAlgo; 3] = [
    ClusterAlgo::PageRank { iters: 5 },
    ClusterAlgo::Bfs { source: 3 },
    ClusterAlgo::Cc,
];

#[test]
fn cluster_matches_run_local_across_partitioners_and_widths() {
    let g = scaled_twitter();
    for partitioner in [Partitioner::VertexCut, Partitioner::Hash] {
        for workers in [2usize, 3] {
            let cluster = run_cluster(&g, partitioner, workers, &ALGOS);
            for (algo, out) in ALGOS.iter().zip(&cluster) {
                let local = run_local(&g, partitioner, workers, *algo).unwrap();
                assert_eq!(
                    out.digest, local.digest,
                    "{partitioner:?} w={workers} {algo:?}"
                );
                assert_eq!(
                    out.values, local.values,
                    "{partitioner:?} w={workers} {algo:?}"
                );
                assert_eq!(out.supersteps, local.supersteps);
                assert_eq!(out.values_sent, local.values_sent);
            }
        }
    }
}

#[test]
fn hybrid_cut_cluster_matches_run_local() {
    let g = scaled_twitter();
    let cluster = run_cluster(&g, Partitioner::Hybrid, 3, &ALGOS);
    for (algo, out) in ALGOS.iter().zip(&cluster) {
        let local = run_local(&g, Partitioner::Hybrid, 3, *algo).unwrap();
        assert_eq!(out.digest, local.digest, "{algo:?}");
    }
}

#[test]
fn single_worker_cluster_degenerates_cleanly() {
    // One worker: no mesh peers at all, every phase is loopback.
    let g = scaled_twitter();
    let cluster = run_cluster(&g, Partitioner::VertexCut, 1, &ALGOS);
    for (algo, out) in ALGOS.iter().zip(&cluster) {
        let local = run_local(&g, Partitioner::VertexCut, 1, *algo).unwrap();
        assert_eq!(out.digest, local.digest, "{algo:?}");
        assert_eq!(out.values_sent, 0, "nothing crosses a 1-machine cluster");
    }
}

#[test]
fn integer_fixpoints_are_worker_count_invariant() {
    // BFS levels and CC labels are unique fixpoints, so the digest must
    // not depend on how many workers computed them — only PageRank's
    // float grouping is width-sensitive.
    let g = scaled_twitter();
    for algo in [ClusterAlgo::Bfs { source: 3 }, ClusterAlgo::Cc] {
        let one = run_local(&g, Partitioner::VertexCut, 1, algo).unwrap();
        for workers in [2usize, 3, 5] {
            for partitioner in Partitioner::ALL {
                let w = run_local(&g, partitioner, workers, algo).unwrap();
                assert_eq!(one.digest, w.digest, "{partitioner:?} w={workers} {algo:?}");
            }
        }
    }
}

#[test]
fn superstep_metrics_are_recorded() {
    use vebo_distributed::ClusterPlan;
    let g = scaled_twitter();
    let placement = Partitioner::VertexCut.place(&g, 2).unwrap();
    let plans: Vec<ClusterPlan> = (0..2)
        .map(|m| ClusterPlan::build(&g, &placement, m))
        .collect();
    let out = vebo_distributed::runtime::run_local_on(&plans, ClusterAlgo::PageRank { iters: 4 });
    assert_eq!(out.supersteps, 4);
    for plan in &plans {
        let m = plan.metrics().snapshot();
        assert_eq!(m.supersteps, 4);
        assert!(m.superstep_quantile(0.5).is_some());
    }
}
