//! Length-prefixed byte framing.
//!
//! Every frame — in both directions — is a 4-byte **little-endian** u32
//! payload length followed by that many payload bytes. The decoder is
//! incremental: push bytes in whatever chunks the socket delivers (half a
//! header, a header plus half a payload, three pipelined frames in one
//! read) and pop complete payloads in order.
//!
//! A length prefix above the decoder's cap is a protocol violation: the
//! decoder reports [`Oversized`] without buffering the payload (a length
//! prefix of, say, 4 GiB must not turn into an allocation) and keeps
//! returning the error — after a violation the stream is unsynchronized
//! and the connection must be dropped.

/// Size of the length prefix.
pub const HEADER_LEN: usize = 4;

/// Appends one framed payload (length prefix + bytes) to `out`.
///
/// The payload length must fit a `u32`; the per-stream size cap is the
/// *decoder's* policy, so different protocols (the 4 KiB text protocol,
/// the multi-megabyte cluster value exchange) share this encoder.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(u32::try_from(payload.len()).is_ok());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Protocol violation: a frame's length prefix exceeds the decoder's cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Oversized {
    /// The offending length prefix.
    pub len: u32,
    /// The decoder's cap at the time.
    pub max_frame: usize,
}

impl std::fmt::Display for Oversized {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame length {} exceeds the {}-byte cap",
            self.len, self.max_frame
        )
    }
}

impl std::error::Error for Oversized {}

/// Incremental frame decoder over raw bytes: push bytes as they arrive,
/// pop complete payloads. After an [`Oversized`] violation the decoder is
/// poisoned — pushes are ignored and the error is returned again on every
/// poll.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by yielded frames (compacted
    /// lazily so pipelined frames don't trigger a memmove each).
    pos: usize,
    max_frame: usize,
    poisoned: Option<Oversized>,
}

impl FrameDecoder {
    /// An empty decoder enforcing `max_frame` as the payload size cap.
    pub fn with_max_frame(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_frame,
            poisoned: None,
        }
    }

    /// The payload size cap this decoder enforces.
    pub fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// Feeds bytes received from the peer.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.poisoned.is_some() {
            return;
        }
        // Compact before growing: consumed bytes never exceed one burst
        // of pipelined frames.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete payload, `Ok(None)` when more bytes are
    /// needed, or the violation that poisoned the stream.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, Oversized> {
        if let Some(err) = self.poisoned {
            return Err(err);
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..HEADER_LEN].try_into().unwrap());
        if len as usize > self.max_frame {
            let err = Oversized {
                len,
                max_frame: self.max_frame,
            };
            self.poisoned = Some(err);
            return Err(err);
        }
        let total = HEADER_LEN + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = avail[HEADER_LEN..total].to_vec();
        self.pos += total;
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet yielded as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_one_byte_at_a_time() {
        let payloads: [&[u8]; 3] = [b"", b"abc", &[0u8, 255, 1, 254]];
        let mut wire = Vec::new();
        for p in payloads {
            encode_frame(p, &mut wire);
        }
        let mut dec = FrameDecoder::with_max_frame(16);
        let mut got = Vec::new();
        for b in wire {
            dec.push(&[b]);
            while let Some(p) = dec.next_frame().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got, payloads.map(<[u8]>::to_vec).to_vec());
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn oversized_length_poisons_without_buffering() {
        let mut dec = FrameDecoder::with_max_frame(4096);
        dec.push(&u32::MAX.to_le_bytes());
        let err = dec.next_frame().unwrap_err();
        assert_eq!(err.len, u32::MAX);
        assert_eq!(err.max_frame, 4096);
        // Still poisoned on the next poll, and pushes are ignored.
        dec.push(b"garbage");
        assert_eq!(dec.next_frame().unwrap_err(), err);
        assert!(err.to_string().contains("4096-byte cap"));
    }

    #[test]
    fn cap_is_per_decoder() {
        let mut big = FrameDecoder::with_max_frame(1 << 20);
        let payload = vec![7u8; 100_000];
        let mut wire = Vec::new();
        encode_frame(&payload, &mut wire);
        big.push(&wire);
        assert_eq!(big.next_frame().unwrap().unwrap(), payload);

        let mut small = FrameDecoder::with_max_frame(4096);
        assert_eq!(small.max_frame(), 4096);
        small.push(&wire);
        assert!(small.next_frame().is_err());
    }
}
