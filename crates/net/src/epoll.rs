//! Minimal `epoll(7)` wrapper over raw `extern "C"` declarations — the
//! same no-dependency FFI pattern as the `Mmap` wrapper in
//! `vebo_graph::storage`, since the workspace vendors no libc crate and
//! every Rust binary on Linux already links libc.
//!
//! # Safety invariants
//!
//! - [`Epoll::new`] wraps the `epoll_create1` fd in an
//!   [`std::os::fd::OwnedFd`], so the epoll instance is closed exactly
//!   once, on drop, even on panic paths.
//! - [`EpollEvent`] matches the kernel ABI: packed on x86_64 (where the
//!   kernel declares `epoll_event` with `__attribute__((packed))`),
//!   naturally aligned elsewhere. Reading `data` from a packed struct
//!   copies through an aligned local, never references the unaligned
//!   field.
//! - Callers must keep a registered fd open until after
//!   [`Epoll::delete`] (or until the epoll instance drops): epoll
//!   auto-deregisters closed fds, but a reused fd number with a stale
//!   registration would mis-route events. The server upholds this by
//!   deregistering in the same scope that drops each connection.
//! - The readiness loop is **level-triggered** (no `EPOLLET`): a short
//!   read/write that leaves data pending re-arms on the next
//!   `epoll_wait`, so the loop never needs to drain to `EWOULDBLOCK`
//!   within one wakeup.
//!
//! The module is compiled only on Linux (gated in `lib.rs`).

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::c_int;

/// Readable (or a pending accept on a listener).
pub const EPOLLIN: u32 = 0x001;
/// Writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition; always reported, never needs registering.
pub const EPOLLERR: u32 = 0x008;
/// Peer hung up; always reported, never needs registering.
pub const EPOLLHUP: u32 = 0x010;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

/// Kernel ABI of `struct epoll_event`: packed on x86_64, naturally
/// aligned on other architectures (e.g. aarch64).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// `EPOLL*` readiness bit set.
    pub events: u32,
    /// Caller-chosen token identifying the fd (we use connection ids).
    pub data: u64,
}

impl EpollEvent {
    /// The token, copied out (the field may be unaligned on x86_64).
    pub fn token(&self) -> u64 {
        let EpollEvent { data, .. } = *self;
        data
    }

    /// The readiness bits, copied out.
    pub fn readiness(&self) -> u32 {
        let EpollEvent { events, .. } = *self;
        events
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
}

/// An owned epoll instance.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 either returns a fresh fd we uniquely
        // own or -1; FromRawFd is only reached on success.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` is a valid fd returned above and owned by no one
        // else; OwnedFd closes it exactly once on drop.
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call (the kernel copies it before
        // returning); `fd` validity is the caller's contract documented
        // on the module.
        let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` for level-triggered `events`, tagged `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`. Must be called while `fd` is still open.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (-1 = forever) and fills `events` with
    /// ready registrations, returning how many. A spurious `EINTR`
    /// (e.g. the SIGINT whose flag the server polls) reads as zero
    /// events rather than an error, so shutdown checks always run.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `events` is a valid, writable slice and maxevents is
        // its exact length; the kernel writes at most that many entries.
        let rc = unsafe {
            epoll_wait(
                self.fd.as_raw_fd(),
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms,
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::net::UnixStream;

    #[test]
    fn wait_reports_readable_pair_end() {
        let ep = Epoll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN, 42).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        // Nothing written yet: a zero-timeout wait sees nothing.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        a.write_all(b"x").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);

        ep.delete(b.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
