//! # vebo-net
//!
//! Shared low-level networking primitives, factored out of the serving
//! frontend (`vebo-serve-net`) so the distributed cluster runtime
//! (`vebo-distributed`) can reuse them without a dependency cycle
//! (`serve-net → bench → distributed` means shared code must live below
//! both).
//!
//! Two pieces:
//!
//! * [`frame`] — length-prefixed **byte** framing: a 4-byte little-endian
//!   u32 payload length followed by that many payload bytes, with an
//!   incremental decoder that accepts bytes at whatever boundaries the
//!   socket delivers and enforces a per-stream size cap. The serving
//!   frontend layers a UTF-8 text protocol on top; the cluster transport
//!   uses the raw bytes directly for its binary superstep messages.
//! * [`epoll`] (Linux only) — the minimal `epoll(7)` wrapper over raw
//!   `extern "C"` declarations, used by the serving frontend's readiness
//!   loop and the cluster coordinator's superstep barrier.

#![warn(missing_docs)]

#[cfg(target_os = "linux")]
pub mod epoll;
pub mod frame;

pub use frame::{encode_frame, FrameDecoder, Oversized, HEADER_LEN};
